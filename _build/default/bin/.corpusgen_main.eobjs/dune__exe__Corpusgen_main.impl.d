bin/corpusgen_main.ml: Arg Cmd Cmdliner Corpus Filename Fmt List Out_channel String Sys Term Webapp
