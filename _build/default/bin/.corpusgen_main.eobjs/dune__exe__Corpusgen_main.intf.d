bin/corpusgen_main.mli:
