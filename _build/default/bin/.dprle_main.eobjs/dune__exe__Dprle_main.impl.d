bin/dprle_main.ml: Arg Cmd Cmdliner Dprle Fmt List Logs Logs_fmt Option Out_channel Term
