bin/dprle_main.mli:
