bin/webcheck_main.ml: Arg Array Cmd Cmdliner Filename Fmt In_channel List Logs Logs_fmt Sql String Sys Term Unix Webapp
