bin/webcheck_main.mli:
