(* corpusgen — write the synthetic evaluation corpus (Fig. 11 of the
   paper) to disk as mini-PHP source files, so the whole §4 workflow
   can be driven from the file system:

     corpusgen --app eve /tmp/corpus
     webcheck /tmp/corpus/eve            # scans every file *)

open Cmdliner

let write_app out_dir app =
  let dir = Filename.concat out_dir app.Corpus.Fig11.name in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let files = Corpus.Fig11.generate app in
  List.iter
    (fun (name, program) ->
      Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
          Out_channel.output_string oc (Webapp.Ast.to_source program)))
    files;
  let loc =
    List.fold_left (fun acc (_, p) -> acc + Webapp.Ast.loc p) 0 files
  in
  Fmt.pr "%-8s %-8s %3d files %6d loc -> %s@." app.name app.version
    (List.length files) loc dir

let generate app_filter out_dir =
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let apps =
    match app_filter with
    | None -> Corpus.Fig11.apps
    | Some name -> (
        match
          List.find_opt (fun a -> a.Corpus.Fig11.name = name) Corpus.Fig11.apps
        with
        | Some app -> [ app ]
        | None ->
            Fmt.epr "unknown app %S (known: %s)@." name
              (String.concat ", "
                 (List.map (fun a -> a.Corpus.Fig11.name) Corpus.Fig11.apps));
            exit 2)
  in
  List.iter (write_app out_dir) apps;
  0

let () =
  let app_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "app" ] ~docv:"NAME" ~doc:"Only this application (eve, utopia, warp).")
  in
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  let term = Term.(const generate $ app_arg $ out_arg) in
  let info =
    Cmd.info "corpusgen" ~version:"1.0.0"
      ~doc:"Regenerate the synthetic evaluation corpus (Fig. 11) on disk."
  in
  exit (Cmd.eval' (Cmd.v info term))
