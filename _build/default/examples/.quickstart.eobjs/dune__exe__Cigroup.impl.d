examples/cigroup.ml: Dprle Fmt List String
