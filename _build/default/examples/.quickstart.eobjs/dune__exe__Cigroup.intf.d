examples/cigroup.mli:
