examples/corpus_tour.ml: Corpus Fmt List String Unix Webapp
