examples/extensions.ml: Automata Char Dprle Fmt List Regex String Webapp
