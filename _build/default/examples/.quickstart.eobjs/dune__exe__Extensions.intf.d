examples/extensions.mli:
