examples/quickstart.ml: Dprle Fmt List
