examples/quickstart.mli:
