examples/sanitizers.ml: Automata Dprle Fmt List Regex Sql Webapp
