examples/sanitizers.mli:
