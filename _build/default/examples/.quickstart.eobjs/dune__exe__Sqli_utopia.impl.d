examples/sqli_utopia.ml: Automata Dprle Fmt List Regex String Webapp
