examples/sqli_utopia.mli:
