(* A tour of the synthetic evaluation corpus (Fig. 11 of the paper):
   regenerate the three web applications, show their metrics, then run
   the full analysis on one vulnerable file and one benign file.

   Run with:  dune exec examples/corpus_tour.exe *)

module Fig11 = Corpus.Fig11
module Fig12 = Corpus.Fig12
module Ast = Webapp.Ast

let () =
  Fmt.pr "%-8s %-8s %6s %8s %11s   (regenerated)@." "Name" "Version" "Files"
    "LOC" "Vulnerable";
  List.iter
    (fun app ->
      let files = Fig11.generate app in
      let loc = List.fold_left (fun acc (_, p) -> acc + Ast.loc p) 0 files in
      Fmt.pr "%-8s %-8s %6d %8d %11d   (files=%d loc=%d)@." app.Fig11.name
        app.version app.files app.loc app.vulnerable (List.length files) loc)
    Fig11.apps;

  (* run the analysis on eve's one vulnerable file *)
  let eve = List.hd Fig11.apps in
  let files = Fig11.generate eve in
  let vuln_name, vuln_program = List.hd files in
  Fmt.pr "@.=== %s/%s (vulnerable) ===@." eve.name vuln_name;
  Fmt.pr "blocks: %d, loc: %d@." (Ast.basic_blocks vuln_program) (Ast.loc vuln_program);
  let t0 = Unix.gettimeofday () in
  (match
     Webapp.Symexec.first_exploit ~max_paths:4096 ~attack:Fig12.attack
       vuln_program
   with
  | Some inputs ->
      Fmt.pr "exploit found in %.3f s:@." (Unix.gettimeofday () -. t0);
      List.iter (fun (k, v) -> Fmt.pr "  %s = %S@." k v) inputs;
      Fmt.pr "confirmed: %b@."
        (Webapp.Eval.vulnerable_run ~attack:Fig12.attack vuln_program ~inputs)
  | None -> Fmt.pr "no exploit (unexpected)@.");

  (* and on a benign page *)
  let benign_name, benign_program =
    List.find (fun (name, _) -> String.length name >= 5 && String.sub name 0 5 = "page_") files
  in
  Fmt.pr "@.=== %s/%s (benign) ===@." eve.name benign_name;
  match
    Webapp.Symexec.first_exploit ~max_paths:4096 ~attack:Fig12.attack benign_program
  with
  | None -> Fmt.pr "no exploitable path — the anchored filter holds@."
  | Some _ -> Fmt.pr "exploit found (unexpected!)@."
