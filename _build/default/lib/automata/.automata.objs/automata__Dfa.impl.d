lib/automata/dfa.ml: Array Buffer Charset Fmt Fun Hashtbl Int List Nfa Option Printf Queue Set String
