lib/automata/dfa.mli: Charset Fmt Nfa
