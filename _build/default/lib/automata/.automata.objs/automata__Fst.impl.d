lib/automata/fst.ml: Array Buffer Charset Dfa Hashtbl List Nfa Option Queue String
