lib/automata/fst.mli: Charset Nfa
