lib/automata/lang.mli: Nfa
