lib/automata/nfa.ml: Array Buffer Charset Fmt Fun Hashtbl Int List Map Option Printf Queue Set String
