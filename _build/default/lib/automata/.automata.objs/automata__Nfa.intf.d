lib/automata/nfa.mli: Charset Fmt Map Set
