lib/automata/ops.ml: Array Charset Fun Hashtbl List Nfa Queue Stats
