lib/automata/ops.mli: Nfa
