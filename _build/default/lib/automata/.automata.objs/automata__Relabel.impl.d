lib/automata/relabel.ml: Char Charset Fun List Nfa
