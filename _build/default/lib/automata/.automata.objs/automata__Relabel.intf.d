lib/automata/relabel.mli: Nfa
