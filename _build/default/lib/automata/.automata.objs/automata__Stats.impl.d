lib/automata/stats.ml: Fmt
