lib/automata/stats.mli: Fmt
