lib/automata/witness.ml: Charset Dfa List Nfa Ops Seq String
