lib/automata/witness.mli: Charset Nfa Seq
