(** Deterministic finite automata over charset-labelled edges.

    DFAs are the workhorse for the {e semantic} decision procedures
    the rest of the library relies on: language emptiness, inclusion,
    equivalence, and complementation. The RMA solver itself
    manipulates NFAs (as in the paper); DFAs appear when checking
    results, minimizing machines, and in the test oracles.

    Transition labels on a given state are pairwise disjoint; a
    missing label means the word is rejected (machines are partial —
    an implicit dead state completes them). *)

type state = int

type t

val num_states : t -> int

val start : t -> state

val is_final : t -> state -> bool

val transitions : t -> state -> (Charset.t * state) list

(** Deterministic step; [None] means the implicit dead state. *)
val step : t -> state -> char -> state option

val accepts : t -> string -> bool

(** {1 Conversions} *)

(** Subset construction over ε-closed NFA state sets. *)
val of_nfa : Nfa.t -> t

(** Single-start/single-final NFA accepting the same language. *)
val to_nfa : t -> Nfa.t

(** {1 Boolean operations} *)

(** Complement w.r.t. Σ*; completes the machine with a sink first. *)
val complement : t -> t

val inter : t -> t -> t

val union : t -> t -> t

(** {1 Minimization} *)

(** Moore partition refinement on the completed machine, then
    removal of the dead class. The result is the canonical minimal
    partial DFA. *)
val minimize : t -> t

(** Brzozowski minimization (reverse–determinize twice), via NFAs.
    Used to cross-check {!minimize} in the test suite. *)
val minimize_brzozowski : t -> t

(** {1 Decision procedures} *)

val is_empty_lang : t -> bool

(** Hopcroft–Karp style pairwise equivalence check. *)
val equiv : t -> t -> bool

(** [subset a b] iff [L(a) ⊆ L(b)]. *)
val subset : t -> t -> bool

(** A word in [L(a) \ L(b)], if any. *)
val counterexample : t -> t -> string option

(** Shortest accepted word, if the language is nonempty. *)
val shortest_word : t -> string option

(** Up to [max_count] accepted words of length at most [max_len],
    shortest first, concretizing labels with {!Charset.choose}. *)
val sample_words : t -> max_len:int -> max_count:int -> string list

val to_dot : ?name:string -> t -> string

val pp_summary : t Fmt.t
