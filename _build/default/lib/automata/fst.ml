type output = Copy | Map of (char -> char) | Drop | Wrap of string * string | Subst of string

type edge = Consume of Charset.t * output * int | Emit of string * int

type t = { n : int; start : int; finals : bool array; edges : edge list array }

let output_string out c =
  match out with
  | Copy -> String.make 1 c
  | Map f -> String.make 1 (f c)
  | Drop -> ""
  | Wrap (pre, post) -> pre ^ String.make 1 c ^ post
  | Subst s -> s

module Builder = struct
  type b = { mutable count : int; mutable acc : (int * edge) list }

  let create () = { count = 0; acc = [] }

  let add_state b =
    let q = b.count in
    b.count <- b.count + 1;
    q

  let check b q = if q < 0 || q >= b.count then invalid_arg "Fst.Builder: bad state"

  let consume b src cs out dst =
    check b src;
    check b dst;
    if not (Charset.is_empty cs) then b.acc <- (src, Consume (cs, out, dst)) :: b.acc

  let emit b src s dst =
    check b src;
    check b dst;
    b.acc <- (src, Emit (s, dst)) :: b.acc

  let finish b ~start ~finals =
    check b start;
    List.iter (check b) finals;
    let edges = Array.make b.count [] in
    List.iter (fun (src, e) -> edges.(src) <- e :: edges.(src)) b.acc;
    let finals_arr = Array.make b.count false in
    List.iter (fun q -> finals_arr.(q) <- true) finals;
    { n = b.count; start; finals = finals_arr; edges }
end

(* ------------------------------------------------------------------ *)
(* Stock sanitizers: single-state total transducers                   *)

let single_state consumers =
  let b = Builder.create () in
  let q = Builder.add_state b in
  List.iter (fun (cs, out) -> Builder.consume b q cs out q) consumers;
  Builder.finish b ~start:q ~finals:[ q ]

let identity = single_state [ (Charset.full, Copy) ]

let addslashes =
  let specials = Charset.of_string "'\"\\" in
  single_state
    [ (specials, Wrap ("\\", "")); (Charset.complement specials, Copy) ]

let delete_chars cs =
  single_state [ (cs, Drop); (Charset.complement cs, Copy) ]

let replace_char c s =
  let needle = Charset.singleton c in
  single_state [ (needle, Subst s); (Charset.complement needle, Copy) ]

let map_chars f = single_state [ (Charset.full, Map f) ]

(* ------------------------------------------------------------------ *)
(* Application to a concrete string: depth-first over (state, position),
   guarding ε-output cycles by never revisiting a (state, position). *)

let apply t input =
  let n = String.length input in
  let buf = Buffer.create (n * 2) in
  (* fuel bounds ε-output cycles in pathological transducers *)
  let fuel = ref (((n + 2) * t.n * 8) + 64) in
  let exception Done of string in
  let rec go state pos =
    decr fuel;
    if !fuel <= 0 then ()
    else begin
      if pos = n && t.finals.(state) then raise (Done (Buffer.contents buf));
      List.iter
        (fun edge ->
          match edge with
          | Consume (cs, out, dst) when pos < n && Charset.mem input.[pos] cs ->
              let s = output_string out input.[pos] in
              let mark = Buffer.length buf in
              Buffer.add_string buf s;
              go dst (pos + 1);
              Buffer.truncate buf mark
          | Consume _ -> ()
          | Emit (s, dst) ->
              let mark = Buffer.length buf in
              Buffer.add_string buf s;
              go dst pos;
              Buffer.truncate buf mark)
        t.edges.(state)
    end
  in
  match go t.start 0 with () -> None | exception Done s -> Some s

(* ------------------------------------------------------------------ *)
(* Image: replace every transition by an NFA path spelling its
   output. Grouping whole charsets is sound for single-character
   outputs (choosing any image character corresponds to choosing an
   input character), and fixed strings do not depend on the input. *)

let image t m =
  (* product with m directly: states are (fst state, m state) *)
  let b = Nfa.Builder.create () in
  let table = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let materialize pair =
    match Hashtbl.find_opt table pair with
    | Some q -> q
    | None ->
        let q = Nfa.Builder.add_state b in
        Hashtbl.add table pair q;
        Queue.add pair worklist;
        q
  in
  let final = Nfa.Builder.add_state b in
  let start = materialize (t.start, Nfa.start m) in
  let add_word_path src word dst =
    let rec go src i =
      if i = String.length word then Nfa.Builder.add_eps b src dst
      else begin
        let mid =
          if i = String.length word - 1 then dst else Nfa.Builder.add_state b
        in
        Nfa.Builder.add_trans b src (Charset.singleton word.[i]) mid;
        go mid (i + 1)
      end
    in
    if word = "" then Nfa.Builder.add_eps b src dst else go src 0
  in
  while not (Queue.is_empty worklist) do
    let ((fq, mq) as pair) = Queue.take worklist in
    let src = Hashtbl.find table pair in
    if t.finals.(fq) && mq = Nfa.final m then Nfa.Builder.add_eps b src final;
    (* ε-moves of m *)
    List.iter
      (fun mq' -> Nfa.Builder.add_eps b src (materialize (fq, mq')))
      (Nfa.eps_transitions_from m mq);
    List.iter
      (fun edge ->
        match edge with
        | Emit (s, fq') -> add_word_path src s (materialize (fq', mq))
        | Consume (cs, out, fq') ->
            List.iter
              (fun (mcs, mq') ->
                let common = Charset.inter cs mcs in
                if not (Charset.is_empty common) then
                  let dst = materialize (fq', mq') in
                  match out with
                  | Copy -> Nfa.Builder.add_trans b src common dst
                  | Map f ->
                      Nfa.Builder.add_trans b src
                        (Charset.fold
                           (fun c acc -> Charset.union acc (Charset.singleton (f c)))
                           common Charset.empty)
                        dst
                  | Drop -> Nfa.Builder.add_eps b src dst
                  | Subst s -> add_word_path src s dst
                  | Wrap (pre, post) ->
                      let after_pre = Nfa.Builder.add_state b in
                      let after_c = Nfa.Builder.add_state b in
                      add_word_path src pre after_pre;
                      Nfa.Builder.add_trans b after_pre common after_c;
                      add_word_path after_c post dst)
              (Nfa.char_transitions m mq))
      t.edges.(fq)
  done;
  Nfa.Builder.finish b ~start ~final

(* ------------------------------------------------------------------ *)
(* Preimage: product of the transducer with the DFA of the target;
   consuming c with output s moves the DFA by the whole of s. *)

let preimage t m =
  let d = Dfa.of_nfa m in
  let run_word a word =
    String.fold_left
      (fun acc c -> match acc with None -> None | Some a -> Dfa.step d a c)
      (Some a) word
  in
  let b = Nfa.Builder.create () in
  let table = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let materialize pair =
    match Hashtbl.find_opt table pair with
    | Some q -> q
    | None ->
        let q = Nfa.Builder.add_state b in
        Hashtbl.add table pair q;
        Queue.add pair worklist;
        q
  in
  let final = Nfa.Builder.add_state b in
  let start = materialize (t.start, Dfa.start d) in
  while not (Queue.is_empty worklist) do
    let ((fq, a) as pair) = Queue.take worklist in
    let src = Hashtbl.find table pair in
    if t.finals.(fq) && Dfa.is_final d a then Nfa.Builder.add_eps b src final;
    List.iter
      (fun edge ->
        match edge with
        | Emit (s, fq') -> (
            match run_word a s with
            | Some a' -> Nfa.Builder.add_eps b src (materialize (fq', a'))
            | None -> ())
        | Consume (cs, out, fq') ->
            (* group the consumed characters by the DFA state their
               output reaches *)
            let buckets = Hashtbl.create 8 in
            Charset.iter
              (fun c ->
                match run_word a (output_string out c) with
                | Some a' ->
                    let existing =
                      Option.value (Hashtbl.find_opt buckets a') ~default:Charset.empty
                    in
                    Hashtbl.replace buckets a' (Charset.union existing (Charset.singleton c))
                | None -> ())
              cs;
            Hashtbl.iter
              (fun a' chars ->
                Nfa.Builder.add_trans b src chars (materialize (fq', a')))
              buckets)
      t.edges.(fq)
  done;
  Nfa.Builder.finish b ~start ~final
