(** Finite-state transducers (letter-to-string), and the regular
    image/preimage constructions that let the solver reason through
    sanitizers.

    The paper's related work reverses PHP string functions with FSTs
    (Wassermann et al.); this module provides the same capability for
    the sanitizers the corpus needs: a transition consumes one input
    character (from a charset) and emits a string derived from it, or
    emits a fixed string without consuming. Both [image f L] and
    [preimage f L] of a regular language are regular; the solver uses
    preimages to pull a constraint on [sanitize(x)] back to [x]. *)

type output =
  | Copy  (** emit the consumed character *)
  | Map of (char -> char)  (** emit a character-to-character image *)
  | Drop  (** emit nothing *)
  | Wrap of string * string  (** emit [pre ^ c ^ post] *)
  | Subst of string  (** emit a fixed string, ignoring the character *)

type t

(** {1 Construction} *)

module Builder : sig
  type b

  val create : unit -> b

  val add_state : b -> int

  (** [consume b src cs out dst] — read one [c ∈ cs], emit per [out]. *)
  val consume : b -> int -> Charset.t -> output -> int -> unit

  (** [emit b src s dst] — emit [s] without consuming input. *)
  val emit : b -> int -> string -> int -> unit

  val finish : b -> start:int -> finals:int list -> t
end

(** {1 Stock sanitizers} *)

(** The identity transducer. *)
val identity : t

(** PHP [addslashes]: backslash-escape the single quote, the double
    quote, and the backslash. *)
val addslashes : t

(** Delete every occurrence of the characters. *)
val delete_chars : Charset.t -> t

(** PHP [str_replace] with a single-character needle: replace every
    [c] by [s]. *)
val replace_char : char -> string -> t

(** Character map as a transducer (cf. {!Relabel}). *)
val map_chars : (char -> char) -> t

(** {1 Semantics} *)

(** Apply to a concrete string. [None] if the transducer rejects the
    input (stock sanitizers are total). Nondeterministic transducers
    return the first output found. *)
val apply : t -> string -> string option

(** [image f m] accepts [{ f(w) | w ∈ L(m) }]. *)
val image : t -> Nfa.t -> Nfa.t

(** [preimage f m] accepts [{ w | f(w) ∈ L(m) }]. *)
val preimage : t -> Nfa.t -> Nfa.t
