let equal a b = Dfa.equiv (Dfa.of_nfa a) (Dfa.of_nfa b)

let subset a b = Dfa.subset (Dfa.of_nfa a) (Dfa.of_nfa b)

let counterexample a b = Dfa.counterexample (Dfa.of_nfa a) (Dfa.of_nfa b)

let is_empty a = Nfa.is_empty_lang a

let difference a b =
  Dfa.to_nfa (Dfa.inter (Dfa.of_nfa a) (Dfa.complement (Dfa.of_nfa b)))

let compact a =
  let trimmed, _ = Nfa.trim a in
  let minimized = Dfa.to_nfa (Dfa.minimize (Dfa.of_nfa trimmed)) in
  if Nfa.num_states minimized < Nfa.num_states trimmed then minimized else trimmed
