(** Language-level decision procedures lifted to NFAs.

    Thin wrappers that determinize on demand; they are the semantic
    oracle used by the solver's validators and the test suite. *)

val equal : Nfa.t -> Nfa.t -> bool

(** [subset a b] iff [L(a) ⊆ L(b)]. *)
val subset : Nfa.t -> Nfa.t -> bool

(** A word of [L(a) \ L(b)], if any. *)
val counterexample : Nfa.t -> Nfa.t -> string option

val is_empty : Nfa.t -> bool

(** [L(a) \ L(b)] as an NFA. *)
val difference : Nfa.t -> Nfa.t -> Nfa.t

(** Language-preserving state reduction: trims, then determinizes and
    minimizes if that shrinks the machine. Used for the minimization
    ablation of the paper's §4 discussion. *)
val compact : Nfa.t -> Nfa.t
