type state = int

module StateSet = Set.Make (Int)
module StateMap = Map.Make (Int)

type t = {
  n : int;
  start : state;
  final : state;
  delta : (Charset.t * state) list array; (* indexed by source state *)
  eps : state list array;
}

let num_states m = m.n
let start m = m.start
let final m = m.final
let states m = List.init m.n Fun.id
let char_transitions m q = m.delta.(q)
let eps_transitions_from m q = m.eps.(q)

let all_eps_edges m =
  let acc = ref [] in
  for q = m.n - 1 downto 0 do
    List.iter (fun q' -> acc := (q, q') :: !acc) m.eps.(q)
  done;
  !acc

let has_eps_edge m p q = List.mem q m.eps.(p)

let fold_char_transitions m ~init ~f =
  let acc = ref init in
  for q = 0 to m.n - 1 do
    List.iter (fun (cs, q') -> acc := f !acc q cs q') m.delta.(q)
  done;
  !acc

let induce_from_final m q =
  if q < 0 || q >= m.n then invalid_arg "Nfa.induce_from_final";
  { m with final = q }

let induce_from_start m q =
  if q < 0 || q >= m.n then invalid_arg "Nfa.induce_from_start";
  { m with start = q }

module Builder = struct
  type b = {
    mutable count : int;
    mutable trans : (state * Charset.t * state) list;
    mutable eps_edges : (state * state) list;
  }

  let create () = { count = 0; trans = []; eps_edges = [] }

  let add_state b =
    let q = b.count in
    b.count <- b.count + 1;
    q

  let add_states b k =
    let q = b.count in
    b.count <- b.count + k;
    q

  let check b q = if q < 0 || q >= b.count then invalid_arg "Nfa.Builder: bad state"

  let add_trans b src cs dst =
    check b src;
    check b dst;
    if not (Charset.is_empty cs) then b.trans <- (src, cs, dst) :: b.trans

  let add_eps b src dst =
    check b src;
    check b dst;
    b.eps_edges <- (src, dst) :: b.eps_edges

  let finish b ~start ~final =
    check b start;
    check b final;
    let delta = Array.make b.count [] in
    let eps = Array.make b.count [] in
    List.iter (fun (src, cs, dst) -> delta.(src) <- (cs, dst) :: delta.(src)) b.trans;
    List.iter
      (fun (src, dst) ->
        if not (List.mem dst eps.(src)) then eps.(src) <- dst :: eps.(src))
      b.eps_edges;
    { n = b.count; start; final; delta; eps }
end

let empty_lang =
  let b = Builder.create () in
  let s = Builder.add_state b in
  let f = Builder.add_state b in
  Builder.finish b ~start:s ~final:f

let epsilon_lang =
  let b = Builder.create () in
  let s = Builder.add_state b in
  let f = Builder.add_state b in
  Builder.add_eps b s f;
  Builder.finish b ~start:s ~final:f

let of_charset cs =
  let b = Builder.create () in
  let s = Builder.add_state b in
  let f = Builder.add_state b in
  Builder.add_trans b s cs f;
  Builder.finish b ~start:s ~final:f

let of_word w =
  let len = String.length w in
  let b = Builder.create () in
  let first = Builder.add_states b (len + 1) in
  for i = 0 to len - 1 do
    Builder.add_trans b (first + i) (Charset.singleton w.[i]) (first + i + 1)
  done;
  Builder.finish b ~start:first ~final:(first + len)

let sigma_star =
  (* A single state with a Σ self-loop is both start and final; this
     keeps the Σ* machines that seed every variable node small. *)
  let b = Builder.create () in
  let s = Builder.add_state b in
  Builder.add_trans b s Charset.full s;
  Builder.finish b ~start:s ~final:s

let eps_closure m set =
  let rec go frontier acc =
    if StateSet.is_empty frontier then acc
    else
      let next =
        StateSet.fold
          (fun q acc' ->
            List.fold_left
              (fun acc'' q' ->
                if StateSet.mem q' acc then acc'' else StateSet.add q' acc'')
              acc' m.eps.(q))
          frontier StateSet.empty
      in
      go next (StateSet.union acc next)
  in
  go set set

let step m set c =
  let moved =
    StateSet.fold
      (fun q acc ->
        List.fold_left
          (fun acc (cs, q') -> if Charset.mem c cs then StateSet.add q' acc else acc)
          acc m.delta.(q))
      set StateSet.empty
  in
  eps_closure m moved

let accepts m w =
  let initial = eps_closure m (StateSet.singleton m.start) in
  let final_set =
    String.fold_left (fun set c -> step m set c) initial w
  in
  StateSet.mem m.final final_set

let reachable_from m q0 =
  let rec go frontier acc =
    if StateSet.is_empty frontier then acc
    else
      let next =
        StateSet.fold
          (fun q acc' ->
            let push q' acc'' =
              if StateSet.mem q' acc then acc'' else StateSet.add q' acc''
            in
            let acc' = List.fold_left (fun a (_, q') -> push q' a) acc' m.delta.(q) in
            List.fold_left (fun a q' -> push q' a) acc' m.eps.(q))
          frontier StateSet.empty
      in
      go next (StateSet.union acc next)
  in
  go (StateSet.singleton q0) (StateSet.singleton q0)

(* Predecessor adjacency, computed once per call; callers needing many
   co-reachability queries should reverse the machine instead. *)
let coreachable_to m q0 =
  let preds = Array.make m.n [] in
  for q = 0 to m.n - 1 do
    List.iter (fun (_, q') -> preds.(q') <- q :: preds.(q')) m.delta.(q);
    List.iter (fun q' -> preds.(q') <- q :: preds.(q')) m.eps.(q)
  done;
  let rec go frontier acc =
    if StateSet.is_empty frontier then acc
    else
      let next =
        StateSet.fold
          (fun q acc' ->
            List.fold_left
              (fun acc'' p ->
                if StateSet.mem p acc then acc'' else StateSet.add p acc'')
              acc' preds.(q))
          frontier StateSet.empty
      in
      go next (StateSet.union acc next)
  in
  go (StateSet.singleton q0) (StateSet.singleton q0)

let is_empty_lang m = not (StateSet.mem m.final (reachable_from m m.start))

let accepts_empty m =
  StateSet.mem m.final (eps_closure m (StateSet.singleton m.start))

let shortest_word m =
  (* BFS over single states; ε-edges cost nothing but BFS layers are
     by word length, so we expand ε-closures eagerly. *)
  let visited = Array.make m.n false in
  let q = Queue.create () in
  let enqueue_closure st word =
    StateSet.iter
      (fun s ->
        if not visited.(s) then begin
          visited.(s) <- true;
          Queue.add (s, word) q
        end)
      (eps_closure m (StateSet.singleton st))
  in
  enqueue_closure m.start [];
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let s, word = Queue.take q in
       if s = m.final then begin
         result := Some (List.rev word);
         raise Exit
       end;
       List.iter
         (fun (cs, s') ->
           if not visited.(s') then enqueue_closure s' (Charset.choose cs :: word))
         m.delta.(s)
     done
   with Exit -> ());
  Option.map (fun chars -> String.init (List.length chars) (List.nth chars)) !result

let sample_words m ~max_len ~max_count =
  let results = ref [] in
  let count = ref 0 in
  let q = Queue.create () in
  Queue.add (eps_closure m (StateSet.singleton m.start), "") q;
  (* BFS on ε-closed state sets; each set is paired with one concrete
     word, so the sample is a subset of the language, not a cover. *)
  let seen = Hashtbl.create 64 in
  (try
     while not (Queue.is_empty q) do
       let set, word = Queue.take q in
       if StateSet.mem m.final set && not (Hashtbl.mem seen word) then begin
         Hashtbl.add seen word ();
         results := word :: !results;
         incr count;
         if !count >= max_count then raise Exit
       end;
       if String.length word < max_len then begin
         let labels =
           StateSet.fold (fun s acc -> List.map fst m.delta.(s) @ acc) set []
         in
         let blocks = Charset.refine labels in
         List.iter
           (fun block ->
             let c = Charset.choose block in
             let set' = step m set c in
             if not (StateSet.is_empty set') then
               Queue.add (set', word ^ String.make 1 c) q)
           blocks
       end
     done
   with Exit -> ());
  List.rev !results

let trim m =
  let live = StateSet.inter (reachable_from m m.start) (coreachable_to m m.final) in
  if not (StateSet.mem m.start live) || not (StateSet.mem m.final live) then
    (* Empty language: canonical two-state empty machine; the renaming
       is empty since no original state survives. *)
    (empty_lang, StateMap.empty)
  else begin
    let rename = ref StateMap.empty in
    let b = Builder.create () in
    StateSet.iter
      (fun q -> rename := StateMap.add q (Builder.add_state b) !rename)
      live;
    let lookup q = StateMap.find_opt q !rename in
    StateSet.iter
      (fun q ->
        let q_new = StateMap.find q !rename in
        List.iter
          (fun (cs, q') ->
            match lookup q' with
            | Some q'_new -> Builder.add_trans b q_new cs q'_new
            | None -> ())
          m.delta.(q);
        List.iter
          (fun q' ->
            match lookup q' with
            | Some q'_new -> Builder.add_eps b q_new q'_new
            | None -> ())
          m.eps.(q))
      live;
    let machine =
      Builder.finish b ~start:(StateMap.find m.start !rename)
        ~final:(StateMap.find m.final !rename)
    in
    (machine, !rename)
  end

let reverse m =
  let b = Builder.create () in
  let _ = Builder.add_states b m.n in
  for q = 0 to m.n - 1 do
    List.iter (fun (cs, q') -> Builder.add_trans b q' cs q) m.delta.(q);
    List.iter (fun q' -> Builder.add_eps b q' q) m.eps.(q)
  done;
  Builder.finish b ~start:m.final ~final:m.start

let embed_two m1 m2 =
  let b = Builder.create () in
  let _ = Builder.add_states b m1.n in
  let offset = Builder.add_states b m2.n in
  for q = 0 to m1.n - 1 do
    List.iter (fun (cs, q') -> Builder.add_trans b q cs q') m1.delta.(q);
    List.iter (fun q' -> Builder.add_eps b q q') m1.eps.(q)
  done;
  for q = 0 to m2.n - 1 do
    List.iter (fun (cs, q') -> Builder.add_trans b (q + offset) cs (q' + offset)) m2.delta.(q);
    List.iter (fun q' -> Builder.add_eps b (q + offset) (q' + offset)) m2.eps.(q)
  done;
  (b, offset)

let to_dot ?(name = "nfa") ?(highlight = []) m =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n" name;
  pf "  __start [shape=point];\n  __start -> q%d;\n" m.start;
  pf "  q%d [shape=doublecircle];\n" m.final;
  List.iter (fun q -> pf "  q%d [shape=doublecircle, color=blue];\n" q) highlight;
  for q = 0 to m.n - 1 do
    List.iter
      (fun (cs, q') ->
        pf "  q%d -> q%d [label=\"%s\"];\n" q q' (String.escaped (Charset.to_string cs)))
      m.delta.(q);
    List.iter (fun q' -> pf "  q%d -> q%d [label=\"ε\"];\n" q q') m.eps.(q)
  done;
  pf "}\n";
  Buffer.contents buf

let pp_summary ppf m =
  let trans = Array.fold_left (fun acc l -> acc + List.length l) 0 m.delta in
  let epses = Array.fold_left (fun acc l -> acc + List.length l) 0 m.eps in
  Fmt.pf ppf "states=%d transitions=%d eps=%d start=%d final=%d" m.n trans epses
    m.start m.final
