let relabel edge_map m =
  let b = Nfa.Builder.create () in
  let _ = Nfa.Builder.add_states b (Nfa.num_states m) in
  List.iter
    (fun q ->
      List.iter
        (fun (cs, q') -> Nfa.Builder.add_trans b q (edge_map cs) q')
        (Nfa.char_transitions m q);
      List.iter (fun q' -> Nfa.Builder.add_eps b q q') (Nfa.eps_transitions_from m q))
    (Nfa.states m);
  Nfa.Builder.finish b ~start:(Nfa.start m) ~final:(Nfa.final m)

let preimage f m =
  relabel
    (fun cs ->
      Charset.of_ranges
        (List.filter_map
           (fun byte ->
             if Charset.mem (f (Char.chr byte)) cs then Some (byte, byte) else None)
           (List.init 256 Fun.id)))
    m

let image f m =
  relabel (fun cs -> Charset.fold (fun c acc -> Charset.union acc (Charset.singleton (f c))) cs Charset.empty) m
