(** Images and preimages of regular languages under character-to-
    character maps.

    For a function [f : char → char], both [f(L)] and [f⁻¹(L) = { w |
    f(w) ∈ L }] are regular, obtained by relabelling each transition
    charset — no product construction needed. This is how the solver
    pushes constraints back through PHP's [strtolower]/[strtoupper]:
    a constraint on [lower(x)] is solved for a fresh variable and the
    answer pulled back with {!preimage} (cf. the FST-based reversal of
    string functions in the paper's related work). *)

(** [preimage f m] accepts [{ w | f(w) ∈ L(m) }]: each edge label [cs]
    becomes [{ c | f c ∈ cs }]. *)
val preimage : (char -> char) -> Nfa.t -> Nfa.t

(** [image f m] accepts [f(L(m))]: each edge label [cs] becomes
    [{ f c | c ∈ cs }]. *)
val image : (char -> char) -> Nfa.t -> Nfa.t
