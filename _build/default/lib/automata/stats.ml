(* Instrumentation counters for the complexity experiments of §3.5 of
   the paper. The paper measures algorithm cost as the number of NFA
   states visited during automaton constructions; we do the same so
   the bench harness can reproduce the O(Q²)/O(Q³)/O(Q⁵) growth
   curves independently of wall-clock noise. *)

let states_visited = ref 0
let products_built = ref 0
let concats_built = ref 0

let reset () =
  states_visited := 0;
  products_built := 0;
  concats_built := 0

let visit_states n = states_visited := !states_visited + n
let count_product () = incr products_built
let count_concat () = incr concats_built

type snapshot = {
  visited : int;  (* NFA states visited by constructions *)
  products : int; (* cross-product constructions performed *)
  concats : int;  (* concatenation constructions performed *)
}

let snapshot () =
  {
    visited = !states_visited;
    products = !products_built;
    concats = !concats_built;
  }

let pp ppf s =
  Fmt.pf ppf "visited=%d products=%d concats=%d" s.visited s.products s.concats
