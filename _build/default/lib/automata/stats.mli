(** Instrumentation counters for the complexity experiments of §3.5
    of the paper: cost measured as NFA states visited during the
    concatenation and cross-product constructions, so the
    O(Q²)/O(Q³)/O(Q⁵) growth curves can be reproduced independently
    of wall-clock noise.

    The counters are global and mutable; callers bracket the
    construction of interest with {!reset} and {!snapshot} (see
    {!Dprle.Report.solve_with_report}). *)

(** Reset all counters to zero. *)
val reset : unit -> unit

(** Record [n] NFA states visited (called by {!Ops}). *)
val visit_states : int -> unit

(** Record one cross-product construction. *)
val count_product : unit -> unit

(** Record one concatenation construction. *)
val count_concat : unit -> unit

type snapshot = {
  visited : int;  (** NFA states visited by constructions *)
  products : int;  (** cross-product constructions performed *)
  concats : int;  (** concatenation constructions performed *)
}

val snapshot : unit -> snapshot

val pp : snapshot Fmt.t
