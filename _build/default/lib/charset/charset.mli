(** Sets of characters (bytes 0–255), represented as sorted disjoint
    inclusive intervals.

    Charsets label automaton transitions throughout the library. The
    interval representation keeps automata small for large classes
    such as [Σ] or [0-9] and makes the refinement operations needed by
    the subset construction cheap. *)

type t

(** {1 Constants and constructors} *)

val empty : t

(** The full alphabet Σ = bytes 0–255. *)
val full : t

val singleton : char -> t

(** [range lo hi] is the set of characters [c] with [lo <= c <= hi].
    Raises [Invalid_argument] if [lo > hi]. *)
val range : char -> char -> t

val of_list : char list -> t

(** [of_string s] contains exactly the characters occurring in [s]. *)
val of_string : string -> t

(** {1 Common character classes (PCRE-style)} *)

val digit : t (* \d  = [0-9] *)

val word : t (* \w  = [A-Za-z0-9_] *)

val space : t (* \s  = [ \t\n\r\011\012] *)

val lower : t

val upper : t

val alpha : t

val printable : t (* bytes 32–126 *)

(** {1 Set operations} *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val complement : t -> t

(** {1 Queries} *)

val mem : char -> t -> bool

val is_empty : t -> bool

val is_full : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val subset : t -> t -> bool

(** [intersects a b] iff [inter a b] is nonempty, without building it. *)
val intersects : t -> t -> bool

val cardinal : t -> int

(** Smallest character of the set. Raises [Not_found] on [empty]. *)
val min_elt : t -> char

(** [choose cs] is a deterministic representative; prefers a printable
    character when the set contains one. Raises [Not_found] on
    [empty]. *)
val choose : t -> char

(** {1 Traversal} *)

val iter : (char -> unit) -> t -> unit

val fold : (char -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> char list

(** The underlying sorted disjoint intervals, as inclusive byte
    bounds. *)
val ranges : t -> (int * int) list

val of_ranges : (int * int) list -> t

(** {1 Partition refinement}

    [refine sets] returns pairwise-disjoint nonempty blocks whose
    union is the union of [sets], such that every input set is a
    union of blocks. Used by the subset construction to pick
    transition labels without enumerating all 256 characters. *)
val refine : t list -> t list

(** {1 Pretty printing} *)

(** Prints in character-class syntax, e.g. [[a-z0-9_]], [Σ], [∅]. *)
val pp : t Fmt.t

val to_string : t -> string

(** [hash cs] is a structural hash consistent with [equal]. *)
val hash : t -> int
