(** Synthetic reconstruction of the paper's evaluation corpus.

    The original data set — three PHP web applications analysed by
    Wassermann and Su, with 17 reproducible SQL-injection defect
    reports — is not redistributable, and the constraint generator the
    authors used was never released. This module regenerates, for
    every row of the paper's Fig. 12, a mini-PHP program whose
    vulnerable path matches the row's published metrics:

    - [|FG|]: basic blocks in the file's CFG;
    - [|C|]: constraints produced by symbolic execution of the
      vulnerable path (branch conditions + the sink constraint);
    - for the [secure] row, the paper's stated cause of its 577 s
      outlier — very large string constants tracked through the
      machines — is reproduced with multi-kilobyte literals.

    Because the decision procedure only ever sees the constraint
    system, matching the system's shape (count, constant sizes,
    concatenation structure) exercises the same code paths as the
    original corpus. See DESIGN.md §4. *)

module Fig12 : sig
  type row = {
    app : string;  (** eve | utopia | warp *)
    name : string;  (** the paper's vulnerability label *)
    fg : int;  (** published [|FG|] *)
    c : int;  (** published [|C|] *)
    paper_ts : float;  (** published solve time, seconds *)
  }

  (** The 17 rows of Fig. 12, in the paper's order. *)
  val rows : row list

  (** Deterministically generate the row's program. The program's
      [Ast.basic_blocks] equals [fg], and symbolic execution of its
      vulnerable path yields exactly [c] constraints. *)
  val program : row -> Webapp.Ast.program

  (** The attack language used for the sink constraints (the paper's
      "contains a quote" approximation). *)
  val attack : Automata.Nfa.t
end

module Fig11 : sig
  type app = {
    name : string;
    version : string;
    files : int;  (** published file count *)
    loc : int;  (** published LOC *)
    vulnerable : int;  (** published count of vulnerable files *)
  }

  (** The three programs of Fig. 11. *)
  val apps : app list

  (** Generate the app's full file set: [vulnerable] files from the
      corresponding Fig. 12 rows plus benign filler files, [files]
      files in total, with total {!Webapp.Ast.loc} close to [loc]
      (within a few percent — filler statements are quantized). *)
  val generate : app -> (string * Webapp.Ast.program) list
end
