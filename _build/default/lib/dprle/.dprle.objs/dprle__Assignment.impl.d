lib/dprle/assignment.ml: Automata Fmt List Map Printf Regex String
