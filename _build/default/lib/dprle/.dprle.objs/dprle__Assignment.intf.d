lib/dprle/assignment.mli: Automata Fmt
