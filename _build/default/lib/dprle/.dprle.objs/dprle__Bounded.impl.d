lib/dprle/bounded.ml: Automata Char Charset List Option Queue Set String System
