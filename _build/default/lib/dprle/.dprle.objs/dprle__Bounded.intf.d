lib/dprle/bounded.mli: System
