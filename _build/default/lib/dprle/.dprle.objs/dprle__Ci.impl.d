lib/dprle/ci.ml: Automata List
