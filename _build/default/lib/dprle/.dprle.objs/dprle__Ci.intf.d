lib/dprle/ci.mli: Automata
