lib/dprle/depgraph.ml: Buffer Fmt Hashtbl List Option Printf Set Stdlib System
