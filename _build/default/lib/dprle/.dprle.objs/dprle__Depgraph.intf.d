lib/dprle/depgraph.mli: Fmt System
