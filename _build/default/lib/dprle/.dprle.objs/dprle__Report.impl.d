lib/dprle/report.ml: Automata Depgraph Fmt Hashtbl List Option Solver
