lib/dprle/report.mli: Automata Depgraph Fmt Solver
