lib/dprle/residual.ml: Array Assignment Automata Charset Fun Hashtbl Int List Queue Set System
