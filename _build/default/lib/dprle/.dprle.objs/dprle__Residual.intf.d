lib/dprle/residual.mli: Assignment Automata System
