lib/dprle/smtlib.ml: Automata Buffer Char Charset List Printf Regex String System
