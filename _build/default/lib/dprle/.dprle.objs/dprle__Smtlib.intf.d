lib/dprle/smtlib.mli: Regex System
