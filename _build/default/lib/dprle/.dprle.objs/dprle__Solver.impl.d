lib/dprle/solver.ml: Assignment Automata Depgraph Format Fun Hashtbl List Logs Map Option Printf Residual Seq Set System Validate
