lib/dprle/solver.mli: Assignment Depgraph System
