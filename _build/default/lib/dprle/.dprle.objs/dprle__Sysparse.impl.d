lib/dprle/sysparse.ml: Automata Buffer Fmt Fun List Printf Regex String System
