lib/dprle/sysparse.mli: Fmt System
