lib/dprle/system.ml: Automata Fmt List Map Printf Regex Set String
