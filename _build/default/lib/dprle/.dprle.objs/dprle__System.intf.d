lib/dprle/system.mli: Automata Fmt
