lib/dprle/validate.ml: Array Assignment Automata Ci List System
