lib/dprle/validate.mli: Assignment Automata Ci System
