(** Assignments of regular languages to the variables of a system. *)

type t

val of_list : (string * Automata.Nfa.t) list -> t

val find : t -> string -> Automata.Nfa.t

val find_opt : t -> string -> Automata.Nfa.t option

val bindings : t -> (string * Automata.Nfa.t) list

val variables : t -> string list

(** [subsumes a b] iff [a] is pointwise ⊇ [b] on [b]'s variables —
    i.e. [b] adds nothing. Used to discard non-maximal disjuncts. *)
val subsumes : t -> t -> bool

(** Semantic equality: same variables, same languages. *)
val equal : t -> t -> bool

(** Drop every assignment pointwise subsumed by another in the list
    (keeping the first of semantically equal ones); preserves order. *)
val prune_subsumed : t list -> t list

(** A concrete witness string per variable (shortest), e.g. to print a
    testcase. [None] if some language is empty. *)
val witness : t -> (string * string) list option

(** Up to [n] sample strings for one variable. *)
val samples : t -> string -> n:int -> string list

(** Renders each binding as a regex via state elimination. *)
val pp : t Fmt.t

(** Terse one-line form: [v1 ↦ shortest-witness, …]. *)
val pp_witnesses : t Fmt.t
