(** Bounded brute-force baseline solver.

    The paper positions its decision procedure against
    bounded/SAT-style string solvers (HAMPI and Bjørner et al. in §5
    fix string lengths and search for {e individual} assignments).
    This module is that baseline, implemented honestly: enumerate
    concrete words per variable up to a length bound over a reduced
    alphabet, and test the constraints by membership.

    It serves two purposes:

    - the benchmark harness compares it against the decision
      procedure (languages vs. single bounded witnesses — the paper's
      qualitative argument made measurable);
    - the test suite uses it as a differential oracle on small random
      systems: brute-force satisfiability within the bound must agree
      with the decision procedure's verdict. *)

type result =
  | Sat of (string * string) list  (** one concrete word per variable *)
  | Unsat_within_bound
      (** no assignment with every word ≤ the bound; the system may
          still be satisfiable with longer words *)

(** [check system words] — do these concrete values satisfy every
    constraint? (Variables missing from [words] default to [""].) *)
val check : System.t -> (string * string) list -> bool

(** [solve ~max_len system] searches assignments of words of length
    ≤ [max_len] over a reduced alphabet: one representative character
    per refined block of the constants' transition charsets (a word
    outside those blocks can always be replaced by a representative
    without changing any membership). Variables are assigned
    depth-first with constraints checked as soon as all their
    variables are bound.

    @param candidates_per_var safety cap on enumerated words per
    variable (default 4096). *)
val solve : ?candidates_per_var:int -> max_len:int -> System.t -> result

(** The reduced alphabet used by {!solve} for a system. *)
val alphabet : System.t -> char list
