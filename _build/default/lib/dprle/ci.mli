(** The Concatenation–Intersection problem (§3.2, Fig. 3 of the
    paper): given regular languages [c1], [c2], [c3], find all maximal
    disjunctive assignments for

    {v  v1 ⊆ c1    v2 ⊆ c2    v1 ∘ v2 ⊆ c3  v}

    The algorithm builds [M5 = (M1 ∘ M2) ∩ M3] and slices it at the
    ε-transitions that are images of the concatenation bridge: each
    such ε-edge [(qa, qb)] yields one assignment
    [v1 ↦ induce_from_final (M5, qa)], [v2 ↦ induce_from_start (M5, qb)].

    The paper proves three properties of the output (its Coq theorem);
    {!Validate} re-checks all three executably, and the test suite
    exercises them on random instances:

    - {b Regular}: both assigned languages are NFAs by construction.
    - {b Satisfying}: [⟦v1⟧ ⊆ c1], [⟦v2⟧ ⊆ c2], [⟦v1∘v2⟧ ⊆ c3].
    - {b All Solutions}: every [w ∈ (c1∘c2) ∩ c3] is in [⟦v1∘v2⟧] of
      some output assignment. *)

type solution = {
  v1 : Automata.Nfa.t;
  v2 : Automata.Nfa.t;
  cut : Automata.Nfa.state * Automata.Nfa.state;
      (** the ε-transition of [M5] this solution was sliced at *)
}

type result = {
  solutions : solution list;
  m5 : Automata.Nfa.t;  (** the intermediate machine [(M1∘M2) ∩ M3] *)
  m4 : Automata.Nfa.t;  (** the concatenation machine [M1∘M2] *)
}

(** Empty assignments are rejected (Fig. 3 line 15's side condition):
    a returned solution always has nonempty [v1] and [v2]. *)
val concat_intersect : Automata.Nfa.t -> Automata.Nfa.t -> Automata.Nfa.t -> result

(** Just the assignments. *)
val solve : Automata.Nfa.t -> Automata.Nfa.t -> Automata.Nfa.t -> solution list
