(** Per-solve instrumentation, for benches and the CLI's [--stats].

    Complements {!Automata.Stats} (low-level states visited) with the
    solver-level quantities the paper's §3.5 reasons about: how many
    CI-groups and concatenations a system has, how many ε-cut
    candidates each concatenation admits, and how many combinations
    were explored versus admitted. *)

type t = {
  nodes : int;  (** dependency-graph vertices *)
  subset_edges : int;
  concat_pairs : int;
  groups : int;  (** CI-groups with at least one concatenation *)
  singleton_vars : int;
  cut_candidates : int;  (** ε-cuts summed over all concatenations *)
  max_group_combinations : int;
      (** largest per-group product of cut candidates *)
  solutions : int;  (** disjuncts returned (after Maximal pruning) *)
  automata : Automata.Stats.snapshot;
      (** NFA construction work done during the solve *)
}

val pp : t Fmt.t

(** Solve and measure in one pass. Returns the outcome together with
    the report; resets {!Automata.Stats} for the duration. *)
val solve_with_report :
  ?max_solutions:int ->
  ?combination_limit:int ->
  Depgraph.t ->
  Solver.outcome * t
