(** Residual (quotient-style) languages used to maximalize solutions.

    The RMA definition requires {e Maximal} assignments, and the
    paper's worked examples (§3.1.1) show merged disjuncts such as
    [v1 ↦ x(yy|yyyy)] that are strictly larger than any single ε-cut
    slice. The solver therefore closes each sliced solution under
    "grow one variable as far as the others allow", which needs the
    middle residual below. *)

(** [max_middle ~pre ~post ~upper] is the largest language [X] with
    [pre ∘ X ∘ post ⊆ upper]:

    {v X = { w | ∀u ∈ pre, ∀u' ∈ post.  u·w·u' ∈ upper } v}

    Computed on the DFA of [upper]: let [T₀] be the states reachable
    from the start via [pre] and [Good] the states [p] with
    [post ⊆ L(p → F)]; then [X] is recognized by the subset automaton
    from [T₀] that accepts exactly when the tracked set stays inside
    [Good] — a universal-acceptance subset construction.

    If [pre] or [post] is empty the occurrence constrains nothing and
    the result is Σ*. *)
val max_middle :
  pre:Automata.Nfa.t ->
  post:Automata.Nfa.t ->
  upper:Automata.Nfa.t ->
  Automata.Nfa.t

(** [maximize system a] grows every variable of [a] in round-robin
    fashion to the largest language that keeps every constraint
    satisfied, holding the other variables (and other occurrences of
    the same variable) at their current value, until a fixpoint.
    Languages only grow, and each lives in the finite lattice induced
    by the constraint DFAs, so the iteration terminates. The result
    satisfies the system whenever [a] does, subsumes [a], and is
    maximal in each variable separately. *)
val maximize : System.t -> Assignment.t -> Assignment.t
