(** SMT-LIB 2.6 export (theory of strings).

    The modern descendants of this paper (Z3str, CVC4/5) standardized
    on the SMT-LIB strings theory; this module bridges to them: a
    constraint system becomes [declare-const … String] plus one
    [str.in_re] assertion per union-free constraint alternative.

    Semantics note: SMT solvers decide {e word-level} satisfiability —
    one concrete string per variable — whereas RMA asks for maximal
    {e languages}. The two agree on satisfiability: constraints are
    monotone, so an RMA solution yields witnesses per variable, and a
    word-level model is a satisfying singleton assignment. Maximality
    and the disjunctive solution set are not expressible; they are
    DPRLE's value-add over the word-level theory.

    Constant operands inside a concatenation are inlined as string
    literals when the constant is a single word, and otherwise encoded
    with a universally quantified assertion
    [∀u. u ∈ C ⇒ pre·u·post ∈ R] (the ∀-semantics of §4b of
    DESIGN.md). *)

(** Render a regex as an SMT-LIB [RegLan] term. *)
val re_term : Regex.Ast.t -> string

(** SMT-LIB string literal (with [""] and [\u{…}] escapes). *)
val string_literal : string -> string

(** The whole system as an SMT-LIB 2.6 script ending in
    [(check-sat)] and [(get-model)]. *)
val of_system : System.t -> string
