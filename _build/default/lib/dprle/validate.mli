(** Executable validators for the solver's correctness properties.

    The paper ships a Coq proof of the three concat-intersect
    properties (Regular / Satisfying / All Solutions) and defines RMA
    solutions by Satisfying + Maximal. This module re-states all of
    them as decidable checks over NFAs; the test suite runs them
    against randomized instances, which is this reproduction's
    substitute for the mechanized proof (see DESIGN.md §4). *)

(** [expr_lang system a e] is [⟦e⟧] under assignment [a]. *)
val expr_lang : System.t -> Assignment.t -> System.expr -> Automata.Nfa.t

(** One constraint of the system holds under the assignment. *)
val constraint_holds : System.t -> Assignment.t -> System.constr -> bool

(** The paper's {b Satisfying} condition: every constraint holds. *)
val satisfying : System.t -> Assignment.t -> bool

(** {1 CI properties (§3.3)} *)

(** {b Satisfying} for a CI solution:
    [⟦v1⟧ ⊆ c1 ∧ ⟦v2⟧ ⊆ c2 ∧ ⟦v1∘v2⟧ ⊆ c3]. *)
val ci_satisfying :
  c1:Automata.Nfa.t -> c2:Automata.Nfa.t -> c3:Automata.Nfa.t -> Ci.solution -> bool

(** {b All Solutions}: the union of [⟦v1∘v2⟧] over the returned
    solutions equals [(c1∘c2) ∩ c3] exactly. (The paper states ⊇; ⊆
    follows from Satisfying, so we check language equality.) *)
val ci_all_solutions :
  c1:Automata.Nfa.t ->
  c2:Automata.Nfa.t ->
  c3:Automata.Nfa.t ->
  Ci.solution list ->
  bool

(** {1 Maximality probing}

    True maximality quantifies over all regular languages; the probe
    falsifies it on witnesses: for each variable it tries to adjoin
    sample strings drawn from the constraint constants' languages
    minus the variable's language, and checks that every such
    extension breaks some constraint. A [false] result is a genuine
    counterexample to Maximal; [true] means no counterexample was
    found within the sample budget. *)
val maximal_probe : ?samples:int -> System.t -> Assignment.t -> bool

(** All disjuncts are pairwise incomparable (no solution subsumes
    another) — a consequence of Maximal for distinct solutions. *)
val pairwise_incomparable : Assignment.t list -> bool
