lib/regex/ast.ml: Buffer Char Charset Fmt List Printf Stdlib String
