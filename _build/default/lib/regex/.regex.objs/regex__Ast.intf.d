lib/regex/ast.mli: Charset Fmt
