lib/regex/compile.ml: Ast Automata Charset
