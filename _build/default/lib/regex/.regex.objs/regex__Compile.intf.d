lib/regex/compile.mli: Ast Automata
