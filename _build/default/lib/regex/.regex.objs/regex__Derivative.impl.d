lib/regex/derivative.ml: Ast Charset Option String
