lib/regex/derivative.mli: Ast
