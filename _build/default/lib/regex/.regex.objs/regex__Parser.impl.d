lib/regex/parser.ml: Ast Char Charset Fmt Printf Result String
