lib/regex/parser.mli: Ast Fmt
