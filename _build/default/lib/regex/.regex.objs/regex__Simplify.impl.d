lib/regex/simplify.ml: Ast Automata Charset Compile List State_elim
