lib/regex/simplify.mli: Ast Automata
