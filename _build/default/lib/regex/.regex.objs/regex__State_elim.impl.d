lib/regex/state_elim.ml: Array Ast Automata List
