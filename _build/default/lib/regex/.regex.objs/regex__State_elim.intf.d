lib/regex/state_elim.mli: Ast Automata
