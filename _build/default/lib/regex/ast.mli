(** Abstract syntax of the PCRE-subset regular expressions used as
    language constants throughout the solver.

    The subset matches what the paper's evaluation needs: literals,
    character classes (incl. [\d], [\w], [\s] and negations), [.],
    grouping, alternation, and the counted quantifiers. Anchoring is
    {e pattern-level} (see {!pattern}): [preg_match]-style patterns
    match substrings unless tied down with [^]/[$], which is exactly
    the distinction the paper's motivating vulnerability hinges on. *)

type t =
  | Empty  (** ∅ — matches nothing *)
  | Epsilon  (** matches the empty string *)
  | Chars of Charset.t  (** one character from the set *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option  (** [r{n,m}]; [None] = unbounded *)

(** A [preg_match]-style pattern: a bare regex plus end anchoring.
    [/[\d]+$/] is [{ re = Plus (Chars digit); anchored_start = false;
    anchored_end = true }] — the faulty filter of the paper's Fig. 1. *)
type pattern = { re : t; anchored_start : bool; anchored_end : bool }

(** Fully anchored pattern (the regex must cover the whole string). *)
val whole : t -> pattern

val equal : t -> t -> bool

val compare : t -> t -> int

(** Syntactic size (number of AST nodes). *)
val size : t -> int

(** {1 Smart constructors}

    Perform the obvious algebraic identities ([∅·r = ∅], [ε·r = r],
    [r|∅ = r], deduplicated alternation of char sets, …) so that
    generated expressions — in particular the output of state
    elimination — stay readable. *)

val seq : t -> t -> t

val alt : t -> t -> t

val star : t -> t

val plus : t -> t

val opt : t -> t

val chars : Charset.t -> t

(** [str s] matches exactly the literal string [s]. *)
val str : string -> t

val repeat : t -> int -> int option -> t

(** [any] is [.] — here a true "any byte", not "any but newline". *)
val any : t

val pp : t Fmt.t
val pp_pattern : pattern Fmt.t

(** Concrete syntax accepted back by {!Parser.parse}. *)
val to_string : t -> string
