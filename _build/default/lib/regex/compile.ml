module Nfa = Automata.Nfa
module Ops = Automata.Ops

let rec to_nfa : Ast.t -> Nfa.t = function
  | Empty -> Nfa.empty_lang
  | Epsilon -> Nfa.epsilon_lang
  | Chars cs -> if Charset.is_empty cs then Nfa.empty_lang else Nfa.of_charset cs
  | Seq (a, b) -> Ops.concat_lang (to_nfa a) (to_nfa b)
  | Alt (a, b) -> Ops.union_lang (to_nfa a) (to_nfa b)
  | Star a -> Ops.star (to_nfa a)
  | Plus a -> Ops.plus (to_nfa a)
  | Opt a -> Ops.opt (to_nfa a)
  | Repeat (a, lo, hi) -> Ops.repeat (to_nfa a) ~min_count:lo ~max_count:hi

let pattern_to_nfa { Ast.re; anchored_start; anchored_end } =
  let core = to_nfa re in
  let with_prefix =
    if anchored_start then core else Ops.concat_lang Nfa.sigma_star core
  in
  if anchored_end then with_prefix else Ops.concat_lang with_prefix Nfa.sigma_star

let pattern_reject_nfa pattern =
  Automata.Dfa.to_nfa (Automata.Dfa.complement (Automata.Dfa.of_nfa (pattern_to_nfa pattern)))
