(** Thompson compilation of regexes to single-start/single-final
    ε-NFAs, the machine format the solver consumes. *)

val to_nfa : Ast.t -> Automata.Nfa.t

(** Language of inputs {e accepted by} a [preg_match]-style check: an
    unanchored side is padded with Σ*, so e.g. the paper's faulty
    [/[\d]+$/] compiles to [Σ* · [0-9]+] — every string that merely
    {e ends} with digits. *)
val pattern_to_nfa : Ast.pattern -> Automata.Nfa.t

(** Language of inputs {e rejected} by the check (complement of
    {!pattern_to_nfa}); used when an analysis follows the
    pattern-failed branch. *)
val pattern_reject_nfa : Ast.pattern -> Automata.Nfa.t
