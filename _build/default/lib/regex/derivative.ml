let rec nullable : Ast.t -> bool = function
  | Empty | Chars _ -> false
  | Epsilon | Star _ | Opt _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus a -> nullable a
  | Repeat (a, lo, _) -> lo = 0 || nullable a

let rec deriv c : Ast.t -> Ast.t = function
  | Empty | Epsilon -> Empty
  | Chars cs -> if Charset.mem c cs then Epsilon else Empty
  | Seq (a, b) ->
      let da_b = Ast.seq (deriv c a) b in
      if nullable a then Ast.alt da_b (deriv c b) else da_b
  | Alt (a, b) -> Ast.alt (deriv c a) (deriv c b)
  | Star a as star -> Ast.seq (deriv c a) star
  | Plus a -> Ast.seq (deriv c a) (Ast.star a)
  | Opt a -> deriv c a
  | Repeat (a, lo, hi) ->
      let rest =
        Ast.repeat a (max 0 (lo - 1)) (Option.map (fun h -> h - 1) hi)
      in
      (* d(a{0,0}) is handled by [Ast.repeat] collapsing to ε above;
         here hi ≥ 1 whenever the Repeat node survived the smart
         constructor. *)
      Ast.seq (deriv c a) rest

let matches re w =
  nullable (String.fold_left (fun r c -> deriv c r) re w)

let pattern_matches { Ast.re; anchored_start; anchored_end } w =
  let re = if anchored_end then re else Ast.seq re (Ast.star Ast.any) in
  let re = if anchored_start then re else Ast.seq (Ast.star Ast.any) re in
  matches re w
