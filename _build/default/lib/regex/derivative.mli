(** Brzozowski-derivative matcher.

    A second, automaton-free implementation of regex matching, used as
    the reference oracle against which the Thompson compiler is
    property-tested. Also useful on its own for one-off membership
    checks without building a machine. *)

(** Does the regex accept the empty string? *)
val nullable : Ast.t -> bool

(** [deriv c r] is the Brzozowski derivative: a regex for
    [{ w | c·w ∈ L(r) }]. Uses the smart constructors of {!Ast}, so
    derivatives stay small. *)
val deriv : char -> Ast.t -> Ast.t

(** Membership by repeated derivation. *)
val matches : Ast.t -> string -> bool

(** Pattern-level matching with [preg_match] substring semantics. *)
val pattern_matches : Ast.pattern -> string -> bool
