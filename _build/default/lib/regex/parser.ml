type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "parse error at %d: %s" position message

exception Parse_failure of error

let fail pos message = raise (Parse_failure { position = pos; message })

(* Mutable cursor over the input; the grammar is LL(1) so one
   character of lookahead suffices everywhere. *)
type cursor = { input : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur.pos (Printf.sprintf "expected '%c'" c)

let hex_value pos c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail pos "expected hex digit"

(* Shared by literal and in-class escapes. Returns either a concrete
   character or a full character class (for \d etc.). *)
let parse_escape cur =
  match peek cur with
  | None -> fail cur.pos "dangling backslash"
  | Some c ->
      advance cur;
      let chr c = `Char c in
      (match c with
      | 'd' -> `Class Charset.digit
      | 'D' -> `Class (Charset.complement Charset.digit)
      | 'w' -> `Class Charset.word
      | 'W' -> `Class (Charset.complement Charset.word)
      | 's' -> `Class Charset.space
      | 'S' -> `Class (Charset.complement Charset.space)
      | 'n' -> chr '\n'
      | 't' -> chr '\t'
      | 'r' -> chr '\r'
      | '0' -> chr '\000'
      | 'x' ->
          let d1 =
            match peek cur with
            | Some c -> hex_value cur.pos c
            | None -> fail cur.pos "truncated \\x escape"
          in
          advance cur;
          let d2 =
            match peek cur with
            | Some c -> hex_value cur.pos c
            | None -> fail cur.pos "truncated \\x escape"
          in
          advance cur;
          chr (Char.chr ((d1 * 16) + d2))
      | c -> chr c)

let parse_class cur =
  (* cursor is just past the '['. *)
  let negated =
    match peek cur with
    | Some '^' ->
        advance cur;
        true
    | _ -> false
  in
  let acc = ref Charset.empty in
  let add cs = acc := Charset.union !acc cs in
  let rec items () =
    match peek cur with
    | None -> fail cur.pos "unterminated character class"
    | Some ']' -> advance cur
    | Some c ->
        advance cur;
        let lo =
          if c = '\\' then
            match parse_escape cur with
            | `Char c -> Some c
            | `Class cs ->
                add cs;
                None
          else Some c
        in
        (match lo with
        | None -> ()
        | Some lo -> (
            (* possible range lo-hi; '-' before ']' is a literal *)
            match (peek cur, cur.pos + 1 < String.length cur.input) with
            | Some '-', true when cur.input.[cur.pos + 1] <> ']' ->
                advance cur;
                let hi =
                  match peek cur with
                  | None -> fail cur.pos "unterminated range"
                  | Some '\\' ->
                      advance cur;
                      (match parse_escape cur with
                      | `Char c -> c
                      | `Class _ -> fail cur.pos "class escape in range")
                  | Some c ->
                      advance cur;
                      c
                in
                if Char.code hi < Char.code lo then fail cur.pos "inverted range";
                add (Charset.range lo hi)
            | _ -> add (Charset.singleton lo)));
        items ()
  in
  items ();
  if negated then Charset.complement !acc else !acc

let parse_int cur =
  let start = cur.pos in
  let rec go acc =
    match peek cur with
    | Some ('0' .. '9' as c) ->
        advance cur;
        go ((acc * 10) + Char.code c - Char.code '0')
    | _ -> if cur.pos = start then fail cur.pos "expected number" else acc
  in
  go 0

let parse_braces cur re =
  (* cursor is just past the '{'. *)
  let lo = parse_int cur in
  match peek cur with
  | Some '}' ->
      advance cur;
      Ast.repeat re lo (Some lo)
  | Some ',' -> (
      advance cur;
      match peek cur with
      | Some '}' ->
          advance cur;
          Ast.repeat re lo None
      | _ ->
          let hi = parse_int cur in
          if hi < lo then fail cur.pos "quantifier max < min";
          expect cur '}';
          Ast.repeat re lo (Some hi))
  | _ -> fail cur.pos "malformed {…} quantifier"

let rec parse_alt cur =
  let first = parse_seq cur in
  match peek cur with
  | Some '|' ->
      advance cur;
      Ast.alt first (parse_alt cur)
  | _ -> first

and parse_seq cur =
  let rec go acc =
    match peek cur with
    | None | Some ('|' | ')') -> acc
    | Some _ -> go (Ast.seq acc (parse_postfix cur))
  in
  go Ast.Epsilon

and parse_postfix cur =
  let atom = parse_atom cur in
  let rec quantifiers re =
    match peek cur with
    | Some '*' ->
        advance cur;
        quantifiers (Ast.star re)
    | Some '+' ->
        advance cur;
        quantifiers (Ast.plus re)
    | Some '?' ->
        advance cur;
        quantifiers (Ast.opt re)
    | Some '{' ->
        advance cur;
        quantifiers (parse_braces cur re)
    | _ -> re
  in
  quantifiers atom

and parse_atom cur =
  match peek cur with
  | None -> fail cur.pos "expected atom"
  | Some '(' -> (
      advance cur;
      (* allow the explicit non-capturing marker; groups never capture *)
      (match (peek cur, cur.pos + 1 < String.length cur.input) with
      | Some '?', true when cur.input.[cur.pos + 1] = ':' ->
          advance cur;
          advance cur
      | _ -> ());
      match peek cur with
      | Some ')' ->
          advance cur;
          Ast.Epsilon
      | _ ->
          let inner = parse_alt cur in
          expect cur ')';
          inner)
  | Some '[' ->
      advance cur;
      Ast.chars (parse_class cur)
  | Some '.' ->
      advance cur;
      Ast.any
  | Some '\\' -> (
      advance cur;
      match parse_escape cur with
      | `Char c -> Ast.Chars (Charset.singleton c)
      | `Class cs -> Ast.chars cs)
  | Some (('*' | '+' | '?' | '{' | '}' | ']') as c) ->
      fail cur.pos (Printf.sprintf "unexpected '%c'" c)
  | Some ('^' | '$') -> fail cur.pos "anchors are only allowed at the pattern ends"
  | Some c ->
      advance cur;
      Ast.Chars (Charset.singleton c)

let run parse_fn input =
  let cur = { input; pos = 0 } in
  match parse_fn cur with
  | result ->
      if cur.pos <> String.length input then
        Error { position = cur.pos; message = "trailing input" }
      else Ok result
  | exception Parse_failure e -> Error e

let parse input = run parse_alt input

(* Count trailing backslashes to decide whether a final '$' is an
   anchor or an escaped literal. *)
let ends_with_anchor s =
  let n = String.length s in
  if n = 0 || s.[n - 1] <> '$' then false
  else begin
    let backslashes = ref 0 in
    let i = ref (n - 2) in
    while !i >= 0 && s.[!i] = '\\' do
      incr backslashes;
      decr i
    done;
    !backslashes mod 2 = 0
  end

let parse_pattern input =
  let body =
    let n = String.length input in
    if n >= 2 && input.[0] = '/' && input.[n - 1] = '/' then String.sub input 1 (n - 2)
    else input
  in
  let anchored_start = String.length body > 0 && body.[0] = '^' in
  let body = if anchored_start then String.sub body 1 (String.length body - 1) else body in
  let anchored_end = ends_with_anchor body in
  let body = if anchored_end then String.sub body 0 (String.length body - 1) else body in
  Result.map
    (fun re -> { Ast.re; anchored_start; anchored_end })
    (parse body)

let parse_exn s =
  match parse s with
  | Ok re -> re
  | Error e -> invalid_arg (Fmt.str "Regex.Parser.parse_exn: %a" pp_error e)

let parse_pattern_exn s =
  match parse_pattern s with
  | Ok p -> p
  | Error e -> invalid_arg (Fmt.str "Regex.Parser.parse_pattern_exn: %a" pp_error e)
