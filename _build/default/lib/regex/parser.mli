(** Hand-written recursive-descent parser for the PCRE subset.

    Supported syntax: literals, [.], escapes ([\d \D \w \W \s \S \n
    \t \r \xHH] and escaped metacharacters), character classes with
    ranges and [^] negation, grouping [( )] / [(?: )], alternation
    [|], and the quantifiers [* + ? {n} {n,} {n,m}].

    Anchors [^]/[$] are only meaningful at the ends of the whole
    pattern (the paper's constraint language needs no more); a
    mid-pattern anchor is a parse error. *)

type error = { position : int; message : string }

val pp_error : error Fmt.t

(** Parse a bare regex (no delimiters, no anchors). *)
val parse : string -> (Ast.t, error) result

(** Parse a [preg_match]-style pattern: optional [/…/] delimiters,
    optional [^] prefix and [$] suffix anchors. *)
val parse_pattern : string -> (Ast.pattern, error) result

(** [parse_exn s] is [parse s], raising [Invalid_argument] on
    malformed input. Convenient for literals in examples/tests. *)
val parse_exn : string -> Ast.t

val parse_pattern_exn : string -> Ast.pattern
