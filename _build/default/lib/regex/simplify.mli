(** Algebraic regex simplification.

    State elimination ({!State_elim}) produces correct but noisy
    expressions; this module rewrites them into smaller equivalent
    ones. All rewrites are language-preserving (property-tested
    against the Thompson/derivative semantics).

    [simplify] is purely syntactic: flattening, deduplication,
    charset-merging in alternations, quantifier fusion on equal bases
    ([a a* → a+], [a{1,2}a{0,3} → a{1,5}]), and common prefix/suffix
    factoring ([ab|ac → a(b|c)]).

    [prune_alternatives] additionally uses the language oracle to
    drop alternation branches subsumed by another branch
    ([ab|a.* → a.*]); it determinizes, so reserve it for
    user-facing output. *)

val simplify : Ast.t -> Ast.t

val prune_alternatives : Ast.t -> Ast.t

(** [pretty m] = state-eliminate, simplify, prune: the nicest
    rendering of a machine's language we can produce. *)
val pretty : Automata.Nfa.t -> string
