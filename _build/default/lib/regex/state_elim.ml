module Nfa = Automata.Nfa

(* Generalized NFA: a dense matrix of regex edge labels over the
   machine's states plus a fresh source/sink pair. Eliminating state q
   rewrites every i→j label to account for paths through q:

     R[i][j] := R[i][j] | R[i][q] · R[q][q]* · R[q][j]

   We eliminate low-degree states first; on the machines the solver
   produces this keeps intermediate expressions markedly smaller than
   elimination in id order. *)

let to_regex m =
  (* Trimming first both shrinks the matrix and guarantees that a
     machine denoting ∅ collapses to the canonical empty machine. *)
  let m, _ = Nfa.trim m in
  if Nfa.is_empty_lang m then Ast.Empty
  else begin
    let n = Nfa.num_states m in
    let source = n and sink = n + 1 in
    let total = n + 2 in
    let edge = Array.make_matrix total total Ast.Empty in
    let add i j r = edge.(i).(j) <- Ast.alt edge.(i).(j) r in
    List.iter
      (fun q ->
        List.iter (fun (cs, q') -> add q q' (Ast.chars cs)) (Nfa.char_transitions m q);
        List.iter (fun q' -> add q q' Ast.Epsilon) (Nfa.eps_transitions_from m q))
      (Nfa.states m);
    add source (Nfa.start m) Ast.Epsilon;
    add (Nfa.final m) sink Ast.Epsilon;
    let alive = Array.make total true in
    let degree q =
      let ins = ref 0 and outs = ref 0 in
      for i = 0 to total - 1 do
        if alive.(i) && i <> q then begin
          if edge.(i).(q) <> Ast.Empty then incr ins;
          if edge.(q).(i) <> Ast.Empty then incr outs
        end
      done;
      !ins * !outs
    in
    for _ = 1 to n do
      (* pick the cheapest remaining internal state *)
      let best = ref (-1) in
      for q = 0 to n - 1 do
        if alive.(q) && (!best < 0 || degree q < degree !best) then best := q
      done;
      let q = !best in
      alive.(q) <- false;
      let loop = Ast.star edge.(q).(q) in
      for i = 0 to total - 1 do
        if alive.(i) && edge.(i).(q) <> Ast.Empty then
          for j = 0 to total - 1 do
            if alive.(j) && edge.(q).(j) <> Ast.Empty then
              add i j (Ast.seq edge.(i).(q) (Ast.seq loop edge.(q).(j)))
          done
      done
    done;
    edge.(source).(sink)
  end

let to_string m = Ast.to_string (to_regex m)
