(** NFA → regex conversion by GNFA state elimination.

    The solver's answers are NFAs (sub-machines of the intermediate
    product machines); this converts them back to regular-expression
    syntax so testcases and reports are human-readable. The output
    language is exactly the machine's language (property-tested), but
    the expression is not guaranteed minimal. *)

val to_regex : Automata.Nfa.t -> Ast.t

(** Render directly as concrete syntax. *)
val to_string : Automata.Nfa.t -> string
