lib/sql/analysis.ml: Ast Fmt List Option Parser
