lib/sql/analysis.mli: Ast Fmt
