lib/sql/ast.ml: Fmt List Option String
