lib/sql/ast.mli: Fmt
