lib/sql/lexer.mli: Fmt Token
