lib/sql/parser.mli: Ast Fmt
