lib/sql/token.ml: Fmt
