type truth = Tautology | Contradiction | Unknown

(* Kleene three-valued evaluation with column atoms as Unknown;
   literal-vs-literal comparisons evaluate exactly. *)
let rec truth_of : Ast.expr -> truth = function
  | Ast.Col _ | Ast.Null -> Unknown
  | Ast.Int_lit n -> if n <> 0 then Tautology else Contradiction
  | Ast.Str_lit _ -> Unknown
  | Ast.Cmp (a, op, b) -> (
      match (literal a, literal b) with
      | Some va, Some vb -> (
          let result =
            match op with
            | "=" -> Some (va = vb)
            | "<>" -> Some (va <> vb)
            | "<" -> Some (va < vb)
            | ">" -> Some (va > vb)
            | "<=" -> Some (va <= vb)
            | ">=" -> Some (va >= vb)
            | _ -> None
          in
          match result with
          | Some true -> Tautology
          | Some false -> Contradiction
          | None -> Unknown)
      | _ -> Unknown)
  | Ast.In_list (e, items) -> (
      match literal e with
      | None -> Unknown
      | Some v ->
          let hits = List.map (fun item -> Option.map (( = ) v) (literal item)) items in
          if List.exists (( = ) (Some true)) hits then Tautology
          else if List.for_all (( = ) (Some false)) hits then Contradiction
          else Unknown)
  | Ast.And (a, b) -> (
      match (truth_of a, truth_of b) with
      | Contradiction, _ | _, Contradiction -> Contradiction
      | Tautology, Tautology -> Tautology
      | _ -> Unknown)
  | Ast.Or (a, b) -> (
      match (truth_of a, truth_of b) with
      | Tautology, _ | _, Tautology -> Tautology
      | Contradiction, Contradiction -> Contradiction
      | _ -> Unknown)
  | Ast.Not e -> (
      match truth_of e with
      | Tautology -> Contradiction
      | Contradiction -> Tautology
      | Unknown -> Unknown)

and literal : Ast.expr -> string option = function
  | Ast.Int_lit n -> Some (string_of_int n)
  | Ast.Str_lit s -> Some s
  | _ -> None

let has_tautological_where stmt =
  List.exists (fun w -> truth_of w = Tautology) (Ast.where_clauses stmt)

type reason =
  | Malformed
  | Extra_statements of int
  | Kind_changed of string * string
  | Tautology_introduced
  | Union_added
  | Table_changed of string * string

let pp_reason ppf = function
  | Malformed -> Fmt.string ppf "query no longer parses"
  | Extra_statements n ->
      if n >= 0 then Fmt.pf ppf "%d stacked statement(s) appended" n
      else Fmt.pf ppf "%d statement(s) truncated away" (-n)
  | Kind_changed (a, b) -> Fmt.pf ppf "statement kind changed: %s → %s" a b
  | Tautology_introduced -> Fmt.string ppf "WHERE clause became a tautology"
  | Union_added -> Fmt.string ppf "UNION branch injected"
  | Table_changed (a, b) -> Fmt.pf ppf "target table changed: %s → %s" a b

let tables = function
  | Ast.Select selects -> List.map (fun s -> s.Ast.table) selects
  | Ast.Insert { table; _ } | Ast.Update { table; _ } | Ast.Delete { table; _ }
  | Ast.Drop table ->
      [ table ]

let union_width = function Ast.Select selects -> List.length selects | _ -> 1

let compare_stmt intended actual =
  if Ast.kind intended <> Ast.kind actual then
    Some (Kind_changed (Ast.kind intended, Ast.kind actual))
  else if union_width actual > union_width intended then Some Union_added
  else if
    has_tautological_where actual && not (has_tautological_where intended)
  then Some Tautology_introduced
  else
    match (tables intended, tables actual) with
    | t1 :: _, t2 :: _ when t1 <> t2 -> Some (Table_changed (t1, t2))
    | _ -> None

let compare_queries ~intended ~actual =
  match Parser.parse actual with
  | Error _ -> Some Malformed
  | Ok actual_stmts -> (
      match Parser.parse intended with
      | Error _ -> None (* nothing to compare against; actual parses *)
      | Ok intended_stmts ->
          if List.length actual_stmts <> List.length intended_stmts then
            Some
              (Extra_statements
                 (List.length actual_stmts - List.length intended_stmts))
          else
            List.find_map
              (fun (i, a) -> compare_stmt i a)
              (List.combine intended_stmts actual_stmts))

let is_injection ~intended ~actual =
  Option.is_some (compare_queries ~intended ~actual)
