(** Structural injection analysis — the Su–Wassermann criterion the
    paper's constraint generator approximates: an input is an
    injection when it changes the {e syntactic structure} of the
    query the program intended to issue. *)

(** Three-valued truth of a WHERE expression, abstracting column
    atoms to Unknown: [Tautology] means the clause is true for every
    row (the classic [' OR 1=1] payload). *)
type truth = Tautology | Contradiction | Unknown

val truth_of : Ast.expr -> truth

(** A WHERE clause of the statement is a tautology. *)
val has_tautological_where : Ast.stmt -> bool

(** Reasons a query is judged structurally subverted relative to the
    intended one. *)
type reason =
  | Malformed  (** the actual query no longer parses *)
  | Extra_statements of int  (** stacked queries: [; DROP …] *)
  | Kind_changed of string * string  (** intended kind, actual kind *)
  | Tautology_introduced
  | Union_added
  | Table_changed of string * string

val pp_reason : reason Fmt.t

(** [compare_queries ~intended ~actual] — [None] when the actual
    query has the same structure as the intended one (modulo literal
    values, which honest inputs are allowed to change); [Some reason]
    otherwise. If the {e intended} query itself fails to parse the
    comparison degrades to well-formedness of [actual]. *)
val compare_queries : intended:string -> actual:string -> reason option

(** Convenience wrapper: is [actual] an injection w.r.t. [intended]? *)
val is_injection : intended:string -> actual:string -> bool
