type expr =
  | Col of string
  | Int_lit of int
  | Str_lit of string
  | Null
  | Cmp of expr * string * expr
  | In_list of expr * expr list
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type select_columns = Star | Columns of string list

type select = {
  columns : select_columns;
  table : string;
  where : expr option;
  order_by : (string * bool) list;
  limit : int option;
}

type stmt =
  | Select of select list
  | Insert of { table : string; columns : string list; values : expr list }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Drop of string

let kind = function
  | Select _ -> "SELECT"
  | Insert _ -> "INSERT"
  | Update _ -> "UPDATE"
  | Delete _ -> "DELETE"
  | Drop _ -> "DROP"

let where_clauses = function
  | Select selects -> List.filter_map (fun s -> s.where) selects
  | Update { where; _ } | Delete { where; _ } -> Option.to_list where
  | Insert _ | Drop _ -> []

let rec pp_expr ppf = function
  | Col c -> Fmt.string ppf c
  | Int_lit n -> Fmt.int ppf n
  | Str_lit s -> Fmt.pf ppf "'%s'" s
  | Null -> Fmt.string ppf "NULL"
  | Cmp (a, op, b) -> Fmt.pf ppf "%a %s %a" pp_atom a op pp_atom b
  | In_list (e, items) ->
      Fmt.pf ppf "%a IN (%a)" pp_atom e Fmt.(list ~sep:comma pp_expr) items
  | And (a, b) -> Fmt.pf ppf "%a AND %a" pp_atom a pp_atom b
  | Or (a, b) -> Fmt.pf ppf "%a OR %a" pp_atom a pp_atom b
  | Not e -> Fmt.pf ppf "NOT %a" pp_atom e

and pp_atom ppf = function
  | (And _ | Or _ | Not _) as e -> Fmt.pf ppf "(%a)" pp_expr e
  | e -> pp_expr ppf e

let pp_select ppf { columns; table; where; order_by; limit } =
  Fmt.pf ppf "SELECT %s FROM %s"
    (match columns with Star -> "*" | Columns cs -> String.concat ", " cs)
    table;
  Option.iter (fun w -> Fmt.pf ppf " WHERE %a" pp_expr w) where;
  (match order_by with
  | [] -> ()
  | items ->
      Fmt.pf ppf " ORDER BY %s"
        (String.concat ", "
           (List.map (fun (c, desc) -> c ^ if desc then " DESC" else "") items)));
  Option.iter (fun l -> Fmt.pf ppf " LIMIT %d" l) limit

let pp_stmt ppf = function
  | Select selects -> Fmt.(list ~sep:(any " UNION ") pp_select) ppf selects
  | Insert { table; columns; values } ->
      Fmt.pf ppf "INSERT INTO %s (%s) VALUES (%a)" table
        (String.concat ", " columns)
        Fmt.(list ~sep:comma pp_expr)
        values
  | Update { table; assignments; where } ->
      Fmt.pf ppf "UPDATE %s SET %a" table
        Fmt.(
          list ~sep:comma (fun ppf (c, e) -> Fmt.pf ppf "%s = %a" c pp_expr e))
        assignments;
      Option.iter (fun w -> Fmt.pf ppf " WHERE %a" pp_expr w) where
  | Delete { table; where } ->
      Fmt.pf ppf "DELETE FROM %s" table;
      Option.iter (fun w -> Fmt.pf ppf " WHERE %a" pp_expr w) where
  | Drop table -> Fmt.pf ppf "DROP TABLE %s" table
