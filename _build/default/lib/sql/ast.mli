(** Abstract syntax for the SQL subset used by the corpus queries. *)

type expr =
  | Col of string
  | Int_lit of int
  | Str_lit of string
  | Null
  | Cmp of expr * string * expr  (** [=], [<>], [<], [>], [<=], [>=], [LIKE] *)
  | In_list of expr * expr list
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type select_columns = Star | Columns of string list

type select = {
  columns : select_columns;
  table : string;
  where : expr option;
  order_by : (string * bool (* descending *)) list;
  limit : int option;
}

type stmt =
  | Select of select list  (** nonempty; length > 1 means UNION-chained *)
  | Insert of { table : string; columns : string list; values : expr list }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Drop of string

(** One-word description of the statement's kind: SELECT, INSERT, … *)
val kind : stmt -> string

(** [where_clause stmt] — the WHERE expressions of the statement (one
    per UNION branch for selects). *)
val where_clauses : stmt -> expr list

val pp_expr : expr Fmt.t
val pp_stmt : stmt Fmt.t
