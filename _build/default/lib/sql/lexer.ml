type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "SQL lexical error at %d: %s" position message

exception Failed of error

let fail position message = raise (Failed { position; message })

let is_ident_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let peek2 () = if !pos + 1 < n then Some input.[!pos + 1] else None in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec run () =
    match peek () with
    | None -> ()
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        run ()
    | Some '-' when peek2 () = Some '-' ->
        (* line comment: discard to end of line (or input) *)
        while !pos < n && input.[!pos] <> '\n' do
          incr pos
        done;
        run ()
    | Some '/' when peek2 () = Some '*' ->
        let start = !pos in
        pos := !pos + 2;
        let rec close () =
          if !pos + 1 >= n then fail start "unterminated block comment"
          else if input.[!pos] = '*' && input.[!pos + 1] = '/' then pos := !pos + 2
          else begin
            incr pos;
            close ()
          end
        in
        close ();
        run ()
    | Some '\'' ->
        let start = !pos in
        incr pos;
        let buf = Buffer.create 16 in
        let rec str () =
          if !pos >= n then fail start "unterminated string literal"
          else if input.[!pos] = '\'' then
            if !pos + 1 < n && input.[!pos + 1] = '\'' then begin
              (* '' escapes a quote inside the literal *)
              Buffer.add_char buf '\'';
              pos := !pos + 2;
              str ()
            end
            else incr pos
          else begin
            Buffer.add_char buf input.[!pos];
            incr pos;
            str ()
          end
        in
        str ();
        emit (Token.Str (Buffer.contents buf));
        run ()
    | Some ('0' .. '9') ->
        let start = !pos in
        while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do
          incr pos
        done;
        emit (Token.Int (int_of_string (String.sub input start (!pos - start))));
        run ()
    | Some c when is_ident_start c ->
        let start = !pos in
        while !pos < n && is_ident_char input.[!pos] do
          incr pos
        done;
        let word = String.sub input start (!pos - start) in
        let upper = String.uppercase_ascii word in
        if List.mem upper Token.keywords then emit (Token.Kw upper)
        else emit (Token.Ident word);
        run ()
    | Some '(' ->
        incr pos;
        emit Token.Lparen;
        run ()
    | Some ')' ->
        incr pos;
        emit Token.Rparen;
        run ()
    | Some ',' ->
        incr pos;
        emit Token.Comma;
        run ()
    | Some ';' ->
        incr pos;
        emit Token.Semi;
        run ()
    | Some ('<' | '>') ->
        let c = input.[!pos] in
        incr pos;
        (match (c, peek ()) with
        | '<', Some '=' ->
            incr pos;
            emit (Token.Op "<=")
        | '>', Some '=' ->
            incr pos;
            emit (Token.Op ">=")
        | '<', Some '>' ->
            incr pos;
            emit (Token.Op "<>")
        | _ -> emit (Token.Op (String.make 1 c)));
        run ()
    | Some (('=' | '+' | '-' | '*' | '/') as c) ->
        incr pos;
        emit (Token.Op (String.make 1 c));
        run ()
    | Some c -> fail !pos (Printf.sprintf "unexpected character %C" c)
  in
  match run () with
  | () -> Ok (List.rev !tokens)
  | exception Failed e -> Error e

let tokenize_exn input =
  match tokenize input with
  | Ok tokens -> tokens
  | Error e -> invalid_arg (Fmt.str "Sql.Lexer.tokenize_exn: %a" pp_error e)
