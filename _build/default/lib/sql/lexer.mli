(** SQL tokenizer.

    Handles the lexical features the injection examples rely on:
    ['…'] string literals with [''] escaping, [--] line comments and
    [/* … */] block comments (both {e discarded}, which is exactly how
    comment-truncation attacks work), and case-insensitive
    keywords. *)

type error = { position : int; message : string }

val pp_error : error Fmt.t

val tokenize : string -> (Token.t list, error) result

(** Raises [Invalid_argument]. *)
val tokenize_exn : string -> Token.t list
