type error = { position : int; message : string }

let pp_error ppf { position; message } =
  Fmt.pf ppf "SQL parse error at token %d: %s" position message

exception Failed of error

type state = { tokens : Token.t array; mutable pos : int }

let fail st message = raise (Failed { position = st.pos; message })

let peek st = if st.pos < Array.length st.tokens then Some st.tokens.(st.pos) else None

let advance st = st.pos <- st.pos + 1

let expect st token what =
  match peek st with
  | Some t when Token.equal t token -> advance st
  | _ -> fail st ("expected " ^ what)

let kw st k =
  match peek st with
  | Some (Token.Kw k') when k' = k -> advance st
  | _ -> fail st ("expected " ^ k)

let has_kw st k =
  match peek st with
  | Some (Token.Kw k') when k' = k ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Some (Token.Ident i) ->
      advance st;
      i
  | _ -> fail st "expected identifier"

let rec parse_expr st = parse_or st

and parse_or st =
  let first = parse_and st in
  if has_kw st "OR" then Ast.Or (first, parse_or st) else first

and parse_and st =
  let first = parse_not st in
  if has_kw st "AND" then Ast.And (first, parse_and st) else first

and parse_not st =
  if has_kw st "NOT" then Ast.Not (parse_not st) else parse_cmp st

and parse_cmp st =
  let left = parse_atom st in
  match peek st with
  | Some (Token.Op (("=" | "<>" | "<" | ">" | "<=" | ">=") as op)) ->
      advance st;
      Ast.Cmp (left, op, parse_atom st)
  | Some (Token.Kw "LIKE") ->
      advance st;
      Ast.Cmp (left, "LIKE", parse_atom st)
  | Some (Token.Kw "IN") ->
      advance st;
      expect st Token.Lparen "'('";
      let rec items acc =
        let item = parse_expr st in
        match peek st with
        | Some Token.Comma ->
            advance st;
            items (item :: acc)
        | _ -> List.rev (item :: acc)
      in
      let list = items [] in
      expect st Token.Rparen "')'";
      Ast.In_list (left, list)
  | _ -> left

and parse_atom st =
  match peek st with
  | Some (Token.Int n) ->
      advance st;
      Ast.Int_lit n
  | Some (Token.Str s) ->
      advance st;
      Ast.Str_lit s
  | Some (Token.Kw "NULL") ->
      advance st;
      Ast.Null
  | Some (Token.Ident i) ->
      advance st;
      Ast.Col i
  | Some Token.Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Token.Rparen "')'";
      e
  | _ -> fail st "expected expression"

let parse_where st = if has_kw st "WHERE" then Some (parse_expr st) else None

let parse_select_body st =
  (* after the SELECT keyword *)
  let columns =
    match peek st with
    | Some (Token.Op "*") ->
        advance st;
        Ast.Star
    | _ ->
        let rec cols acc =
          let c = ident st in
          match peek st with
          | Some Token.Comma ->
              advance st;
              cols (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        Ast.Columns (cols [])
  in
  kw st "FROM";
  let table = ident st in
  let where = parse_where st in
  let order_by =
    if has_kw st "ORDER" then begin
      kw st "BY";
      let rec items acc =
        let c = ident st in
        let desc = if has_kw st "DESC" then true else (ignore (has_kw st "ASC"); false) in
        match peek st with
        | Some Token.Comma ->
            advance st;
            items ((c, desc) :: acc)
        | _ -> List.rev ((c, desc) :: acc)
      in
      items []
    end
    else []
  in
  let limit =
    if has_kw st "LIMIT" then
      match peek st with
      | Some (Token.Int n) ->
          advance st;
          Some n
      | _ -> fail st "expected LIMIT bound"
    else None
  in
  { Ast.columns; table; where; order_by; limit }

let parse_stmt st =
  match peek st with
  | Some (Token.Kw "SELECT") ->
      advance st;
      let first = parse_select_body st in
      let rec unions acc =
        if has_kw st "UNION" then begin
          ignore (has_kw st "ALL");
          kw st "SELECT";
          unions (parse_select_body st :: acc)
        end
        else List.rev acc
      in
      Ast.Select (unions [ first ])
  | Some (Token.Kw "INSERT") ->
      advance st;
      kw st "INTO";
      let table = ident st in
      expect st Token.Lparen "'('";
      let rec cols acc =
        let c = ident st in
        match peek st with
        | Some Token.Comma ->
            advance st;
            cols (c :: acc)
        | _ -> List.rev (c :: acc)
      in
      let columns = cols [] in
      expect st Token.Rparen "')'";
      kw st "VALUES";
      expect st Token.Lparen "'('";
      let rec vals acc =
        let v = parse_expr st in
        match peek st with
        | Some Token.Comma ->
            advance st;
            vals (v :: acc)
        | _ -> List.rev (v :: acc)
      in
      let values = vals [] in
      expect st Token.Rparen "')'";
      Ast.Insert { table; columns; values }
  | Some (Token.Kw "UPDATE") ->
      advance st;
      let table = ident st in
      kw st "SET";
      let rec assignments acc =
        let c = ident st in
        expect st (Token.Op "=") "'='";
        let e = parse_expr st in
        match peek st with
        | Some Token.Comma ->
            advance st;
            assignments ((c, e) :: acc)
        | _ -> List.rev ((c, e) :: acc)
      in
      let assignments = assignments [] in
      let where = parse_where st in
      Ast.Update { table; assignments; where }
  | Some (Token.Kw "DELETE") ->
      advance st;
      kw st "FROM";
      let table = ident st in
      let where = parse_where st in
      Ast.Delete { table; where }
  | Some (Token.Kw "DROP") ->
      advance st;
      kw st "TABLE";
      Ast.Drop (ident st)
  | _ -> fail st "expected a statement"

let parse_script st =
  let rec stmts acc =
    match peek st with
    | None -> List.rev acc
    | Some Token.Semi ->
        advance st;
        stmts acc
    | Some _ -> stmts (parse_stmt st :: acc)
  in
  stmts []

let parse input =
  match Lexer.tokenize input with
  | Error { position; message } -> Error { position; message }
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      match parse_script st with
      | stmts ->
          if st.pos <> Array.length st.tokens then
            Error { position = st.pos; message = "trailing tokens" }
          else Ok stmts
      | exception Failed e -> Error e)

let parse_exn input =
  match parse input with
  | Ok stmts -> stmts
  | Error e -> invalid_arg (Fmt.str "Sql.Parser.parse_exn: %a" pp_error e)

let well_formed input = Result.is_ok (parse input)
