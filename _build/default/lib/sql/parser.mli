(** Recursive-descent parser over {!Lexer} tokens.

    Grammar (a practical subset):

    {v
      script  := stmt (';' stmt?)*
      stmt    := select ('UNION' ('ALL')? select )*
               | INSERT INTO ident '(' idents ')' VALUES '(' exprs ')'
               | UPDATE ident SET ident '=' expr (',' …)* (WHERE expr)?
               | DELETE FROM ident (WHERE expr)?
               | DROP TABLE ident
      select  := SELECT ('*' | idents) FROM ident (WHERE expr)?
                 (ORDER BY ident (ASC|DESC)? (',' …)* )? (LIMIT int)?
      expr    := or; or := and ('OR' and)*; and := not ('AND' not)*
      not     := 'NOT' not | cmp
      cmp     := atom (( '=' | '<>' | < | > | <= | >= | LIKE ) atom
               | IN '(' exprs ')')?
      atom    := int | string | NULL | ident | '(' expr ')'
    v} *)

type error = { position : int  (** token index *); message : string }

val pp_error : error Fmt.t

val parse : string -> (Ast.stmt list, error) result

val parse_exn : string -> Ast.stmt list

(** Does the string parse as a well-formed script? *)
val well_formed : string -> bool
