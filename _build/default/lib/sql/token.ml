type t =
  | Kw of string
  | Ident of string
  | Int of int
  | Str of string
  | Op of string
  | Lparen
  | Rparen
  | Comma
  | Semi

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "INSERT"; "INTO"; "VALUES";
    "UPDATE"; "SET"; "DELETE"; "DROP"; "TABLE"; "ORDER"; "BY"; "ASC"; "DESC";
    "LIMIT"; "IN"; "NULL"; "LIKE"; "UNION"; "ALL";
  ]

let equal = ( = )

let pp ppf = function
  | Kw k -> Fmt.string ppf k
  | Ident i -> Fmt.string ppf i
  | Int n -> Fmt.int ppf n
  | Str s -> Fmt.pf ppf "'%s'" s
  | Op o -> Fmt.string ppf o
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Comma -> Fmt.string ppf ","
  | Semi -> Fmt.string ppf ";"
