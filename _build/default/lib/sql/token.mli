(** SQL tokens.

    The attack languages of {!Webapp.Attack} are regular
    approximations; this library provides the ground truth they
    approximate: a real tokenizer and parser for the SQL subset the
    corpus queries use, so exploits can be confirmed {e structurally}
    (the Su–Wassermann criterion the paper builds on: an injection is
    an input that changes the query's syntactic structure). *)

type t =
  | Kw of string  (** keyword, uppercased: SELECT, FROM, … *)
  | Ident of string  (** table/column identifier *)
  | Int of int
  | Str of string  (** contents of a '…' literal, unescaped *)
  | Op of string  (** = <> < > <= >= + - * / *)
  | Lparen
  | Rparen
  | Comma
  | Semi

val keywords : string list

val equal : t -> t -> bool

val pp : t Fmt.t
