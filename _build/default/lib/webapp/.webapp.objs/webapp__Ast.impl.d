lib/webapp/ast.ml: Buffer Fmt List Regex Set String
