lib/webapp/ast.mli: Fmt Regex
