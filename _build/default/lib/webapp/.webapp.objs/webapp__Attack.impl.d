lib/webapp/attack.ml: Automata List Printf Regex
