lib/webapp/attack.mli: Automata
