lib/webapp/eval.ml: Ast Automata List Map Option Printf Regex String
