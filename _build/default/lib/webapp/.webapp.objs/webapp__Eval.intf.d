lib/webapp/eval.mli: Ast Automata
