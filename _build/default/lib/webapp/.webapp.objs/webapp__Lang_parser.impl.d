lib/webapp/lang_parser.ml: Ast Buffer Fmt Printf Regex String
