lib/webapp/lang_parser.mli: Ast Fmt
