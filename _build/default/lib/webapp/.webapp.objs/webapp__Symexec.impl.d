lib/webapp/symexec.ml: Ast Automata Char Charset Dprle Fmt Hashtbl List Option Printf Regex String
