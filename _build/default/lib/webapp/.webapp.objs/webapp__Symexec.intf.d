lib/webapp/symexec.mli: Ast Automata Dprle
