let pattern s = Regex.Compile.pattern_to_nfa (Regex.Parser.parse_pattern_exn s)

let contains_quote = pattern "/'/"

let tautology = pattern "/' *[oO][rR] *1=1/"

let stacked_drop = pattern "/; *([dD][rR][oO][pP]|[dD][eE][lL][eE][tT][eE]) /"

let comment_tail = pattern "/--.*$/"

(* Strings with an odd number of unescaped quotes: in a quote-delimited
   SQL context, such a value breaks out of its string literal. With
   U = ([^'\]|\.)* (no bare quotes), odd parity is (U'U')*U'U. *)
let unbalanced_quote =
  let u = "(?:[^'\\\\]|\\\\.)*" in
  pattern (Printf.sprintf "/^(?:%s'%s')*%s'%s$/" u u u u)

let any_attack =
  List.fold_left Automata.Ops.union_lang contains_quote
    [ tautology; stacked_drop; comment_tail; unbalanced_quote ]

let registry =
  [
    ("quote", contains_quote);
    ("unbalanced", unbalanced_quote);
    ("tautology", tautology);
    ("drop", stacked_drop);
    ("comment", comment_tail);
    ("any", any_attack);
  ]

let lookup name = List.assoc_opt name registry

let names = List.map fst registry
