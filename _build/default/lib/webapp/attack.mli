(** Attack languages: regular approximations of "this SQL query is
    subverted", used as the right-hand side of the sink constraint.

    The paper (§3.2) uses "contains at least one quote" — the common
    approximation it cites from Wassermann–Su — as [c3]; the other
    languages here refine it for the example programs and the
    ablation benches. *)

(** Strings containing an unescaped single quote — the paper's
    default approximation ([Σ*'Σ*]). *)
val contains_quote : Automata.Nfa.t

(** A quote followed by an OR-tautology, e.g. [' OR 1=1]. *)
val tautology : Automata.Nfa.t

(** A statement separator followed by a destructive keyword
    ([; DROP …]). *)
val stacked_drop : Automata.Nfa.t

(** SQL comment-tail truncation ([-- …] at the end). *)
val comment_tail : Automata.Nfa.t

(** Strings with an odd number of {e unescaped} single quotes: the
    value breaks out of a quote-delimited SQL literal. The right
    attack language for sinks that interpolate {e inside} quotes,
    where {!contains_quote} would fire on the template's own
    delimiters. *)
val unbalanced_quote : Automata.Nfa.t

(** Union of all of the above. *)
val any_attack : Automata.Nfa.t

(** Named registry for the CLI/corpus: [lookup "quote"] etc. *)
val lookup : string -> Automata.Nfa.t option

val names : string list
