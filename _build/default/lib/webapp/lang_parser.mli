(** Parser for the concrete mini-PHP syntax produced by
    {!Ast.to_source} and used by the corpus files:

    {v
      $id = input("posted_newsid");
      if (!preg_match(/[\d]+$/, $id)) { exit; }
      $id = "nid_" . $id;
      query("SELECT * FROM news WHERE newsid=" . $id);
    v} *)

type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t

val parse : string -> (Ast.program, error) result

val parse_exn : string -> Ast.program
