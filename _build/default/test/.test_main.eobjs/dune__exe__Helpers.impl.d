test/helpers.ml: Alcotest Automata Char Charset List QCheck2 QCheck_alcotest
