test/test_bounded.ml: Alcotest Dprle Helpers List QCheck2 String
