test/test_charset.ml: Alcotest Char Charset Helpers List QCheck2 String
