test/test_corpus.ml: Alcotest Corpus Helpers List String Webapp
