test/test_dprle.ml: Alcotest Automata Dprle Helpers List Printf QCheck2 Regex String
