test/test_extensions.ml: Alcotest Automata Char Charset Dprle Fun Helpers List Option QCheck2 Regex Sql String Webapp
