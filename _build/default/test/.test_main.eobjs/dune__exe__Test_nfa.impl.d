test/test_nfa.ml: Alcotest Automata Charset Helpers List Option QCheck2 String
