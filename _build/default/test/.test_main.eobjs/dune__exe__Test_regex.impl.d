test/test_regex.ml: Alcotest Automata Charset Helpers List Printf QCheck2 Regex
