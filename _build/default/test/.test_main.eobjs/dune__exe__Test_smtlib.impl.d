test/test_smtlib.ml: Dprle Helpers List Regex String Test_regex
