test/test_sql.ml: Alcotest Fmt Helpers List Sql Webapp
