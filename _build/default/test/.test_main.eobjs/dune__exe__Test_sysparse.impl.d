test/test_sysparse.ml: Alcotest Automata Dprle Helpers List
