test/test_webapp.ml: Alcotest Automata Dprle Helpers List QCheck2 Regex String Webapp
