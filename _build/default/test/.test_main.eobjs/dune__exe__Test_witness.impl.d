test/test_witness.ml: Alcotest Automata Charset Dprle Helpers List Seq String
