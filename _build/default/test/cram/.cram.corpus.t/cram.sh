  $ corpusgen --app eve .
  $ ls eve | head -3
  $ webcheck eve 2>/dev/null | tail -2 | sed 's/([0-9.]* s)/(_ s)/'
  $ webcheck eve 2>/dev/null | grep -c VULNERABLE
