  $ cat > fig1.dprle <<'SYS'
  > # SQL-injection example
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS
  $ dprle solve fig1.dprle --witnesses
  $ cat > fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS
  $ dprle solve fixed.dprle
  $ dprle check fig1.dprle
  $ echo 'v1 <= nope;' > bad.dprle
  $ dprle solve bad.dprle
  $ cat > union.dprle <<'SYS'
  > let c = /^a{1,2}$/;
  > (x | y) <= c;
  > SYS
  $ dprle solve union.dprle --stats --witnesses
  $ dprle solve fig1.dprle --witnesses --smtlib fig1.smt2 > /dev/null
  $ cat fig1.smt2
