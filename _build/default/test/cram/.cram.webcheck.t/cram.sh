  $ cat > utopia.mphp <<'PHP'
  > $newsid = input("posted_newsid");
  > if (!preg_match(/[\d]+$/, $newsid)) {
  >   echo "Invalid article news ID.";
  >   exit;
  > }
  > $newsid = "nid_" . $newsid;
  > query("SELECT * FROM news WHERE newsid=" . $newsid);
  > PHP
  $ webcheck utopia.mphp
  $ cat > fixed.mphp <<'PHP'
  > $newsid = input("posted_newsid");
  > if (!preg_match(/^[\d]+$/, $newsid)) { exit; }
  > $newsid = "nid_" . $newsid;
  > query("SELECT * FROM news WHERE newsid=" . $newsid);
  > PHP
  $ webcheck fixed.mphp
  $ cat > lower.mphp <<'PHP'
  > $x = input("x");
  > if (!preg_match(/^[a-z']{1,6}$/, strtolower($x))) { exit; }
  > query("SELECT * FROM t WHERE c=" . $x);
  > PHP
  $ webcheck lower.mphp
  $ webcheck utopia.mphp --structural
  $ cat > taut.mphp <<'PHP'
  > $id = input("id");
  > query("SELECT * FROM news WHERE newsid = '" . $id . "'");
  > PHP
  $ webcheck taut.mphp --attack tautology --structural
