Regenerate the eve application from Fig. 11 and scan it end to end —
the paper's section 4 workflow on the synthetic corpus:

  $ corpusgen --app eve .
  eve      1.0        8 files    929 loc -> ./eve

  $ ls eve | head -3
  edit.mphp
  page_00.mphp
  page_01.mphp

  $ webcheck eve 2>/dev/null | tail -2 | sed 's/([0-9.]* s)/(_ s)/'
  === eve: 8 files scanned, 1 vulnerable (_ s) ===
    vulnerable: edit.mphp

The vulnerable file matches the paper's count for eve (1 of 8):

  $ webcheck eve 2>/dev/null | grep -c VULNERABLE
  1
