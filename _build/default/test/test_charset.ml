open Helpers

let unit_tests =
  [
    test "empty has no members" (fun () ->
        check_bool "mem" false (Charset.mem 'a' Charset.empty);
        check_int "cardinal" 0 (Charset.cardinal Charset.empty);
        check_bool "is_empty" true (Charset.is_empty Charset.empty));
    test "full has all members" (fun () ->
        check_int "cardinal" 256 (Charset.cardinal Charset.full);
        check_bool "mem nul" true (Charset.mem '\000' Charset.full);
        check_bool "mem 255" true (Charset.mem '\255' Charset.full));
    test "singleton" (fun () ->
        let s = Charset.singleton 'x' in
        check_bool "mem x" true (Charset.mem 'x' s);
        check_bool "mem y" false (Charset.mem 'y' s);
        check_int "cardinal" 1 (Charset.cardinal s));
    test "range and classes" (fun () ->
        check_int "digit" 10 (Charset.cardinal Charset.digit);
        check_int "word" 63 (Charset.cardinal Charset.word);
        check_bool "word _" true (Charset.mem '_' Charset.word);
        check_bool "space tab" true (Charset.mem '\t' Charset.space);
        check_bool "digit letter" false (Charset.mem 'a' Charset.digit));
    test "of_string dedupes" (fun () ->
        let s = Charset.of_string "abba" in
        check_int "cardinal" 2 (Charset.cardinal s));
    test "union merges adjacent ranges" (fun () ->
        let u = Charset.union (Charset.range 'a' 'm') (Charset.range 'n' 'z') in
        check_bool "equals a-z" true (Charset.equal u Charset.lower);
        check_int "single interval" 1 (List.length (Charset.ranges u)));
    test "complement of empty is full" (fun () ->
        check_bool "eq" true (Charset.equal (Charset.complement Charset.empty) Charset.full));
    test "choose prefers printable" (fun () ->
        let s = Charset.union (Charset.singleton '\001') (Charset.singleton 'q') in
        check_string "choose" "q" (String.make 1 (Charset.choose s)));
    test "min_elt" (fun () ->
        check_string "min" "0" (String.make 1 (Charset.min_elt Charset.digit));
        Alcotest.check_raises "empty" Not_found (fun () ->
            ignore (Charset.min_elt Charset.empty)));
    test "range rejects inverted bounds" (fun () ->
        Alcotest.check_raises "inverted"
          (Invalid_argument "Charset.range: lo > hi") (fun () ->
            ignore (Charset.range 'z' 'a')));
    test "to_list round trip" (fun () ->
        let s = Charset.of_string "dcba" in
        Alcotest.(check (list char)) "sorted" [ 'a'; 'b'; 'c'; 'd' ] (Charset.to_list s));
    test "pp formats classes" (fun () ->
        check_string "digit" "[0-9]" (Charset.to_string Charset.digit);
        check_string "full" "Σ" (Charset.to_string Charset.full);
        check_string "empty" "∅" (Charset.to_string Charset.empty);
        check_string "singleton" "a" (Charset.to_string (Charset.singleton 'a')));
    test "refine on overlapping sets" (fun () ->
        let blocks = Charset.refine [ Charset.range 'a' 'm'; Charset.range 'g' 'z' ] in
        check_int "three blocks" 3 (List.length blocks);
        let union = List.fold_left Charset.union Charset.empty blocks in
        check_bool "covers" true (Charset.equal union Charset.lower));
  ]

let prop_tests =
  let pair_char =
    QCheck2.Gen.(
      let* a = charset_gen in
      let* b = charset_gen in
      let* byte = int_bound 255 in
      return (a, b, Char.chr byte))
  in
  [
    qtest "mem union = or" pair_char (fun (a, b, c) ->
        Charset.mem c (Charset.union a b) = (Charset.mem c a || Charset.mem c b));
    qtest "mem inter = and" pair_char (fun (a, b, c) ->
        Charset.mem c (Charset.inter a b) = (Charset.mem c a && Charset.mem c b));
    qtest "mem diff = and-not" pair_char (fun (a, b, c) ->
        Charset.mem c (Charset.diff a b) = (Charset.mem c a && not (Charset.mem c b)));
    qtest "mem complement = not" pair_char (fun (a, _, c) ->
        Charset.mem c (Charset.complement a) = not (Charset.mem c a));
    qtest "complement involutive" pair_char (fun (a, _, _) ->
        Charset.equal (Charset.complement (Charset.complement a)) a);
    qtest "union commutative" pair_char (fun (a, b, _) ->
        Charset.equal (Charset.union a b) (Charset.union b a));
    qtest "inter subset of operands" pair_char (fun (a, b, _) ->
        let i = Charset.inter a b in
        Charset.subset i a && Charset.subset i b);
    qtest "intersects agrees with inter" pair_char (fun (a, b, _) ->
        Charset.intersects a b = not (Charset.is_empty (Charset.inter a b)));
    qtest "cardinal of union" pair_char (fun (a, b, _) ->
        Charset.cardinal (Charset.union a b)
        = Charset.cardinal a + Charset.cardinal b - Charset.cardinal (Charset.inter a b));
    qtest "refine blocks are disjoint and cover"
      QCheck2.Gen.(list_size (int_range 0 5) charset_gen)
      (fun sets ->
        let blocks = Charset.refine sets in
        let universe = List.fold_left Charset.union Charset.empty sets in
        let cover = List.fold_left Charset.union Charset.empty blocks in
        let disjoint =
          let rec check = function
            | [] -> true
            | b :: rest ->
                (not (List.exists (Charset.intersects b) rest)) && check rest
          in
          check blocks
        in
        let refines =
          List.for_all
            (fun set ->
              List.for_all
                (fun block ->
                  Charset.subset block set || not (Charset.intersects block set))
                blocks)
            sets
        in
        Charset.equal cover universe && disjoint && refines);
    qtest "hash consistent with equal" pair_char (fun (a, b, _) ->
        (not (Charset.equal a b)) || Charset.hash a = Charset.hash b);
  ]

let suite = [ ("charset:unit", unit_tests); ("charset:props", prop_tests) ]
