open Helpers
module Smtlib = Dprle.Smtlib
module System = Dprle.System
module Ast = Regex.Ast

let re = System.const_of_regex

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let balanced s =
  let depth = ref 0 in
  let ok = ref true in
  let in_string = ref false in
  String.iter
    (fun c ->
      if c = '"' then in_string := not !in_string
      else if not !in_string then begin
        if c = '(' then incr depth;
        if c = ')' then begin
          decr depth;
          if !depth < 0 then ok := false
        end
      end)
    s;
  !ok && !depth = 0

let parse = Regex.Parser.parse_exn

let unit_tests =
  [
    test "string literal escaping" (fun () ->
        check_string "plain" "\"abc\"" (Smtlib.string_literal "abc");
        check_string "quote" "\"a\"\"b\"" (Smtlib.string_literal "a\"b");
        check_string "newline" "\"a\\u{a}\"" (Smtlib.string_literal "a\n"));
    test "re_term forms" (fun () ->
        check_string "empty" "re.none" (Smtlib.re_term Ast.Empty);
        check_string "eps" "(str.to_re \"\")" (Smtlib.re_term Ast.Epsilon);
        check_string "any" "re.allchar" (Smtlib.re_term Ast.any);
        check_string "char" "(str.to_re \"a\")" (Smtlib.re_term (parse "a"));
        check_string "range" "(re.range \"0\" \"9\")" (Smtlib.re_term (parse "[0-9]"));
        check_bool "star" true (contains (Smtlib.re_term (parse "a*")) "re.*");
        check_bool "loop" true
          (contains (Smtlib.re_term (parse "a{2,4}")) "(_ re.loop 2 4)");
        check_bool "unbounded loop" true
          (contains (Smtlib.re_term (parse "a{3,}")) "(_ re.loop 3 3)"));
    test "re_term is balanced" (fun () ->
        List.iter
          (fun r -> check_bool r true (balanced (Smtlib.re_term (parse r))))
          [ "a(b|c)*d"; "[a-z]{1,3}|x+"; "(ab)?c"; "\\d+" ]);
    test "system export structure" (fun () ->
        let system =
          System.make_exn
            ~consts:[ ("filter", re "(.*)[0-9]"); ("prefix", System.const_of_word "nid_");
                      ("unsafe", re ".*'.*") ]
            ~constraints:
              [
                { lhs = Var "v1"; rhs = "filter" };
                { lhs = Concat (Const "prefix", Var "v1"); rhs = "unsafe" };
              ]
        in
        let script = Smtlib.of_system system in
        check_bool "balanced" true (balanced script);
        check_bool "QF_S" true (contains script "(set-logic QF_S)");
        check_bool "declares v1" true (contains script "(declare-const v1 String)");
        check_bool "inlines the literal" true (contains script "\"nid_\"");
        check_bool "concat" true (contains script "(str.++ \"nid_\" v1)");
        check_bool "membership" true (contains script "str.in_re");
        check_bool "check-sat" true (contains script "(check-sat)"));
    test "multi-word constant operand quantifies" (fun () ->
        let system =
          System.make_exn
            ~consts:[ ("pre", re "a*"); ("c", re "a*b") ]
            ~constraints:[ { lhs = Concat (Const "pre", Var "v"); rhs = "c" } ]
        in
        let script = Smtlib.of_system system in
        check_bool "ALL logic" true (contains script "(set-logic ALL)");
        check_bool "forall" true (contains script "(assert (forall ((u0 String))");
        check_bool "balanced" true (balanced script));
    test "union lhs splits into assertions" (fun () ->
        let system =
          System.make_exn
            ~consts:[ ("c", re "ab") ]
            ~constraints:[ { lhs = Union (Var "x", Var "y"); rhs = "c" } ]
        in
        let script = Smtlib.of_system system in
        check_bool "x asserted" true (contains script "(str.in_re x ");
        check_bool "y asserted" true (contains script "(str.in_re y "));
    test "odd variable names are quoted" (fun () ->
        let system =
          System.make_exn
            ~consts:[ ("c", re "a") ]
            ~constraints:[ { lhs = Var "x~lower"; rhs = "c" } ]
        in
        check_bool "quoted symbol" true
          (contains (Smtlib.of_system system) "|x~lower|"));
  ]

let prop_tests =
  [
    qtest ~count:150 "re_term of random regexes is balanced" Test_regex.ast_gen
      (fun r -> balanced (Smtlib.re_term r));
    qtest ~count:60 "re_term of machine-derived regexes is balanced"
      Helpers.nfa_gen
      (fun m -> balanced (Smtlib.re_term (Regex.State_elim.to_regex m)));
  ]

let suite = [ ("smtlib:unit", unit_tests); ("smtlib:props", prop_tests) ]
