(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §3 for the experiment index).

   Each experiment has (a) a printed reproduction of the paper's
   table/figure — paper value next to measured value — and (b) a
   Bechamel micro-benchmark of its computational kernel.

   Run with:       dune exec bench/main.exe
   Skip the slow secure row with:  dune exec bench/main.exe -- --fast *)

module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Stats = Automata.Stats
module System = Dprle.System
module Solver = Dprle.Solver
module Ci = Dprle.Ci

let re = System.const_of_regex

(* All wall-clock measurements use the monotonic clock — immune to NTP
   steps; [Unix.time] survives only as the run's calendar timestamp. *)
let now_s () = Int64.to_float (Telemetry.Clock.now_ns ()) /. 1e9

let time_once f =
  let t0 = now_s () in
  let result = f () in
  (result, now_s () -. t0)

let hr title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Machine-readable output: every experiment runs bracketed by a
   metrics snapshot, and [--json PATH] dumps the per-experiment
   wall-clock plus the metric diff so the repo's perf trajectory is
   tracked file-over-file rather than eyeballed from stdout. *)

module Json = Telemetry.Json
module Snapshot = Telemetry.Metrics.Snapshot

let json_results : Json.t list ref = ref []

let experiment name f =
  let before = Snapshot.of_default () in
  let t0 = now_s () in
  f ();
  let seconds = now_s () -. t0 in
  let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
  Telemetry.Events.emit_global ~kind:"experiment"
    [ ("name", Json.String name); ("seconds", Json.Float seconds) ];
  json_results :=
    Json.Obj
      [
        ("name", Json.String name);
        ("seconds", Json.Float seconds);
        ("states_visited", Json.Int (Snapshot.counter_value diff "automata.states_visited"));
        ("products_built", Json.Int (Snapshot.counter_value diff "automata.products_built"));
        ("concats_built", Json.Int (Snapshot.counter_value diff "automata.concats_built"));
        ("solves", Json.Int (Snapshot.counter_value diff "solver.solves"));
        ("metrics", Snapshot.to_json diff);
      ]
    :: !json_results

let write_json path =
  let doc =
    Json.Obj
      [
        ("schema", Json.String "dprle-bench/2");
        ("unix_time", Json.Float (Unix.time ()));
        ("experiments", Json.List (List.rev !json_results));
      ]
  in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n');
  Fmt.pr "wrote %s (%d experiments)@." path (List.length !json_results)

(* ------------------------------------------------------------------ *)
(* Fig. 1 / §2: the motivating system                                 *)

let fig1_system =
  Dprle.Sysparse.parse_exn
    {| let filter = /[\d]+$/;
       let prefix = "nid_";
       let unsafe = /'/;
       v1 <= filter;
       prefix . v1 <= unsafe; |}

(* Unlimited budget, so the [Error] arm is unreachable. *)
let run_system ?max_solutions system =
  match Solver.run (Solver.Config.make ?max_solutions ()) system with
  | Ok outcome -> outcome
  | Error e -> failwith (Solver.Error.to_string e)

let fig1_solve () = run_system ~max_solutions:4 fig1_system

let fig1_report () =
  hr "Fig. 1 / section 2 — motivating SQL-injection system";
  let outcome, dt = time_once fig1_solve in
  (match outcome with
  | Solver.Sat [ a ] ->
      let v1 = Dprle.Assignment.find a "v1" in
      Fmt.pr "solution: v1 accepts %S: %b; rejects %S: %b (%.4f s)@."
        "' OR 1=1 ; DROP news --9"
        (Nfa.accepts v1 "' OR 1=1 ; DROP news --9")
        "42" (Nfa.accepts v1 "42") dt
  | Solver.Sat l -> Fmt.pr "unexpected: %d solutions@." (List.length l)
  | Solver.Unsat r -> Fmt.pr "unexpected unsat: %s@." (Solver.unsat_message r.Solver.reason));
  Fmt.pr "paper: v1 = all strings that contain a quote and end with a digit@."

(* ------------------------------------------------------------------ *)
(* Fig. 4: concat-intersect machine shapes on the running example     *)

let fig4_inputs () =
  ( Automata.Lang.compact (System.const_of_word "nid_"),
    Automata.Lang.compact (System.const_of_pattern "/[\\d]+$/"),
    Automata.Lang.compact (System.const_of_pattern "/'/") )

let fig4_run () =
  let c1, c2, c3 = fig4_inputs () in
  Ci.concat_intersect c1 c2 c3

let fig4_report () =
  hr "Fig. 4 — intermediate machines of concat-intersect";
  let ({ Ci.solutions; m4; m5 }, dt) = time_once fig4_run in
  let c1, c2, c3 = fig4_inputs () in
  Fmt.pr "%-22s %8s  (paper's drawing)@." "machine" "states";
  List.iter
    (fun (name, m, paper) ->
      Fmt.pr "%-22s %8d  (%s)@." name (Nfa.num_states m) paper)
    [
      ("M1 = nid_", c1, "5 states a1-a5");
      ("M2 = Sigma*[0-9]", c2, "2 states b1-b2");
      ("M3 = Sigma*'Sigma*", c3, "2 states d1-d2");
      ("M4 = M1 . M2", m4, "7 states + eps bridge");
      ("M5 = M4 n M3", m5, "reachable pairs");
    ];
  Fmt.pr "eps-cuts: %d (paper: exactly one, at a5d1 -> b1d1); time %.4f s@."
    (List.length solutions) dt;
  match solutions with
  | [ { Ci.v1; v2; _ } ] ->
      Fmt.pr "v1 = /%s/ (paper: nid_)@." (Regex.State_elim.to_string v1);
      Fmt.pr "v2 accepts \"' OR 1=1 ; DROP news --9\": %b@."
        (Nfa.accepts v2 "' OR 1=1 ; DROP news --9")
  | _ -> Fmt.pr "unexpected solution count@."

(* ------------------------------------------------------------------ *)
(* Fig. 9/10: CI-group with a shared variable                         *)

let fig9_system =
  System.make_exn
    ~consts:
      [
        ("ca", re "o(pp)+"); ("cb", re "p*(qq)+"); ("cc", re "q*r");
        ("c1", re "op{5}q*"); ("c2", re "p*q{4}r");
      ]
    ~constraints:
      [
        { lhs = Var "va"; rhs = "ca" };
        { lhs = Var "vb"; rhs = "cb" };
        { lhs = Var "vc"; rhs = "cc" };
        { lhs = Concat (Var "va", Var "vb"); rhs = "c1" };
        { lhs = Concat (Var "vb", Var "vc"); rhs = "c2" };
      ]

let fig9_solve () = run_system fig9_system

let fig9_report () =
  hr "Fig. 9/10 — coupled concatenations (gci)";
  let outcome, dt = time_once fig9_solve in
  match outcome with
  | Solver.Unsat r -> Fmt.pr "unexpected unsat: %s@." (Solver.unsat_message r.Solver.reason)
  | Solver.Sat solutions ->
      Fmt.pr "maximal disjunctive solutions: %d (%.4f s)@."
        (List.length solutions) dt;
      List.iter
        (fun a -> Fmt.pr "  %a@." Dprle.Assignment.pp_witnesses a)
        solutions;
      Fmt.pr
        "paper 3.4.4 prints A1=[op2,p3q2,q2r] and A2=[op4,pq2,q2r]; the same@.";
      Fmt.pr
        "maximality semantics also admits the two vc=r variants (EXPERIMENTS.md).@."

(* ------------------------------------------------------------------ *)
(* Fig. 11: the corpus table                                          *)

let fig11_report () =
  hr "Fig. 11 — evaluation corpus (synthetic reconstruction)";
  Fmt.pr "%-8s %-8s | %6s %8s %10s | %6s %8s %10s@." "Name" "Version" "files"
    "LOC" "vulnerable" "files'" "LOC'" "vulnerable'";
  Fmt.pr "%-8s %-8s | %26s | %26s@." "" "" "--- paper ---" "--- regenerated ---";
  List.iter
    (fun app ->
      let files = Corpus.Fig11.generate app in
      let loc =
        List.fold_left (fun acc (_, p) -> acc + Webapp.Ast.loc p) 0 files
      in
      let vulns =
        List.length
          (List.filter
             (fun (name, _) ->
               not (String.length name >= 5 && String.sub name 0 5 = "page_"))
             files)
      in
      Fmt.pr "%-8s %-8s | %6d %8d %10d | %6d %8d %10d@." app.Corpus.Fig11.name
        app.version app.files app.loc app.vulnerable (List.length files) loc
        vulns)
    Corpus.Fig11.apps

(* ------------------------------------------------------------------ *)
(* Fig. 12: the main results table                                    *)

let solve_row row =
  let program = Corpus.Fig12.program row in
  let candidates =
    (Webapp.Symexec.analyze ~max_paths:4096 ~attack:Corpus.Fig12.attack program)
      .Webapp.Symexec.candidates
  in
  match candidates with
  | [ q ] -> (q, (Webapp.Symexec.solve q).Webapp.Symexec.assignment)
  | qs ->
      failwith (Printf.sprintf "expected one candidate, got %d" (List.length qs))

let fig12_report ~fast () =
  hr "Fig. 12 — per-vulnerability constraint solving";
  Fmt.pr "%-8s %-10s | %5s %5s %9s | %5s %5s %9s@." "app" "name" "|FG|" "|C|"
    "TS(s)" "|FG|'" "|C|'" "TS'(s)";
  Fmt.pr "%-8s %-10s | %21s | %21s@." "" "" "------- paper ------"
    "------ measured -----";
  let measured = ref [] in
  List.iter
    (fun ({ Corpus.Fig12.app; name; fg; c; paper_ts } as row) ->
      if fast && name = "secure" then
        Fmt.pr "%-8s %-10s | %5d %5d %9.3f | %21s@." app name fg c paper_ts
          "skipped (--fast)"
      else begin
        let program = Corpus.Fig12.program row in
        let fg' = Webapp.Ast.basic_blocks program in
        let (q, solved), ts = time_once (fun () -> solve_row row) in
        let status = match solved with Some _ -> "" | None -> " UNSAT?" in
        measured := (name, paper_ts, ts) :: !measured;
        Fmt.pr "%-8s %-10s | %5d %5d %9.3f | %5d %5d %9.3f%s@." app name fg c
          paper_ts fg' q.Webapp.Symexec.constraint_count ts status
      end)
    Corpus.Fig12.rows;
  (* shape check: how many rows solve in under a second, and is the
     secure row the outlier, as in the paper (16 of 17 < 1 s)? *)
  let sub_second =
    List.length (List.filter (fun (_, _, ts) -> ts < 1.0) !measured)
  in
  Fmt.pr "@.sub-second rows: %d/%d measured (paper: 16/17)@." sub_second
    (List.length !measured);
  match
    List.assoc_opt "secure" (List.map (fun (n, _, ts) -> (n, ts)) !measured)
  with
  | Some ts ->
      let rest =
        List.filter_map
          (fun (n, _, ts) -> if n = "secure" then None else Some ts)
          !measured
      in
      let worst_rest = List.fold_left max 0.0 rest in
      Fmt.pr "secure outlier factor: %.0fx the slowest other row (paper: %.0fx)@."
        (ts /. worst_rest)
        (577.0 /. 0.65)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Section 3.5: state-space complexity sweeps                         *)

(* Structured Q-parameterized language family: [a{0,Q}] machines have
   Θ(Q) states, and [(aa){0,Q}] as the bound gives Θ(Q) ε-cuts, so
   both the machine-size and the enumeration terms of the paper's
   analysis are exercised with a clean growth signal. *)
let chain q = Ops.repeat (Nfa.of_charset (Charset.singleton 'a')) ~min_count:0 ~max_count:(Some q)

let even_chain q =
  Ops.repeat (Nfa.of_word "aa") ~min_count:0 ~max_count:(Some q)

let sec35_single q =
  let c1 = chain q and c2 = chain q in
  let c3 = even_chain q in
  let before = Stats.absolute () in
  let { Ci.solutions; m5; _ } = Ci.concat_intersect c1 c2 c3 in
  let s = Stats.diff (Stats.absolute ()) before in
  (s.visited, Nfa.num_states m5, List.length solutions)

(* (c1 ∘ c2) ∘ c3 intersected with c4 — the paper's two-level case.
   We build the machine exactly as the solver does and count, via the
   provenance maps, how many ε-cut combinations (= disjunctive
   solutions before the emptiness filter) the enumeration would have
   to visit: the |solutions| × |machine| product is the O(Q⁵) term of
   §3.5. *)
let sec35_chained q =
  let c1 = chain q and c2 = chain q and c3 = chain q in
  let c4 = Ops.repeat (Nfa.of_word "aaa") ~min_count:0 ~max_count:(Some q) in
  let before = Stats.absolute () in
  let inner = Ops.concat c1 c2 in
  let outer = Ops.concat inner.machine c3 in
  let prod = Ops.intersect outer.machine c4 in
  let visited = (Stats.diff (Stats.absolute ()) before).visited in
  let count_cuts (src, dst) embed =
    List.length
      (List.filter
         (fun s ->
           let p, d = prod.pair_of s in
           p = embed src
           &&
           match prod.state_of_pair (embed dst, d) with
           | Some s' -> Nfa.has_eps_edge prod.machine s s'
           | None -> false)
         (Nfa.states prod.machine))
  in
  let outer_cuts = count_cuts outer.bridge Fun.id in
  let inner_cuts = count_cuts inner.bridge outer.left_embed in
  (visited, Nfa.num_states prod.machine, inner_cuts * outer_cuts)

let sec35_report () =
  hr "Section 3.5 — state-space complexity of concat-intersect";
  Fmt.pr "single CI call: machine construction is O(Q^2) states visited; full@.";
  Fmt.pr "enumeration is bounded by |M3| solutions (O(Q^3) total).@.@.";
  Fmt.pr "%6s %12s %12s %10s %12s %14s@." "Q" "visited" "/Q^2" "|M5|"
    "solutions" "sols*|M5|/Q^3";
  List.iter
    (fun q ->
      let visited, m5, sols = sec35_single q in
      Fmt.pr "%6d %12d %12.2f %10d %12d %14.3f@." q visited
        (float_of_int visited /. float_of_int (q * q))
        m5 sols
        (float_of_int (sols * m5) /. float_of_int (q * q * q)))
    [ 4; 8; 16; 32; 64 ];
  Fmt.pr "@.chained (v1.v2).v3 <= c4 — inductive application (paper: O(Q^5) bound):@.";
  Fmt.pr "%6s %12s %12s %10s %12s %16s@." "Q" "visited" "/Q^2" "|M|" "combos"
    "combos*|M|/Q^4";
  List.iter
    (fun q ->
      let visited, m, combos = sec35_chained q in
      Fmt.pr "%6d %12d %12.2f %10d %12d %16.4f@." q visited
        (float_of_int visited /. float_of_int (q * q))
        m combos
        (float_of_int (combos * m)
        /. (float_of_int q ** 4.0)))
    [ 4; 8; 16; 32; 64 ];
  Fmt.pr "(stabilizing ratios: machine construction stays quadratic in Q while@.";
  Fmt.pr " eager enumeration of every disjunct grows as Θ(Q^4) on this family —@.";
  Fmt.pr " within the paper's O(Q^5) worst-case bound.)@."

(* ------------------------------------------------------------------ *)
(* Ablation: NFA minimization of intermediate machines (§4 remark)    *)

(* The same language as /'/ but with k redundant copies unioned in:
   models the unminimized intermediate machines the paper blames for
   the secure row. *)
let bloated_attack k =
  let quote () = System.const_of_pattern "/'/" in
  let rec go n acc =
    if n = 0 then acc else go (n - 1) (Ops.union_lang acc (quote ()))
  in
  go k (quote ())

let ablation_inputs k =
  let filler =
    String.concat "" (List.init 40 (fun i -> Printf.sprintf "col%d," i))
  in
  let c1 =
    System.const_of_word ("SELECT " ^ filler ^ " FROM news WHERE id=nid_")
  in
  let c2 = System.const_of_pattern "/[\\d]+$/" in
  (c1, c2, bloated_attack k)

let ablation_run c1 c2 c3 =
  let before = Stats.absolute () in
  let { Ci.solutions; m5; _ } = Ci.concat_intersect c1 c2 c3 in
  ( (Stats.diff (Stats.absolute ()) before).visited,
    Nfa.num_states m5,
    List.length solutions )

let ablation_report () =
  hr "Ablation — minimizing intermediate NFAs (paper section 4 remark)";
  Fmt.pr "the paper: \"more efficient use of the intermediate NFAs (e.g., by@.";
  Fmt.pr " applying NFA minimization techniques) might improve performance\"@.@.";
  Fmt.pr "%4s | %10s %8s %6s | %10s %8s %6s@." "k" "visited" "|M5|" "cuts"
    "visited'" "|M5|'" "cuts'";
  Fmt.pr "%4s | %26s | %26s@." "" "---- raw machines ----"
    "---- minimized first ----";
  List.iter
    (fun k ->
      let c1, c2, c3 = ablation_inputs k in
      let v, m, s = ablation_run c1 c2 c3 in
      let v', m', s' =
        ablation_run (Automata.Lang.compact c1) (Automata.Lang.compact c2)
          (Automata.Lang.compact c3)
      in
      Fmt.pr "%4d | %10d %8d %6d | %10d %8d %6d@." k v m s v' m' s')
    [ 0; 1; 2; 4; 8; 16 ];
  Fmt.pr "@.minimization collapses the redundant copies: visited' stays flat@.";
  Fmt.pr "while visited grows linearly in k, and the spurious duplicate@.";
  Fmt.pr "eps-cuts (one per redundant copy) disappear.@."

(* ------------------------------------------------------------------ *)
(* Hot-path before/after: the rewritten automata kernels timed against
   their retained [*_reference] implementations on a fixed seeded
   workload, so BENCH_dprle.json records the speedup alongside the new
   [automata.subset.visited] / [automata.bfs.frontier] histograms
   (populated as a side effect of the "after" runs).                  *)

let hotpath_machines =
  lazy
    (let rng = Random.State.make [| 0xbe; 0x5e7 |] in
     let alphabet = [| 'a'; 'b'; 'c'; '0'; '1' |] in
     List.init 150 (fun _ ->
         let n = 3 + Random.State.int rng 8 in
         let b = Nfa.Builder.create () in
         let first = Nfa.Builder.add_states b n in
         for _ = 1 to 4 + Random.State.int rng 12 do
           let src = Random.State.int rng n and dst = Random.State.int rng n in
           let c = alphabet.(Random.State.int rng (Array.length alphabet)) in
           Nfa.Builder.add_trans b (first + src)
             (Charset.range c (Char.chr (Char.code c + 1)))
             (first + dst)
         done;
         for _ = 1 to Random.State.int rng 4 do
           let src = Random.State.int rng n and dst = Random.State.int rng n in
           Nfa.Builder.add_eps b (first + src) (first + dst)
         done;
         Nfa.Builder.finish b ~start:first ~final:(first + 1)))

(* Dense operands (few states, many overlapping labels) drive the
   product cells past the sparse cutoff into the minterm path. *)
let hotpath_dense_machines =
  lazy
    (let rng = Random.State.make [| 0xde; 0x5e7 |] in
     List.init 40 (fun _ ->
         let n = 2 + Random.State.int rng 2 in
         let b = Nfa.Builder.create () in
         let first = Nfa.Builder.add_states b n in
         for _ = 1 to 20 + Random.State.int rng 12 do
           let src = Random.State.int rng n and dst = Random.State.int rng n in
           let c = Char.chr (Random.State.int rng 120) in
           Nfa.Builder.add_trans b (first + src)
             (Charset.range c (Char.chr (Char.code c + Random.State.int rng 40)))
             (first + dst)
         done;
         Nfa.Builder.finish b ~start:first ~final:(first + 1)))

let rec hotpath_pairs = function
  | a :: b :: rest -> (a, b) :: hotpath_pairs rest
  | _ -> []

let hotpath_report () =
  hr "Hot paths — rewritten kernels vs retained reference implementations";
  let machines = Lazy.force hotpath_machines in
  let pairs = hotpath_pairs machines in
  let row name after before =
    let (), t_after = time_once after in
    let (), t_before = time_once before in
    Fmt.pr "%-24s %10.4f s -> %10.4f s  (%5.2fx)@." name t_before t_after
      (t_before /. t_after);
    json_results :=
      Json.Obj
        [
          ("name", Json.String ("hotpath/" ^ name));
          ("seconds_before", Json.Float t_before);
          ("seconds_after", Json.Float t_after);
        ]
      :: !json_results
  in
  Fmt.pr "%-24s %12s    %12s@." "kernel" "reference" "rewritten";
  row "lang.subset"
    (fun () -> List.iter (fun (a, b) -> ignore (Automata.Lang.subset a b)) pairs)
    (fun () ->
      List.iter (fun (a, b) -> ignore (Automata.Lang.subset_reference a b)) pairs);
  row "nfa.is_empty_lang"
    (fun () -> List.iter (fun m -> ignore (Nfa.is_empty_lang m)) machines)
    (fun () ->
      List.iter (fun m -> ignore (Nfa.is_empty_lang_reference m)) machines);
  row "nfa.reachable_from"
    (fun () ->
      List.iter (fun m -> ignore (Nfa.reachable_from m (Nfa.start m))) machines)
    (fun () ->
      List.iter
        (fun m -> ignore (Nfa.reachable_from_reference m (Nfa.start m)))
        machines);
  let dense_pairs = hotpath_pairs (Lazy.force hotpath_dense_machines) in
  row "ops.intersect(dense)"
    (fun () ->
      List.iter (fun (a, b) -> ignore (Ops.intersect a b)) dense_pairs)
    (fun () ->
      List.iter (fun (a, b) -> ignore (Ops.intersect_reference a b)) dense_pairs);
  let rep = Nfa.of_word "ab" in
  row "ops.repeat"
    (fun () ->
      for k = 0 to 40 do
        ignore (Ops.repeat rep ~min_count:k ~max_count:(Some (2 * k)))
      done)
    (fun () ->
      for k = 0 to 40 do
        ignore (Ops.repeat_reference rep ~min_count:k ~max_count:(Some (2 * k)))
      done);
  Fmt.pr "(single-shot wall clock on a fixed seeded workload; see the@.";
  Fmt.pr " automata.subset.visited / automata.bfs.frontier histograms in the@.";
  Fmt.pr " metrics diff for the search-effort view.)@."

(* ------------------------------------------------------------------ *)
(* Parallel engine: the Fig. 12 workload (minus the pathological
   secure row) fanned out over 1, 4, and 8 worker domains.  The
   per-arm wall clock and the speedup over the jobs=1 arm land in the
   JSON; on a single-core container every arm serializes and the
   speedup stays ≈1, which is the honest number for this machine —
   the arms still exercise the engine's spawn/merge path and pin its
   determinism overhead.                                              *)

let parallel_report () =
  hr "Parallel engine — batch solve over the Fig. 12 corpus";
  let rows =
    List.filter (fun r -> r.Corpus.Fig12.name <> "secure") Corpus.Fig12.rows
  in
  let repeats = 3 in
  let work = List.concat (List.init repeats (fun _ -> rows)) in
  let solve _worker row =
    match solve_row row with _, Some _ -> true | _, None -> false
  in
  let arm jobs =
    Automata.Store.clear ();
    let results, stats = Engine.map ~jobs ~name:"bench" ~f:solve work in
    let ok =
      List.length
        (List.filter
           (fun (r : _ Engine.job_result) ->
             match r.outcome with Engine.Done _ -> true | _ -> false)
           results)
    in
    (Int64.to_float stats.Engine.wall_ns /. 1e9, ok)
  in
  let base_seconds = ref 0.0 in
  Fmt.pr "%d Fig. 12 solves per arm (%d rows x %d repeats)@." (List.length work)
    (List.length rows) repeats;
  List.iter
    (fun jobs ->
      let seconds, ok = arm jobs in
      if jobs = 1 then base_seconds := seconds;
      let speedup = !base_seconds /. seconds in
      Fmt.pr "jobs=%d: %8.3f s  (%d/%d jobs done, %.2fx vs jobs=1)@." jobs
        seconds ok (List.length work) speedup;
      json_results :=
        Json.Obj
          [
            ("name", Json.String (Printf.sprintf "parallel/jobs%d" jobs));
            ("jobs", Json.Int jobs);
            ("seconds", Json.Float seconds);
            ("speedup_vs_jobs1", Json.Float speedup);
          ]
        :: !json_results)
    [ 1; 4; 8 ];
  Fmt.pr "(speedup tracks the machine's core count; the arms also pin the@.";
  Fmt.pr " engine's determinism contract: results merge in submission order.)@."

(* Spawn amortization: the same multi-batch workload run with a fresh
   transient pool per batch (what Engine.map does) versus one
   persistent pool reused across batches.  Domain spawn/join is the
   fixed tax per batch; the persistent pool pays it once, and its
   workers keep their domain-local stores warm between batches.  The
   speedup here is meaningful even on a single-core runner — it
   measures overhead, not parallelism — which is what makes it the
   honest criterion where core-starved jobs4 can't hit its ratio. *)

let pool_reuse_report () =
  hr "Pool reuse — spawn-per-batch vs a persistent worker pool";
  let rows =
    List.filter (fun r -> r.Corpus.Fig12.name <> "secure") Corpus.Fig12.rows
  in
  let batches = 4 and jobs = 4 in
  let solve _worker row =
    match solve_row row with _, Some _ -> true | _, None -> false
  in
  let time f =
    let t0 = Telemetry.Clock.now_ns () in
    f ();
    Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t0) /. 1e9
  in
  Automata.Store.clear ();
  let seconds_spawn =
    time (fun () ->
        for _ = 1 to batches do
          ignore (Engine.map ~jobs ~name:"bench-spawn" ~f:solve rows)
        done)
  in
  Automata.Store.clear ();
  let seconds_pool =
    time (fun () ->
        Engine.Pool.with_pool ~name:"bench-pool" ~size:jobs @@ fun pool ->
        for _ = 1 to batches do
          ignore (Engine.Pool.map pool ~name:"bench-pool" ~f:solve rows)
        done)
  in
  let speedup = seconds_spawn /. seconds_pool in
  Fmt.pr "%d batches x %d rows, %d workers@." batches (List.length rows) jobs;
  Fmt.pr "spawn per batch: %8.3f s@." seconds_spawn;
  Fmt.pr "persistent pool: %8.3f s  (%.2fx)@." seconds_pool speedup;
  json_results :=
    Json.Obj
      [
        ("name", Json.String "parallel/pool_reuse");
        ("jobs", Json.Int jobs);
        ("batches", Json.Int batches);
        ("seconds_spawn_per_batch", Json.Float seconds_spawn);
        ("seconds_pool", Json.Float seconds_pool);
        ("speedup_pool_vs_spawn", Json.Float speedup);
      ]
    :: !json_results;
  Fmt.pr "(the persistent pool spawns its domains once and keeps per-worker@.";
  Fmt.pr " stores warm across batches; spawn-per-batch pays both taxes each@.";
  Fmt.pr " time — the recorded jobs-vs-jobs1 regression was mostly this.)@."

(* ------------------------------------------------------------------ *)
(* Static-prune ablation: the eve corpus scanned with the dataflow
   layer proving sinks safe (arm "on") and with symbolic execution
   alone (arm "off").  Both arms must report identical per-file
   verdicts; the solver.solves diff records the RMA work the prune
   arm avoided.

   Each arm serves the corpus [static_prune_passes] times against one
   warm store — the webcheck deployment shape, where a page is
   analyzed per request and the hash-consed memos carry results
   across requests.  A single cold pass told the opposite story (the
   recorded regression): it billed the prune arm the one-time cost of
   filling the memo tables and the off arm nothing.  Counters are
   recorded per pass (they are identical every pass; the arm checks
   that), so the solves column still reads 1 vs 24.                   *)

let static_prune_passes = 32

(* Both static_prune arms solve with the pre-solve analyzer off: the
   experiment isolates the dataflow prune, and CI pins its solves
   columns (1 vs 24) — letting the analyzer also skip solves here
   would conflate the two ablations.  The analyzer gets its own
   experiment below. *)
let solver_only_config =
  { Dprle.Solver.Config.default with Dprle.Solver.Config.analyze = false }

let static_prune_arm ~prune ~passes files =
  let attack = Corpus.Fig12.attack in
  Automata.Store.clear ();
  let before = Snapshot.of_default () in
  let t0 = now_s () in
  let pruned = ref 0 in
  let verdicts = ref [] in
  for pass = 1 to passes do
    let vs =
      List.map
        (fun (name, program) ->
          let safe_ids =
            if prune then
              Analysis.Fixpoint.safe_sink_ids
                (Analysis.Fixpoint.analyze_cached ~attack program)
            else []
          in
          if pass = 1 then pruned := !pruned + List.length safe_ids;
          let total_sinks = List.length (Webapp.Ast.sinks program) in
          (* mirror webcheck: a file whose every sink is statically
             safe skips path enumeration outright *)
          if prune && total_sinks > 0 && List.length safe_ids = total_sinks
          then (name, false)
          else
            let { Webapp.Symexec.candidates; _ } =
              Webapp.Symexec.analyze ~max_paths:256 ~attack program
            in
            let vulnerable =
              List.exists
                (fun q ->
                  (not (List.mem q.Webapp.Symexec.sink_id safe_ids))
                  && (Webapp.Symexec.solve ~config:solver_only_config q)
                       .Webapp.Symexec.assignment
                     <> None)
                candidates
            in
            (name, vulnerable))
        files
    in
    (match !verdicts with
    | prev :: _ when prev <> vs ->
        failwith "static_prune: verdicts changed across passes"
    | _ -> ());
    verdicts := [ vs ]
  done;
  let seconds = now_s () -. t0 in
  let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
  let total_solves = Snapshot.counter_value diff "solver.solves" in
  if total_solves mod passes <> 0 then
    failwith "static_prune: solves not constant across passes";
  (List.hd !verdicts, seconds, total_solves / passes, !pruned)

let static_prune_report () =
  hr "Static-prune ablation — dataflow analysis vs symbolic execution alone";
  let files = Corpus.Fig11.generate (List.hd Corpus.Fig11.apps) in
  let passes = static_prune_passes in
  let arm name prune =
    let verdicts, seconds, solves, pruned =
      static_prune_arm ~prune ~passes files
    in
    Fmt.pr "%-4s %8.3f s  %5d solves/pass  %3d sinks pruned@." name seconds
      solves pruned;
    json_results :=
      Json.Obj
        [
          ("name", Json.String ("static_prune/" ^ name));
          ("seconds", Json.Float seconds);
          ("passes", Json.Int passes);
          ("solves", Json.Int solves);
          ("sinks_pruned", Json.Int pruned);
          ( "vulnerable",
            Json.Int (List.length (List.filter (fun (_, v) -> v) verdicts)) );
        ]
      :: !json_results;
    verdicts
  in
  Fmt.pr "eve corpus, %d files x %d passes per arm@." (List.length files)
    passes;
  let on = arm "on" true in
  let off = arm "off" false in
  Fmt.pr "verdicts identical across arms: %b@." (on = off);
  Fmt.pr "(pruning skips path enumeration and the per-candidate RMA solves@.";
  Fmt.pr " for sinks the fixpoint proved safe; it must never change a@.";
  Fmt.pr " verdict. passes share one store, as webcheck requests do.)@."

(* ------------------------------------------------------------------ *)
(* Analyze ablation: the pre-solve static pipeline (normalization,
   bounds propagation, discharge, goal-directed slicing) on vs off,
   over the fig12 rows plus the full eve corpus.  Candidates the
   bounds pass refutes never reach [solve_graph], so the
   solver.solves column must drop strictly on the "on" arm; verdicts
   must be identical.  Warm-store passes for the same reason as
   static_prune: one cold pass bills the analyzer the one-time cost
   of interning its bound automata and nothing else.                  *)

let analyze_passes = 8

let analyze_arm ~analyze ~passes files =
  let attack = Corpus.Fig12.attack in
  Automata.Store.clear ();
  let config = { Dprle.Solver.Config.default with Dprle.Solver.Config.analyze } in
  let before = Snapshot.of_default () in
  let t0 = now_s () in
  let verdicts = ref [] in
  for _ = 1 to passes do
    let vs =
      List.map
        (fun (name, program) ->
          let { Webapp.Symexec.candidates; _ } =
            Webapp.Symexec.analyze ~max_paths:256 ~attack program
          in
          let vulnerable =
            List.exists
              (fun q ->
                (Webapp.Symexec.solve ~config q).Webapp.Symexec.assignment
                <> None)
              candidates
          in
          (name, vulnerable))
        files
    in
    (match !verdicts with
    | prev :: _ when prev <> vs ->
        failwith "analyze: verdicts changed across passes"
    | _ -> ());
    verdicts := [ vs ]
  done;
  let seconds = now_s () -. t0 in
  let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
  let total_solves = Snapshot.counter_value diff "solver.solves" in
  if total_solves mod passes <> 0 then
    failwith "analyze: solves not constant across passes";
  (List.hd !verdicts, seconds, total_solves / passes)

let analyze_report ~fast () =
  hr "Analyze ablation — pre-solve static pipeline vs solver alone";
  let fig12 =
    List.filter_map
      (fun row ->
        if fast && row.Corpus.Fig12.name = "secure" then None
        else
          Some ("fig12/" ^ row.Corpus.Fig12.name, Corpus.Fig12.program row))
      Corpus.Fig12.rows
  in
  let eve = Corpus.Fig11.generate (List.hd Corpus.Fig11.apps) in
  let files = fig12 @ eve in
  let passes = analyze_passes in
  let arm name analyze =
    let verdicts, seconds, solves = analyze_arm ~analyze ~passes files in
    Fmt.pr "%-4s %8.3f s  %5d solves/pass@." name seconds solves;
    json_results :=
      Json.Obj
        [
          ("name", Json.String ("analyze/" ^ name));
          ("seconds", Json.Float seconds);
          ("passes", Json.Int passes);
          ("solves", Json.Int solves);
          ( "vulnerable",
            Json.Int (List.length (List.filter (fun (_, v) -> v) verdicts)) );
        ]
      :: !json_results;
    (verdicts, solves)
  in
  Fmt.pr "fig12 + eve corpus, %d files x %d passes per arm@."
    (List.length files) passes;
  let on_verdicts, on_solves = arm "on" true in
  let off_verdicts, off_solves = arm "off" false in
  if on_verdicts <> off_verdicts then
    failwith "analyze: arms disagree on a verdict";
  if on_solves >= off_solves then
    failwith "analyze: the on arm must skip solves the off arm pays for";
  Fmt.pr "verdicts identical across arms: true@.";
  Fmt.pr "(bounds propagation refutes statically-safe candidates before any@.";
  Fmt.pr " group machine is built — those never reach solve_graph, so the@.";
  Fmt.pr " solves column drops; slicing and discharge shrink the rest.)@."

(* ------------------------------------------------------------------ *)
(* Extension experiment: solving through sanitizers (transducer
   preimages) — the related-work FST direction made executable        *)

let sanitizer_programs =
  [
    ("raw", {|$x = input("x");
query("SELECT * FROM t WHERE a = '" . $x . "'");|});
    ("strip", {|$x = input("x");
query("SELECT * FROM t WHERE a = '" . str_replace("'", "", $x) . "'");|});
    ("addslashes", {|$x = input("x");
query("SELECT * FROM t WHERE a = '" . addslashes($x) . "'");|});
  ]

let sanitizer_solve source =
  Webapp.Symexec.first_exploit ~attack:Webapp.Attack.unbalanced_quote
    (Webapp.Lang_parser.parse_exn source)

let sanitizers_report () =
  hr "Extension — sanitizer verification via transducer preimages";
  Fmt.pr "attack: odd number of unescaped quotes (break out of the literal)@.";
  List.iter
    (fun (name, source) ->
      let outcome, dt = time_once (fun () -> sanitizer_solve source) in
      match outcome with
      | Some inputs ->
          Fmt.pr "%-12s EXPLOITABLE  x = %S  (%.3f s)@." name
            (List.assoc "x" inputs) dt
      | None -> Fmt.pr "%-12s proved clean (unsat)  (%.3f s)@." name dt)
    sanitizer_programs;
  Fmt.pr "expected shape: raw exploitable; addslashes proved clean.@."

(* ------------------------------------------------------------------ *)
(* Cache ablation: the interned language store on vs off.  Each
   workload runs twice — once against a freshly cleared store (the
   default configuration) and once with the store disabled, which is
   exactly what the binaries' --no-cache flag does — and both the
   wall clock and the store.opcache.hit diff land in the JSON so the
   checked-in BENCH_dprle.json carries both arms.                     *)

module Store = Automata.Store

let store_hits diff =
  List.fold_left
    (fun acc (name, _, v) ->
      if name = "store.opcache.hit" then acc + v else acc)
    0
    (Snapshot.counters diff)

let cache_ablation name workload =
  let arm () =
    Store.clear ();
    let before = Snapshot.of_default () in
    let t0 = now_s () in
    workload ();
    let seconds = now_s () -. t0 in
    let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
    (seconds, store_hits diff)
  in
  let seconds_cached, hit_cached = arm () in
  Store.set_enabled false;
  let seconds_uncached, hit_uncached =
    Fun.protect ~finally:(fun () -> Store.set_enabled true) arm
  in
  Fmt.pr "%-22s %8.4f s, %6d hits | %8.4f s, %d hits@." name seconds_cached
    hit_cached seconds_uncached hit_uncached;
  json_results :=
    Json.Obj
      [
        ("name", Json.String ("cache_ablation/" ^ name));
        ("seconds_cached", Json.Float seconds_cached);
        ("seconds_uncached", Json.Float seconds_uncached);
        ("opcache_hit_cached", Json.Int hit_cached);
        ("opcache_hit_uncached", Json.Int hit_uncached);
      ]
    :: !json_results

let cache_ablation_report ~fast () =
  hr "Cache ablation — interned language store vs --no-cache";
  Fmt.pr "answers are identical either way; only the work differs.@.@.";
  Fmt.pr "%-22s %22s | %s@." "workload" "---- cached ----"
    "--- uncached ---";
  cache_ablation "fig12_main" (fun () ->
      List.iter
        (fun row ->
          if not (fast && row.Corpus.Fig12.name = "secure") then
            ignore (solve_row row))
        Corpus.Fig12.rows);
  cache_ablation "extension_sanitizers" (fun () ->
      List.iter
        (fun (_, source) -> ignore (sanitizer_solve source))
        sanitizer_programs);
  (let c1, c2, c3 = ablation_inputs 8 in
   cache_ablation "ablation_minimize" (fun () ->
       for _ = 1 to 5 do
         ignore (ablation_run c1 c2 c3)
       done));
  Fmt.pr "@.(the uncached arm must show zero op-cache hits: with the store@.";
  Fmt.pr " disabled every operation recomputes from scratch.)@."

(* ------------------------------------------------------------------ *)
(* Symbolic-tier ablation: the fig12 solve workload plus an eve-corpus
   scan with the derivative tier of the query front-end answering
   where it can (arm "on") and with --no-symbolic dispatch (arm
   "off").  Verdicts must be byte-identical across arms — the tier is
   an optimization, never a semantics change — and the store.tier.*
   counter diffs record how many yes/no language queries each tier
   answered.  The on arm hard-fails if the symbolic answer rate drops
   below 30% on this workload: that is the floor the tier pays for
   its dispatch overhead with.                                        *)

let tier_count diff name =
  List.fold_left
    (fun acc (n, _, v) -> if n = name then acc + v else acc)
    0
    (Snapshot.counters diff)

let verdict_fingerprint verdicts =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) verdicts)))

let symbolic_tier_arm ~symbolic ~fast files =
  Automata.Query.set_symbolic_enabled symbolic;
  Fun.protect ~finally:(fun () -> Automata.Query.set_symbolic_enabled true)
  @@ fun () ->
  Store.clear ();
  let before = Snapshot.of_default () in
  let t0 = now_s () in
  let fig12 =
    List.filter_map
      (fun row ->
        if fast && row.Corpus.Fig12.name = "secure" then None
        else
          let _, assignment = solve_row row in
          Some (row.Corpus.Fig12.name, assignment <> None))
      Corpus.Fig12.rows
  in
  let eve =
    List.map
      (fun (name, program) ->
        let { Webapp.Symexec.candidates; _ } =
          Webapp.Symexec.analyze ~max_paths:256 ~attack:Corpus.Fig12.attack
            program
        in
        let vulnerable =
          List.exists
            (fun q ->
              (Webapp.Symexec.solve q).Webapp.Symexec.assignment <> None)
            candidates
        in
        (name, vulnerable))
      files
  in
  let seconds = now_s () -. t0 in
  let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
  let sym = tier_count diff "store.tier.symbolic" in
  let auto = tier_count diff "store.tier.automata" in
  let fallback = tier_count diff "store.tier.fallback" in
  (fig12 @ eve, seconds, sym, auto, fallback)

let symbolic_tier_report ~fast () =
  hr "Symbolic-tier ablation — derivative queries vs --no-symbolic";
  let files = Corpus.Fig11.generate (List.hd Corpus.Fig11.apps) in
  Fmt.pr "fig12 rows + eve corpus (%d files) per arm@." (List.length files);
  let arm name symbolic =
    let verdicts, seconds, sym, auto, fallback =
      symbolic_tier_arm ~symbolic ~fast files
    in
    let queries = sym + auto in
    let rate =
      if queries = 0 then 0.0 else float_of_int sym /. float_of_int queries
    in
    Fmt.pr "%-4s %8.3f s  %6d symbolic  %6d automata  %5d fallback  rate %.2f@."
      name seconds sym auto fallback rate;
    json_results :=
      Json.Obj
        [
          ("name", Json.String ("symbolic_tier/" ^ name));
          ("seconds", Json.Float seconds);
          ("queries", Json.Int queries);
          ("symbolic_answered", Json.Int sym);
          ("automata_answered", Json.Int auto);
          ("fallback", Json.Int fallback);
          ("answer_rate", Json.Float rate);
          ("verdict_fingerprint", Json.String (verdict_fingerprint verdicts));
        ]
      :: !json_results;
    (verdicts, rate)
  in
  (* one discarded warm-up pass: the first arm otherwise pays the
     process's page-fault and GC ramp-up and the on/off wall ratio
     reads as dispatch overhead that isn't there *)
  ignore (symbolic_tier_arm ~symbolic:true ~fast files);
  let on_verdicts, on_rate = arm "on" true in
  let off_verdicts, _ = arm "off" false in
  if on_verdicts <> off_verdicts then
    failwith "symbolic_tier: verdicts differ across arms";
  if on_rate < 0.30 then
    failwith
      (Fmt.str "symbolic_tier: answer rate %.2f below the 0.30 floor" on_rate);
  Fmt.pr "verdicts identical across arms: true@.";
  Fmt.pr "(the derivative tier answers subset/equal/emptiness queries whose@.";
  Fmt.pr " operands carry regex ASTs without building any product machine;@.";
  Fmt.pr " --no-symbolic must move counters, never a verdict.)@."

(* ------------------------------------------------------------------ *)
(* Observability overhead: the fig12 solve workload with the timer
   registry recording (the default) vs globally disabled via
   [Metrics.set_timing_enabled false].  The two wall clocks land in
   the JSON so a timer added on a hot path shows up as a growing gap
   between the arms — the acceptance bound is ±10% on this workload. *)

let observability_report ~fast () =
  hr "Observability — timer overhead on the Fig. 12 workload";
  let workload () =
    List.iter
      (fun row ->
        if not (fast && row.Corpus.Fig12.name = "secure") then
          ignore (solve_row row))
      Corpus.Fig12.rows
  in
  let arm () =
    Store.clear ();
    let t0 = now_s () in
    workload ();
    now_s () -. t0
  in
  let seconds_timed = arm () in
  Telemetry.Metrics.set_timing_enabled false;
  let seconds_untimed =
    Fun.protect
      ~finally:(fun () -> Telemetry.Metrics.set_timing_enabled true)
      arm
  in
  Fmt.pr "timers on:  %8.4f s@.timers off: %8.4f s@.overhead:   %+.1f%%@."
    seconds_timed seconds_untimed
    (100. *. ((seconds_timed -. seconds_untimed) /. seconds_untimed));
  json_results :=
    Json.Obj
      [
        ("name", Json.String "observability/overhead");
        ("seconds_timed", Json.Float seconds_timed);
        ("seconds_untimed", Json.Float seconds_untimed);
      ]
    :: !json_results

(* ------------------------------------------------------------------ *)
(* Serve harness: the resident daemon measured through the wire.
   Three arms land in the JSON — cold (a fresh daemon per request,
   paying pool spawn and first-touch store fills every time), warm
   (one daemon, one connection, repeated identical solves against an
   ever-warmer worker store), and concurrent (four client threads
   hammering one daemon).  Every number here is wall clock plus queue
   noise by construction, so the whole serve/* family sits in
   [Benchdiff.default_skip]; the warm arm's [speedup_warm_vs_cold] is
   the figure the roadmap tracks.                                     *)

let serve_system =
  "let filter = /[\\d]+$/;\n\
   let prefix = \"nid_\";\n\
   let unsafe = /'/;\n\
   v1 <= filter;\n\
   prefix . v1 <= unsafe;\n"

let serve_request ~id kind =
  { Api.Request.id; kind; budget_ms = None; budget_states = None }

let serve_solve_request id =
  serve_request ~id
    (Api.Request.Solve (Api.Request.solve_defaults ~system:serve_system))

let serve_socket_seq = ref 0

let serve_fresh_listen () =
  incr serve_socket_seq;
  Serve.Server.Unix_socket
    (Filename.concat
       (Filename.get_temp_dir_name ())
       (Printf.sprintf "dprle-bench-%d-%d.sock" (Unix.getpid ())
          !serve_socket_seq))

(* Daemon on a thread; always shut down and joined, even when [f]
   raises. *)
let serve_with_daemon f =
  let listen = serve_fresh_listen () in
  let t =
    Thread.create
      (fun () ->
        ignore (Serve.Server.run (Serve.Server.default_config listen)))
      ()
  in
  let finally () =
    (match Serve.Client.connect listen with
    | Ok c ->
        ignore (Serve.Client.request c (serve_request ~id:"bye" Api.Request.Shutdown));
        Serve.Client.close c
    | Error _ -> ());
    Thread.join t
  in
  Fun.protect ~finally (fun () -> f listen)

let serve_connect listen =
  match Serve.Client.connect listen with
  | Ok c -> c
  | Error e -> failwith ("serve bench: connect: " ^ e)

let serve_solve c id =
  match Serve.Client.request c (serve_solve_request id) with
  | Ok ({ Api.Response.payload = Api.Response.Sat _; _ } as r) -> r
  | Ok r ->
      failwith
        (Fmt.str "serve bench: unexpected %s response"
           (Api.Response.payload_name r.Api.Response.payload))
  | Error e -> failwith ("serve bench: " ^ e)

let serve_report () =
  hr "Serve harness — resident daemon vs fresh-daemon costs";
  let mean = function
    | [] -> 0
    | xs -> List.fold_left ( + ) 0 xs / List.length xs
  in
  (* cold: a brand-new daemon (fresh pool, empty worker store) per
     request; elapsed_us is the in-handler time, the wall clock also
     pays bind + spawn + join *)
  let cold_iters = 5 in
  let cold_us = ref [] in
  let (), cold_seconds =
    time_once (fun () ->
        for i = 1 to cold_iters do
          serve_with_daemon (fun listen ->
              let c = serve_connect listen in
              let r = serve_solve c (Printf.sprintf "cold%d" i) in
              cold_us :=
                r.Api.Response.obs.Api.Response.elapsed_us :: !cold_us;
              Serve.Client.close c)
        done)
  in
  let cold_mean_us = mean !cold_us in
  Fmt.pr
    "cold: %d daemon starts, mean in-handler %d us (%.3f s wall incl. spawn)@."
    cold_iters cold_mean_us cold_seconds;
  json_results :=
    Json.Obj
      [
        ("name", Json.String "serve/cold");
        ("requests", Json.Int cold_iters);
        ("seconds", Json.Float cold_seconds);
        ("mean_request_us", Json.Int cold_mean_us);
      ]
    :: !json_results;
  (* warm and concurrent share one resident daemon *)
  serve_with_daemon (fun listen ->
      let c = serve_connect listen in
      let first = serve_solve c "first" in
      let warm_iters = 32 in
      let warms =
        List.init warm_iters (fun i ->
            serve_solve c (Printf.sprintf "warm%d" i))
      in
      Serve.Client.close c;
      let warm_mean_us =
        mean
          (List.map
             (fun (r : Api.Response.t) -> r.obs.Api.Response.elapsed_us)
             warms)
      in
      let warm_hits =
        List.fold_left
          (fun acc (r : Api.Response.t) ->
            acc + r.obs.Api.Response.intern_hits)
          0 warms
      in
      let speedup =
        float_of_int cold_mean_us /. float_of_int (max 1 warm_mean_us)
      in
      Fmt.pr
        "warm: first %d us, then %d solves at mean %d us — %.1fx vs cold \
         (%d intern hits)@."
        first.Api.Response.obs.Api.Response.elapsed_us warm_iters warm_mean_us
        speedup warm_hits;
      json_results :=
        Json.Obj
          [
            ("name", Json.String "serve/warm");
            ("requests", Json.Int warm_iters);
            ("cold_request_us", Json.Int cold_mean_us);
            ("warm_request_us", Json.Int warm_mean_us);
            ("speedup_warm_vs_cold", Json.Float speedup);
            ("intern_hits", Json.Int warm_hits);
          ]
        :: !json_results;
      (* concurrent: four client threads against the same warm daemon *)
      let conns = 4 and per = 16 in
      let total = conns * per in
      let latencies_ns = Array.make total 0 in
      let worker t =
        let c = serve_connect listen in
        for i = 0 to per - 1 do
          let t0 = Telemetry.Clock.now_ns () in
          ignore (serve_solve c (Printf.sprintf "t%d-%d" t i));
          latencies_ns.((t * per) + i) <-
            Int64.to_int (Int64.sub (Telemetry.Clock.now_ns ()) t0)
        done;
        Serve.Client.close c
      in
      let (), conc_seconds =
        time_once (fun () ->
            List.iter Thread.join
              (List.init conns (fun t -> Thread.create worker t)))
      in
      Array.sort compare latencies_ns;
      let pct p =
        float_of_int latencies_ns.(min (total - 1) (total * p / 100)) /. 1e6
      in
      let throughput = float_of_int total /. conc_seconds in
      Fmt.pr
        "concurrent: %d conns x %d reqs in %.3f s — %.0f req/s, p50 %.2f ms, \
         p99 %.2f ms@."
        conns per conc_seconds throughput (pct 50) (pct 99);
      json_results :=
        Json.Obj
          [
            ("name", Json.String "serve/concurrent");
            ("connections", Json.Int conns);
            ("requests", Json.Int total);
            ("seconds", Json.Float conc_seconds);
            ("throughput_rps", Json.Float throughput);
            ("p50_ms", Json.Float (pct 50));
            ("p99_ms", Json.Float (pct 99));
          ]
        :: !json_results);
  Fmt.pr "(one daemon held across the warm and concurrent arms: its pool@.";
  Fmt.pr " workers keep domain-local stores warm across requests, which is@.";
  Fmt.pr " the entire case for residency over spawn-per-request.)@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per experiment               *)

let bechamel_tests =
  let open Bechamel in
  Test.make_grouped ~name:"dprle"
    [
      Test.make ~name:"fig1/solve_motivating" (Staged.stage fig1_solve);
      Test.make ~name:"fig4/concat_intersect" (Staged.stage fig4_run);
      Test.make ~name:"fig9/solve_cigroup" (Staged.stage fig9_solve);
      Test.make ~name:"fig11/generate_eve"
        (Staged.stage (fun () ->
             Corpus.Fig11.generate (List.hd Corpus.Fig11.apps)));
      Test.make ~name:"fig12/solve_ax_help"
        (Staged.stage (fun () ->
             solve_row
               (List.find
                  (fun r -> r.Corpus.Fig12.name = "ax_help")
                  Corpus.Fig12.rows)));
      Test.make ~name:"sec35/ci_q16" (Staged.stage (fun () -> sec35_single 16));
      Test.make ~name:"extension/sanitizer_addslashes"
        (Staged.stage (fun () -> sanitizer_solve (List.assoc "addslashes" sanitizer_programs)));
      (* inputs are prepared outside the staged closures so both
         variants time only the concat-intersect call *)
      (let c1, c2, c3 = ablation_inputs 8 in
       Test.make ~name:"ablation/ci_bloated_k8"
         (Staged.stage (fun () -> ablation_run c1 c2 c3)));
      (let c1, c2, c3 = ablation_inputs 8 in
       let c1 = Automata.Lang.compact c1
       and c2 = Automata.Lang.compact c2
       and c3 = Automata.Lang.compact c3 in
       Test.make ~name:"ablation/ci_minimized_k8"
         (Staged.stage (fun () -> ablation_run c1 c2 c3)));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  hr "Bechamel micro-benchmarks (OLS fit per run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] bechamel_tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> est
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
  in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e9 then Fmt.pr "%-36s %12.3f s/run@." name (ns /. 1e9)
      else if ns >= 1e6 then Fmt.pr "%-36s %12.3f ms/run@." name (ns /. 1e6)
      else Fmt.pr "%-36s %12.3f us/run@." name (ns /. 1e3))
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

(* [--json [PATH]]: PATH defaults to BENCH_dprle.json when omitted or
   when the next token is another flag. *)
let json_path () =
  let argv = Array.to_list Sys.argv in
  let rec scan = function
    | [] -> None
    | "--json" :: rest -> (
        match rest with
        | path :: _ when String.length path > 0 && path.[0] <> '-' -> Some path
        | _ -> Some "BENCH_dprle.json")
    | _ :: rest -> scan rest
  in
  scan argv

(* [--events FILE]: JSONL event log, one record per experiment. *)
let events_path () =
  let rec scan = function
    | [] -> None
    | "--events" :: path :: _ when String.length path > 0 && path.[0] <> '-' ->
        Some path
    | _ :: rest -> scan rest
  in
  scan (Array.to_list Sys.argv)

(* ------------------------------------------------------------------ *)
(* [--diff OLD NEW]: compare two bench JSON documents instead of
   running the experiments.  Deterministic content (counters, shapes,
   timer call counts) is hard-gated; wall clock is ratio-gated and can
   be demoted to warnings for noisy CI runners.  Exit 0 = clean,
   1 = hard regressions (named on stdout), 2 = usage/parse error. *)

let diff_main args =
  let usage () =
    Fmt.epr
      "usage: bench --diff OLD.json NEW.json [--threshold X] \
       [--wall-warn-only] [--skip GLOB]... [--include GLOB]...@.";
    2
  in
  let rec parse paths threshold warn skip incl = function
    | [] -> Ok (List.rev paths, threshold, warn, skip, incl)
    | "--diff" :: rest -> parse paths threshold warn skip incl rest
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t -> parse paths t warn skip incl rest
        | None -> Error ())
    | "--wall-warn-only" :: rest -> parse paths threshold true skip incl rest
    | "--skip" :: name :: rest ->
        parse paths threshold warn (name :: skip) incl rest
    | "--include" :: name :: rest ->
        parse paths threshold warn skip (name :: incl) rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        parse (arg :: paths) threshold warn skip incl rest
    | _ -> Error ()
  in
  match parse [] 1.5 false [] [] args with
  | Ok ([ old_path; new_path ], threshold, wall_warn_only, skip, include_) -> (
      let load path =
        match
          Json.of_string (In_channel.with_open_text path In_channel.input_all)
        with
        | Ok doc -> Ok doc
        | Error msg -> Error (Fmt.str "%s: %s" path msg)
        | exception Sys_error msg -> Error msg
      in
      match (load old_path, load new_path) with
      | Ok old_doc, Ok new_doc -> (
          match
            Telemetry.Benchdiff.run ~threshold ~wall_warn_only ~skip ~include_
              ~old_doc ~new_doc ()
          with
          | Ok report ->
              Fmt.pr "%a" Telemetry.Benchdiff.pp_report report;
              if Telemetry.Benchdiff.hard_count report > 0 then 1 else 0
          | Error msg ->
              Fmt.epr "error: %s@." msg;
              2)
      | Error msg, _ | _, Error msg ->
          Fmt.epr "error: %s@." msg;
          2)
  | Ok _ | Error () -> usage ()

let run_experiments () =
  let fast = Array.exists (( = ) "--fast") Sys.argv in
  let json = json_path () in
  Fmt.pr "DPRLE benchmark harness — every table and figure of the paper@.";
  if fast then Fmt.pr "(--fast: skipping the secure row)@.";
  experiment "fig1/motivating" fig1_report;
  experiment "fig4/concat_intersect" fig4_report;
  experiment "fig9/cigroup" fig9_report;
  experiment "fig11/corpus" fig11_report;
  experiment "fig12/solving" (fig12_report ~fast);
  experiment "sec35/complexity" sec35_report;
  experiment "ablation/minimization" ablation_report;
  experiment "hotpath/kernels" hotpath_report;
  experiment "parallel/engine" parallel_report;
  (* wrapper entry is "parallel/pool"; the arm comparison itself is
     recorded as "parallel/pool_reuse" (same split as static_prune) *)
  experiment "parallel/pool" pool_reuse_report;
  experiment "static_prune/ablation" static_prune_report;
  experiment "analyze/ablation" (analyze_report ~fast);
  experiment "extension/sanitizers" sanitizers_report;
  experiment "cache_ablation" (cache_ablation_report ~fast);
  experiment "symbolic_tier/ablation" (symbolic_tier_report ~fast);
  experiment "observability" (observability_report ~fast);
  (* wrapper entry "serve/harness"; the three arms record themselves
     as serve/cold, serve/warm, serve/concurrent *)
  experiment "serve/harness" serve_report;
  if json = None then run_bechamel ()
  else experiment "bechamel/microbench" run_bechamel;
  Option.iter write_json json;
  Fmt.pr "@.done.@."

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if List.mem "--diff" args then exit (diff_main args)
  else Telemetry.Events.with_sink (events_path ()) run_experiments
