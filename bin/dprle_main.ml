(* dprle — stand-alone constraint solver in the style of the tool the
   paper released: reads a constraint file, prints the disjunctive
   satisfying assignments (or "unsat"). *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_system path =
  match Dprle.Sysparse.parse_file path with
  | Ok system -> Ok system
  | Error e -> Error (Fmt.str "%s: %a" path Dprle.Sysparse.pp_error e)

let print_assignment index a ~witnesses_only =
  Fmt.pr "@[<v2>solution %d:@ " (index + 1);
  if witnesses_only then Fmt.pr "%a@ " Dprle.Assignment.pp_witnesses a
  else begin
    Fmt.pr "%a" Dprle.Assignment.pp a;
    Fmt.pr "witness: %a@ " Dprle.Assignment.pp_witnesses a
  end;
  Fmt.pr "@]@."

(* Worker span trees collected by a batch run, exported as extra trace
   lanes (tid 2, 3, ...) so concurrent activity lines up in the
   viewer. Filled by [batch_cmd] before the trace is emitted. *)
let trace_lanes : (string * Telemetry.Span.t) list ref = ref []

(* Run [f] under a span collector when any trace output was requested;
   write the Chrome trace_event JSON and/or print the indented tree to
   stderr. The writer runs from the [Span.collect_emit] finaliser, so
   a solve that raises (or is interrupted by Ctrl-C, which
   [Sys.catch_break] turns into an exception) still flushes the
   partial trace. A metrics snapshot diff of the traced region rides
   along under a "metrics" key — Chrome ignores unknown keys. *)
let with_trace ~trace ~trace_tree f =
  if trace = None && not trace_tree then f ()
  else begin
    let before = Telemetry.Metrics.Snapshot.of_default () in
    let emit span =
      Option.iter
        (fun path ->
          try
            let diff =
              Telemetry.Metrics.Snapshot.diff
                ~after:(Telemetry.Metrics.Snapshot.of_default ())
                ~before
            in
            let base =
              match !trace_lanes with
              | [] -> Telemetry.Span.to_chrome_json span
              | lanes -> Telemetry.Span.to_chrome_json_lanes ~lanes span
            in
            let json =
              match base with
              | Telemetry.Json.Obj fields ->
                  Telemetry.Json.Obj
                    (fields
                    @ [ ("metrics", Telemetry.Metrics.Snapshot.to_json diff) ])
              | other -> other
            in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Telemetry.Json.to_string json))
          with Sys_error msg -> Fmt.epr "error: cannot write trace: %s@." msg)
        trace;
      if trace_tree then begin
        Fmt.epr "%a" Telemetry.Span.pp_tree span;
        List.iter
          (fun (_, lane) -> Fmt.epr "%a" Telemetry.Span.pp_tree lane)
          !trace_lanes
      end
    in
    Telemetry.Span.collect_emit ~name:"dprle" ~emit f
  end

let budget_of ~budget_ms ~budget_states =
  Automata.Budget.make ?wall_ms:budget_ms ?max_states:budget_states ()

(* Claim-order weight for the engine's size-sorted scheduling: file
   byte size is a cheap, deterministic proxy for solve cost. *)
let file_weight path =
  try Int64.to_int (In_channel.with_open_bin path In_channel.length)
  with Sys_error _ -> 0

(* A failed job's backtrace (recorded only when tracing turned
   [Printexc.record_backtrace] on) goes to stderr so the deterministic
   stdout stays byte-identical across --jobs values. *)
let print_failure_backtrace file (f : Engine.failure) =
  Option.iter
    (fun bt -> Fmt.epr "%s: failure backtrace:@,%s@." file bt)
    f.backtrace

(* ------------------------------------------------------------------ *)
(* Observability plumbing shared by the subcommands: [--events FILE]
   opens the JSONL sink around the whole command (closed and flushed
   via Fun.protect, so a crash keeps every emitted line), and
   [--metrics] dumps the final registry snapshot — deterministic text:
   counts only, no nanoseconds — to stderr on the way out. *)

module Snapshot = Telemetry.Metrics.Snapshot

let with_observability ~metrics ~events f =
  Telemetry.Events.with_sink events @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      if metrics then Fmt.epr "%a" Snapshot.pp (Snapshot.of_default ()))
    f

let sum_counters diff name =
  List.fold_left
    (fun acc (n, _, v) -> if n = name then acc + v else acc)
    0 (Snapshot.counters diff)

(* Common tail fields of a per-solve event: total attributed timer
   self-time plus the store's hit/miss deltas over the bracket. *)
let obs_fields diff =
  let module J = Telemetry.Json in
  let timer_self_total =
    List.fold_left
      (fun acc (_, _, (s : Snapshot.timer_stat)) -> Int64.add acc s.self_ns)
      0L (Snapshot.timers diff)
  in
  [
    ("timer_self_ns_total", J.Int (Int64.to_int timer_self_total));
    ( "store",
      J.Obj
        [
          ("intern_hit", J.Int (sum_counters diff "store.intern.hit"));
          ("intern_miss", J.Int (sum_counters diff "store.intern.miss"));
          ("opcache_hit", J.Int (sum_counters diff "store.opcache.hit"));
          ("opcache_miss", J.Int (sum_counters diff "store.opcache.miss"));
        ] );
  ]

let solve_cmd path first max_solutions combination_limit budget_ms budget_states
    witnesses_only dot smtlib stats trace trace_tree no_cache no_symbolic
    analyze metrics events verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  with_observability ~metrics ~events @@ fun () ->
  match read_system path with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok system -> (
      let config =
        Dprle.Solver.Config.make
          ~max_solutions:(if first then 1 else max_solutions)
          ~combination_limit
          ~budget:(budget_of ~budget_ms ~budget_states)
          ~analyze ()
      in
      let before_obs = Snapshot.of_default () in
      let emit_solve ~outcome ~solutions =
        let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before:before_obs in
        Telemetry.Events.emit_global ~kind:"solve"
          ([
             ("file", Telemetry.Json.String path);
             ("outcome", Telemetry.Json.String outcome);
             ("solutions", Telemetry.Json.Int solutions);
           ]
          @ obs_fields diff)
      in
      let solved =
        with_trace ~trace ~trace_tree @@ fun () ->
        let graph = Dprle.Depgraph.of_system system in
        (match dot with
        | None -> ()
        | Some dot_path ->
            Out_channel.with_open_text dot_path (fun oc ->
                Out_channel.output_string oc (Dprle.Depgraph.to_dot graph)));
        (match smtlib with
        | None -> ()
        | Some smt_path ->
            Out_channel.with_open_text smt_path (fun oc ->
                Out_channel.output_string oc (Dprle.Smtlib.of_system system)));
        if stats then
          Result.map
            (fun (outcome, report) -> (outcome, Some report))
            (Dprle.Report.solve_with_report ~config graph)
        else
          Result.map
            (fun outcome -> (outcome, None))
            (Dprle.Solver.run_graph config graph)
      in
      match solved with
      | Error err ->
          emit_solve ~outcome:"budget_exceeded" ~solutions:0;
          Fmt.epr "error: %a@." Dprle.Solver.Error.pp err;
          4
      | Ok (outcome, report) -> (
          Option.iter (fun r -> Fmt.pr "%a@.@." Dprle.Report.pp r) report;
          match outcome with
          | Dprle.Solver.Unsat { reason; _ } ->
              emit_solve ~outcome:"unsat" ~solutions:0;
              Fmt.pr "unsat: %s@." (Dprle.Solver.unsat_message reason);
              1
          | Dprle.Solver.Sat solutions ->
              emit_solve ~outcome:"sat" ~solutions:(List.length solutions);
              Fmt.pr "sat: %d disjunctive solution(s)@."
                (List.length solutions);
              List.iteri
                (fun i a -> print_assignment i a ~witnesses_only)
                solutions;
              0))

let check_cmd path budget_ms budget_states no_cache no_symbolic analyze
    metrics events verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  with_observability ~metrics ~events @@ fun () ->
  match read_system path with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok system -> (
      let config =
        Dprle.Solver.Config.make ~max_solutions:1
          ~budget:(budget_of ~budget_ms ~budget_states)
          ~analyze ()
      in
      match Dprle.Solver.run config system with
      | Error err ->
          Fmt.epr "error: %a@." Dprle.Solver.Error.pp err;
          4
      | Ok (Dprle.Solver.Sat _) ->
          Fmt.pr "sat@.";
          0
      | Ok (Dprle.Solver.Unsat { reason; _ }) ->
          Fmt.pr "unsat: %s@." (Dprle.Solver.unsat_message reason);
          1)

(* Static lint: every check in [Dprle.Static], not just the empty-rhs
   warning [Solver.run] emits on its own. No solving happens — the
   heaviest work is one depgraph build plus memoized inclusions. *)
let lint_cmd path dot no_symbolic verbose =
  setup_logs verbose;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  match read_system path with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok system ->
      (match dot with
      | None -> ()
      | Some dot_path ->
          Out_channel.with_open_text dot_path (fun oc ->
              Out_channel.output_string oc
                (Dprle.Depgraph.to_dot (Dprle.Depgraph.of_system system))));
      let findings = Dprle.Static.lint system in
      List.iter (fun f -> Fmt.pr "%a@." Dprle.Static.pp_finding f) findings;
      if findings = [] then begin
        Fmt.pr "no findings@.";
        0
      end
      else 1

(* The pre-solve analyzer as its own subcommand: run the four static
   passes — normalize, bounds, discharge, slice — and print what each
   did, without ever invoking the solver proper. The blame a bare
   "unsat" cannot give lives here: a refuted system reports its
   1-minimal core. *)
let analyze_cmd path goals dot no_symbolic verbose =
  setup_logs verbose;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  match read_system path with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok system -> (
      match Dprle.Analyze.run ~goals system with
      | exception Invalid_argument msg ->
          Fmt.epr "error: %s@." msg;
          2
      | a ->
          let open Dprle.Analyze in
          let stats = a.stats in
          let n_in = List.length (Dprle.System.constraints system) in
          Fmt.pr "system: %d constraint(s), %d variable(s)@." n_in
            (List.length (Dprle.System.variables system));
          Fmt.pr "normalize: %d aliased, %d folded, %d deduped@." stats.aliased
            stats.folded stats.deduped;
          List.iter
            (fun (v, b) ->
              Fmt.pr "bound: %s <- %d contribution(s)%a@." v b.contributions
                Fmt.(
                  option (fun ppf w -> pf ppf ", shortest witness %S" w))
                b.witness)
            a.bounds;
          Fmt.pr "discharged: %d implied constraint(s)@." stats.discharged;
          (match stats.sliced_vars with
          | [] -> ()
          | vs ->
              Fmt.pr "sliced: %d constraint(s) over goal-independent \
                      variable(s) %s@."
                stats.sliced_constraints (String.concat ", " vs));
          (match dot with
          | None -> ()
          | Some dot_path ->
              (* the original graph, with the post-slice cone filled:
                 what survives for the solver vs. what the goals never
                 reach *)
              let cone =
                List.map
                  (fun v -> Dprle.Depgraph.Var v)
                  (Dprle.System.variables a.system)
              in
              Out_channel.with_open_text dot_path (fun oc ->
                  Out_channel.output_string oc
                    (Dprle.Depgraph.to_dot ~highlight:cone
                       (Dprle.Depgraph.of_system system))));
          (match a.refute with
          | Some { cause; core } ->
              Fmt.pr "verdict: unsat — %a@." pp_cause cause;
              Fmt.pr "core: %s@."
                (String.concat "; "
                   (List.map (Fmt.str "%a" Dprle.System.pp_constr) core));
              1
          | None ->
              Fmt.pr "verdict: unknown — %d constraint(s) remain for the \
                      solver@."
                (List.length (Dprle.System.constraints a.system));
              0))

(* ------------------------------------------------------------------ *)
(* Profile: run a workload under full cost accounting, then print the
   attribution this subcommand exists for — the top ops by self time,
   the per-tier breakdown, and the store's cache-effectiveness ledger
   (ROADMAP item 3's "which caches pay for themselves" signal). *)

let pp_op_labels ppf = function
  | [] -> ()
  | l ->
      Fmt.pf ppf "{%s}"
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l))

let print_profile ~top diff =
  let timers =
    List.filter
      (fun (_, _, (s : Snapshot.timer_stat)) -> s.count > 0)
      (Snapshot.timers diff)
  in
  let ms ns = Int64.to_float ns /. 1e6 in
  let by_self =
    List.sort
      (fun (_, _, (a : Snapshot.timer_stat)) (_, _, (b : Snapshot.timer_stat)) ->
        Int64.compare b.self_ns a.self_ns)
      timers
  in
  Fmt.pr "== top ops by self time ==@.";
  Fmt.pr "%-42s %10s %12s %12s %12s@." "op" "count" "self(ms)" "total(ms)"
    "max(ms)";
  List.iteri
    (fun i (name, labels, (s : Snapshot.timer_stat)) ->
      if i < top then
        Fmt.pr "%-42s %10d %12.3f %12.3f %12.3f@."
          (Fmt.str "%s%a" name pp_op_labels labels)
          s.count (ms s.self_ns) (ms s.total_ns) (ms s.max_ns))
    by_self;
  let tiers = Hashtbl.create 8 in
  List.iter
    (fun (name, _, (s : Snapshot.timer_stat)) ->
      let tier =
        match String.index_opt name '.' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      let cur = Option.value (Hashtbl.find_opt tiers tier) ~default:0L in
      Hashtbl.replace tiers tier (Int64.add cur s.self_ns))
    timers;
  let total = Hashtbl.fold (fun _ v acc -> Int64.add acc v) tiers 0L in
  Fmt.pr "@.== self time by tier ==@.";
  List.iter
    (fun (tier, ns) ->
      Fmt.pr "%-12s %12.3f ms %6.1f%%@." tier (ms ns)
        (if total = 0L then 0.
         else 100. *. Int64.to_float ns /. Int64.to_float total))
    (List.sort
       (fun (_, a) (_, b) -> Int64.compare b a)
       (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tiers []));
  Fmt.pr "@.== cache-effectiveness ledger ==@.";
  Fmt.pr "%a" Automata.Store.Ledger.pp (Automata.Store.Ledger.of_snapshot diff)

(* The corpus workload mirrors webcheck's pipeline — dataflow
   fixpoint, then symbolic execution, then solves for the sinks the
   fixpoint could not discharge — so every instrumented tier shows up
   in the attribution. *)
let profile_corpus name =
  match
    List.find_opt (fun a -> a.Corpus.Fig11.name = name) Corpus.Fig11.apps
  with
  | None ->
      Error
        (Fmt.str "unknown corpus %S (have: %s)" name
           (String.concat ", "
              (List.map (fun a -> a.Corpus.Fig11.name) Corpus.Fig11.apps)))
  | Some app ->
      Ok
        (fun () ->
          let attack = Corpus.Fig12.attack in
          List.iter
            (fun (_, program) ->
              let safe_ids =
                Analysis.Fixpoint.safe_sink_ids
                  (Analysis.Fixpoint.analyze ~attack program)
              in
              let { Webapp.Symexec.candidates; _ } =
                Webapp.Symexec.analyze ~max_paths:256 ~attack program
              in
              List.iter
                (fun q ->
                  if not (List.mem q.Webapp.Symexec.sink_id safe_ids) then
                    ignore (Webapp.Symexec.solve q))
                candidates)
            (Corpus.Fig11.generate app))

let profile_files path () =
  let files =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".dprle")
      |> List.sort compare
      |> List.map (Filename.concat path)
    else [ path ]
  in
  List.iter
    (fun file ->
      match Dprle.Sysparse.parse_file file with
      | Error e -> Fmt.epr "warning: %s: %a@." file Dprle.Sysparse.pp_error e
      | Ok system ->
          ignore (Dprle.Solver.run Dprle.Solver.Config.default system))
    files

let profile_cmd target corpus top metrics events no_cache no_symbolic
    verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  with_observability ~metrics ~events @@ fun () ->
  let workload =
    match (corpus, target) with
    | Some name, _ -> profile_corpus name
    | None, Some path when Sys.file_exists path -> Ok (profile_files path)
    | None, Some path -> Error (Fmt.str "%s: no such file or directory" path)
    | None, None -> profile_corpus "eve"
  in
  match workload with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok run ->
      let before = Snapshot.of_default () in
      run ();
      let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
      print_profile ~top diff;
      0

(* --wire mode: the positional argument is a JSONL file of
   dprle-wire/1 request frames ("-" = stdin); responses stream to
   stdout through the same codec the daemon uses. Requests run
   sequentially in-process, so consecutive frames share one warm
   domain-local store — the single-shot twin of [dprle serve]. *)
let run_wire source =
  let input =
    if source = "-" then Ok (In_channel.input_all stdin)
    else if Sys.file_exists source && not (Sys.is_directory source) then
      Ok (In_channel.with_open_text source In_channel.input_all)
    else Error (Fmt.str "%s: no such file" source)
  in
  match input with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok text ->
      let ok = ref 0 and errors = ref 0 in
      List.iter
        (fun line ->
          if String.trim line <> "" then begin
            let resp =
              match Api.decode_request line with
              | Error rej ->
                  incr errors;
                  Api.error_response ~id:"" rej
              | Ok req -> (
                  let resp = Serve.Handler.handle req in
                  (match resp.Api.Response.payload with
                  | Api.Response.Error _ -> incr errors
                  | _ -> incr ok);
                  resp)
            in
            print_string (Api.encode_response resp);
            print_newline ()
          end)
        (String.split_on_char '\n' text);
      Fmt.epr "%d response(s), %d error(s)@." (!ok + !errors) !errors;
      if !errors > 0 then 1 else 0

(* Batch mode: every .dprle file in a directory, fanned out over the
   engine's worker pool. Per-file results print in file-name order no
   matter how many workers ran, so the output is byte-identical for
   any --jobs value; timing goes to stderr. *)
let batch_cmd dir wire jobs budget_ms budget_states max_solutions
    combination_limit trace trace_tree no_cache no_symbolic analyze metrics
    events verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  with_observability ~metrics ~events @@ fun () ->
  if wire then run_wire dir
  else if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Fmt.epr "error: %s: not a directory@." dir;
    2
  end
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".dprle")
      |> List.sort compare
    in
    if files = [] then begin
      Fmt.epr "error: no .dprle files in %s@." dir;
      2
    end
    else
      with_trace ~trace ~trace_tree @@ fun () ->
      if trace <> None || trace_tree then Printexc.record_backtrace true;
      let config =
        Dprle.Solver.Config.make ~max_solutions ~combination_limit ~analyze ()
      in
      let solve_file _worker file =
        match Dprle.Sysparse.parse_file (Filename.concat dir file) with
        | Error e -> `Parse_error (Fmt.str "%a" Dprle.Sysparse.pp_error e)
        | Ok system -> (
            match Dprle.Solver.run config system with
            | Ok (Dprle.Solver.Sat solutions) -> `Sat (List.length solutions)
            | Ok (Dprle.Solver.Unsat { reason; _ }) -> `Unsat reason
            | Error (Dprle.Solver.Error.Budget_exceeded stop) ->
                (* the job's ambient engine budget fired mid-solve and
                   [Solver.run] caught it; hand it back to the engine
                   so every budget trip classifies the same way *)
                raise (Automata.Budget.Exceeded stop))
      in
      let results, stats =
        Engine.map ?jobs
          ~budget:(budget_of ~budget_ms ~budget_states)
          ~name:"batch"
          ~weight:(fun file -> file_weight (Filename.concat dir file))
          ~f:solve_file files
      in
      trace_lanes := stats.Engine.worker_spans;
      let sat = ref 0
      and unsat = ref 0
      and parse_errors = ref 0
      and budget_hits = ref 0
      and failures = ref 0 in
      List.iter2
        (fun file (r : _ Engine.job_result) ->
          match r.outcome with
          | Engine.Done (`Sat n) ->
              incr sat;
              Fmt.pr "%s: sat (%d solution(s))@." file n
          | Engine.Done (`Unsat reason) ->
              incr unsat;
              Fmt.pr "%s: unsat — %s@." file (Dprle.Solver.unsat_message reason)
          | Engine.Done (`Parse_error msg) ->
              incr parse_errors;
              Fmt.pr "%s: parse error: %s@." file msg
          | Engine.Timeout ->
              incr budget_hits;
              Fmt.pr "%s: budget exceeded: timeout@." file
          | Engine.Budget_exceeded ->
              incr budget_hits;
              Fmt.pr "%s: budget exceeded: state budget exhausted@." file
          | Engine.Failed failure ->
              incr failures;
              Fmt.pr "%s: internal failure: %s@." file failure.Engine.message;
              if trace <> None || trace_tree then
                print_failure_backtrace file failure)
        files results;
      List.iter2
        (fun file (r : _ Engine.job_result) ->
          let outcome =
            match r.outcome with
            | Engine.Done (`Sat _) -> "sat"
            | Engine.Done (`Unsat _) -> "unsat"
            | Engine.Done (`Parse_error _) -> "parse_error"
            | Engine.Timeout -> "timeout"
            | Engine.Budget_exceeded -> "budget_exceeded"
            | Engine.Failed _ -> "failed"
          in
          Telemetry.Events.emit_global ~kind:"job"
            [
              ("file", Telemetry.Json.String file);
              ("outcome", Telemetry.Json.String outcome);
              ("worker", Telemetry.Json.Int r.worker);
              ("elapsed_ns", Telemetry.Json.Int (Int64.to_int r.elapsed_ns));
            ])
        files results;
      Fmt.pr "=== %d system(s): %d sat, %d unsat, %d parse error(s), %d over \
              budget, %d failure(s) ===@."
        (List.length files) !sat !unsat !parse_errors !budget_hits !failures;
      Fmt.epr "solved in %.3f s with %d worker(s)@."
        (Int64.to_float stats.Engine.wall_ns /. 1e9)
        stats.Engine.workers;
      if !failures > 0 then 5
      else if !parse_errors > 0 then 3
      else if !budget_hits > 0 then 4
      else 0
  end

(* Resident daemon: bind the wire socket, serve until a shutdown
   frame. Human-facing chatter goes to stderr; stdout stays empty (the
   protocol lives on the socket). *)
let serve_cmd listen jobs max_frame_bytes max_queue batch_max metrics events
    verbose =
  setup_logs verbose;
  with_observability ~metrics ~events @@ fun () ->
  match Serve.Server.listen_of_string listen with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok l -> (
      let cfg =
        {
          (Serve.Server.default_config l) with
          Serve.Server.jobs;
          max_frame_bytes;
          max_queue;
          batch_max;
        }
      in
      let on_ready _ =
        Fmt.epr "dprle: listening on %a@." Serve.Server.pp_listen l
      in
      match Serve.Server.run ~on_ready cfg with
      | outcome ->
          Fmt.epr "dprle: served %d request(s), %d rejected, %d malformed@."
            outcome.Serve.Server.served outcome.Serve.Server.rejected
            outcome.Serve.Server.malformed;
          0
      | exception Unix.Unix_error (e, fn, arg) ->
          Fmt.epr "error: %s: %s(%s)@." (Unix.error_message e) fn arg;
          2)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Constraint file.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let budget_ms_arg =
  Arg.(
    value & opt (some int) None
    & info [ "budget-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget per solve in milliseconds; an over-budget solve \
           stops with a structured budget-exceeded outcome (exit code 4).")

let budget_states_arg =
  Arg.(
    value & opt (some int) None
    & info [ "budget-states" ] ~docv:"N"
        ~doc:
          "Cap on product/subset states materialized per solve; exceeding it \
           stops the solve with a budget-exceeded outcome (exit code 4).")

let max_solutions_arg =
  Arg.(
    value & opt int 256
    & info [ "max-solutions" ] ~docv:"N" ~doc:"Cap on disjunctive solutions.")

let combination_limit_arg =
  Arg.(
    value & opt int 4096
    & info [ "combination-limit" ] ~docv:"N"
        ~doc:"Cap on ε-cut combinations explored per CI-group.")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the solve (open in \
           chrome://tracing or Perfetto).")

let trace_tree_arg =
  Arg.(
    value & flag
    & info [ "trace-tree" ] ~doc:"Print the span tree of the solve to stderr.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the interned language store and all memoized automata \
           operations (cache ablation; identical output, more work).")

let no_symbolic_arg =
  Arg.(
    value & flag
    & info [ "no-symbolic" ]
        ~doc:
          "Disable the symbolic derivative tier of the query front-end: \
           every language query is answered by the automata kernels \
           (ablation; identical verdicts, different tier counters).")

let analyze_flag_arg =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "analyze" ]
              ~doc:
                "Run the pre-solve static analysis (normalize, bounds \
                 propagation, discharge, slicing) before building any \
                 group machine. This is the default." );
          ( false,
            info [ "no-analyze" ]
              ~doc:
                "Skip the pre-solve static analysis and hand the system \
                 to the solver untouched (ablation; verdicts are \
                 identical, only blame and work differ)." );
        ])

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump the final metrics registry snapshot to stderr on exit \
           (deterministic sorted text; timers report call counts only).")

let events_arg =
  Arg.(
    value & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Append one JSONL event record per solve/job to $(docv) (schema \
           dprle-events/1; the file survives crashes — each line is flushed).")

let solve_term =
  let first =
    Arg.(value & flag & info [ "first" ] ~doc:"Stop at the first solution.")
  in
  let witnesses_only =
    Arg.(
      value & flag
      & info [ "witnesses" ] ~doc:"Print only witness strings, not languages.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the dependency graph as DOT.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print solver instrumentation.")
  in
  let smtlib =
    Arg.(
      value & opt (some string) None
      & info [ "smtlib" ] ~docv:"FILE"
          ~doc:"Export the system as an SMT-LIB 2.6 strings-theory script.")
  in
  Term.(
    const solve_cmd $ path_arg $ first $ max_solutions_arg
    $ combination_limit_arg $ budget_ms_arg $ budget_states_arg
    $ witnesses_only $ dot $ smtlib $ stats $ trace_arg $ trace_tree_arg
    $ no_cache_arg $ no_symbolic_arg $ analyze_flag_arg $ metrics_arg
    $ events_arg $ verbose_arg)

let batch_term =
  let dir_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory of .dprle constraint files — or, with $(b,--wire), a \
             JSONL file of dprle-wire/1 request frames ($(b,-) = stdin).")
  in
  let wire_arg =
    Arg.(
      value & flag
      & info [ "wire" ]
          ~doc:
            "Wire mode: read dprle-wire/1 request frames (one JSON object \
             per line) from $(i,DIR) and write one response frame per line \
             to stdout — the same codec the $(b,serve) daemon speaks. \
             Requests run sequentially in-process and carry their own \
             budgets; $(b,--budget-ms)/$(b,--budget-states) are ignored.")
  in
  let jobs =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: the runtime's recommended domain \
             count). Output is byte-identical for any value.")
  in
  Term.(
    const batch_cmd $ dir_arg $ wire_arg $ jobs $ budget_ms_arg
    $ budget_states_arg $ max_solutions_arg $ combination_limit_arg
    $ trace_arg $ trace_tree_arg $ no_cache_arg $ no_symbolic_arg
    $ analyze_flag_arg $ metrics_arg $ events_arg $ verbose_arg)

let profile_term =
  let target =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:
            "A .dprle file or a directory of them; when omitted, \
             $(b,--corpus) selects the workload (default: eve).")
  in
  let corpus =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"NAME"
          ~doc:
            "Profile a synthetic fig. 11 corpus application through the full \
             pipeline: dataflow fixpoint, symbolic execution, and solves for \
             the undischarged sinks.")
  in
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the self-time table.")
  in
  Term.(
    const profile_cmd $ target $ corpus $ top $ metrics_arg $ events_arg
    $ no_cache_arg $ no_symbolic_arg $ verbose_arg)

let solve_exits =
  [
    Cmd.Exit.info 0 ~doc:"on a satisfiable system.";
    Cmd.Exit.info 1 ~doc:"on an unsatisfiable system.";
    Cmd.Exit.info 2 ~doc:"on a parse error (position reported on stderr).";
    Cmd.Exit.info 4 ~doc:"when the $(b,--budget-ms)/$(b,--budget-states) \
                          budget was exhausted before a verdict.";
  ]
  @ Cmd.Exit.defaults

let batch_exits =
  [
    Cmd.Exit.info 0 ~doc:"when every system was decided.";
    Cmd.Exit.info 2 ~doc:"when $(i,DIR) is missing or holds no .dprle files.";
    Cmd.Exit.info 3 ~doc:"when at least one file failed to parse.";
    Cmd.Exit.info 4 ~doc:"when at least one solve exceeded its budget (and \
                          none failed to parse).";
    Cmd.Exit.info 5 ~doc:"when at least one job raised an internal error.";
  ]
  @ Cmd.Exit.defaults

let solve_cmd_info =
  Cmd.info "solve" ~exits:solve_exits
    ~doc:"Solve a system of subset constraints over regular languages."

let check_cmd_info =
  Cmd.info "check" ~exits:solve_exits
    ~doc:"Report only satisfiability (exit code 0/1)."

let lint_exits =
  [
    Cmd.Exit.info 0 ~doc:"when no findings were reported.";
    Cmd.Exit.info 1 ~doc:"when at least one finding was reported.";
    Cmd.Exit.info 2 ~doc:"on a parse error (position reported on stderr).";
  ]
  @ Cmd.Exit.defaults

let lint_cmd_info =
  Cmd.info "lint" ~exits:lint_exits
    ~doc:
      "Run every pre-solve static check (empty bounding constants, \
       constant-only contradictions, analyzer unsat cores, unconstrained \
       variables, coupled CI-groups) without solving."

let lint_dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write the dependency graph as DOT alongside the findings.")

let analyze_term =
  let goals =
    Arg.(
      value & opt_all string []
      & info [ "goal" ] ~docv:"VAR"
          ~doc:
            "Add $(docv) to the goal set for cone-of-influence slicing \
             (repeatable). Joined with any $(b,goal) statements in the \
             file; with no goals at all, slicing is disabled and every \
             constraint is kept.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the dependency graph of the original system as DOT, \
             with the post-analysis cone (the variables the solver would \
             still see) filled.")
  in
  Term.(
    const analyze_cmd $ path_arg $ goals $ dot $ no_symbolic_arg
    $ verbose_arg)

let analyze_cmd_info =
  Cmd.info "analyze" ~exits:lint_exits
    ~doc:
      "Run only the pre-solve static analysis — union-find alias \
       collapse, constant folding, regular bounds propagation, implied- \
       constraint discharge, and goal-directed slicing — and report what \
       each pass did. A statically refuted system exits 1 and prints its \
       1-minimal unsatisfiable core; anything else exits 0 with the \
       residue the solver proper would receive."

let profile_exits =
  [
    Cmd.Exit.info 0 ~doc:"when the workload ran.";
    Cmd.Exit.info 2 ~doc:"on an unknown corpus or missing $(i,PATH).";
  ]
  @ Cmd.Exit.defaults

let profile_cmd_info =
  Cmd.info "profile" ~exits:profile_exits
    ~doc:
      "Run a workload under cost accounting and print where the time went: \
       the top ops by self time, the per-tier breakdown, and the store's \
       cache-effectiveness ledger (net ns saved per memo table)."

let batch_cmd_info =
  Cmd.info "batch" ~exits:batch_exits
    ~doc:
      "Solve every .dprle file in a directory over a parallel worker pool. \
       Per-file results print in file-name order and are byte-identical for \
       any $(b,--jobs) value; timing goes to stderr. With $(b,--wire), \
       replay a JSONL file of dprle-wire/1 request frames instead."

let serve_term =
  let listen_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:)$(i,PATH), $(b,tcp:)$(i,HOST:PORT), \
             or a bare Unix-socket path.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains in the resident pool. The default 1 routes every \
             request through the same domain-local store, maximizing warm \
             intern/op-cache hits.")
  in
  let max_frame_arg =
    Arg.(
      value & opt int Api.default_max_frame_bytes
      & info [ "max-frame-bytes" ] ~docv:"N"
          ~doc:"Reject request frames larger than $(docv) bytes.")
  in
  let max_queue_arg =
    Arg.(
      value & opt int 256
      & info [ "max-queue" ] ~docv:"N"
          ~doc:"Hard cap on queued requests; beyond it everything is rejected.")
  in
  let batch_max_arg =
    Arg.(
      value & opt int 32
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Queued requests dispatched per pool batch.")
  in
  Term.(
    const serve_cmd $ listen_arg $ jobs_arg $ max_frame_arg $ max_queue_arg
    $ batch_max_arg $ metrics_arg $ events_arg $ verbose_arg)

let serve_cmd_info =
  Cmd.info "serve"
    ~exits:
      ([
         Cmd.Exit.info 0 ~doc:"on a clean shutdown (drained by a shutdown frame).";
         Cmd.Exit.info 2 ~doc:"when the listen address is invalid or cannot be bound.";
       ]
      @ Cmd.Exit.defaults)
    ~doc:
      "Run the resident solver daemon: line-delimited dprle-wire/1 JSON \
       frames over a Unix-domain or TCP socket, dispatched onto a \
       persistent worker pool whose interned-language store stays warm \
       across requests. HTTP scrapers (a connection starting with \
       $(b,GET )) receive a Prometheus-format metrics snapshot."

let main_info =
  Cmd.info "dprle" ~version:"1.0.0"
    ~doc:
      "Decision procedure for subset constraints over regular languages \
       (Hooimeijer & Weimer, PLDI 2009)."

let () =
  (* Ctrl-C raises [Sys.Break] instead of killing the process, so the
     [with_trace] finaliser can flush a partial trace first. *)
  Sys.catch_break true;
  exit
    (Cmd.eval'
       (Cmd.group main_info
          [
            Cmd.v solve_cmd_info solve_term;
            Cmd.v check_cmd_info
              Term.(
                const check_cmd $ path_arg $ budget_ms_arg $ budget_states_arg
                $ no_cache_arg $ no_symbolic_arg $ analyze_flag_arg
                $ metrics_arg $ events_arg $ verbose_arg);
            Cmd.v batch_cmd_info batch_term;
            Cmd.v lint_cmd_info
              Term.(
                const lint_cmd $ path_arg $ lint_dot_arg $ no_symbolic_arg
                $ verbose_arg);
            Cmd.v analyze_cmd_info analyze_term;
            Cmd.v profile_cmd_info profile_term;
            Cmd.v serve_cmd_info serve_term;
          ]))
