(* dprle — stand-alone constraint solver in the style of the tool the
   paper released: reads a constraint file, prints the disjunctive
   satisfying assignments (or "unsat"). *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_system path =
  match Dprle.Sysparse.parse_file path with
  | Ok system -> Ok system
  | Error e -> Error (Fmt.str "%s: %a" path Dprle.Sysparse.pp_error e)

let print_assignment index a ~witnesses_only =
  Fmt.pr "@[<v2>solution %d:@ " (index + 1);
  if witnesses_only then Fmt.pr "%a@ " Dprle.Assignment.pp_witnesses a
  else begin
    Fmt.pr "%a" Dprle.Assignment.pp a;
    Fmt.pr "witness: %a@ " Dprle.Assignment.pp_witnesses a
  end;
  Fmt.pr "@]@."

(* Run [f] under a span collector when any trace output was requested;
   write the Chrome trace_event JSON and/or print the indented tree to
   stderr. The writer runs from the [Span.collect_emit] finaliser, so
   a solve that raises (or is interrupted by Ctrl-C, which
   [Sys.catch_break] turns into an exception) still flushes the
   partial trace. A metrics snapshot diff of the traced region rides
   along under a "metrics" key — Chrome ignores unknown keys. *)
let with_trace ~trace ~trace_tree f =
  if trace = None && not trace_tree then f ()
  else begin
    let before = Telemetry.Metrics.Snapshot.of_default () in
    let emit span =
      Option.iter
        (fun path ->
          try
            let diff =
              Telemetry.Metrics.Snapshot.diff
                ~after:(Telemetry.Metrics.Snapshot.of_default ())
                ~before
            in
            let json =
              match Telemetry.Span.to_chrome_json span with
              | Telemetry.Json.Obj fields ->
                  Telemetry.Json.Obj
                    (fields
                    @ [ ("metrics", Telemetry.Metrics.Snapshot.to_json diff) ])
              | other -> other
            in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Telemetry.Json.to_string json))
          with Sys_error msg -> Fmt.epr "error: cannot write trace: %s@." msg)
        trace;
      if trace_tree then Fmt.epr "%a" Telemetry.Span.pp_tree span
    in
    Telemetry.Span.collect_emit ~name:"dprle" ~emit f
  end

let solve_cmd path first max_solutions combination_limit witnesses_only dot
    smtlib stats trace trace_tree no_cache verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  match read_system path with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok system -> (
      let max_solutions = if first then 1 else max_solutions in
      let outcome, report =
        with_trace ~trace ~trace_tree @@ fun () ->
        let graph = Dprle.Depgraph.of_system system in
        (match dot with
        | None -> ()
        | Some dot_path ->
            Out_channel.with_open_text dot_path (fun oc ->
                Out_channel.output_string oc (Dprle.Depgraph.to_dot graph)));
        (match smtlib with
        | None -> ()
        | Some smt_path ->
            Out_channel.with_open_text smt_path (fun oc ->
                Out_channel.output_string oc (Dprle.Smtlib.of_system system)));
        if stats then
          let outcome, report =
            Dprle.Report.solve_with_report ~max_solutions ~combination_limit graph
          in
          (outcome, Some report)
        else (Dprle.Solver.solve ~max_solutions ~combination_limit graph, None)
      in
      Option.iter (fun r -> Fmt.pr "%a@.@." Dprle.Report.pp r) report;
      match outcome with
      | Dprle.Solver.Unsat reason ->
          Fmt.pr "unsat: %s@." reason;
          1
      | Dprle.Solver.Sat solutions ->
          Fmt.pr "sat: %d disjunctive solution(s)@." (List.length solutions);
          List.iteri (fun i a -> print_assignment i a ~witnesses_only) solutions;
          0)

let check_cmd path no_cache verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  match read_system path with
  | Error msg ->
      Fmt.epr "error: %s@." msg;
      2
  | Ok system -> (
      match Dprle.Solver.solve_system ~max_solutions:1 system with
      | Dprle.Solver.Sat _ ->
          Fmt.pr "sat@.";
          0
      | Dprle.Solver.Unsat reason ->
          Fmt.pr "unsat: %s@." reason;
          1)

open Cmdliner

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Constraint file.")

let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the interned language store and all memoized automata \
           operations (cache ablation; identical output, more work).")

let solve_term =
  let first =
    Arg.(value & flag & info [ "first" ] ~doc:"Stop at the first solution.")
  in
  let max_solutions =
    Arg.(
      value & opt int 256
      & info [ "max-solutions" ] ~docv:"N" ~doc:"Cap on disjunctive solutions.")
  in
  let combination_limit =
    Arg.(
      value & opt int 4096
      & info [ "combination-limit" ] ~docv:"N"
          ~doc:"Cap on ε-cut combinations explored per CI-group.")
  in
  let witnesses_only =
    Arg.(
      value & flag
      & info [ "witnesses" ] ~doc:"Print only witness strings, not languages.")
  in
  let dot =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the dependency graph as DOT.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print solver instrumentation.")
  in
  let smtlib =
    Arg.(
      value & opt (some string) None
      & info [ "smtlib" ] ~docv:"FILE"
          ~doc:"Export the system as an SMT-LIB 2.6 strings-theory script.")
  in
  let trace =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the solve (open in \
             chrome://tracing or Perfetto).")
  in
  let trace_tree =
    Arg.(
      value & flag
      & info [ "trace-tree" ]
          ~doc:"Print the span tree of the solve to stderr.")
  in
  Term.(
    const solve_cmd $ path_arg $ first $ max_solutions $ combination_limit
    $ witnesses_only $ dot $ smtlib $ stats $ trace $ trace_tree $ no_cache_arg
    $ verbose_arg)

let solve_cmd_info =
  Cmd.info "solve" ~doc:"Solve a system of subset constraints over regular languages."

let check_cmd_info = Cmd.info "check" ~doc:"Report only satisfiability (exit code 0/1)."

let main_info =
  Cmd.info "dprle" ~version:"1.0.0"
    ~doc:
      "Decision procedure for subset constraints over regular languages \
       (Hooimeijer & Weimer, PLDI 2009)."

let () =
  (* Ctrl-C raises [Sys.Break] instead of killing the process, so the
     [with_trace] finaliser can flush a partial trace first. *)
  Sys.catch_break true;
  exit
    (Cmd.eval'
       (Cmd.group main_info
          [
            Cmd.v solve_cmd_info solve_term;
            Cmd.v check_cmd_info
              Term.(const check_cmd $ path_arg $ no_cache_arg $ verbose_arg);
          ]))
