(* dprle-loadgen — wire-protocol client for the dprle serve daemon.

   Three deterministic modes back the cram/CI smoke coverage (every
   line they print is a fixed string or a boolean, never a timing):

   - smoke:  solve / warm re-solve / lint / stats / shutdown
   - warm:   one cold solve, N identical warm solves, warm-vs-cold
             booleans from the per-response obs fields
   - chaos:  malformed, wrong-version, unknown-kind, and oversized
             frames, then a mid-request disconnect — each answered
             with the expected structured error, daemon provably alive

   The fourth, run, is the actual load generator: N client threads
   replaying a solve/check/lint mix, reporting throughput and
   latency percentiles (non-deterministic output, not cram'd). *)

let fig1_system =
  "let filter = /[\\d]+$/;\n\
   let prefix = \"nid_\";\n\
   let unsafe = /'/;\n\
   v1 <= filter;\n\
   prefix . v1 <= unsafe;\n"

let digits_system = "let filter = /[\\d]+$/;\nv1 <= filter;\n"

let req ?budget_ms ~id kind =
  { Api.Request.id; kind; budget_ms; budget_states = None }

let solve_kind system = Api.Request.Solve (Api.Request.solve_defaults ~system)

let die fmt = Fmt.kstr (fun msg -> Fmt.epr "error: %s@." msg; exit 2) fmt

let parse_listen s =
  match Serve.Server.listen_of_string s with
  | Ok l -> l
  | Error msg -> die "%s" msg

let must_connect listen =
  match Serve.Client.connect listen with
  | Ok c -> c
  | Error e -> die "cannot connect to %a: %s" Serve.Server.pp_listen listen e

let must_request c r =
  match Serve.Client.request c r with
  | Ok resp -> resp
  | Error e -> die "request %s: %s" r.Api.Request.id e

let tag (resp : Api.Response.t) = Api.Response.payload_name resp.payload

(* ------------------------------------------------------------------ *)

let smoke_cmd listen_s =
  let listen = parse_listen listen_s in
  let c = must_connect listen in
  let r1 = must_request c (req ~id:"s1" (solve_kind fig1_system)) in
  Fmt.pr "solve: %s@." (tag r1);
  let r2 = must_request c (req ~id:"s2" (solve_kind fig1_system)) in
  Fmt.pr "solve again: %s (intern hits > 0: %b)@." (tag r2)
    (r2.obs.Api.Response.intern_hits > 0);
  let r3 = must_request c (req ~id:"l1" (Api.Request.Lint fig1_system)) in
  (match r3.payload with
  | Api.Response.Lint_report { findings = [] } -> Fmt.pr "lint: no findings@."
  | Api.Response.Lint_report { findings } ->
      Fmt.pr "lint: %d finding(s)@." (List.length findings)
  | _ -> Fmt.pr "lint: %s@." (tag r3));
  let r4 = must_request c (req ~id:"st" Api.Request.Stats) in
  (match r4.payload with
  | Api.Response.Stats_report { requests; _ } ->
      Fmt.pr "stats: ok (requests > 0: %b)@." (requests > 0)
  | _ -> Fmt.pr "stats: %s@." (tag r4));
  let r5 = must_request c (req ~id:"sd" Api.Request.Shutdown) in
  (match r5.payload with
  | Api.Response.Shutdown_ack { drained } ->
      Fmt.pr "shutdown: acked (drained %d)@." drained
  | _ -> Fmt.pr "shutdown: %s@." (tag r5));
  Serve.Client.close c;
  0

(* ------------------------------------------------------------------ *)

let warm_cmd listen_s repeats =
  let listen = parse_listen listen_s in
  let c = must_connect listen in
  let solve id = must_request c (req ~id (solve_kind fig1_system)) in
  let cold = solve "cold" in
  Fmt.pr "cold: %s@." (tag cold);
  let warms = List.init repeats (fun i -> solve (Fmt.str "warm%d" i)) in
  let tags_agree = List.for_all (fun r -> tag r = tag cold) warms in
  Fmt.pr "warm: %s x%d@." (if tags_agree then tag cold else "MIXED") repeats;
  Fmt.pr "warm intern hits > 0: %b@."
    (List.for_all (fun (r : Api.Response.t) -> r.obs.Api.Response.intern_hits > 0) warms);
  (* the cold request pays first-time parsing, automata construction,
     and memo misses; comparing against the *fastest* warm repeat
     keeps scheduler noise out of the verdict *)
  let min_warm =
    List.fold_left
      (fun acc (r : Api.Response.t) -> min acc r.obs.Api.Response.elapsed_us)
      max_int warms
  in
  Fmt.pr "warm faster than cold: %b@."
    (min_warm < cold.obs.Api.Response.elapsed_us);
  Serve.Client.close c;
  0

(* ------------------------------------------------------------------ *)

let expect_error c ~what frame =
  (* An oversized frame can hit the daemon's cap mid-send: the server
     answers and cuts the connection while we are still writing, so the
     send may fail with EPIPE even though the structured error response
     is already queued for us. A failed send is therefore tolerated;
     the recv + decode below is the real assertion. *)
  (match Serve.Client.send_raw c (frame ^ "\n") with
  | Ok () | Error _ -> ());
  match Serve.Client.recv_line c with
  | None -> die "%s: no answer (connection closed)" what
  | Some line -> (
      match Api.decode_response ~max_bytes:(16 * 1024 * 1024) line with
      | Ok { payload = Api.Response.Error { code; _ }; _ } ->
          Fmt.pr "%s: answered (%s)@." what (Api.error_code_name code)
      | Ok resp -> Fmt.pr "%s: unexpected %s@." what (tag resp)
      | Error rej -> die "%s: undecodable answer: %a" what Api.pp_reject rej)

let chaos_cmd listen_s oversize =
  let listen = parse_listen listen_s in
  let c = must_connect listen in
  expect_error c ~what:"malformed frame" "this is not json";
  expect_error c ~what:"bad version"
    "{\"schema\":\"dprle-wire/99\",\"id\":\"x\",\"kind\":\"stats\"}";
  expect_error c ~what:"unknown kind"
    "{\"schema\":\"dprle-wire/1\",\"id\":\"x\",\"kind\":\"frobnicate\"}";
  expect_error c ~what:"oversized frame" (String.make oversize 'a');
  Serve.Client.close c;
  (* mid-request disconnect: fire a real solve and vanish before the
     answer; the daemon must complete the work and drop the response *)
  let c2 = must_connect listen in
  (match
     Serve.Client.send_raw c2
       (Api.encode_request (req ~id:"dropped" (solve_kind fig1_system)) ^ "\n")
   with
  | Ok () -> ()
  | Error e -> die "mid-request disconnect: send failed: %s" e);
  Serve.Client.close c2;
  let c3 = must_connect listen in
  let alive =
    match Serve.Client.request c3 (req ~id:"alive" Api.Request.Stats) with
    | Ok { payload = Api.Response.Stats_report _; _ } -> true
    | Ok _ | Error _ -> false
  in
  Fmt.pr "mid-request disconnect: survived: %b@." alive;
  let r = must_request c3 (req ~id:"final" (solve_kind fig1_system)) in
  Fmt.pr "still serving: %s@." (tag r);
  Serve.Client.close c3;
  0

(* ------------------------------------------------------------------ *)

let run_cmd listen_s conns requests =
  let listen = parse_listen listen_s in
  let mix =
    [|
      solve_kind fig1_system;
      Api.Request.Check digits_system;
      Api.Request.Lint fig1_system;
    |]
  in
  let total = conns * requests in
  let latencies_ns = Array.make (max 1 total) 0 in
  let errors = Atomic.make 0 in
  let worker t =
    let c = must_connect listen in
    for i = 0 to requests - 1 do
      let slot = (t * requests) + i in
      let kind = mix.(slot mod Array.length mix) in
      let t0 = Telemetry.Clock.now_ns () in
      (match Serve.Client.request c (req ~id:(Fmt.str "c%d-%d" t i) kind) with
      | Ok { payload = Api.Response.Error _; _ } | Error _ ->
          Atomic.incr errors
      | Ok _ -> ());
      latencies_ns.(slot) <-
        Int64.to_int (Int64.sub (Telemetry.Clock.now_ns ()) t0)
    done;
    Serve.Client.close c
  in
  let t0 = Telemetry.Clock.now_ns () in
  let threads = List.init conns (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  let wall_s =
    Int64.to_float (Int64.sub (Telemetry.Clock.now_ns ()) t0) /. 1e9
  in
  Array.sort compare latencies_ns;
  let pct p =
    let idx =
      min (total - 1) (int_of_float (float_of_int total *. p /. 100.))
    in
    float_of_int latencies_ns.(idx) /. 1e6
  in
  Fmt.pr "connections: %d, requests: %d, errors: %d@." conns total
    (Atomic.get errors);
  Fmt.pr "wall: %.3f s, throughput: %.1f req/s@." wall_s
    (float_of_int total /. wall_s);
  Fmt.pr "latency p50: %.3f ms, p99: %.3f ms@." (pct 50.) (pct 99.);
  if Atomic.get errors > 0 then 1 else 0

(* ------------------------------------------------------------------ *)

open Cmdliner

let listen_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:
          "Daemon address: $(b,unix:)$(i,PATH), $(b,tcp:)$(i,HOST:PORT), or \
           a bare Unix-socket path.")

let smoke_info =
  Cmd.info "smoke"
    ~doc:
      "Deterministic end-to-end exercise: solve, identical warm re-solve \
       (asserting warm intern hits), lint, stats, shutdown."

let warm_info =
  Cmd.info "warm"
    ~doc:
      "Warm-store demo: one cold solve then $(b,--repeats) identical warm \
       solves; prints warm-hit and warm-faster-than-cold booleans from the \
       per-response observability fields."

let chaos_info =
  Cmd.info "chaos"
    ~doc:
      "Protocol-abuse exercise: malformed, wrong-version, unknown-kind, and \
       oversized frames, then a mid-request disconnect; asserts the daemon \
       answers each with a structured error and keeps serving."

let run_info =
  Cmd.info "run"
    ~doc:
      "Load generator: $(b,-c) concurrent connections each replaying \
       $(b,-n) requests from a solve/check/lint mix; reports throughput \
       and p50/p99 latency."

let main_info =
  Cmd.info "dprle-loadgen" ~version:"1.0.0"
    ~doc:"Wire-protocol client and load generator for the dprle serve daemon."

let () =
  Sys.catch_break true;
  (* A disconnect-mid-send must surface as Error from Client.send_raw,
     not kill the process with SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let repeats_arg =
    Arg.(
      value & opt int 5
      & info [ "repeats" ] ~docv:"N" ~doc:"Warm solves after the cold one.")
  in
  let oversize_arg =
    Arg.(
      value & opt int (2 * 1024 * 1024)
      & info [ "oversize-bytes" ] ~docv:"N"
          ~doc:
            "Size of the oversized frame; must exceed the daemon's \
             $(b,--max-frame-bytes).")
  in
  let conns_arg =
    Arg.(
      value & opt int 4
      & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 25
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Requests per connection.")
  in
  exit
    (Cmd.eval'
       (Cmd.group main_info
          [
            Cmd.v smoke_info Term.(const smoke_cmd $ listen_arg);
            Cmd.v warm_info Term.(const warm_cmd $ listen_arg $ repeats_arg);
            Cmd.v chaos_info Term.(const chaos_cmd $ listen_arg $ oversize_arg);
            Cmd.v run_info
              Term.(const run_cmd $ listen_arg $ conns_arg $ requests_arg);
          ]))
