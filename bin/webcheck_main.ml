(* webcheck — end-to-end vulnerability finder: parses a mini-PHP file,
   symbolically executes every path, solves the resulting constraint
   systems, and prints exploit inputs (verified against the concrete
   interpreter). This is the workflow of the paper's §4 evaluation. *)

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let read_program path =
  let source = In_channel.with_open_text path In_channel.input_all in
  match Webapp.Lang_parser.parse source with
  | Ok program -> Ok program
  | Error e -> Error (Fmt.str "%s: %a" path Webapp.Lang_parser.pp_error e)

let attack_conv =
  let parse s =
    match Webapp.Attack.lookup s with
    | Some lang -> Ok lang
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown attack language %S (known: %s)" s
               (String.concat ", " Webapp.Attack.names)))
  in
  Cmdliner.Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<attack>")

(* Worker span trees collected by a directory scan, exported as extra
   trace lanes (tid 2, 3, ...). Filled by [check_dir] before the trace
   is emitted. *)
let trace_lanes : (string * Telemetry.Span.t) list ref = ref []

(* With --structural: recover the intended query by solving the same
   path without the attack constraint, run both input vectors through
   the interpreter, and compare the queries' parse structure. *)
let structural_verdict program q exploit_inputs =
  match Webapp.Symexec.benign_inputs q with
  | None -> None
  | Some benign_assignment ->
      let fill inputs =
        inputs
        @ List.filter_map
            (fun i -> if List.mem_assoc i inputs then None else Some (i, "a"))
            (Webapp.Ast.inputs program)
      in
      let benign = fill (Webapp.Symexec.exploit_inputs q benign_assignment) in
      let intended = Webapp.Eval.queries program ~inputs:benign in
      let actual = Webapp.Eval.queries program ~inputs:exploit_inputs in
      (match
         ( List.nth_opt intended q.Webapp.Symexec.sink_index,
           List.nth_opt actual q.Webapp.Symexec.sink_index )
       with
      | Some i, Some a -> Some (i, Sql.Analysis.compare_queries ~intended:i ~actual:a)
      | _ -> None)

(* Scan one file, writing the report to [ppf] (and errors to [err] —
   directory mode points both at a per-file buffer so the output stays
   deterministic under parallel workers). Exit code: 0 vulnerable,
   1 safe, 2 parse error, 4 no vulnerability found but at least one
   candidate's solve ran out of budget (verdict unknown).

   With [static_prune] the sound dataflow analysis runs first: sinks
   whose abstract query language misses the attack language entirely
   are reported [proved_safe_statically] and skipped by the
   path-sensitive pipeline — over all paths, loops included, so a
   truncated enumeration cannot weaken those verdicts. *)
(* Observability plumbing shared with dprle: [--events FILE] installs
   a process-global JSONL sink (mutex-protected, so directory-scan
   workers can emit concurrently), [--metrics] dumps the final registry
   snapshot to stderr. Both leave stdout untouched, preserving the
   byte-identical-for-any---jobs guarantee. *)
let with_observability ~metrics ~events f =
  Telemetry.Events.with_sink events @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      if metrics then
        Fmt.epr "%a" Telemetry.Metrics.Snapshot.pp
          (Telemetry.Metrics.Snapshot.of_default ()))
    f

let check_one ~ppf ~err path attack all structural max_paths static_prune
    prepass_paths config =
  match read_program path with
  | Error msg ->
      Fmt.pf err "error: %s@." msg;
      2
  | Ok program ->
      let static =
        if not static_prune then None
        else
          (* the fixpoint only prunes; when the cheap pre-pass sees
             that exhaustive symbolic execution is already exact and
             small, paying for both layers is the recorded regression *)
          let decision = Analysis.Prepass.decide ~path_budget:prepass_paths program in
          if not decision.Analysis.Prepass.run_fixpoint then begin
            (* debug-only: stdout must stay byte-identical with
               --no-static-prune whenever nothing was pruned *)
            Logs.debug (fun m ->
                m "%s: static analysis skipped (%s)" path
                  decision.Analysis.Prepass.reason);
            None
          end
          else
            match
              Automata.Budget.run config.Dprle.Solver.Config.budget (fun () ->
                  Analysis.Fixpoint.analyze_cached ~attack program)
            with
            | Ok r -> Some r
            | Error stop ->
                Fmt.pf ppf "static analysis: budget exceeded (%a); not pruning@."
                  Automata.Budget.pp_stop stop;
                None
      in
      let safe_ids =
        match static with
        | Some r -> Analysis.Fixpoint.safe_sink_ids r
        | None -> []
      in
      let total_sinks = List.length (Webapp.Ast.sinks program) in
      (* Every sink statically safe ⇒ nothing is left for the
         path-sensitive layer to decide: path enumeration would only
         produce candidates the prune filter discards below. Skipping
         it is what makes the prune pay for itself on safe pages. *)
      let all_sinks_pruned =
        static <> None && total_sinks > 0
        && List.length safe_ids = total_sinks
      in
      let { Webapp.Symexec.candidates; paths_truncated } =
        if all_sinks_pruned then
          { Webapp.Symexec.candidates = []; paths_truncated = false }
        else Webapp.Symexec.analyze ~max_paths ~attack program
      in
      if all_sinks_pruned then
        Fmt.pf ppf
          "%s: %d basic blocks, all %d sink(s) proved safe statically \
           (symbolic execution skipped)@."
          path
          (Webapp.Ast.basic_blocks program)
          total_sinks
      else
        Fmt.pf ppf "%s: %d basic blocks, %d sink-reaching path candidates@."
          path
          (Webapp.Ast.basic_blocks program)
          (List.length candidates);
      Option.iter
        (fun (r : Analysis.Fixpoint.result) ->
          Logs.debug (fun m ->
              m "static fixpoint: %d blocks, %d iterations, %d widenings"
                r.Analysis.Fixpoint.blocks r.Analysis.Fixpoint.iterations
                r.Analysis.Fixpoint.widenings);
          List.iter
            (fun id -> Fmt.pf ppf "sink %d: proved safe statically@." id)
            safe_ids)
        static;
      let candidates =
        List.filter
          (fun (q : Webapp.Symexec.query) ->
            not (List.mem q.Webapp.Symexec.sink_id safe_ids))
          candidates
      in
      let unpruned_sinks = total_sinks - List.length safe_ids in
      let vulnerable = ref 0 in
      let over_budget = ref 0 in
      (try
         List.iter
           (fun q ->
             let verdict = Webapp.Symexec.solve ~config q in
             Telemetry.Events.emit_global ~kind:"sink"
               [
                 ("file", Telemetry.Json.String path);
                 ("path", Telemetry.Json.Int q.Webapp.Symexec.path_id);
                 ("sink", Telemetry.Json.Int q.Webapp.Symexec.sink_index);
                 ( "outcome",
                   Telemetry.Json.String
                     (match
                        ( verdict.Webapp.Symexec.budget,
                          verdict.Webapp.Symexec.assignment )
                      with
                     | Webapp.Symexec.Budget_exceeded _, _ -> "budget_exceeded"
                     | _, Some _ -> "vulnerable"
                     | _, None -> "no_exploit") );
               ];
             (match verdict.Webapp.Symexec.budget with
             | Webapp.Symexec.Within_budget -> ()
             | Webapp.Symexec.Budget_exceeded stop ->
                 incr over_budget;
                 Fmt.pf ppf
                   "skipped (path %d, sink %d): budget exceeded: %a@."
                   q.Webapp.Symexec.path_id q.Webapp.Symexec.sink_index
                   Automata.Budget.pp_stop stop);
             match verdict.Webapp.Symexec.assignment with
             | None -> ()
             | Some assignment ->
                 incr vulnerable;
                 let inputs = Webapp.Symexec.exploit_inputs q assignment in
                 let all_inputs =
                   inputs
                   @ List.filter_map
                       (fun i ->
                         if List.mem_assoc i inputs then None else Some (i, "a"))
                       (Webapp.Ast.inputs program)
                 in
                 let confirmed =
                   Webapp.Eval.vulnerable_run ~attack program ~inputs:all_inputs
                 in
                 Fmt.pf ppf
                   "@[<v2>VULNERABLE (path %d, sink %d, |C|=%d, %a) — %s:@ \
                    %a@]@."
                   q.path_id q.sink_index q.constraint_count
                   Webapp.Symexec.pp_provenance
                   verdict.Webapp.Symexec.provenance
                   (if confirmed then "exploit confirmed by concrete run"
                    else "WARNING: exploit did not reproduce")
                   Fmt.(
                     list ~sep:cut (fun ppf (k, v) -> Fmt.pf ppf "%s = %S" k v))
                   all_inputs;
                 if structural then begin
                   match structural_verdict program q all_inputs with
                   | Some (intended, Some reason) ->
                       Fmt.pf ppf "  intended query: %s@." intended;
                       Fmt.pf ppf "  structural verdict: %a@."
                         Sql.Analysis.pp_reason reason
                   | Some (intended, None) ->
                       Fmt.pf ppf "  intended query: %s@." intended;
                       Fmt.pf ppf
                         "  structural verdict: same structure (the regular \
                          approximation over-approximated)@."
                   | None ->
                       Fmt.pf ppf
                         "  structural verdict: no benign baseline found@."
                 end;
                 if not all then raise Exit)
           candidates
       with Exit -> ());
      let code =
        if !vulnerable > 0 then 0
        else begin
          if paths_truncated && unpruned_sinks > 0 then
            Fmt.pf ppf
              "warning: path enumeration truncated at --max-paths=%d; %d \
               sink(s) not statically proved may have unexplored paths@."
              max_paths unpruned_sinks;
          Fmt.pf ppf "no exploitable path found@.";
          if !over_budget > 0 then 4 else 1
        end
      in
      Telemetry.Events.emit_global ~kind:"file"
        [
          ("file", Telemetry.Json.String path);
          ("code", Telemetry.Json.Int code);
          ("candidates", Telemetry.Json.Int (List.length candidates));
          ("pruned_statically", Telemetry.Json.Int (List.length safe_ids));
          ("vulnerable", Telemetry.Json.Int !vulnerable);
          ("over_budget", Telemetry.Json.Int !over_budget);
        ];
      code

(* Directory mode: scan every .mphp file over the engine's worker
   pool, then print the per-app summary the paper's Fig. 11
   "vulnerable" column reports. Each worker renders its file report
   into a buffer; the main domain prints the buffers in file-name
   order, so the output is byte-identical for any --jobs value.
   Timing goes to stderr. *)
let check_dir dir attack structural max_paths static_prune prepass_paths config
    jobs ~trace_requested =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mphp")
    |> List.sort compare
  in
  if files = [] then begin
    Fmt.epr "no .mphp files in %s@." dir;
    2
  end
  else begin
    let scan _worker file =
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      let code =
        check_one ~ppf ~err:ppf (Filename.concat dir file) attack false
          structural max_paths static_prune prepass_paths config
      in
      Format.pp_print_flush ppf ();
      (Buffer.contents buf, code)
    in
    (* file byte size as claim-order weight: big pages start first so a
       skewed mix can't strand the tail on one worker *)
    let weight file =
      try
        Int64.to_int
          (In_channel.with_open_bin (Filename.concat dir file)
             In_channel.length)
      with Sys_error _ -> 0
    in
    let results, stats =
      Engine.map ?jobs ~name:"webcheck" ~weight ~f:scan files
    in
    trace_lanes := stats.Engine.worker_spans;
    let vulnerable = ref [] in
    let failures = ref 0 in
    List.iter2
      (fun file (r : _ Engine.job_result) ->
        match r.outcome with
        | Engine.Done (output, code) ->
            Fmt.pr "%s@." output;
            if code = 0 then vulnerable := file :: !vulnerable
        | other ->
            incr failures;
            Fmt.pr "%s: %a@.@." file
              (Engine.pp_outcome (fun ppf _ -> Fmt.string ppf ""))
              other;
            (* backtrace (recorded only under tracing) to stderr: the
               deterministic stdout stays byte-identical across --jobs *)
            (match other with
            | Engine.Failed { backtrace = Some bt; _ } when trace_requested ->
                Fmt.epr "%s: failure backtrace:@,%s@." file bt
            | _ -> ()))
      files results;
    List.iter2
      (fun file (r : _ Engine.job_result) ->
        let outcome =
          match r.outcome with
          | Engine.Done (_, code) -> string_of_int code
          | Engine.Failed _ -> "failed"
          | Engine.Timeout -> "timeout"
          | Engine.Budget_exceeded -> "budget_exceeded"
        in
        Telemetry.Events.emit_global ~kind:"job"
          [
            ("file", Telemetry.Json.String file);
            ("code", Telemetry.Json.String outcome);
            ("worker", Telemetry.Json.Int r.worker);
            ("elapsed_ns", Telemetry.Json.Int (Int64.to_int r.elapsed_ns));
          ])
      files results;
    Fmt.pr "=== %s: %d files scanned, %d vulnerable ===@." dir
      (List.length files)
      (List.length !vulnerable);
    List.iter (fun f -> Fmt.pr "  vulnerable: %s@." f) (List.rev !vulnerable);
    Fmt.epr "scanned in %.2f s with %d worker(s)@."
      (Int64.to_float stats.Engine.wall_ns /. 1e9)
      stats.Engine.workers;
    if !failures > 0 then 5 else 0
  end

(* Run [f] under a span collector when any trace output was requested;
   write the Chrome trace_event JSON and/or print the indented tree to
   stderr. The writer runs from the [Span.collect_emit] finaliser, so
   an analysis that raises (or is interrupted by Ctrl-C, which
   [Sys.catch_break] turns into an exception) still flushes the
   partial trace. A metrics snapshot diff of the traced region rides
   along under a "metrics" key — Chrome ignores unknown keys. *)
let with_trace ~trace ~trace_tree f =
  if trace = None && not trace_tree then f ()
  else begin
    let before = Telemetry.Metrics.Snapshot.of_default () in
    let emit span =
      Option.iter
        (fun path ->
          try
            let diff =
              Telemetry.Metrics.Snapshot.diff
                ~after:(Telemetry.Metrics.Snapshot.of_default ())
                ~before
            in
            let base =
              match !trace_lanes with
              | [] -> Telemetry.Span.to_chrome_json span
              | lanes -> Telemetry.Span.to_chrome_json_lanes ~lanes span
            in
            let json =
              match base with
              | Telemetry.Json.Obj fields ->
                  Telemetry.Json.Obj
                    (fields
                    @ [ ("metrics", Telemetry.Metrics.Snapshot.to_json diff) ])
              | other -> other
            in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc (Telemetry.Json.to_string json))
          with Sys_error msg -> Fmt.epr "error: cannot write trace: %s@." msg)
        trace;
      if trace_tree then begin
        Fmt.epr "%a" Telemetry.Span.pp_tree span;
        List.iter
          (fun (_, lane) -> Fmt.epr "%a" Telemetry.Span.pp_tree lane)
          !trace_lanes
      end
    in
    Telemetry.Span.collect_emit ~name:"webcheck" ~emit f
  end

let check_cmd path attack all structural max_paths static_prune prepass_paths
    jobs budget_ms budget_states trace trace_tree no_cache no_symbolic metrics
    events verbose =
  setup_logs verbose;
  if no_cache then Automata.Store.set_enabled false;
  if no_symbolic then Automata.Query.set_symbolic_enabled false;
  let config =
    Dprle.Solver.Config.make
      ~budget:(Automata.Budget.make ?wall_ms:budget_ms ?max_states:budget_states ())
      ()
  in
  with_observability ~metrics ~events @@ fun () ->
  with_trace ~trace ~trace_tree @@ fun () ->
  let trace_requested = trace <> None || trace_tree in
  if trace_requested then Printexc.record_backtrace true;
  if Sys.is_directory path then
    check_dir path attack structural max_paths static_prune prepass_paths
      config jobs ~trace_requested
  else
    check_one ~ppf:Fmt.stdout ~err:Fmt.stderr path attack all structural
      max_paths static_prune prepass_paths config

open Cmdliner

let () =
  (* Ctrl-C raises [Sys.Break] instead of killing the process, so the
     [with_trace] finaliser can flush a partial trace first. *)
  Sys.catch_break true;
  let path_arg =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Mini-PHP source file.")
  in
  let attack_arg =
    Arg.(
      value
      & opt attack_conv Webapp.Attack.contains_quote
      & info [ "attack" ] ~docv:"LANG"
          ~doc:"Attack language: quote, tautology, drop, comment, or any.")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Report every vulnerable path, not just the first.")
  in
  let structural_arg =
    Arg.(
      value & flag
      & info [ "structural" ]
          ~doc:
            "Confirm exploits structurally: compare the parse structure of \
             the intended and subverted SQL (Su-Wassermann criterion).")
  in
  let max_paths_arg =
    Arg.(value & opt int 4096 & info [ "max-paths" ] ~docv:"N" ~doc:"Path exploration bound.")
  in
  let static_prune_arg =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "static-prune" ]
                ~doc:
                  "Run the sound dataflow string analysis first and skip \
                   sinks it proves safe (default)." );
            ( false,
              info [ "no-static-prune" ]
                ~doc:
                  "Ablation: solve every path candidate without the static \
                   pass. Verdicts are identical; only the work differs." );
          ])
  in
  let prepass_paths_arg =
    Arg.(
      value & opt int 8
      & info [ "prepass-paths" ] ~docv:"N"
          ~doc:
            "Skip the static analysis on loop-free programs with at most $(docv) \
             estimated paths (symbolic execution alone is exact and cheaper \
             there). 0 always runs the static analysis.")
  in
  let trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON of the analysis (open in \
             chrome://tracing or Perfetto).")
  in
  let trace_tree_arg =
    Arg.(
      value & flag
      & info [ "trace-tree" ] ~doc:"Print the span tree of the analysis to stderr.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the interned language store and all memoized automata \
             operations (cache ablation; identical output, more work).")
  in
  let no_symbolic_arg =
    Arg.(
      value & flag
      & info [ "no-symbolic" ]
          ~doc:
            "Disable the symbolic derivative tier of the query front-end \
             (ablation; identical verdicts, different tier counters).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Dump the final metrics registry snapshot to stderr on exit \
             (deterministic sorted text; timers report call counts only).")
  in
  let events_arg =
    Arg.(
      value & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Append one JSONL event record per file/sink/job to $(docv) \
             (schema dprle-events/1; each line is flushed, so a crash keeps \
             everything emitted so far).")
  in
  let verbose_arg = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.") in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for directory scans (default: the runtime's \
             recommended domain count). Output is byte-identical for any \
             value.")
  in
  let budget_ms_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:
            "Wall-clock budget per candidate solve in milliseconds; an \
             over-budget candidate is skipped with a note (exit code 4 if \
             nothing vulnerable was found).")
  in
  let budget_states_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget-states" ] ~docv:"N"
          ~doc:
            "Cap on product/subset states materialized per candidate solve; \
             an over-budget candidate is skipped with a note.")
  in
  let term =
    Term.(
      const check_cmd $ path_arg $ attack_arg $ all_arg $ structural_arg
      $ max_paths_arg $ static_prune_arg $ prepass_paths_arg $ jobs_arg
      $ budget_ms_arg $ budget_states_arg $ trace_arg $ trace_tree_arg
      $ no_cache_arg $ no_symbolic_arg $ metrics_arg $ events_arg
      $ verbose_arg)
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"when an exploitable path was found (or, for a \
                            directory scan, when every file was scanned).";
      Cmd.Exit.info 1 ~doc:"when no exploitable path was found.";
      Cmd.Exit.info 2 ~doc:"on a parse error or an empty directory.";
      Cmd.Exit.info 4 ~doc:"when no exploitable path was found but at least \
                            one candidate solve exceeded its \
                            $(b,--budget-ms)/$(b,--budget-states) budget \
                            (verdict unknown).";
      Cmd.Exit.info 5 ~doc:"when a directory-scan job raised an internal \
                            error.";
    ]
    @ Cmd.Exit.defaults
  in
  let info =
    Cmd.info "webcheck" ~version:"1.0.0" ~exits
      ~doc:
        "Find SQL-injection exploits in mini-PHP programs via symbolic \
         execution and the DPRLE decision procedure."
  in
  exit (Cmd.eval' (Cmd.v info term))
