(* CI-groups (§3.4.3/§3.4.4, Fig. 9/10 of the paper): a variable
   shared between two concatenations couples their ε-cut choices, and
   the solutions become genuinely disjunctive.

   Run with:  dune exec examples/cigroup.exe *)

module System = Dprle.System
module Depgraph = Dprle.Depgraph
module Solver = Dprle.Solver
module Assignment = Dprle.Assignment
module Validate = Dprle.Validate

let system =
  System.make_exn
    ~consts:
      [
        ("ca", System.const_of_regex "o(pp)+");
        ("cb", System.const_of_regex "p*(qq)+");
        ("cc", System.const_of_regex "q*r");
        ("c1", System.const_of_regex "op{5}q*");
        ("c2", System.const_of_regex "p*q{4}r");
      ]
    ~constraints:
      [
        { lhs = Var "va"; rhs = "ca" };
        { lhs = Var "vb"; rhs = "cb" };
        { lhs = Var "vc"; rhs = "cc" };
        { lhs = Concat (Var "va", Var "vb"); rhs = "c1" };
        { lhs = Concat (Var "vb", Var "vc"); rhs = "c2" };
      ]

let () =
  Fmt.pr "system (Fig. 9):@.  @[<v>%a@]@." System.pp system;
  let graph = Depgraph.of_system system in
  Fmt.pr "dependency graph: %d nodes, %d ⊆-edges, %d ∘-pairs@."
    (List.length graph.nodes)
    (List.length graph.subsets)
    (List.length graph.concats);
  let groups = Depgraph.ci_groups graph in
  List.iter
    (fun members ->
      if List.length members > 1 then
        Fmt.pr "CI-group: {%a}@."
          Fmt.(list ~sep:comma Depgraph.pp_node)
          members)
    groups;
  Fmt.pr "@.dot output available via Depgraph.to_dot (%d bytes)@.@."
    (String.length (Depgraph.to_dot graph));
  match Solver.run Solver.Config.default system with
  | Error err -> Fmt.pr "error: %s@." (Solver.Error.to_string err)
  | Ok (Solver.Unsat { reason; _ }) ->
      Fmt.pr "unsat: %a@." Solver.pp_unsat_reason reason
  | Ok (Solver.Sat solutions) ->
      Fmt.pr "%d maximal disjunctive solutions:@." (List.length solutions);
      List.iteri
        (fun i a ->
          Fmt.pr "@.-- solution %d --@.@[<v>%a@]@." (i + 1) Assignment.pp a;
          Fmt.pr "satisfying: %b, maximal (probe): %b@."
            (Validate.satisfying system a)
            (Validate.maximal_probe system a))
        solutions;
      Fmt.pr "@.(The paper's §3.4.4 prints two of these; the same semantics@.";
      Fmt.pr " admits the two symmetric ones as well — see EXPERIMENTS.md.)@."
