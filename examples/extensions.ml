(* The §3.1.2 extensions in action: union on the left-hand side,
   length restrictions, and case-mapped input reads (solved through
   regular preimages).

   Run with:  dune exec examples/extensions.exe *)

module Nfa = Automata.Nfa

let () =
  (* 1. Union: one constraint ranging over two alternative prefixes.
        (p | q) . v ⊆ c splits into p∘v ⊆ c ∧ q∘v ⊆ c. *)
  Fmt.pr "=== union on the left-hand side ===@.";
  let system =
    Dprle.Sysparse.parse_exn
      {| let short = /^x{1,3}$/;
         let xpref = "x";
         let xxpref = "xx";
         (xpref | xxpref) . v <= short; |}
  in
  (match Dprle.Solver.run Dprle.Solver.Config.default system with
  | Ok (Dprle.Solver.Sat [ a ]) ->
      (* v must survive after both prefixes: x∘v and xx∘v both ⊆ x{1,3} *)
      Fmt.pr "v ↦ /%s/@.@." (Regex.Pretty.pretty (Dprle.Assignment.find a "v"))
  | _ -> Fmt.pr "unexpected@.");

  (* 2. Length restriction: model a strlen check in code. *)
  Fmt.pr "=== length checks ===@.";
  let program =
    Webapp.Lang_parser.parse_exn
      {|$x = input("x");
        if (!(strlen($x) <= 4)) { exit; }
        query("SELECT " . $x);|}
  in
  (match
     Webapp.Symexec.first_exploit ~attack:Webapp.Attack.contains_quote program
   with
  | Some [ ("x", w) ] ->
      Fmt.pr "exploit within the length window: %S (length %d ≤ 4)@.@." w
        (String.length w)
  | _ -> Fmt.pr "unexpected@.");

  (* 3. Case-mapped reads: the filter inspects strtolower($x) but the
        query uses the raw $x; the solved constraint is pulled back
        through the case map as a regular preimage. *)
  Fmt.pr "=== strtolower through the solver ===@.";
  let program =
    Webapp.Lang_parser.parse_exn
      {|$x = input("x");
        if (!preg_match(/^[a-z']{1,6}$/, strtolower($x))) { exit; }
        query("SELECT * FROM t WHERE c=" . $x);|}
  in
  (match
     Webapp.Symexec.first_exploit ~attack:Webapp.Attack.contains_quote program
   with
  | Some inputs ->
      List.iter (fun (k, v) -> Fmt.pr "%s = %S@." k v) inputs;
      Fmt.pr "confirmed: %b@.@."
        (Webapp.Eval.vulnerable_run ~attack:Webapp.Attack.contains_quote program
           ~inputs)
  | None -> Fmt.pr "unexpected@.");

  (* 4. The preimage machinery directly. *)
  Fmt.pr "=== regular preimages ===@.";
  let lang = Dprle.System.const_of_regex "se(cr|le)ct" in
  let pre = Automata.Relabel.preimage Char.lowercase_ascii lang in
  Fmt.pr "lower⁻¹(/se(cr|le)ct/) accepts \"SeLeCT\": %b@."
    (Nfa.accepts pre "SeLeCT");
  Fmt.pr "first witnesses: %a@."
    Fmt.(list ~sep:comma (fmt "%S"))
    (Automata.Witness.take 3 pre)
