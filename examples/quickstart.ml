(* Quickstart: build and solve small constraint systems with the
   public API. Run with:  dune exec examples/quickstart.exe

   Reproduces the two worked examples of §3.1.1 of the paper. *)

module System = Dprle.System
module Solver = Dprle.Solver
module Assignment = Dprle.Assignment

let solve_and_print title system =
  Fmt.pr "== %s ==@." title;
  Fmt.pr "system:@.  @[<v>%a@]@." System.pp system;
  (match Solver.run Solver.Config.default system with
  | Error err -> Fmt.pr "error: %s@." (Solver.Error.to_string err)
  | Ok (Solver.Unsat { reason; _ }) ->
      Fmt.pr "unsat: %a@." Solver.pp_unsat_reason reason
  | Ok (Solver.Sat solutions) ->
      Fmt.pr "%d disjunctive solution(s):@." (List.length solutions);
      List.iteri
        (fun i a ->
          Fmt.pr "  -- solution %d --@.  @[<v>%a@]@." (i + 1) Assignment.pp a)
        solutions);
  Fmt.pr "@."

let () =
  (* Example 1 (§3.1.1): two subset constraints on one variable. The
     unique maximal solution is the intersection, (xx)+y. *)
  solve_and_print "section 3.1.1, example 1"
    (System.make_exn
       ~consts:
         [
           ("c1", System.const_of_regex "(xx)+y");
           ("c2", System.const_of_regex "x*y");
         ]
       ~constraints:
         [ { lhs = Var "v1"; rhs = "c1" }; { lhs = Var "v1"; rhs = "c2" } ]);

  (* Example 2 (§3.1.1): concatenation makes solutions disjunctive.
     The paper's two maximal assignments are
       A1 = [v1 ↦ xyy,          v2 ↦ z|yyz]
       A2 = [v1 ↦ x(yy|yyyy),   v2 ↦ z]     *)
  solve_and_print "section 3.1.1, example 2 (disjunctive)"
    (System.make_exn
       ~consts:
         [
           ("c1", System.const_of_regex "x(yy)+");
           ("c2", System.const_of_regex "(yy)*z");
           ("c3", System.const_of_regex "xyyz|xyyyyz");
         ]
       ~constraints:
         [
           { lhs = Var "v1"; rhs = "c1" };
           { lhs = Var "v2"; rhs = "c2" };
           { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
         ]);

  (* The same systems can be written in the concrete syntax and parsed
     with Dprle.Sysparse — handy for files and the CLI. *)
  let parsed =
    Dprle.Sysparse.parse_exn
      {| let lower = /^[a-z]+$/;
         let short = /^.{1,3}$/;
         word <= lower;
         word <= short; |}
  in
  solve_and_print "parsed from concrete syntax" parsed
