(* Reasoning through sanitizers with transducer preimages — the FST
   direction of the paper's related work, built on Automata.Fst.

   Run with:  dune exec examples/sanitizers.exe *)

module Nfa = Automata.Nfa
module Fst = Automata.Fst

(* the sink interpolates inside '...' delimiters, so the right attack
   language is "odd number of unescaped quotes" — the value breaks
   out of its literal *)
let attack = Webapp.Attack.unbalanced_quote

let analyze title source =
  Fmt.pr "=== %s ===@.%s@." title source;
  let program = Webapp.Lang_parser.parse_exn source in
  (match Webapp.Symexec.first_exploit ~attack program with
  | None -> Fmt.pr "-> no quote-level exploit (solver proves the sink clean)@."
  | Some inputs ->
      List.iter (fun (k, v) -> Fmt.pr "-> exploit %s = %S@." k v) inputs;
      let queries = Webapp.Eval.queries program ~inputs in
      List.iter
        (fun q ->
          Fmt.pr "   query: %S@." q;
          Fmt.pr "   still parses as intended SQL: %b@." (Sql.Parser.well_formed q))
        queries);
  Fmt.pr "@."

let () =
  (* 1. the unsanitized sink: exploitable *)
  analyze "raw interpolation"
    {|$x = input("x");
query("SELECT * FROM t WHERE a = '" . $x . "'");|};

  (* 2. quote deletion: no quote can reach the literal, but the
        attack language models MySQL-style backslash escaping, so a
        lone trailing backslash still counts as "escaping the closing
        delimiter" — the solver reports it, and the concrete SQL
        parser (ANSI rules, '' escaping only) shows the structure
        survives. A nice measured example of approximation slack in
        BOTH directions. *)
  analyze "str_replace deletes quotes"
    {|$x = input("x");
query("SELECT * FROM t WHERE a = '" . str_replace("'", "", $x) . "'");|};

  (* 3. addslashes: quotes still appear in the query — the regex-level
        attack fires — but every one arrives escaped, so the structure
        survives (run the printed query through the SQL parser) *)
  analyze "addslashes escapes quotes"
    {|$x = input("x");
query("SELECT * FROM t WHERE a = '" . addslashes($x) . "'");|};

  (* 4. the machinery directly: preimages through addslashes *)
  Fmt.pr "=== transducer preimages ===@.";
  let target = Dprle.System.const_of_regex "\\\\'" in
  let pre = Fst.preimage Fst.addslashes target in
  Fmt.pr "addslashes⁻¹(/\\\\'/) = /%s/ (the single quote)@."
    (Regex.Pretty.pretty pre);
  let bare_quote = Dprle.System.const_of_regex "[^'\\\\]*'.*" in
  Fmt.pr "addslashes⁻¹(bare-quote language) empty: %b@."
    (Automata.Lang.is_empty (Fst.preimage Fst.addslashes bare_quote))
