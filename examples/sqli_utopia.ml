(* The paper's motivating example (Fig. 1 / §2), end to end:

     1. the Utopia News Pro fragment in mini-PHP,
     2. symbolic execution into a constraint system,
     3. the concat-intersect construction of Fig. 3/4 (machine sizes
        shown),
     4. the solved exploit language, a concrete exploit, and a
        concrete run of the program on it,
     5. the fixed program (anchored filter) shown to be safe.

   Run with:  dune exec examples/sqli_utopia.exe *)

module Nfa = Automata.Nfa
module Ci = Dprle.Ci
module System = Dprle.System

let vulnerable_src =
  {|// Utopia News Pro fragment (Fig. 1 of the paper)
$newsid = input("posted_newsid");
if (!preg_match(/[\d]+$/, $newsid)) {
  echo "Invalid article news ID.";
  exit;
}
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
|}

let fixed_src =
  {|$newsid = input("posted_newsid");
if (!preg_match(/^[\d]+$/, $newsid)) { exit; }
$newsid = "nid_" . $newsid;
query("SELECT * FROM news WHERE newsid=" . $newsid);
|}

let attack = Webapp.Attack.contains_quote

let () =
  Fmt.pr "=== 1. the vulnerable program ===@.%s@." vulnerable_src;
  let program = Webapp.Lang_parser.parse_exn vulnerable_src in

  Fmt.pr "=== 2. symbolic execution ===@.";
  let candidates = (Webapp.Symexec.analyze ~attack program).Webapp.Symexec.candidates in
  List.iter
    (fun q ->
      Fmt.pr "path %d, sink %d: |C| = %d, inputs = {%s}@." q.Webapp.Symexec.path_id
        q.sink_index q.constraint_count
        (String.concat ", " q.input_vars);
      Fmt.pr "constraints:@.  @[<v>%a@]@." System.pp q.system)
    candidates;

  Fmt.pr "@.=== 3. the concat-intersect machines (Fig. 4) ===@.";
  (* the same constants the paper uses: c1 = "nid_", c2 = the faulty
     filter's accepted language, c3 = strings containing a quote *)
  let c1 = Automata.Lang.compact (System.const_of_word "nid_") in
  let c2 = Automata.Lang.compact (System.const_of_pattern "/[\\d]+$/") in
  let c3 = Automata.Lang.compact (System.const_of_pattern "/'/") in
  let { Ci.solutions; m4; m5 } = Ci.concat_intersect c1 c2 c3 in
  Fmt.pr "M1 (nid_):        %a@." Nfa.pp_summary c1;
  Fmt.pr "M2 (filter):      %a@." Nfa.pp_summary c2;
  Fmt.pr "M3 (attack):      %a@." Nfa.pp_summary c3;
  Fmt.pr "M4 = M1 . M2:     %a@." Nfa.pp_summary m4;
  Fmt.pr "M5 = M4 n M3:     %a@." Nfa.pp_summary m5;
  Fmt.pr "ε-cuts found: %d@." (List.length solutions);
  List.iter
    (fun { Ci.v1; v2; cut = qa, qb } ->
      Fmt.pr "cut (%d → %d):@." qa qb;
      Fmt.pr "  v1 = /%s/@." (Regex.State_elim.to_string v1);
      Fmt.pr "  v2 = /%s/@." (Regex.State_elim.to_string v2))
    solutions;

  Fmt.pr "@.=== 4. exploit generation ===@.";
  (match Webapp.Symexec.first_exploit ~attack program with
  | None -> Fmt.pr "no exploit found (unexpected!)@."
  | Some inputs ->
      List.iter (fun (k, v) -> Fmt.pr "%s = %S@." k v) inputs;
      let queries = Webapp.Eval.queries program ~inputs in
      List.iter (fun q -> Fmt.pr "concrete query: %S@." q) queries;
      Fmt.pr "attack fired: %b@."
        (Webapp.Eval.vulnerable_run ~attack program ~inputs));

  Fmt.pr "@.=== 5. the fixed program is safe ===@.";
  let fixed = Webapp.Lang_parser.parse_exn fixed_src in
  match Webapp.Symexec.first_exploit ~attack fixed with
  | None -> Fmt.pr "no exploitable path: the anchored filter closes the bug@."
  | Some _ -> Fmt.pr "still vulnerable (unexpected!)@."
