module Ast = Webapp.Ast
module Nfa = Automata.Nfa
module Store = Automata.Store
module Query = Automata.Query
module SMap = Map.Make (String)

type value = Store.handle

(* Missing key = Σ* (top). Keeping top implicit makes [top] itself
   O(1) and lets join drop keys instead of materialising Σ* unions. *)
type t = { vars : value SMap.t; inputs : value SMap.t }

let top = { vars = SMap.empty; inputs = SMap.empty }

(* Σ* served from the store's per-domain cache: a pointer read after
   the first ask, and safe across Engine.map workers (each domain
   caches its own handle). *)
let top_value () = Store.top ()

let lookup map k = match SMap.find_opt k map with Some h -> h | None -> top_value ()

let lookup_var st v = lookup st.vars v

let lookup_input st n = lookup st.inputs n

let image fst h = Store.intern (Automata.Fst.image fst (Store.nfa h))

let rec eval st : Ast.expr -> value = function
  | Ast.Str s -> Store.of_word s
  | Ast.Var v -> lookup_var st v
  | Ast.Input n -> lookup_input st n
  | Ast.Concat (a, b) -> Store.concat_lang (eval st a) (eval st b)
  | Ast.Lower e -> image (Automata.Fst.map_chars Char.lowercase_ascii) (eval st e)
  | Ast.Upper e -> image (Automata.Fst.map_chars Char.uppercase_ascii) (eval st e)
  | Ast.Addslashes e -> image Automata.Fst.addslashes (eval st e)
  | Ast.Replace (c, s, e) -> image (Automata.Fst.replace_char c s) (eval st e)

let assign st v e = { st with vars = SMap.add v (eval st e) st.vars }

(* Chains of refinements and joins multiply product states even when
   the denoted language barely changes (q ∩ ¬w₁ ∩ … ∩ ¬wₖ doubles a
   machine per step while excluding k words). Values above this bound
   are collapsed to their minimal DFA before being stored back. *)
let compact_above = 64

let t_compact = Telemetry.Metrics.Timer.make "analysis.absdom.compact"
let t_closure = Telemetry.Metrics.Timer.make "analysis.absdom.closure"

let compact h =
  if Nfa.num_states (Store.nfa h) <= compact_above then h
  else Telemetry.Metrics.Timer.time t_compact (fun () -> Store.compacted h)

(* Above this bound, refinement keeps the unrefined binding instead of
   paying for a determinization of the product: narrowing is an
   optimization, so a wider value is always sound. *)
let narrow_limit = 2048

(* Pointwise union; a key absent on either side is Σ* there, so the
   union is Σ* — absent in the result. *)
let join a b =
  let merge _ x y =
    match (x, y) with
    | Some x, Some y -> Some (compact (Store.union_lang x y))
    | _ -> None
  in
  {
    vars = SMap.merge merge a.vars b.vars;
    inputs = SMap.merge merge a.inputs b.inputs;
  }

let leq a b =
  let sub amap bmap =
    SMap.for_all (fun k vb -> Query.subset (lookup amap k) vb) bmap
  in
  sub a.vars b.vars && sub a.inputs b.inputs

let equal a b = leq a b && leq b a

(* ------------------------------------------------------------------ *)
(* Widening                                                           *)

(* Alphabet closure A(L)* where A(L) is the union of the transition
   charsets of the trimmed machine: an over-approximation of L (every
   accepted word spends only chars of A(L)) whose ascending chains are
   bounded by the ≤256-char alphabet. *)
let alphabet_closure h =
  Telemetry.Metrics.Timer.time t_closure @@ fun () ->
  let a =
    Nfa.fold_char_transitions (Store.minimized h) ~init:Charset.empty
      ~f:(fun acc _ cs _ -> Charset.union acc cs)
  in
  let h = Store.intern (Automata.Ops.star (Nfa.of_charset a)) in
  Regex.Symbolic.attach h (Regex.Ast.star (Regex.Ast.chars a));
  h

(* [widen ~max_states ~force prev next] returns an upper bound of both
   arguments, per key: the stable previous value when nothing grew, the
   plain union while it stays small, and the alphabet closure once the
   union machine crosses [max_states] (or unconditionally under
   [force], the fixpoint's bound on widening delay). Returns the new
   state and how many keys were collapsed to a closure. *)
let widen ~max_states ~force prev next =
  let widened = ref 0 in
  let merge _ x y =
    match (x, y) with
    | Some p, Some n ->
        if Query.subset n p then Some p
        else
          let u = compact (Store.union_lang p n) in
          if (not force) && Nfa.num_states (Store.nfa u) <= max_states then
            Some u
          else begin
            incr widened;
            Some (alphabet_closure u)
          end
    | _ -> None
  in
  let st =
    {
      vars = SMap.merge merge prev.vars next.vars;
      inputs = SMap.merge merge prev.inputs next.inputs;
    }
  in
  (st, !widened)

(* ------------------------------------------------------------------ *)
(* Condition refinement                                               *)

let complement_of h =
  Store.canon (Automata.Dfa.to_nfa (Automata.Dfa.complement (Store.dfa h)))

(* Branch-language cache: the fixpoint refines the same syntactic
   condition once per edge visit, and each build pays a regex compile,
   a word complement (determinize + complement), or a bounded repeat —
   by far the dominant per-iteration cost on loop-heavy pages. The
   table is per-domain (handles must not cross workers), keyed
   structurally on (condition, polarity), and reset with the store so
   an ablation or bench [clear] can't serve stale handles. Bypassed
   when the store is disabled, keeping [--no-cache] a faithful
   ablation. *)
let cond_lang_table : (Ast.cond * bool, value) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let () =
  Store.on_clear (fun () -> Hashtbl.reset (Domain.DLS.get cond_lang_table))

let build_cond_lang value : Ast.cond -> value = function
  | Ast.Not _ -> assert false (* unwrapped by [refine] *)
  | Ast.Preg_match (pattern, _) ->
      let lang =
        if value then Regex.Compile.pattern_to_nfa pattern
        else Regex.Compile.pattern_reject_nfa pattern
      in
      Store.intern lang
  | Ast.Str_eq (_, s) ->
      let word = Store.of_word s in
      if value then word else Store.intern (complement_of word)
  | Ast.Strlen (_, cmp, n) ->
      let any = Nfa.of_charset Charset.full in
      let accept =
        Store.intern
          (match cmp with
          | Ast.Len_eq -> Automata.Ops.repeat any ~min_count:n ~max_count:(Some n)
          | Ast.Len_le -> Automata.Ops.repeat any ~min_count:0 ~max_count:(Some n)
          | Ast.Len_ge -> Automata.Ops.repeat any ~min_count:n ~max_count:None)
      in
      if value then accept else Store.intern (complement_of accept)

let cond_lang value c =
  if not (Store.enabled ()) then build_cond_lang value c
  else
    let table = Domain.DLS.get cond_lang_table in
    match Hashtbl.find_opt table (c, value) with
    | Some h -> h
    | None ->
        let h = build_cond_lang value c in
        Hashtbl.replace table (c, value) h;
        h

(* The language a condition's operand must lie in when the condition
   evaluates to [value] — the same translations the symbolic executor
   uses for path obligations. *)
let rec refine st value : Ast.cond -> t option = function
  | Ast.Not c -> refine st (not value) c
  | (Ast.Preg_match (_, e) | Ast.Str_eq (e, _) | Ast.Strlen (e, _, _)) as c ->
      refine_expr st e (cond_lang value c)

(* Intersect the operand's abstraction with the branch language. A
   syntactic variable or input read narrows the binding itself; any
   other operand still gets a feasibility check (an empty intersection
   proves the edge dead), which is sound because values only shrink. *)
and refine_expr st e lang =
  match e with
  | Ast.Var v ->
      let h = Store.inter_lang (lookup_var st v) lang in
      if Query.is_empty h then None
      else if Nfa.num_states (Store.nfa h) > narrow_limit then Some st
      else Some { st with vars = SMap.add v (compact h) st.vars }
  | Ast.Input n ->
      let h = Store.inter_lang (lookup_input st n) lang in
      if Query.is_empty h then None
      else if Nfa.num_states (Store.nfa h) > narrow_limit then Some st
      else Some { st with inputs = SMap.add n h st.inputs }
  | _ ->
      if Query.disjoint (eval st e) lang then None else Some st

let bindings st =
  ( SMap.bindings st.vars |> List.map (fun (k, v) -> (k, Store.nfa v)),
    SMap.bindings st.inputs |> List.map (fun (k, v) -> (k, Store.nfa v)) )

let pp ppf st =
  let pp_side name map =
    SMap.iter
      (fun k h ->
        Fmt.pf ppf "@ %s%s ∈ ⟨%d states⟩" name k
          (Nfa.num_states (Store.nfa h)))
      map
  in
  Fmt.pf ppf "@[<v 2>{";
  pp_side "$" st.vars;
  pp_side "input:" st.inputs;
  Fmt.pf ppf "@]@ }"
