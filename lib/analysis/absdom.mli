(** Abstract domain for the string dataflow analysis: each local
    variable and each input name maps to a regular language (an
    {!Automata.Store} handle) over-approximating its runtime value.

    The soundness invariant: for every concrete execution reaching a
    program point with store σ and inputs ι, and every key [k],
    [σ(k) ∈ γ(state(k))] — missing keys denote Σ* (top), so anything
    the analysis has not tracked is trivially covered. Inputs are
    per-request-fixed in the concrete semantics, which is why a
    branch test on [input("n")] may soundly narrow the binding used
    by later reads of the same input.

    Join is memoized NFA union (through the store's op-cache);
    {!widen} bounds value growth so loops terminate. *)

type value = Automata.Store.handle

type t

(** Everything maps to Σ*. *)
val top : t

val lookup_var : t -> string -> value

val lookup_input : t -> string -> value

(** Abstract evaluation; string transforms are transducer images
    ({!Automata.Fst.image}), so e.g. [Addslashes] maps a language to
    the exact language of its sanitized forms. *)
val eval : t -> Webapp.Ast.expr -> value

val assign : t -> string -> Webapp.Ast.expr -> t

(** Pointwise language union (least upper bound). *)
val join : t -> t -> t

(** Pointwise language inclusion (partial order). *)
val leq : t -> t -> bool

val equal : t -> t -> bool

(** [widen ~max_states ~force prev next] — an upper bound of both
    states that guarantees termination: per key, keep [prev] if
    stable, take the union while its machine stays within
    [max_states] states, and otherwise collapse to the {e alphabet
    closure} [A(L)*] (the Kleene star over the union of observed
    transition charsets). Under [force] every growing key collapses
    immediately. Closure chains ascend at most 256 steps (the
    alphabet only grows), so fixpoints at loop heads converge.
    Returns the widened state and the number of keys collapsed. *)
val widen : max_states:int -> force:bool -> t -> t -> t * int

(** [refine st value cond] assumes [cond] evaluates to [value] and
    narrows the state: a test whose operand is syntactically a
    variable or input read intersects that binding with the branch
    language (the same translation {!Webapp.Symexec} uses for path
    obligations); other operands get a feasibility check only.
    [None] means the branch is infeasible (⊥). *)
val refine : t -> bool -> Webapp.Ast.cond -> t option

(** Tracked (non-top) bindings, for tests and debugging:
    [(vars, inputs)]. *)
val bindings :
  t -> (string * Automata.Nfa.t) list * (string * Automata.Nfa.t) list

val pp : t Fmt.t
