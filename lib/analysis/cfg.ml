module Ast = Webapp.Ast

type node = int

type instr = Assign of string * Ast.expr | Query of int * Ast.expr

type guard = { cond : Ast.cond; value : bool }

type block = { id : node; instrs : instr list; loop_head : bool }

type edge = { src : node; dst : node; guard : guard option }

type t = {
  blocks : block array;
  entry : node;
  exit_ : node;
  edges : edge list;
  succs : edge list array;
  preds : edge list array;
  num_sinks : int;
}

let num_blocks g = Array.length g.blocks

let build program =
  let instrs : (node, instr list ref) Hashtbl.t = Hashtbl.create 16 in
  let heads : (node, unit) Hashtbl.t = Hashtbl.create 4 in
  let edges = ref [] in
  let next = ref 0 in
  let new_block ?(loop_head = false) () =
    let id = !next in
    incr next;
    Hashtbl.replace instrs id (ref []);
    if loop_head then Hashtbl.replace heads id ();
    id
  in
  let add_instr b i =
    let r = Hashtbl.find instrs b in
    r := i :: !r
  in
  let add_edge ?guard src dst = edges := { src; dst; guard } :: !edges in
  let entry = new_block () in
  let exit_ = new_block () in
  (* [lower] returns the block holding the fallthrough edge out of
     [stmts], or [None] when every suffix ended at [exit;]. *)
  let rec lower cur stmts =
    match stmts with
    | [] -> Some cur
    | stmt :: rest -> (
        match stmt with
        | Ast.Assign (v, e) ->
            add_instr cur (Assign (v, e));
            lower cur rest
        | Ast.Echo _ -> lower cur rest
        | Ast.Query e ->
            let id = Option.value (Ast.sink_id program stmt) ~default:(-1) in
            add_instr cur (Query (id, e));
            lower cur rest
        | Ast.Exit ->
            add_edge cur exit_;
            None
        | Ast.If (c, t, f) -> (
            let then_b = new_block () and else_b = new_block () in
            add_edge ~guard:{ cond = c; value = true } cur then_b;
            add_edge ~guard:{ cond = c; value = false } cur else_b;
            let t_end = lower then_b t in
            let f_end = lower else_b f in
            match (t_end, f_end) with
            | None, None -> None
            | _ ->
                let join = new_block () in
                Option.iter (fun b -> add_edge b join) t_end;
                Option.iter (fun b -> add_edge b join) f_end;
                lower join rest)
        | Ast.While (c, body) ->
            let head = new_block ~loop_head:true () in
            add_edge cur head;
            let body_b = new_block () and exit_b = new_block () in
            add_edge ~guard:{ cond = c; value = true } head body_b;
            add_edge ~guard:{ cond = c; value = false } head exit_b;
            (match lower body_b body with
            | Some b_end -> add_edge b_end head (* the back edge *)
            | None -> ());
            lower exit_b rest)
  in
  (match lower entry program with
  | Some last -> add_edge last exit_
  | None -> ());
  let n = !next in
  let blocks =
    Array.init n (fun id ->
        {
          id;
          instrs = List.rev !(Hashtbl.find instrs id);
          loop_head = Hashtbl.mem heads id;
        })
  in
  let edges = List.rev !edges in
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  {
    blocks;
    entry;
    exit_;
    edges;
    succs;
    preds;
    num_sinks = List.length (Ast.sinks program);
  }

let pp_summary ppf g =
  let guarded =
    List.length (List.filter (fun e -> e.guard <> None) g.edges)
  in
  let heads =
    Array.fold_left (fun acc b -> if b.loop_head then acc + 1 else acc) 0 g.blocks
  in
  Fmt.pf ppf "%d blocks, %d edges (%d guarded), %d loop heads, %d sinks"
    (num_blocks g) (List.length g.edges) guarded heads g.num_sinks
