(** Explicit control-flow graph of a mini-PHP program.

    Structured statements are lowered into basic blocks of
    straight-line instructions connected by (optionally guarded)
    edges: an [If] becomes a two-way guarded branch re-joining below,
    a [While] becomes a loop-head block whose guarded exits lead into
    the body (with a back edge) and past the loop. Every cycle in the
    graph passes through a [loop_head] block, which is where the
    fixpoint ({!Fixpoint}) applies widening.

    [Query] instructions carry the statement's {e sink id}
    ({!Webapp.Ast.sink_id}), the identity shared with
    {!Webapp.Symexec} candidates so static verdicts can prune
    path-sensitive work. *)

type node = int

type instr =
  | Assign of string * Webapp.Ast.expr
  | Query of int * Webapp.Ast.expr  (** sink id, query expression *)

(** An edge guard: the condition holds with the given polarity when
    control takes this edge. *)
type guard = { cond : Webapp.Ast.cond; value : bool }

type block = { id : node; instrs : instr list; loop_head : bool }

type edge = { src : node; dst : node; guard : guard option }

type t = {
  blocks : block array;  (** indexed by [node] *)
  entry : node;
  exit_ : node;  (** target of [exit;] and of the program's fallthrough *)
  edges : edge list;  (** in construction order *)
  succs : edge list array;  (** outgoing edges per node *)
  preds : edge list array;  (** incoming edges per node *)
  num_sinks : int;  (** [List.length (Ast.sinks program)] *)
}

val build : Webapp.Ast.program -> t

val num_blocks : t -> int

val pp_summary : t Fmt.t
