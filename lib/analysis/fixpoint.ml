module Store = Automata.Store
module Query = Automata.Query
module Metrics = Telemetry.Metrics
module Span = Telemetry.Span

let c_iterations = Metrics.Counter.make "analysis.fixpoint.iterations"
let c_cache_hit = Metrics.Counter.make "analysis.fixpoint.cache.hit"
let c_cache_miss = Metrics.Counter.make "analysis.fixpoint.cache.miss"
let t_fixpoint = Metrics.Timer.make "analysis.fixpoint"
let t_iteration = Metrics.Timer.make "analysis.fixpoint.iteration"
let c_widen = Metrics.Counter.make "analysis.widen.count"
let c_prune_hit = Metrics.Counter.make "analysis.prune.hit"
let c_prune_miss = Metrics.Counter.make "analysis.prune.miss"

type sink_verdict = { sink_id : int; lang : Store.handle; safe : bool }

type result = {
  verdicts : sink_verdict list;
  iterations : int;
  widenings : int;
  blocks : int;
}

let safe_sink_ids r =
  List.filter_map (fun v -> if v.safe then Some v.sink_id else None) r.verdicts

let transfer block st =
  List.fold_left
    (fun st instr ->
      match instr with
      | Cfg.Assign (v, e) -> Absdom.assign st v e
      | Cfg.Query _ -> st)
    st block.Cfg.instrs

(* Propagate [out] across [edge]; [None] = the edge is infeasible. *)
let flow out (edge : Cfg.edge) =
  match edge.guard with
  | None -> Some out
  | Some g -> Absdom.refine out g.value g.cond

(* Reverse postorder of the forward CFG. Draining the worklist in
   this order processes a join point only after both arms of its
   diamond are stable, so each abstract value is computed once per
   pass instead of rippling: a FIFO queue re-propagates every partial
   join downstream, and on the branch-heavy corpus pages that
   multiplies the expensive part (automata unions, minimization) by
   the block count. Unreachable blocks keep rank [max_int]; ties
   cannot happen (ranks are distinct), so the drain order — hence
   every counter this layer emits — is deterministic. *)
let rpo_rank cfg =
  let n = Cfg.num_blocks cfg in
  let mark = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not mark.(b) then begin
      mark.(b) <- true;
      List.iter (fun (e : Cfg.edge) -> dfs e.Cfg.dst) cfg.Cfg.succs.(b);
      order := b :: !order
    end
  in
  dfs cfg.Cfg.entry;
  let rank = Array.make n max_int in
  List.iteri (fun i b -> rank.(b) <- i) !order;
  rank

module Work = Set.Make (struct
  type t = int * int (* rank, block *)

  let compare = compare
end)

let analyze ?(widen_states = 64) ?(widen_delay = 3) ~attack program =
  let cfg = Cfg.build program in
  Span.with_span ~name:"analysis.fixpoint"
    ~attrs:
      [
        ("blocks", `Int (Cfg.num_blocks cfg));
        ("sinks", `Int cfg.num_sinks);
      ]
  @@ fun () ->
  Metrics.Timer.time t_fixpoint @@ fun () ->
  let attack = Store.intern attack in
  let n = Cfg.num_blocks cfg in
  (* abstract state at each block's entry; None = not (yet) reachable *)
  let state : Absdom.t option array = Array.make n None in
  let visits = Array.make n 0 in
  let in_queue = Array.make n false in
  let rank = rpo_rank cfg in
  let work = ref Work.empty in
  let enqueue b =
    if not in_queue.(b) then begin
      in_queue.(b) <- true;
      work := Work.add (rank.(b), b) !work
    end
  in
  state.(cfg.entry) <- Some Absdom.top;
  enqueue cfg.entry;
  let iterations = ref 0 in
  let widenings = ref 0 in
  while not (Work.is_empty !work) do
    Metrics.Timer.time t_iteration @@ fun () ->
    Automata.Budget.tick ();
    let _, b = Work.min_elt !work in
    work := Work.remove (rank.(b), b) !work;
    in_queue.(b) <- false;
    incr iterations;
    Metrics.Counter.incr c_iterations 1;
    match state.(b) with
    | None -> ()
    | Some st ->
        let out = transfer cfg.blocks.(b) st in
        List.iter
          (fun (edge : Cfg.edge) ->
            match flow out edge with
            | None -> ()
            | Some out ->
                let d = edge.dst in
                let candidate, grew =
                  match state.(d) with
                  | None -> (out, true)
                  | Some old ->
                      if cfg.blocks.(d).loop_head then begin
                        visits.(d) <- visits.(d) + 1;
                        let w, count =
                          Absdom.widen ~max_states:widen_states
                            ~force:(visits.(d) > widen_delay) old out
                        in
                        widenings := !widenings + count;
                        Metrics.Counter.incr c_widen count;
                        (w, not (Absdom.leq w old))
                      end
                      else
                        let j = Absdom.join old out in
                        (j, not (Absdom.leq j old))
                in
                if grew then begin
                  state.(d) <- Some candidate;
                  enqueue d
                end)
          cfg.succs.(b)
  done;
  (* Converged: one more transfer pass per reachable block collects
     the sink languages under the stable entry states. *)
  let sink_langs : Store.handle option array = Array.make cfg.num_sinks None in
  Array.iter
    (fun (block : Cfg.block) ->
      match state.(block.id) with
      | None -> ()
      | Some st ->
          ignore
            (List.fold_left
               (fun st instr ->
                 match instr with
                 | Cfg.Assign (v, e) -> Absdom.assign st v e
                 | Cfg.Query (id, e) ->
                     if id >= 0 then begin
                       let l = Absdom.eval st e in
                       sink_langs.(id) <-
                         Some
                           (match sink_langs.(id) with
                           | None -> l
                           | Some prev -> Store.union_lang prev l)
                     end;
                     st)
               st block.instrs))
    cfg.blocks;
  let verdicts =
    List.init cfg.num_sinks (fun sink_id ->
        let lang =
          match sink_langs.(sink_id) with
          | Some l -> l
          | None -> Store.intern Automata.Nfa.empty_lang (* unreachable sink *)
        in
        let safe = Query.disjoint lang attack in
        Metrics.Counter.incr (if safe then c_prune_hit else c_prune_miss) 1;
        { sink_id; lang; safe })
  in
  { verdicts; iterations = !iterations; widenings = !widenings; blocks = n }

(* ------------------------------------------------------------------ *)
(* Result cache                                                       *)

(* The analysis is a pure function of (widening parameters, attack,
   program), so its result can be reused wholesale when the same page
   is analyzed again — the steady-state shape of webcheck serving a
   corpus, where re-running the fixpoint per request re-derives the
   same verdicts from warm memo tables at nonzero cost. The table is
   per-domain (verdicts carry store handles, which must not cross
   workers) and is reset with the store: handles minted before a
   [Store.clear] are stale with respect to the rebuilt intern table,
   and serving them would silently fork the hash-consing identity. *)
let cache :
    ( int * int * Automata.Nfa.t * Webapp.Ast.program,
      result )
    Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let () = Store.on_clear (fun () -> Hashtbl.reset (Domain.DLS.get cache))

let analyze_cached ?(widen_states = 64) ?(widen_delay = 3) ~attack program =
  let tbl = Domain.DLS.get cache in
  let key = (widen_states, widen_delay, attack, program) in
  match Hashtbl.find_opt tbl key with
  | Some r ->
      Metrics.Counter.incr c_cache_hit 1;
      r
  | None ->
      Metrics.Counter.incr c_cache_miss 1;
      let r = analyze ~widen_states ~widen_delay ~attack program in
      Hashtbl.replace tbl key r;
      r
