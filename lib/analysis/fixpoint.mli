(** Worklist fixpoint over the {!Absdom} domain: the sound static
    string analysis that proves sinks safe before any RMA solve.

    Blocks are processed from a FIFO worklist; each block's stable
    entry state transfers through its instructions and flows across
    guarded edges ({!Absdom.refine}), joining at confluence points
    and {e widening} at loop heads. Widening (alphabet closure past a
    state-count threshold, forced after [widen_delay] growing visits)
    bounds every ascending chain, so the fixpoint terminates on
    arbitrary loops — the workload the path-sensitive symbolic
    executor cannot finish.

    On convergence every sink's query language is a sound
    over-approximation of all SQL strings any concrete run can issue
    there; [abstract ∩ attack = ∅] therefore proves the sink safe on
    {e all} paths, loops included.

    Runs under the ambient {!Automata.Budget} (ticked each iteration
    and inside every automata operation); callers wanting graceful
    degradation wrap the call in {!Automata.Budget.run} and treat an
    exceeded budget as "no pruning".

    Metrics: [analysis.fixpoint.iterations], [analysis.widen.count],
    [analysis.prune.hit]/[analysis.prune.miss] (sinks proved safe /
    left for symexec); span: [analysis.fixpoint]. *)

type sink_verdict = {
  sink_id : int;  (** {!Webapp.Ast.sink_id} *)
  lang : Automata.Store.handle;
      (** over-approximation of the issued query language *)
  safe : bool;  (** [lang ∩ attack = ∅] *)
}

type result = {
  verdicts : sink_verdict list;  (** one per sink, in sink-id order *)
  iterations : int;  (** blocks processed before convergence *)
  widenings : int;  (** keys collapsed by the widening operator *)
  blocks : int;
}

(** Sinks the verdict list proves safe — the prune set. *)
val safe_sink_ids : result -> int list

(** [analyze ~attack program] builds the CFG and runs the fixpoint.
    [widen_states] (default 64) is the machine-size threshold that
    triggers alphabet closure; [widen_delay] (default 3) bounds how
    many growing visits a loop head tolerates before closure is
    forced. *)
val analyze :
  ?widen_states:int ->
  ?widen_delay:int ->
  attack:Automata.Nfa.t ->
  Webapp.Ast.program ->
  result

(** [analyze_cached] is {!analyze} behind a per-domain result cache
    keyed on the full argument tuple. The analysis is pure, so a hit
    returns the previous result verbatim — the steady-state win when
    the same page is analyzed per request (webcheck serving, bench
    passes). The cache is reset whenever the store is cleared
    (verdicts hold store handles) and never crosses domains.

    Counters: [analysis.fixpoint.cache.hit] / [.cache.miss]. *)
val analyze_cached :
  ?widen_states:int ->
  ?widen_delay:int ->
  attack:Automata.Nfa.t ->
  Webapp.Ast.program ->
  result
