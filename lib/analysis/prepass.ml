module Ast = Webapp.Ast
module Metrics = Telemetry.Metrics

let c_skip = Metrics.Counter.make "analysis.prepass.skip"
let c_run = Metrics.Counter.make "analysis.prepass.run"

type decision = {
  run_fixpoint : bool;
  reason : string;
  sinks : int;
  has_loop : bool;
  est_paths : int;
}

(* Taint: the set of variables whose value may depend on an input
   read. Control flow is ignored (any assignment taints), and the
   statement list is scanned twice so a read-before-write of a
   variable assigned later in program order still registers — an
   over-approximation, which errs toward running the fixpoint. *)
let rec expr_tainted tainted = function
  | Ast.Str _ -> false
  | Ast.Input _ -> true
  | Ast.Var v -> List.mem v tainted
  | Ast.Concat (a, b) -> expr_tainted tainted a || expr_tainted tainted b
  | Ast.Lower e | Ast.Upper e | Ast.Addslashes e | Ast.Replace (_, _, e) ->
      expr_tainted tainted e

let rec cond_expr = function
  | Ast.Not c -> cond_expr c
  | Ast.Preg_match (_, e) | Ast.Str_eq (e, _) | Ast.Strlen (e, _, _) -> e

let taint_pass program tainted =
  let tainted = ref tainted in
  let rec stmt = function
    | Ast.Assign (v, e) ->
        if expr_tainted !tainted e && not (List.mem v !tainted) then
          tainted := v :: !tainted
    | Ast.If (_, t, f) ->
        List.iter stmt t;
        List.iter stmt f
    | Ast.While (_, body) -> List.iter stmt body
    | Ast.Exit | Ast.Query _ | Ast.Echo _ -> ()
  in
  List.iter stmt program;
  !tainted

(* Count the branches the symbolic executor will actually fork on: a
   guard over a tainted operand doubles the path space; a guard over
   concrete data is constant-folded and forks nothing. The estimate
   is capped (it only ever feeds a ≤ comparison). *)
let cap = 1 lsl 20

let estimate program tainted =
  let has_loop = ref false in
  let paths = ref 1 in
  let double () = if !paths < cap then paths := !paths * 2 in
  let rec stmt = function
    | Ast.Assign _ | Ast.Exit | Ast.Query _ | Ast.Echo _ -> ()
    | Ast.If (c, t, f) ->
        if expr_tainted tainted (cond_expr c) then double ();
        List.iter stmt t;
        List.iter stmt f
    | Ast.While (_, body) ->
        has_loop := true;
        List.iter stmt body
  in
  List.iter stmt program;
  (!has_loop, !paths)

let decide ?(path_budget = 8) program =
  let sinks = List.length (Ast.sinks program) in
  let tainted = taint_pass program (taint_pass program []) in
  let has_loop, est_paths = estimate program tainted in
  let skip reason =
    Metrics.Counter.incr c_skip 1;
    { run_fixpoint = false; reason; sinks; has_loop; est_paths }
  in
  let run reason =
    Metrics.Counter.incr c_run 1;
    { run_fixpoint = true; reason; sinks; has_loop; est_paths }
  in
  if path_budget <= 0 then run "prepass disabled"
  else if sinks = 0 then skip "no sinks"
  else if has_loop then run "loops need widening"
  else if est_paths <= path_budget then
    skip (Printf.sprintf "loop-free, ~%d path(s)" est_paths)
  else run (Printf.sprintf "~%d paths exceed the enumeration budget" est_paths)
