(** Cheap pre-pass deciding whether the {!Fixpoint} analysis is worth
    running at all.

    The fixpoint is a {e pruning} layer: it can only prove sinks safe,
    never find exploits, so skipping it never changes soundness — just
    how much work the path-sensitive pipeline does afterwards. On a
    loop-free program whose (constant-folding-aware) path count fits
    the executor's enumeration budget, symbolic execution alone is
    exact and usually cheaper than one abstract iteration per block;
    paying for both was the recorded [--static-prune] regression on
    small inputs. The pre-pass is a single linear AST walk — two taint
    passes plus a branch count — so its own cost is noise.

    The decision errs toward running the fixpoint: variables are
    tainted flow-insensitively, so a guard that merely might be
    input-dependent counts as a path doubling.

    Counters: [analysis.prepass.skip] / [analysis.prepass.run]. *)

type decision = {
  run_fixpoint : bool;
  reason : string;  (** human-readable, stable across runs *)
  sinks : int;
  has_loop : bool;
  est_paths : int;  (** forking branches only; capped at 2^20 *)
}

(** [decide ?path_budget program] recommends whether to run the
    fixpoint. Skips when the program has no sinks, or is loop-free
    with at most [path_budget] (default 8) estimated paths; a
    [path_budget] of 0 disables the pre-pass (always run — the
    ablation escape hatch). *)
val decide : ?path_budget:int -> Webapp.Ast.program -> decision
