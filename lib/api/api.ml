module Json = Telemetry.Json

let schema = "dprle-wire/1"
let default_max_frame_bytes = 1 lsl 20

module Request = struct
  type solve_params = {
    system : string;
    max_solutions : int;
    combination_limit : int;
    witnesses : bool;
  }

  type webcheck_params = {
    program : string;
    attack : string;
    max_paths : int;
    static_prune : bool;
  }

  type kind =
    | Solve of solve_params
    | Check of string
    | Lint of string
    | Webcheck of webcheck_params
    | Stats
    | Shutdown

  type t = {
    id : string;
    kind : kind;
    budget_ms : int option;
    budget_states : int option;
  }

  let kind_name = function
    | Solve _ -> "solve"
    | Check _ -> "check"
    | Lint _ -> "lint"
    | Webcheck _ -> "webcheck"
    | Stats -> "stats"
    | Shutdown -> "shutdown"

  let solve_defaults ~system =
    { system; max_solutions = 256; combination_limit = 4096; witnesses = false }

  let webcheck_defaults ~program =
    { program; attack = "quote"; max_paths = 256; static_prune = true }
end

module Response = struct
  type rejection = { projected_wait_ms : int; queue_depth : int }

  type error_code =
    | Parse_error
    | Budget_exceeded
    | Over_capacity of rejection
    | Malformed
    | Too_large
    | Bad_version
    | Unknown_kind
    | Internal

  type finding = { severity : string; check : string; message : string }

  type sink = {
    path_id : int;
    sink_index : int;
    sink_id : int;
    status : string;
    exploit : (string * string) list;
  }

  type payload =
    | Sat of { solutions : int; witnesses : (string * string) list list }
    | Unsat of { reason : string; core : string list }
    | Lint_report of { findings : finding list }
    | Webcheck_report of {
        sinks : sink list;
        vulnerable : int;
        paths_truncated : bool;
      }
    | Stats_report of { requests : int; counters : (string * int) list }
    | Shutdown_ack of { drained : int }
    | Error of { code : error_code; message : string }

  type obs = { elapsed_us : int; intern_hits : int; opcache_hits : int }

  type t = { id : string; payload : payload; obs : obs }

  let no_obs = { elapsed_us = 0; intern_hits = 0; opcache_hits = 0 }

  let payload_name = function
    | Sat _ -> "sat"
    | Unsat _ -> "unsat"
    | Lint_report _ -> "lint"
    | Webcheck_report _ -> "webcheck"
    | Stats_report _ -> "stats"
    | Shutdown_ack _ -> "shutdown_ack"
    | Error _ -> "error"
end

type reject = { code : Response.error_code; message : string }

let error_code_name : Response.error_code -> string = function
  | Parse_error -> "parse_error"
  | Budget_exceeded -> "budget_exceeded"
  | Over_capacity _ -> "over_capacity"
  | Malformed -> "malformed"
  | Too_large -> "too_large"
  | Bad_version -> "bad_version"
  | Unknown_kind -> "unknown_kind"
  | Internal -> "internal"

let pp_reject ppf r =
  Fmt.pf ppf "%s: %s" (error_code_name r.code) r.message

let error_response ~id (r : reject) : Response.t =
  {
    id;
    payload = Response.Error { code = r.code; message = r.message };
    obs = Response.no_obs;
  }

(* ------------------------------------------------------------------ *)
(* Encoding. Pairs become 2-element JSON lists (JSON has no tuples);
   optional fields are omitted, never null, so decoding treats absence
   as the default.                                                     *)

let pair (k, v) = Json.List [ Json.String k; Json.String v ]

let encode_request (r : Request.t) =
  let payload =
    match r.kind with
    | Request.Solve p ->
        [
          ( "payload",
            Json.Obj
              [
                ("system", Json.String p.Request.system);
                ("max_solutions", Json.Int p.Request.max_solutions);
                ("combination_limit", Json.Int p.Request.combination_limit);
                ("witnesses", Json.Bool p.Request.witnesses);
              ] );
        ]
    | Request.Check system | Request.Lint system ->
        [ ("payload", Json.Obj [ ("system", Json.String system) ]) ]
    | Request.Webcheck p ->
        [
          ( "payload",
            Json.Obj
              [
                ("program", Json.String p.Request.program);
                ("attack", Json.String p.Request.attack);
                ("max_paths", Json.Int p.Request.max_paths);
                ("static_prune", Json.Bool p.Request.static_prune);
              ] );
        ]
    | Request.Stats | Request.Shutdown -> []
  in
  let opt name = function
    | None -> []
    | Some v -> [ (name, Json.Int v) ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("schema", Json.String schema);
          ("id", Json.String r.id);
          ("kind", Json.String (Request.kind_name r.kind));
        ]
       @ opt "budget_ms" r.budget_ms
       @ opt "budget_states" r.budget_states
       @ payload))

let encode_response (r : Response.t) =
  let payload_fields =
    match r.payload with
    | Response.Sat { solutions; witnesses } ->
        [
          ("solutions", Json.Int solutions);
          ( "witnesses",
            Json.List (List.map (fun w -> Json.List (List.map pair w)) witnesses)
          );
        ]
    | Response.Unsat { reason; core } ->
        (* the minimal-core field rides along only when the solver
           produced one, so pre-core clients see unchanged frames *)
        ("reason", Json.String reason)
        ::
        (if core = [] then []
         else [ ("core", Json.List (List.map (fun c -> Json.String c) core)) ])
    | Response.Lint_report { findings } ->
        [
          ( "findings",
            Json.List
              (List.map
                 (fun (f : Response.finding) ->
                   Json.Obj
                     [
                       ("severity", Json.String f.severity);
                       ("check", Json.String f.check);
                       ("message", Json.String f.message);
                     ])
                 findings) );
        ]
    | Response.Webcheck_report { sinks; vulnerable; paths_truncated } ->
        [
          ( "sinks",
            Json.List
              (List.map
                 (fun (s : Response.sink) ->
                   Json.Obj
                     [
                       ("path", Json.Int s.path_id);
                       ("sink", Json.Int s.sink_index);
                       ("sink_id", Json.Int s.sink_id);
                       ("status", Json.String s.status);
                       ("exploit", Json.List (List.map pair s.exploit));
                     ])
                 sinks) );
          ("vulnerable", Json.Int vulnerable);
          ("paths_truncated", Json.Bool paths_truncated);
        ]
    | Response.Stats_report { requests; counters } ->
        [
          ("requests", Json.Int requests);
          ( "counters",
            Json.List
              (List.map
                 (fun (k, v) -> Json.List [ Json.String k; Json.Int v ])
                 counters) );
        ]
    | Response.Shutdown_ack { drained } -> [ ("drained", Json.Int drained) ]
    | Response.Error { code; message } ->
        [
          ("code", Json.String (error_code_name code));
          ("message", Json.String message);
        ]
        @ (match code with
          | Response.Over_capacity rj ->
              [
                ("projected_wait_ms", Json.Int rj.Response.projected_wait_ms);
                ("queue_depth", Json.Int rj.Response.queue_depth);
              ]
          | _ -> [])
  in
  Json.to_string
    (Json.Obj
       [
         ("schema", Json.String schema);
         ("id", Json.String r.id);
         ("result", Json.String (Response.payload_name r.payload));
         ("elapsed_us", Json.Int r.obs.Response.elapsed_us);
         ( "store",
           Json.Obj
             [
               ("intern_hit", Json.Int r.obs.Response.intern_hits);
               ("opcache_hit", Json.Int r.obs.Response.opcache_hits);
             ] );
         ("payload", Json.Obj payload_fields);
       ])

(* ------------------------------------------------------------------ *)
(* Decoding: total. The reject [code] is exactly what the server
   answers with, so every failure mode below is distinguishable on
   the wire (and unit-testable).                                       *)

let reject code fmt = Fmt.kstr (fun message -> Error { code; message }) fmt

let ( let* ) = Result.bind

let parse_frame ?(max_bytes = default_max_frame_bytes) line =
  if String.length line > max_bytes then
    reject Response.Too_large "frame of %d bytes exceeds the %d-byte cap"
      (String.length line) max_bytes
  else
    let* doc =
      match Json.of_string line with
      | Ok doc -> Ok doc
      | Error e ->
          reject Response.Malformed "frame is not valid JSON (%s)" e
    in
    let* () =
      match Json.member "schema" doc with
      | Some (Json.String s) when s = schema -> Ok ()
      | Some (Json.String s) ->
          reject Response.Bad_version "frame speaks %S, this server speaks %S"
            s schema
      | _ -> reject Response.Malformed "frame carries no schema tag"
    in
    match doc with
    | Json.Obj _ -> Ok doc
    | _ -> reject Response.Malformed "frame is not a JSON object"

let str_member name doc =
  match Json.member name doc with
  | Some (Json.String s) -> Ok s
  | Some _ -> reject Response.Malformed "field %S is not a string" name
  | None -> reject Response.Malformed "field %S is missing" name

let int_member ~default name doc =
  match Json.member name doc with
  | Some (Json.Int i) -> Ok i
  | Some _ -> reject Response.Malformed "field %S is not an integer" name
  | None -> Ok default

let bool_member ~default name doc =
  match Json.member name doc with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> reject Response.Malformed "field %S is not a boolean" name
  | None -> Ok default

let opt_int_member name doc =
  match Json.member name doc with
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> reject Response.Malformed "field %S is not an integer" name
  | None -> Ok None

let payload_member doc =
  match Json.member "payload" doc with
  | Some (Json.Obj _ as p) -> Ok p
  | Some _ -> reject Response.Malformed "field \"payload\" is not an object"
  | None -> reject Response.Malformed "field \"payload\" is missing"

let decode_request ?max_bytes line =
  let* doc = parse_frame ?max_bytes line in
  let* id = str_member "id" doc in
  let* kind_tag = str_member "kind" doc in
  let* budget_ms = opt_int_member "budget_ms" doc in
  let* budget_states = opt_int_member "budget_states" doc in
  let* kind =
    match kind_tag with
    | "solve" ->
        let* p = payload_member doc in
        let* system = str_member "system" p in
        let d = Request.solve_defaults ~system in
        let* max_solutions =
          int_member ~default:d.Request.max_solutions "max_solutions" p
        in
        let* combination_limit =
          int_member ~default:d.Request.combination_limit "combination_limit" p
        in
        let* witnesses =
          bool_member ~default:d.Request.witnesses "witnesses" p
        in
        Ok
          (Request.Solve
             { system; max_solutions; combination_limit; witnesses })
    | "check" ->
        let* p = payload_member doc in
        let* system = str_member "system" p in
        Ok (Request.Check system)
    | "lint" ->
        let* p = payload_member doc in
        let* system = str_member "system" p in
        Ok (Request.Lint system)
    | "webcheck" ->
        let* p = payload_member doc in
        let* program = str_member "program" p in
        let d = Request.webcheck_defaults ~program in
        let* attack =
          match Json.member "attack" p with
          | Some (Json.String s) -> Ok s
          | Some _ -> reject Response.Malformed "field \"attack\" is not a string"
          | None -> Ok d.Request.attack
        in
        let* max_paths = int_member ~default:d.Request.max_paths "max_paths" p in
        let* static_prune =
          bool_member ~default:d.Request.static_prune "static_prune" p
        in
        Ok (Request.Webcheck { program; attack; max_paths; static_prune })
    | "stats" -> Ok Request.Stats
    | "shutdown" -> Ok Request.Shutdown
    | other ->
        reject Response.Unknown_kind
          "unknown request kind %S (have: solve, check, lint, webcheck, \
           stats, shutdown)"
          other
  in
  Ok { Request.id; kind; budget_ms; budget_states }

let pair_of_json name j =
  match j with
  | Json.List [ Json.String k; Json.String v ] -> Ok (k, v)
  | _ -> reject Response.Malformed "entry of %S is not a [string, string] pair" name

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let list_member name doc =
  match Json.member name doc with
  | Some (Json.List l) -> Ok l
  | Some _ -> reject Response.Malformed "field %S is not a list" name
  | None -> reject Response.Malformed "field %S is missing" name

let req_int_member name doc =
  match Json.member name doc with
  | Some (Json.Int i) -> Ok i
  | _ -> reject Response.Malformed "field %S is not an integer" name

let decode_response ?max_bytes line =
  let* doc = parse_frame ?max_bytes line in
  let* id = str_member "id" doc in
  let* tag = str_member "result" doc in
  let* elapsed_us = int_member ~default:0 "elapsed_us" doc in
  let* intern_hits, opcache_hits =
    match Json.member "store" doc with
    | Some (Json.Obj _ as store) ->
        let* ih = int_member ~default:0 "intern_hit" store in
        let* oh = int_member ~default:0 "opcache_hit" store in
        Ok (ih, oh)
    | Some _ -> reject Response.Malformed "field \"store\" is not an object"
    | None -> Ok (0, 0)
  in
  let* p = payload_member doc in
  let* payload =
    match tag with
    | "sat" ->
        let* solutions = req_int_member "solutions" p in
        let* ws = list_member "witnesses" p in
        let* witnesses =
          map_result
            (function
              | Json.List entries -> map_result (pair_of_json "witnesses") entries
              | _ -> reject Response.Malformed "witness entry is not a list")
            ws
        in
        Ok (Response.Sat { solutions; witnesses })
    | "unsat" ->
        let* reason = str_member "reason" p in
        let* core =
          match Json.member "core" p with
          | None -> Ok []
          | Some (Json.List l) ->
              map_result
                (function
                  | Json.String s -> Ok s
                  | _ -> reject Response.Malformed "core entry is not a string")
                l
          | Some _ -> reject Response.Malformed "field \"core\" is not a list"
        in
        Ok (Response.Unsat { reason; core })
    | "lint" ->
        let* fs = list_member "findings" p in
        let* findings =
          map_result
            (fun f ->
              let* severity = str_member "severity" f in
              let* check = str_member "check" f in
              let* message = str_member "message" f in
              Ok { Response.severity; check; message })
            fs
        in
        Ok (Response.Lint_report { findings })
    | "webcheck" ->
        let* ss = list_member "sinks" p in
        let* sinks =
          map_result
            (fun s ->
              let* path_id = req_int_member "path" s in
              let* sink_index = req_int_member "sink" s in
              let* sink_id = req_int_member "sink_id" s in
              let* status = str_member "status" s in
              let* es = list_member "exploit" s in
              let* exploit = map_result (pair_of_json "exploit") es in
              Ok { Response.path_id; sink_index; sink_id; status; exploit })
            ss
        in
        let* vulnerable = req_int_member "vulnerable" p in
        let* paths_truncated = bool_member ~default:false "paths_truncated" p in
        Ok (Response.Webcheck_report { sinks; vulnerable; paths_truncated })
    | "stats" ->
        let* requests = req_int_member "requests" p in
        let* cs = list_member "counters" p in
        let* counters =
          map_result
            (function
              | Json.List [ Json.String k; Json.Int v ] -> Ok (k, v)
              | _ ->
                  reject Response.Malformed
                    "counter entry is not a [string, int] pair")
            cs
        in
        Ok (Response.Stats_report { requests; counters })
    | "shutdown_ack" ->
        let* drained = req_int_member "drained" p in
        Ok (Response.Shutdown_ack { drained })
    | "error" ->
        let* code_tag = str_member "code" p in
        let* message = str_member "message" p in
        let* code =
          match code_tag with
          | "parse_error" -> Ok Response.Parse_error
          | "budget_exceeded" -> Ok Response.Budget_exceeded
          | "over_capacity" ->
              let* projected_wait_ms = req_int_member "projected_wait_ms" p in
              let* queue_depth = req_int_member "queue_depth" p in
              Ok (Response.Over_capacity { projected_wait_ms; queue_depth })
          | "malformed" -> Ok Response.Malformed
          | "too_large" -> Ok Response.Too_large
          | "bad_version" -> Ok Response.Bad_version
          | "unknown_kind" -> Ok Response.Unknown_kind
          | "internal" -> Ok Response.Internal
          | other -> reject Response.Malformed "unknown error code %S" other
        in
        Ok (Response.Error { code; message })
    | other -> reject Response.Malformed "unknown result tag %S" other
  in
  Ok
    {
      Response.id;
      payload;
      obs = { Response.elapsed_us; intern_hits; opcache_hits };
    }
