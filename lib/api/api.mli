(** The versioned wire API ([dprle-wire/1]): one request/response
    vocabulary and one total JSON codec shared by the {!Serve} daemon,
    the [dprle-loadgen] client, and [dprle batch --wire] — the CLI and
    the service literally cannot drift, because they link this module.

    A {e frame} is one JSON object on one line (the emitter escapes
    every control character, so a frame never contains a raw newline).
    Every frame carries [("schema", "dprle-wire/1")]; decoding rejects
    any other version with a structured error instead of guessing.

    The codec is {e total}: [decode_*] never raises. Anything that is
    not a well-formed current-version frame comes back as a {!reject}
    carrying the machine-matchable {!Response.error_code} the server
    answers with (oversized frames are rejected {e before} parsing, so
    a hostile payload costs [max_bytes] of buffer and nothing else). *)

val schema : string
(** ["dprle-wire/1"]. *)

val default_max_frame_bytes : int
(** 1 MiB — the decode-side frame cap when none is given. *)

module Request : sig
  type solve_params = {
    system : string;  (** constraint system, [Sysparse] concrete syntax *)
    max_solutions : int;  (** default 256 *)
    combination_limit : int;  (** default 4096 *)
    witnesses : bool;
        (** include per-variable shortest witness strings (default
            false — witness extraction forces automata work the
            symbolic tier would otherwise skip) *)
  }

  type webcheck_params = {
    program : string;  (** mini-PHP source *)
    attack : string;  (** attack-language name ({!Webapp.Attack.lookup}) *)
    max_paths : int;  (** path exploration bound, default 256 *)
    static_prune : bool;  (** run the dataflow prune first (default true) *)
  }

  type kind =
    | Solve of solve_params
    | Check of string  (** satisfiability only; payload is the system *)
    | Lint of string  (** every pre-solve static check; payload is the system *)
    | Webcheck of webcheck_params
    | Stats  (** telemetry snapshot of the serving process *)
    | Shutdown  (** drain in-flight work, then exit *)

  type t = {
    id : string;  (** echoed verbatim in the response *)
    kind : kind;
    budget_ms : int option;
        (** per-request wall-clock budget; doubles as the admission
            deadline — the daemon rejects the request up front when
            the queue's projected wait already exceeds it *)
    budget_states : int option;  (** per-request materialized-state cap *)
  }

  val kind_name : kind -> string
  (** ["solve"], ["check"], … — the wire discriminator. *)

  val solve_defaults : system:string -> solve_params
  val webcheck_defaults : program:string -> webcheck_params
end

module Response : sig
  (** Structured admission-control rejection (the 429 of the wire
      protocol): how long the queue ahead is projected to take, and
      how deep it was. *)
  type rejection = { projected_wait_ms : int; queue_depth : int }

  type error_code =
    | Parse_error  (** the payload system/program did not parse *)
    | Budget_exceeded  (** the per-request budget fired mid-solve *)
    | Over_capacity of rejection  (** rejected at admission *)
    | Malformed  (** frame is not a JSON object of the expected shape *)
    | Too_large  (** frame exceeds the size cap *)
    | Bad_version  (** schema tag is not [dprle-wire/1] *)
    | Unknown_kind  (** request kind outside the vocabulary *)
    | Internal  (** handler raised; the daemon survives, the request dies *)

  type finding = { severity : string; check : string; message : string }

  type sink = {
    path_id : int;  (** -1 for a sink proved safe statically *)
    sink_index : int;
    sink_id : int;
    status : string;
        (** [vulnerable], [no_exploit], [proved_safe_statically], or
            [budget_exceeded] *)
    exploit : (string * string) list;  (** input name → exploit string *)
  }

  (** Mirrors [Solver.run]'s result type on the wire: [Sat]/[Unsat]
      are the two sides of its [outcome]; [Error Budget_exceeded] is
      its error arm; the rest cover the other request kinds. *)
  type payload =
    | Sat of { solutions : int; witnesses : (string * string) list list }
    | Unsat of { reason : string; core : string list }
        (** [core]: the analyzer's minimal refuting constraint subset,
            rendered; omitted from the wire frame when empty, so
            pre-core clients decode unchanged *)
    | Lint_report of { findings : finding list }
    | Webcheck_report of {
        sinks : sink list;
        vulnerable : int;
        paths_truncated : bool;
      }
    | Stats_report of { requests : int; counters : (string * int) list }
    | Shutdown_ack of { drained : int }
    | Error of { code : error_code; message : string }

  (** Per-request observability, filled by the handler from a
      before/after metrics diff taken in the worker that ran the
      request: the warm-store story, measured per request. *)
  type obs = { elapsed_us : int; intern_hits : int; opcache_hits : int }

  type t = { id : string; payload : payload; obs : obs }

  val no_obs : obs
  (** All zeroes — for responses synthesized outside a worker. *)

  val payload_name : payload -> string
  (** The wire discriminator: ["sat"], ["unsat"], ["lint"], … *)
end

(** A decode failure, phrased as the error the server answers with. *)
type reject = { code : Response.error_code; message : string }

val error_code_name : Response.error_code -> string
val pp_reject : reject Fmt.t

val encode_request : Request.t -> string
(** One line, no trailing newline. *)

val decode_request : ?max_bytes:int -> string -> (Request.t, reject) result

val encode_response : Response.t -> string

val decode_response : ?max_bytes:int -> string -> (Response.t, reject) result

val error_response : id:string -> reject -> Response.t
(** The frame a server sends for an undecodable request ([id] is [""]
    when the frame was too broken to recover one). *)
