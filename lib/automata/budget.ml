(* Ambient per-job resource budgets. The active budget lives in
   domain-local storage so engine workers each enforce their own job's
   budget with no synchronization; the automata hot loops call the
   [tick]/[charge_states] hooks unconditionally and pay one DLS read
   plus a countdown decrement when no budget is installed. *)

type stop = Timeout | Out_of_states

exception Exceeded of stop

type t = { wall_ns : int64 option; max_states : int option }

let unlimited = { wall_ns = None; max_states = None }

let make ?wall_ms ?max_states () =
  {
    wall_ns = Option.map (fun ms -> Int64.of_float (float_of_int ms *. 1e6)) wall_ms;
    max_states;
  }

let is_unlimited b = b.wall_ns = None && b.max_states = None

type active = {
  deadline_ns : int64 option;
  cap : int option;
  mutable states : int;
  mutable pulse : int; (* countdown to the next deadline check *)
}

let slot : active option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

(* How many ticks/charged states between deadline checks. Clock reads
   are ~25ns; BFS pops are a few ns, so checking every pop would
   dominate. 64 keeps the overshoot past a deadline far below a
   millisecond on any input we solve. *)
let stride = 64

let check a =
  match a.deadline_ns with
  | Some d when Int64.compare (Telemetry.Clock.now_ns ()) d > 0 ->
      raise (Exceeded Timeout)
  | _ -> ()

let tick () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some a ->
      a.pulse <- a.pulse - 1;
      if a.pulse <= 0 then begin
        a.pulse <- stride;
        check a
      end

let charge_states n =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some a ->
      a.states <- a.states + n;
      (match a.cap with
      | Some cap when a.states > cap -> raise (Exceeded Out_of_states)
      | _ -> ());
      a.pulse <- a.pulse - n;
      if a.pulse <= 0 then begin
        a.pulse <- stride;
        check a
      end

let with_budget b f =
  if is_unlimited b then f ()
  else begin
    let r = Domain.DLS.get slot in
    let saved = !r in
    let deadline =
      Option.map (fun w -> Int64.add (Telemetry.Clock.now_ns ()) w) b.wall_ns
    in
    r := Some { deadline_ns = deadline; cap = b.max_states; states = 0; pulse = 0 };
    Fun.protect ~finally:(fun () -> r := saved) f
  end

let run b f =
  match with_budget b f with v -> Ok v | exception Exceeded stop -> Error stop

let pp_stop ppf = function
  | Timeout -> Fmt.string ppf "timeout"
  | Out_of_states -> Fmt.string ppf "state budget exhausted"

let stop_to_string stop = Fmt.str "%a" pp_stop stop
