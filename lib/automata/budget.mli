(** Per-job resource budgets for the automata kernels.

    A {!t} bounds one job's work along the two axes that blow up on
    the paper's §3.5 worst cases: wall-clock time and the number of
    product/subset states materialized by {!Ops.intersect},
    {!Dfa.of_nfa}, and the on-the-fly inclusion check in {!Lang}. The
    hot loops call {!tick} (per BFS pop) and {!charge_states} (per
    materialized state) unconditionally; both are near-free no-ops
    while no budget is installed, so single-shot solves pay nothing.

    Budgets are {e ambient}: {!with_budget}/{!run} install the budget
    in domain-local storage for the dynamic extent of the callback.
    Each engine worker domain therefore enforces exactly the budget of
    the job it is currently running. Exhaustion raises {!Exceeded},
    which unwinds the solve (interned-store state stays consistent:
    caches only ever hold completed results); {!run} catches it at the
    boundary and returns the structured {!stop}. Budgets nest — an
    inner [with_budget] shadows the outer one for its extent. *)

(** Why a budget stopped the job. *)
type stop =
  | Timeout  (** the wall-clock deadline passed *)
  | Out_of_states  (** the materialized-state cap was crossed *)

exception Exceeded of stop

type t

(** [make ?wall_ms ?max_states ()]: deadline in milliseconds of
    wall-clock time from installation, and/or a cap on states
    materialized by product/subset constructions. Omitted axes are
    unbounded. *)
val make : ?wall_ms:int -> ?max_states:int -> unit -> t

(** No limits. Installing it is a no-op. *)
val unlimited : t

val is_unlimited : t -> bool

(** [run b f] runs [f] under budget [b]; [Error stop] if the budget
    (or a nested one) was exhausted. *)
val run : t -> (unit -> 'a) -> ('a, stop) result

(** [with_budget b f] installs [b] for the extent of [f], restoring
    the previously-installed budget (if any) on exit. {!Exceeded}
    propagates to the caller. *)
val with_budget : t -> (unit -> 'a) -> 'a

(** {1 Hooks — called by the automata kernels} *)

(** Cheap progress heartbeat: checks the deadline every 64th call.
    No-op when no budget is installed in the calling domain. *)
val tick : unit -> unit

(** Account for [n] freshly materialized states; raises {!Exceeded}
    [Out_of_states] when the cap is crossed, and doubles as a {!tick}.
    No-op when no budget is installed in the calling domain. *)
val charge_states : int -> unit

val pp_stop : stop Fmt.t

val stop_to_string : stop -> string
