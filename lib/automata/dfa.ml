type state = int

type t = {
  n : int;
  start : state;
  finals : bool array;
  trans : (Charset.t * state) list array; (* labels disjoint per state *)
}

let num_states d = d.n
let start d = d.start
let is_final d q = d.finals.(q)
let transitions d q = d.trans.(q)

let step d q c =
  List.find_map
    (fun (cs, q') -> if Charset.mem c cs then Some q' else None)
    d.trans.(q)

let accepts d w =
  let rec go q i =
    if i = String.length w then d.finals.(q)
    else match step d q w.[i] with None -> false | Some q' -> go q' (i + 1)
  in
  go d.start 0

(* Merge edges sharing a target into one charset-labelled edge. *)
let merge_edges edges =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (cs, q) ->
      let existing = Option.value (Hashtbl.find_opt tbl q) ~default:Charset.empty in
      Hashtbl.replace tbl q (Charset.union existing cs))
    edges;
  Hashtbl.fold (fun q cs acc -> (cs, q) :: acc) tbl []

let t_determinize = Telemetry.Metrics.Timer.make "automata.dfa.determinize"
let t_minimize = Telemetry.Metrics.Timer.make "automata.dfa.minimize"

let of_nfa_untimed (m : Nfa.t) =
  let module SS = Nfa.StateSet in
  let key set = SS.elements set in
  let table : (Nfa.state list, state) Hashtbl.t = Hashtbl.create 64 in
  let finals = ref [] in
  let edges = ref [] in
  let count = ref 0 in
  let worklist = Queue.create () in
  let materialize set =
    let k = key set in
    match Hashtbl.find_opt table k with
    | Some q -> q
    | None ->
        Budget.charge_states 1;
        let q = !count in
        incr count;
        Hashtbl.add table k q;
        if SS.mem (Nfa.final m) set then finals := q :: !finals;
        Queue.add (set, q) worklist;
        q
  in
  let initial = Nfa.eps_closure m (SS.singleton (Nfa.start m)) in
  let start_q = materialize initial in
  while not (Queue.is_empty worklist) do
    let set, src = Queue.take worklist in
    let labels =
      SS.fold (fun s acc -> List.map fst (Nfa.char_transitions m s) @ acc) set []
    in
    let blocks = Charset.refine labels in
    let out =
      List.filter_map
        (fun block ->
          let c = Charset.choose block in
          let dst_set = Nfa.step m set c in
          if SS.is_empty dst_set then None else Some (block, materialize dst_set))
        blocks
    in
    edges := (src, merge_edges out) :: !edges
  done;
  let trans = Array.make !count [] in
  List.iter (fun (src, out) -> trans.(src) <- out) !edges;
  let finals_arr = Array.make !count false in
  List.iter (fun q -> finals_arr.(q) <- true) !finals;
  { n = !count; start = start_q; finals = finals_arr; trans }

let of_nfa m = Telemetry.Metrics.Timer.time t_determinize (fun () -> of_nfa_untimed m)

let to_nfa d =
  let b = Nfa.Builder.create () in
  let _ = Nfa.Builder.add_states b d.n in
  let final = Nfa.Builder.add_state b in
  Array.iteri
    (fun q out ->
      List.iter (fun (cs, q') -> Nfa.Builder.add_trans b q cs q') out;
      if d.finals.(q) then Nfa.Builder.add_eps b q final)
    d.trans;
  Nfa.Builder.finish b ~start:d.start ~final

(* Totalize: add an explicit non-accepting sink with a Σ self-loop and
   route every missing label to it. *)
let complete d =
  let sink = d.n in
  let trans = Array.make (d.n + 1) [] in
  Array.iteri
    (fun q out ->
      let covered = List.fold_left (fun acc (cs, _) -> Charset.union acc cs) Charset.empty out in
      let missing = Charset.complement covered in
      trans.(q) <- (if Charset.is_empty missing then out else (missing, sink) :: out))
    d.trans;
  trans.(sink) <- [ (Charset.full, sink) ];
  let finals = Array.make (d.n + 1) false in
  Array.blit d.finals 0 finals 0 d.n;
  { n = d.n + 1; start = d.start; finals; trans }

(* Keep only states reachable from the start and co-reachable to some
   final state; compact ids. An empty result is the canonical
   one-state rejecting machine. *)
let trim d =
  let fwd = Array.make d.n false in
  let rec visit q =
    if not fwd.(q) then begin
      fwd.(q) <- true;
      List.iter (fun (_, q') -> visit q') d.trans.(q)
    end
  in
  visit d.start;
  let preds = Array.make d.n [] in
  Array.iteri
    (fun q out -> List.iter (fun (_, q') -> preds.(q') <- q :: preds.(q')) out)
    d.trans;
  let bwd = Array.make d.n false in
  let rec visit_back q =
    if not bwd.(q) then begin
      bwd.(q) <- true;
      List.iter visit_back preds.(q)
    end
  in
  Array.iteri (fun q is_f -> if is_f then visit_back q) d.finals;
  let live q = fwd.(q) && bwd.(q) in
  if not (live d.start) then
    { n = 1; start = 0; finals = [| false |]; trans = [| [] |] }
  else begin
    let rename = Array.make d.n (-1) in
    let count = ref 0 in
    for q = 0 to d.n - 1 do
      if live q then begin
        rename.(q) <- !count;
        incr count
      end
    done;
    let trans = Array.make !count [] in
    let finals = Array.make !count false in
    for q = 0 to d.n - 1 do
      if live q then begin
        trans.(rename.(q)) <-
          List.filter_map
            (fun (cs, q') -> if live q' then Some (cs, rename.(q')) else None)
            d.trans.(q);
        finals.(rename.(q)) <- d.finals.(q)
      end
    done;
    { n = !count; start = rename.(d.start); finals; trans }
  end

let complement d =
  let c = complete d in
  { c with finals = Array.map not c.finals }

(* Product of two completed machines; [combine] picks the accepting
   predicate, so the same construction yields ∩ and ∪. *)
let product combine d1 d2 =
  let d1 = complete d1 and d2 = complete d2 in
  let table = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let count = ref 0 in
  let cells = ref [] in
  let materialize pair =
    match Hashtbl.find_opt table pair with
    | Some q -> q
    | None ->
        let q = !count in
        incr count;
        Hashtbl.add table pair q;
        Queue.add (pair, q) worklist;
        cells := (q, pair) :: !cells;
        q
  in
  let start_q = materialize (d1.start, d2.start) in
  let edges = ref [] in
  while not (Queue.is_empty worklist) do
    let (p, q), src = Queue.take worklist in
    let out =
      List.concat_map
        (fun (cs1, p') ->
          List.filter_map
            (fun (cs2, q') ->
              let label = Charset.inter cs1 cs2 in
              if Charset.is_empty label then None
              else Some (label, materialize (p', q')))
            d2.trans.(q))
        d1.trans.(p)
    in
    edges := (src, merge_edges out) :: !edges
  done;
  let trans = Array.make !count [] in
  List.iter (fun (src, out) -> trans.(src) <- out) !edges;
  let finals = Array.make !count false in
  List.iter
    (fun (q, (p1, p2)) -> finals.(q) <- combine d1.finals.(p1) d2.finals.(p2))
    !cells;
  trim { n = !count; start = start_q; finals; trans }

let inter d1 d2 = product ( && ) d1 d2
let union d1 d2 = product ( || ) d1 d2

let is_empty_lang d =
  let d = trim d in
  not (Array.exists Fun.id d.finals)

(* Moore partition refinement over the completed machine. The
   transition alphabet is refined globally into blocks so each state's
   behaviour is a finite signature of block→class entries. *)
let minimize_untimed d0 =
  let d = complete (trim d0) in
  let blocks = ref [] in
  Array.iter
    (fun out -> List.iter (fun (cs, _) -> blocks := cs :: !blocks) out)
    d.trans;
  let alphabet = Charset.refine !blocks in
  let reps = List.map Charset.choose alphabet in
  let total_step q c =
    match step d q c with
    | Some q' -> q'
    | None -> assert false (* machine is complete *)
  in
  (* Dense successor table, filled once: refinement runs up to the
     machine's diameter many rounds, and resolving each (state, rep)
     step through the edge lists inside the loop made every round
     O(n·r·edges) — on dense 256-char machines that term dwarfed the
     refinement itself. *)
  let r = List.length reps in
  let tbl = Array.make (max 1 (d.n * r)) 0 in
  List.iteri
    (fun i c ->
      for q = 0 to d.n - 1 do
        tbl.((q * r) + i) <- total_step q c
      done)
    reps;
  let cls = Array.make d.n 0 in
  Array.iteri (fun q is_f -> cls.(q) <- (if is_f then 1 else 0)) d.finals;
  (* Signatures are hashed over the FULL successor row and verified
     against [tbl] directly. The obvious [Hashtbl] over
     [(class, succ array)] keys loses badly here: the polymorphic hash
     samples only a prefix of the array, and on the chain-shaped DFAs
     word languages produce, most states agree on that prefix for many
     rounds — every probe then walks a long bucket doing O(r)
     structural compares, turning each round quadratic. *)
  let same_signature p q =
    cls.(p) = cls.(q)
    &&
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < r do
      if cls.(tbl.((p * r) + !i)) <> cls.(tbl.((q * r) + !i)) then ok := false;
      incr i
    done;
    !ok
  in
  let changed = ref true in
  let num_classes = ref 2 in
  while !changed do
    changed := false;
    let buckets : (int, (int * int) list) Hashtbl.t = Hashtbl.create d.n in
    let next = Array.make d.n 0 in
    let fresh = ref 0 in
    for q = 0 to d.n - 1 do
      let h = ref cls.(q) in
      for i = 0 to r - 1 do
        h := (!h * 31) + cls.(tbl.((q * r) + i))
      done;
      let key = !h land max_int in
      let candidates =
        Option.value (Hashtbl.find_opt buckets key) ~default:[]
      in
      let id =
        match
          List.find_opt (fun (p, _) -> same_signature p q) candidates
        with
        | Some (_, id) -> id
        | None ->
            let id = !fresh in
            incr fresh;
            Hashtbl.replace buckets key ((q, id) :: candidates);
            id
      in
      next.(q) <- id
    done;
    if !fresh <> !num_classes then begin
      changed := true;
      num_classes := !fresh
    end;
    Array.blit next 0 cls 0 d.n
  done;
  let k = !num_classes in
  let trans = Array.make k [] in
  let finals = Array.make k false in
  let seen = Array.make k false in
  for q = 0 to d.n - 1 do
    let c = cls.(q) in
    if not seen.(c) then begin
      seen.(c) <- true;
      finals.(c) <- d.finals.(q);
      let out =
        List.filter_map
          (fun block ->
            let ch = Charset.choose block in
            Some (block, cls.(total_step q ch)))
          alphabet
      in
      trans.(c) <- merge_edges out
    end
  done;
  trim { n = k; start = cls.(d.start); finals; trans }

let minimize d = Telemetry.Metrics.Timer.time t_minimize (fun () -> minimize_untimed d)

(* Determinization of the reversed machine, directly on DFA states
   (predecessor subset construction). No ε-edges are introduced, so
   the input's determinism makes the reversal co-deterministic — the
   hypothesis Brzozowski's theorem needs. *)
let reverse_det d =
  let d = trim d in
  let labels = ref [] in
  Array.iter (fun out -> List.iter (fun (cs, _) -> labels := cs :: !labels) out) d.trans;
  let alphabet = Charset.refine !labels in
  let start_set =
    Array.to_list d.finals
    |> List.mapi (fun q is_f -> (q, is_f))
    |> List.filter_map (fun (q, is_f) -> if is_f then Some q else None)
  in
  let module IS = Set.Make (Int) in
  let start_set = IS.of_list start_set in
  let table = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let count = ref 0 in
  let finals = ref [] in
  let materialize set =
    let k = IS.elements set in
    match Hashtbl.find_opt table k with
    | Some q -> q
    | None ->
        Budget.charge_states 1;
        let q = !count in
        incr count;
        Hashtbl.add table k q;
        if IS.mem d.start set then finals := q :: !finals;
        Queue.add (set, q) worklist;
        q
  in
  let start_q = materialize start_set in
  let edges = ref [] in
  while not (Queue.is_empty worklist) do
    let set, src = Queue.take worklist in
    let out =
      List.filter_map
        (fun block ->
          let c = Charset.choose block in
          let preds =
            List.fold_left
              (fun acc q ->
                match step d q c with
                | Some q' when IS.mem q' set -> IS.add q acc
                | _ -> acc)
              IS.empty (List.init d.n Fun.id)
          in
          if IS.is_empty preds then None else Some (block, materialize preds))
        alphabet
    in
    edges := (src, merge_edges out) :: !edges
  done;
  let trans = Array.make !count [] in
  List.iter (fun (src, out) -> trans.(src) <- out) !edges;
  let finals_arr = Array.make !count false in
  List.iter (fun q -> finals_arr.(q) <- true) !finals;
  trim { n = !count; start = start_q; finals = finals_arr; trans }

let minimize_brzozowski d = reverse_det (reverse_det d)

(* Pairwise bisimulation check between completed machines. *)
let equiv d1 d2 =
  let d1 = complete (trim d1) and d2 = complete (trim d2) in
  let visited = Hashtbl.create 64 in
  let worklist = Queue.create () in
  Queue.add (d1.start, d2.start) worklist;
  Hashtbl.add visited (d1.start, d2.start) ();
  let ok = ref true in
  while !ok && not (Queue.is_empty worklist) do
    let p, q = Queue.take worklist in
    if d1.finals.(p) <> d2.finals.(q) then ok := false
    else begin
      let labels = List.map fst d1.trans.(p) @ List.map fst d2.trans.(q) in
      List.iter
        (fun block ->
          let c = Charset.choose block in
          match (step d1 p c, step d2 q c) with
          | Some p', Some q' ->
              if not (Hashtbl.mem visited (p', q')) then begin
                Hashtbl.add visited (p', q') ();
                Queue.add (p', q') worklist
              end
          | _ -> assert false (* both machines are complete *))
        (Charset.refine labels)
    end
  done;
  !ok

let counterexample a b =
  (* BFS on the product of [a] with the completion of [b], looking for
     a state accepting in [a] but not in [b]. *)
  let b = complete b in
  let visited = Hashtbl.create 64 in
  let worklist = Queue.create () in
  Queue.add ((a.start, b.start), []) worklist;
  Hashtbl.add visited (a.start, b.start) ();
  let result = ref None in
  (try
     while not (Queue.is_empty worklist) do
       let (p, q), word = Queue.take worklist in
       if a.finals.(p) && not b.finals.(q) then begin
         result := Some (List.rev word);
         raise Exit
       end;
       List.iter
         (fun (cs1, p') ->
           List.iter
             (fun (cs2, q') ->
               let label = Charset.inter cs1 cs2 in
               if not (Charset.is_empty label) && not (Hashtbl.mem visited (p', q'))
               then begin
                 Hashtbl.add visited (p', q') ();
                 Queue.add ((p', q'), Charset.choose label :: word) worklist
               end)
             b.trans.(q))
         a.trans.(p)
     done
   with Exit -> ());
  Option.map
    (fun chars -> String.init (List.length chars) (List.nth chars))
    !result

let subset a b = Option.is_none (counterexample a b)

let shortest_word d =
  let visited = Array.make d.n false in
  let worklist = Queue.create () in
  Queue.add (d.start, []) worklist;
  visited.(d.start) <- true;
  let result = ref None in
  (try
     while not (Queue.is_empty worklist) do
       let q, word = Queue.take worklist in
       if d.finals.(q) then begin
         result := Some (List.rev word);
         raise Exit
       end;
       List.iter
         (fun (cs, q') ->
           if not visited.(q') then begin
             visited.(q') <- true;
             Queue.add (q', Charset.choose cs :: word) worklist
           end)
         d.trans.(q)
     done
   with Exit -> ());
  Option.map
    (fun chars -> String.init (List.length chars) (List.nth chars))
    !result

let sample_words d ~max_len ~max_count =
  let results = ref [] in
  let count = ref 0 in
  let worklist = Queue.create () in
  Queue.add (d.start, "") worklist;
  (try
     while not (Queue.is_empty worklist) do
       let q, word = Queue.take worklist in
       if d.finals.(q) then begin
         results := word :: !results;
         incr count;
         if !count >= max_count then raise Exit
       end;
       if String.length word < max_len then
         List.iter
           (fun (cs, q') ->
             Queue.add (q', word ^ String.make 1 (Charset.choose cs)) worklist)
           d.trans.(q)
     done
   with Exit -> ());
  List.rev !results

let to_dot ?(name = "dfa") d =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n" name;
  pf "  __start [shape=point];\n  __start -> q%d;\n" d.start;
  Array.iteri (fun q is_f -> if is_f then pf "  q%d [shape=doublecircle];\n" q) d.finals;
  Array.iteri
    (fun q out ->
      List.iter
        (fun (cs, q') ->
          pf "  q%d -> q%d [label=\"%s\"];\n" q q' (String.escaped (Charset.to_string cs)))
        out)
    d.trans;
  pf "}\n";
  Buffer.contents buf

let pp_summary ppf d =
  let trans = Array.fold_left (fun acc l -> acc + List.length l) 0 d.trans in
  let finals = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 d.finals in
  Fmt.pf ppf "states=%d transitions=%d finals=%d start=%d" d.n trans finals d.start
