(* Number of (LHS state × RHS subset) pairs explored per inclusion
   query. Full determinization of both operands would pay the whole
   product up front; the on-the-fly check below usually exits after a
   small prefix of it. *)
let h_subset_visited = Telemetry.Metrics.Histogram.make "automata.subset.visited"

let t_counterexample =
  Telemetry.Metrics.Timer.make "automata.lang.counterexample"

let t_subset = Telemetry.Metrics.Timer.make "automata.lang.subset"
let t_equal = Telemetry.Metrics.Timer.make "automata.lang.equal"

module SS = Nfa.StateSet

(* --------------------------------------------------------------- *)
(* Reference implementations: determinize both operands, then decide
   on the DFAs. Retained as the oracle for the randomized cross-check
   suite; the solver's hot paths use the on-the-fly versions below. *)

let equal_reference a b = Dfa.equiv (Dfa.of_nfa a) (Dfa.of_nfa b)

let subset_reference a b = Dfa.subset (Dfa.of_nfa a) (Dfa.of_nfa b)

let counterexample_reference a b =
  Dfa.counterexample (Dfa.of_nfa a) (Dfa.of_nfa b)

(* --------------------------------------------------------------- *)
(* On-the-fly inclusion (after Keil & Thiemann's symbolic solving of
   regular inequalities): search the product of [a]'s states against
   determinized-on-demand subsets of [b]'s states. A pair (p, S)
   reached by word w means p ∈ δa(start, w) and S is the ε-closed
   δb(start, w); w is a counterexample iff p is final in [a] while S
   misses [b]'s final state — including the S = ∅ sink, which rejects
   every extension. ε-moves of [a] advance p without touching S;
   character moves are taken per minterm ("next literal") of the
   labels leaving p and S, so each distinct successor subset is
   computed once per class, not per character. The search stops at
   the first counterexample instead of materializing either
   determinization. *)

let counterexample_untimed a b =
  let visited : (int * int list, unit) Hashtbl.t = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let count = ref 0 in
  let push p s word =
    let key = (p, SS.elements s) in
    if not (Hashtbl.mem visited key) then begin
      (* Each visited (state × subset) pair is a state of the lazy
         product: charge it against the ambient budget's state cap. *)
      Budget.charge_states 1;
      Hashtbl.add visited key ();
      incr count;
      Queue.add (p, s, word) worklist
    end
  in
  let s0 = Nfa.eps_closure b (SS.singleton (Nfa.start b)) in
  push (Nfa.start a) s0 [];
  let final_a = Nfa.final a and final_b = Nfa.final b in
  let result = ref None in
  (try
     while not (Queue.is_empty worklist) do
       let p, s, word = Queue.take worklist in
       if p = final_a && not (SS.mem final_b s) then begin
         result := Some (List.rev word);
         raise Exit
       end;
       List.iter (fun p' -> push p' s word) (Nfa.eps_transitions_from a p);
       let lhs_trans = Nfa.char_transitions a p in
       if lhs_trans <> [] then begin
         let rhs_labels =
           SS.fold
             (fun q acc ->
               List.fold_left
                 (fun acc (cs, _) -> cs :: acc)
                 acc (Nfa.char_transitions b q))
             s []
         in
         let blocks = Charset.refine (List.map fst lhs_trans @ rhs_labels) in
         (* One RHS step per minterm block, shared by every LHS
            transition whose label covers the block. *)
         let moves =
           List.map
             (fun block ->
               let c = Charset.choose block in
               (c, lazy (Nfa.step b s c)))
             blocks
         in
         List.iter
           (fun (cs, p') ->
             List.iter
               (fun (c, s') ->
                 if Charset.mem c cs then push p' (Lazy.force s') (c :: word))
               moves)
           lhs_trans
       end
     done
   with Exit -> ());
  Telemetry.Metrics.Histogram.observe h_subset_visited (float_of_int !count);
  Option.map (fun chars -> String.init (List.length chars) (List.nth chars)) !result

let counterexample a b =
  Telemetry.Metrics.Timer.time t_counterexample (fun () ->
      counterexample_untimed a b)

let subset a b =
  Telemetry.Metrics.Timer.time t_subset (fun () ->
      Option.is_none (counterexample a b))

let equal a b =
  Telemetry.Metrics.Timer.time t_equal (fun () -> subset a b && subset b a)

let is_empty a = Nfa.is_empty_lang a

let difference a b =
  Dfa.to_nfa (Dfa.inter (Dfa.of_nfa a) (Dfa.complement (Dfa.of_nfa b)))

let compact a =
  let trimmed, _ = Nfa.trim a in
  let minimized = Dfa.to_nfa (Dfa.minimize (Dfa.of_nfa trimmed)) in
  if Nfa.num_states minimized < Nfa.num_states trimmed then minimized else trimmed
