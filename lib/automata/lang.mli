(** Language-level decision procedures lifted to NFAs.

    Inclusion and equivalence run {e on the fly}: the LHS NFA is
    searched against determinized-on-demand subsets of the RHS, one
    minterm class at a time, exiting at the first counterexample —
    neither operand is fully determinized (after Keil & Thiemann's
    symbolic inequality solving). The [*_reference] versions keep the
    original determinize-both procedure as a cross-check oracle. *)

val equal : Nfa.t -> Nfa.t -> bool

(** [subset a b] iff [L(a) ⊆ L(b)]. *)
val subset : Nfa.t -> Nfa.t -> bool

(** A word of [L(a) \ L(b)], if any. *)
val counterexample : Nfa.t -> Nfa.t -> string option

(** {1 Reference implementations}

    Decide via full determinization of both operands ({!Dfa.of_nfa}
    on each side). Semantically identical to the unsuffixed versions;
    used by the randomized cross-check suite. *)

val equal_reference : Nfa.t -> Nfa.t -> bool

val subset_reference : Nfa.t -> Nfa.t -> bool

val counterexample_reference : Nfa.t -> Nfa.t -> string option

val is_empty : Nfa.t -> bool

(** [L(a) \ L(b)] as an NFA. *)
val difference : Nfa.t -> Nfa.t -> Nfa.t

(** Language-preserving state reduction: trims, then determinizes and
    minimizes if that shrinks the machine. Used for the minimization
    ablation of the paper's §4 discussion. *)
val compact : Nfa.t -> Nfa.t
