type state = int

module StateSet = Set.Make (Int)
module StateMap = Map.Make (Int)

(* Peak BFS frontier width per reachability query; together with
   automata.subset.visited this is the observable the hot-path
   rewrites of this layer are judged against (DESIGN.md §8). *)
let h_bfs_frontier = Telemetry.Metrics.Histogram.make "automata.bfs.frontier"

type t = {
  n : int;
  start : state;
  final : state;
  delta : (Charset.t * state) list array; (* indexed by source state *)
  eps : state list array;
  (* Lazily-built indexes over the immutable delta/eps arrays. They
     are shared (not recomputed) by the [{ m with ... }] copies the
     induce operations make, which is safe because they depend only on
     the transition structure, never on start/final. Atomic because
     top-level machines (attack languages, compiled constants) are
     shared read-only across engine worker domains: the Atomic
     get/set pair publishes the fully-built index, where a plain
     mutable field could expose another domain to a partially-written
     array. Two domains may race to build the same index; both results
     are equal, so the losing write is harmless. *)
  preds : state list array option Atomic.t;
  eps_index : (int, unit) Hashtbl.t option Atomic.t;
}

let num_states m = m.n
let start m = m.start
let final m = m.final
let states m = List.init m.n Fun.id
let char_transitions m q = m.delta.(q)
let eps_transitions_from m q = m.eps.(q)

let all_eps_edges m =
  let acc = ref [] in
  for q = m.n - 1 downto 0 do
    List.iter (fun q' -> acc := (q, q') :: !acc) m.eps.(q)
  done;
  !acc

(* Predecessor adjacency (character and ε edges together), built on
   first co-reachability query and cached. *)
let preds m =
  match Atomic.get m.preds with
  | Some p -> p
  | None ->
      let p = Array.make m.n [] in
      for q = 0 to m.n - 1 do
        List.iter (fun (_, q') -> p.(q') <- q :: p.(q')) m.delta.(q);
        List.iter (fun q' -> p.(q') <- q :: p.(q')) m.eps.(q)
      done;
      Atomic.set m.preds (Some p);
      p

(* ε-edge membership index: keys are [p * n + q]. Built on first
   [has_eps_edge] so the full-state scans in Ci stop paying a
   [List.mem] per candidate pair. *)
let eps_index m =
  match Atomic.get m.eps_index with
  | Some t -> t
  | None ->
      let t = Hashtbl.create 64 in
      for q = 0 to m.n - 1 do
        List.iter (fun q' -> Hashtbl.replace t ((q * m.n) + q') ()) m.eps.(q)
      done;
      Atomic.set m.eps_index (Some t);
      t

let has_eps_edge m p q = Hashtbl.mem (eps_index m) ((p * m.n) + q)

let fold_char_transitions m ~init ~f =
  let acc = ref init in
  for q = 0 to m.n - 1 do
    List.iter (fun (cs, q') -> acc := f !acc q cs q') m.delta.(q)
  done;
  !acc

let induce_from_final m q =
  if q < 0 || q >= m.n then invalid_arg "Nfa.induce_from_final";
  { m with final = q }

let induce_from_start m q =
  if q < 0 || q >= m.n then invalid_arg "Nfa.induce_from_start";
  { m with start = q }

module Builder = struct
  type b = {
    mutable count : int;
    mutable trans : (state * Charset.t * state) list;
    mutable eps_edges : (state * state) list;
  }

  let create () = { count = 0; trans = []; eps_edges = [] }

  let add_state b =
    let q = b.count in
    b.count <- b.count + 1;
    q

  let add_states b k =
    let q = b.count in
    b.count <- b.count + k;
    q

  let check b q = if q < 0 || q >= b.count then invalid_arg "Nfa.Builder: bad state"

  let add_trans b src cs dst =
    check b src;
    check b dst;
    if not (Charset.is_empty cs) then b.trans <- (src, cs, dst) :: b.trans

  let add_eps b src dst =
    check b src;
    check b dst;
    b.eps_edges <- (src, dst) :: b.eps_edges

  let finish b ~start ~final =
    check b start;
    check b final;
    let delta = Array.make b.count [] in
    let eps = Array.make b.count [] in
    (* Both edge kinds deduplicate through a hash table: the ε-edge
       [List.mem] scan was quadratic in the edge count, and character
       duplicates (identical [(src, cs, dst)] triples accumulated by
       embed/concat chains) were never collapsed at all, multiplying
       work in every downstream product. Charsets key by their
       canonical interval list, so equal sets always collide. *)
    let seen_trans = Hashtbl.create (List.length b.trans) in
    List.iter
      (fun (src, cs, dst) ->
        let key = (src, dst, Charset.ranges cs) in
        if not (Hashtbl.mem seen_trans key) then begin
          Hashtbl.add seen_trans key ();
          delta.(src) <- (cs, dst) :: delta.(src)
        end)
      b.trans;
    let seen_eps = Hashtbl.create 64 in
    List.iter
      (fun ((_, dst) as edge) ->
        if not (Hashtbl.mem seen_eps edge) then begin
          Hashtbl.add seen_eps edge ();
          eps.(fst edge) <- dst :: eps.(fst edge)
        end)
      b.eps_edges;
    {
      n = b.count;
      start;
      final;
      delta;
      eps;
      preds = Atomic.make None;
      eps_index = Atomic.make None;
    }
end

let empty_lang =
  let b = Builder.create () in
  let s = Builder.add_state b in
  let f = Builder.add_state b in
  Builder.finish b ~start:s ~final:f

let epsilon_lang =
  let b = Builder.create () in
  let s = Builder.add_state b in
  let f = Builder.add_state b in
  Builder.add_eps b s f;
  Builder.finish b ~start:s ~final:f

let of_charset cs =
  let b = Builder.create () in
  let s = Builder.add_state b in
  let f = Builder.add_state b in
  Builder.add_trans b s cs f;
  Builder.finish b ~start:s ~final:f

let of_word w =
  let len = String.length w in
  let b = Builder.create () in
  let first = Builder.add_states b (len + 1) in
  for i = 0 to len - 1 do
    Builder.add_trans b (first + i) (Charset.singleton w.[i]) (first + i + 1)
  done;
  Builder.finish b ~start:first ~final:(first + len)

let sigma_star =
  (* A single state with a Σ self-loop is both start and final; this
     keeps the Σ* machines that seed every variable node small. *)
  let b = Builder.create () in
  let s = Builder.add_state b in
  Builder.add_trans b s Charset.full s;
  Builder.finish b ~start:s ~final:s

(* ------------------------------------------------------------------ *)
(* Dense breadth-first searches. One byte per state plus a
   preallocated worklist replaces the functional [StateSet] frontiers:
   every state is enqueued at most once, membership is an array read,
   and nothing is allocated inside the loop. The original
   implementations are retained below as [*_reference] oracles for the
   randomized cross-check suite. *)

module Flags = struct
  type set = Bytes.t

  let mem fl q = Bytes.unsafe_get fl q <> '\000'

  let cardinal fl =
    let count = ref 0 in
    Bytes.iter (fun c -> if c <> '\000' then incr count) fl;
    !count
end

let flags_to_set fl =
  let acc = ref StateSet.empty in
  for q = Bytes.length fl - 1 downto 0 do
    if Bytes.unsafe_get fl q <> '\000' then acc := StateSet.add q !acc
  done;
  !acc

(* Generic worklist BFS: [roots] seed the search, [iter_succ q push]
   feeds the successors of [q]. Returns the visited flags; observes
   the peak frontier width when [observe] is set. *)
let bfs ?(observe = false) ~n ~roots ~iter_succ () =
  let seen = Bytes.make n '\000' in
  let queue = Array.make (max n 1) 0 in
  let head = ref 0 and tail = ref 0 in
  let peak = ref 0 in
  let push q =
    if Bytes.unsafe_get seen q = '\000' then begin
      Bytes.unsafe_set seen q '\001';
      queue.(!tail) <- q;
      incr tail
    end
  in
  List.iter push roots;
  while !head < !tail do
    Budget.tick ();
    if !tail - !head > !peak then peak := !tail - !head;
    let q = queue.(!head) in
    incr head;
    iter_succ q push
  done;
  if observe then
    Telemetry.Metrics.Histogram.observe h_bfs_frontier (float_of_int !peak);
  seen

let eps_closure m set =
  (* Fast path: most sets in the simulation loops have no outgoing
     ε-edges at all, and are their own closure. *)
  if StateSet.for_all (fun q -> m.eps.(q) = []) set then set
  else
    flags_to_set
      (bfs ~n:m.n ~roots:(StateSet.elements set)
         ~iter_succ:(fun q push -> List.iter push m.eps.(q))
         ())

let eps_closure_reference m set =
  let rec go frontier acc =
    if StateSet.is_empty frontier then acc
    else
      let next =
        StateSet.fold
          (fun q acc' ->
            List.fold_left
              (fun acc'' q' ->
                if StateSet.mem q' acc then acc'' else StateSet.add q' acc'')
              acc' m.eps.(q))
          frontier StateSet.empty
      in
      go next (StateSet.union acc next)
  in
  go set set

let step m set c =
  let moved =
    StateSet.fold
      (fun q acc ->
        List.fold_left
          (fun acc (cs, q') -> if Charset.mem c cs then StateSet.add q' acc else acc)
          acc m.delta.(q))
      set StateSet.empty
  in
  eps_closure m moved

let accepts m w =
  let initial = eps_closure m (StateSet.singleton m.start) in
  let final_set =
    String.fold_left (fun set c -> step m set c) initial w
  in
  StateSet.mem m.final final_set

let reachable_flags m q0 =
  bfs ~observe:true ~n:m.n ~roots:[ q0 ]
    ~iter_succ:(fun q push ->
      List.iter (fun (_, q') -> push q') m.delta.(q);
      List.iter push m.eps.(q))
    ()

let coreachable_flags m q0 =
  let preds = preds m in
  bfs ~observe:true ~n:m.n ~roots:[ q0 ]
    ~iter_succ:(fun q push -> List.iter push preds.(q))
    ()

let reachable_from m q0 = flags_to_set (reachable_flags m q0)

let coreachable_to m q0 = flags_to_set (coreachable_flags m q0)

let reachable_from_reference m q0 =
  let rec go frontier acc =
    if StateSet.is_empty frontier then acc
    else
      let next =
        StateSet.fold
          (fun q acc' ->
            let push q' acc'' =
              if StateSet.mem q' acc then acc'' else StateSet.add q' acc''
            in
            let acc' = List.fold_left (fun a (_, q') -> push q' a) acc' m.delta.(q) in
            List.fold_left (fun a q' -> push q' a) acc' m.eps.(q))
          frontier StateSet.empty
      in
      go next (StateSet.union acc next)
  in
  go (StateSet.singleton q0) (StateSet.singleton q0)

let coreachable_to_reference m q0 =
  let preds = Array.make m.n [] in
  for q = 0 to m.n - 1 do
    List.iter (fun (_, q') -> preds.(q') <- q :: preds.(q')) m.delta.(q);
    List.iter (fun q' -> preds.(q') <- q :: preds.(q')) m.eps.(q)
  done;
  let rec go frontier acc =
    if StateSet.is_empty frontier then acc
    else
      let next =
        StateSet.fold
          (fun q acc' ->
            List.fold_left
              (fun acc'' p ->
                if StateSet.mem p acc then acc'' else StateSet.add p acc'')
              acc' preds.(q))
          frontier StateSet.empty
      in
      go next (StateSet.union acc next)
  in
  go (StateSet.singleton q0) (StateSet.singleton q0)

(* Emptiness needs no full closure: stop the moment the final state is
   flagged. *)
let is_empty_lang m =
  if m.start = m.final then false
  else begin
    let seen = Bytes.make m.n '\000' in
    let queue = Array.make m.n 0 in
    let head = ref 0 and tail = ref 0 in
    let peak = ref 0 in
    let found = ref false in
    let push q =
      if Bytes.unsafe_get seen q = '\000' then begin
        Bytes.unsafe_set seen q '\001';
        if q = m.final then found := true
        else begin
          queue.(!tail) <- q;
          incr tail
        end
      end
    in
    push m.start;
    while (not !found) && !head < !tail do
      Budget.tick ();
      if !tail - !head > !peak then peak := !tail - !head;
      let q = queue.(!head) in
      incr head;
      List.iter (fun (_, q') -> push q') m.delta.(q);
      List.iter push m.eps.(q)
    done;
    Telemetry.Metrics.Histogram.observe h_bfs_frontier (float_of_int !peak);
    not !found
  end

let is_empty_lang_reference m =
  not (StateSet.mem m.final (reachable_from_reference m m.start))

let accepts_empty m =
  StateSet.mem m.final (eps_closure m (StateSet.singleton m.start))

let shortest_word m =
  (* BFS over single states; ε-edges cost nothing but BFS layers are
     by word length, so we expand ε-closures eagerly. *)
  let visited = Array.make m.n false in
  let q = Queue.create () in
  let enqueue_closure st word =
    StateSet.iter
      (fun s ->
        if not visited.(s) then begin
          visited.(s) <- true;
          Queue.add (s, word) q
        end)
      (eps_closure m (StateSet.singleton st))
  in
  enqueue_closure m.start [];
  let result = ref None in
  (try
     while not (Queue.is_empty q) do
       let s, word = Queue.take q in
       if s = m.final then begin
         result := Some (List.rev word);
         raise Exit
       end;
       List.iter
         (fun (cs, s') ->
           if not visited.(s') then enqueue_closure s' (Charset.choose cs :: word))
         m.delta.(s)
     done
   with Exit -> ());
  Option.map (fun chars -> String.init (List.length chars) (List.nth chars)) !result

let sample_words m ~max_len ~max_count =
  let results = ref [] in
  let count = ref 0 in
  let q = Queue.create () in
  Queue.add (eps_closure m (StateSet.singleton m.start), "") q;
  (* BFS on ε-closed state sets; each set is paired with one concrete
     word, so the sample is a subset of the language, not a cover. *)
  let seen = Hashtbl.create 64 in
  (try
     while not (Queue.is_empty q) do
       let set, word = Queue.take q in
       if StateSet.mem m.final set && not (Hashtbl.mem seen word) then begin
         Hashtbl.add seen word ();
         results := word :: !results;
         incr count;
         if !count >= max_count then raise Exit
       end;
       if String.length word < max_len then begin
         let labels =
           StateSet.fold (fun s acc -> List.map fst m.delta.(s) @ acc) set []
         in
         let blocks = Charset.refine labels in
         List.iter
           (fun block ->
             let c = Charset.choose block in
             let set' = step m set c in
             if not (StateSet.is_empty set') then
               Queue.add (set', word ^ String.make 1 c) q)
           blocks
       end
     done
   with Exit -> ());
  List.rev !results

(* True when every state is both reachable and co-reachable, i.e.
   [trim] would only renumber. Two flag traversals over int arrays —
   much cheaper than the Set/Map/Builder rebuild [trim] does, which is
   what hot callers (the store's canonical key) use this to avoid. *)
let is_trim m =
  let reach = reachable_flags m m.start and coreach = coreachable_flags m m.final in
  let ok = ref true in
  for q = 0 to m.n - 1 do
    if not (Flags.mem reach q && Flags.mem coreach q) then ok := false
  done;
  !ok

let trim m =
  let reach = reachable_flags m m.start and coreach = coreachable_flags m m.final in
  let live = ref StateSet.empty in
  for q = m.n - 1 downto 0 do
    if Flags.mem reach q && Flags.mem coreach q then live := StateSet.add q !live
  done;
  let live = !live in
  if not (StateSet.mem m.start live) || not (StateSet.mem m.final live) then
    (* Empty language: canonical two-state empty machine; the renaming
       is empty since no original state survives. *)
    (empty_lang, StateMap.empty)
  else begin
    let rename = ref StateMap.empty in
    let b = Builder.create () in
    StateSet.iter
      (fun q -> rename := StateMap.add q (Builder.add_state b) !rename)
      live;
    let lookup q = StateMap.find_opt q !rename in
    StateSet.iter
      (fun q ->
        let q_new = StateMap.find q !rename in
        List.iter
          (fun (cs, q') ->
            match lookup q' with
            | Some q'_new -> Builder.add_trans b q_new cs q'_new
            | None -> ())
          m.delta.(q);
        List.iter
          (fun q' ->
            match lookup q' with
            | Some q'_new -> Builder.add_eps b q_new q'_new
            | None -> ())
          m.eps.(q))
      live;
    let machine =
      Builder.finish b ~start:(StateMap.find m.start !rename)
        ~final:(StateMap.find m.final !rename)
    in
    (machine, !rename)
  end

let reverse m =
  let b = Builder.create () in
  let _ = Builder.add_states b m.n in
  for q = 0 to m.n - 1 do
    List.iter (fun (cs, q') -> Builder.add_trans b q' cs q) m.delta.(q);
    List.iter (fun q' -> Builder.add_eps b q' q) m.eps.(q)
  done;
  Builder.finish b ~start:m.final ~final:m.start

let embed_two m1 m2 =
  let b = Builder.create () in
  let _ = Builder.add_states b m1.n in
  let offset = Builder.add_states b m2.n in
  for q = 0 to m1.n - 1 do
    List.iter (fun (cs, q') -> Builder.add_trans b q cs q') m1.delta.(q);
    List.iter (fun q' -> Builder.add_eps b q q') m1.eps.(q)
  done;
  for q = 0 to m2.n - 1 do
    List.iter (fun (cs, q') -> Builder.add_trans b (q + offset) cs (q' + offset)) m2.delta.(q);
    List.iter (fun q' -> Builder.add_eps b (q + offset) (q' + offset)) m2.eps.(q)
  done;
  (b, offset)

let to_dot ?(name = "nfa") ?(highlight = []) m =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %s {\n  rankdir=LR;\n  node [shape=circle];\n" name;
  pf "  __start [shape=point];\n  __start -> q%d;\n" m.start;
  pf "  q%d [shape=doublecircle];\n" m.final;
  List.iter (fun q -> pf "  q%d [shape=doublecircle, color=blue];\n" q) highlight;
  for q = 0 to m.n - 1 do
    List.iter
      (fun (cs, q') ->
        pf "  q%d -> q%d [label=\"%s\"];\n" q q' (String.escaped (Charset.to_string cs)))
      m.delta.(q);
    List.iter (fun q' -> pf "  q%d -> q%d [label=\"ε\"];\n" q q') m.eps.(q)
  done;
  pf "}\n";
  Buffer.contents buf

let pp_summary ppf m =
  let trans = Array.fold_left (fun acc l -> acc + List.length l) 0 m.delta in
  let epses = Array.fold_left (fun acc l -> acc + List.length l) 0 m.eps in
  Fmt.pf ppf "states=%d transitions=%d eps=%d start=%d final=%d" m.n trans epses
    m.start m.final
