(** Nondeterministic finite automata with ε-transitions.

    Following the paper (§3.2), every machine has a {e single} start
    state and a {e single} final state; the concat-intersect algorithm
    depends on this invariant, and all constructors here maintain it.
    Transitions are labelled by {!Charset.t}, so a machine over a
    large alphabet stays small.

    Values of type {!t} are immutable once built. States are dense
    integers [0 .. num_states-1], which lets callers attach side
    tables (the solver tracks sub-machine state sets this way). *)

type state = int

module StateSet : Set.S with type elt = state
module StateMap : Map.S with type key = state

type t

(** {1 Accessors} *)

val num_states : t -> int

val start : t -> state

val final : t -> state

val states : t -> state list

(** Outgoing character transitions of a state. *)
val char_transitions : t -> state -> (Charset.t * state) list

(** Outgoing ε-transitions of a state. *)
val eps_transitions_from : t -> state -> state list

(** All ε-edges [(src, dst)] of the machine. *)
val all_eps_edges : t -> (state * state) list

(** [has_eps_edge m p q] iff [q ∈ δ(p, ε)]. Backed by a lazily-built
    hash index over the ε-edges, so repeated queries (the Ci cut scan)
    are O(1) after the first. *)
val has_eps_edge : t -> state -> state -> bool

val fold_char_transitions :
  t -> init:'a -> f:('a -> state -> Charset.t -> state -> 'a) -> 'a

(** {1 Re-rooting (the paper's "induce" operations)}

    [induce_from_final m q] is a copy of [m] with [q] marked as the
    only final state; [induce_from_start m q] re-marks the start
    state. These implement lines 13–14 of Fig. 3 of the paper. *)

val induce_from_final : t -> state -> t

val induce_from_start : t -> state -> t

(** {1 Construction} *)

module Builder : sig
  type b

  val create : unit -> b

  val add_state : b -> state

  (** [add_states b k] allocates [k] fresh states, returning the first. *)
  val add_states : b -> int -> state

  val add_trans : b -> state -> Charset.t -> state -> unit

  val add_eps : b -> state -> state -> unit

  (** Freeze. Raises [Invalid_argument] if [start]/[final] are not
      allocated states. *)
  val finish : b -> start:state -> final:state -> t
end

(** The empty language ∅. *)
val empty_lang : t

(** The language [{ε}]. *)
val epsilon_lang : t

(** Single-character language for a (nonempty) charset. *)
val of_charset : Charset.t -> t

(** The language [{w}]. *)
val of_word : string -> t

(** Σ* — the initial assignment for every variable node (§3.4.2). *)
val sigma_star : t

(** {1 Language queries} *)

(** ε-closure of a set of states. *)
val eps_closure : t -> StateSet.t -> StateSet.t

(** One simulation step: ε-closure after consuming [c]. The input set
    is assumed ε-closed. *)
val step : t -> StateSet.t -> char -> StateSet.t

val accepts : t -> string -> bool

(** [true] iff the machine accepts no string. *)
val is_empty_lang : t -> bool

(** [true] iff the machine accepts ε. *)
val accepts_empty : t -> bool

(** States reachable from [q] (inclusive) following any transition. *)
val reachable_from : t -> state -> StateSet.t

(** States from which [q] is reachable (inclusive). *)
val coreachable_to : t -> state -> StateSet.t

(** {1 Dense reachability}

    The flag variants answer the same queries as {!reachable_from} /
    {!coreachable_to} but return a byte-per-state visited vector
    instead of a functional set — O(1) membership, no per-query
    ordered-set construction. Callers that answer many membership
    questions against one BFS (the solver's ε-cut emptiness filter)
    should use these. *)

module Flags : sig
  type set

  val mem : set -> state -> bool

  val cardinal : set -> int
end

val reachable_flags : t -> state -> Flags.set

val coreachable_flags : t -> state -> Flags.set

(** {1 Reference implementations}

    The original [Set.Make(Int)]-frontier traversals, retained
    verbatim as oracles for the randomized cross-check suite
    ([test/test_crosscheck.ml]). Semantically identical to their
    unsuffixed counterparts; do not use on hot paths. *)

val eps_closure_reference : t -> StateSet.t -> StateSet.t

val reachable_from_reference : t -> state -> StateSet.t

val coreachable_to_reference : t -> state -> StateSet.t

val is_empty_lang_reference : t -> bool

(** A shortest accepted string, or [None] if the language is empty.
    Charset labels are concretized with {!Charset.choose}. *)
val shortest_word : t -> string option

(** Up to [max_count] accepted strings in nondecreasing length order,
    each no longer than [max_len]. *)
val sample_words : t -> max_len:int -> max_count:int -> string list

(** {1 Transformations} *)

(** Remove states that are not both reachable from the start and
    co-reachable to the final state, compacting ids. The result
    accepts the same language. Returns the renaming as a partial map
    from old to new ids. *)
val trim : t -> t * state StateMap.t

(** [is_trim m] is true when {!trim} would only renumber: every state
    is reachable and co-reachable. Two array traversals, no rebuild —
    the fast path for callers that trim defensively. *)
val is_trim : t -> bool

(** Machine for the reversed language. *)
val reverse : t -> t

(** Disjoint embedding of [m2]'s states after [m1]'s: returns a
    builder preloaded with both machines' transitions and the offset
    added to [m2]'s state ids. Shared by the concat/union/product
    constructions in {!Ops}. *)
val embed_two : t -> t -> Builder.b * int

(** {1 Output} *)

(** Graphviz DOT rendering. [highlight] states get a double border in
    addition to the final state. *)
val to_dot : ?name:string -> ?highlight:state list -> t -> string

(** One-line summary: state/transition/ε-edge counts. *)
val pp_summary : t Fmt.t
