(* Size histograms for the two hot constructions, labeled by
   direction: "in" is the work offered (operand states; for products
   the full |M1|·|M2| grid), "out" the states actually materialized.
   The in/out gap is the reachability pruning §3.5's bounds rely on. *)
let h_concat_states = Telemetry.Metrics.Histogram.make "automata.concat.states"
let h_product_states = Telemetry.Metrics.Histogram.make "automata.product.states"

(* Construction-cost timers: the ledger and `dprle profile` attribute
   solver time to these kernels. *)
let t_concat = Telemetry.Metrics.Timer.make "automata.ops.concat"
let t_intersect = Telemetry.Metrics.Timer.make "automata.ops.intersect"
let t_repeat = Telemetry.Metrics.Timer.make "automata.ops.repeat"

type concat_result = {
  machine : Nfa.t;
  left_embed : Nfa.state -> Nfa.state;
  right_embed : Nfa.state -> Nfa.state;
  bridge : Nfa.state * Nfa.state;
}

let concat_untimed m1 m2 =
  Stats.count_concat ();
  Stats.visit_states (Nfa.num_states m1 + Nfa.num_states m2);
  Telemetry.Metrics.Histogram.observe h_concat_states
    ~labels:[ ("dir", "in") ]
    (float_of_int (Nfa.num_states m1 + Nfa.num_states m2));
  let b, offset = Nfa.embed_two m1 m2 in
  let f1 = Nfa.final m1 in
  let s2 = Nfa.start m2 + offset in
  Nfa.Builder.add_eps b f1 s2;
  let machine =
    Nfa.Builder.finish b ~start:(Nfa.start m1) ~final:(Nfa.final m2 + offset)
  in
  Telemetry.Metrics.Histogram.observe h_concat_states
    ~labels:[ ("dir", "out") ]
    (float_of_int (Nfa.num_states machine));
  {
    machine;
    left_embed = Fun.id;
    right_embed = (fun q -> q + offset);
    bridge = (f1, s2);
  }

let concat m1 m2 = Telemetry.Metrics.Timer.time t_concat (fun () -> concat_untimed m1 m2)
let concat_lang m1 m2 = (concat m1 m2).machine

type product_result = {
  machine : Nfa.t;
  pair_of : Nfa.state -> Nfa.state * Nfa.state;
  state_of_pair : Nfa.state * Nfa.state -> Nfa.state option;
}

let intersect_untimed m1 m2 =
  Stats.count_product ();
  Telemetry.Metrics.Histogram.observe h_product_states
    ~labels:[ ("dir", "in") ]
    (float_of_int (Nfa.num_states m1 * Nfa.num_states m2));
  let b = Nfa.Builder.create () in
  let table : (Nfa.state * Nfa.state, Nfa.state) Hashtbl.t = Hashtbl.create 64 in
  let pairs = ref [] in
  let worklist = Queue.create () in
  let materialize pair =
    match Hashtbl.find_opt table pair with
    | Some q -> q
    | None ->
        Stats.visit_states 1;
        Budget.charge_states 1;
        let q = Nfa.Builder.add_state b in
        Hashtbl.add table pair q;
        pairs := (q, pair) :: !pairs;
        Queue.add pair worklist;
        q
  in
  let start_pair = (Nfa.start m1, Nfa.start m2) in
  let final_pair = (Nfa.final m1, Nfa.final m2) in
  let start_q = materialize start_pair in
  (* The final pair must exist even if it turns out unreachable, so
     the result is a well-formed single-final machine. *)
  let final_q = materialize final_pair in
  while not (Queue.is_empty worklist) do
    let ((p, q) as pair) = Queue.take worklist in
    let src = Hashtbl.find table pair in
    (* ε-moves are taken independently in either component. *)
    List.iter
      (fun p' -> Nfa.Builder.add_eps b src (materialize (p', q)))
      (Nfa.eps_transitions_from m1 p);
    List.iter
      (fun q' -> Nfa.Builder.add_eps b src (materialize (p, q')))
      (Nfa.eps_transitions_from m2 q);
    (* Character moves require both components to advance on a common
       label. On dense cells, rather than intersecting all |δ1|·|δ2|
       label pairs, the incident charsets are refined into minterms
       once and each minterm block is routed to the transitions that
       carry it; an (i, j) cell accumulates the union of its shared
       blocks, which is exactly [inter cs_i cs_j] (charsets are
       canonical interval lists), so the resulting machine is
       identical — same states in the same order, same labels — to
       the pairwise construction retained in
       {!intersect_reference}. *)
    let t1 = Array.of_list (Nfa.char_transitions m1 p) in
    let t2 = Array.of_list (Nfa.char_transitions m2 q) in
    let n1 = Array.length t1 and n2 = Array.length t2 in
    if n1 * n2 <= 16 then
      (* Sparse cell: the refine bookkeeping costs more than the few
         pairwise intersections it would save. *)
      Array.iter
        (fun (cs1, p') ->
          Array.iter
            (fun (cs2, q') ->
              let label = Charset.inter cs1 cs2 in
              if not (Charset.is_empty label) then
                Nfa.Builder.add_trans b src label (materialize (p', q')))
            t2)
        t1
    else begin
      (* cells hold reversed interval lists; [refine] yields blocks in
         ascending order, so appending with a coalesce-on-touch check
         reproduces the canonical form [Charset.inter] would build,
         without re-normalizing the cell at every block. *)
      let cells : (int * int) list array = Array.make (n1 * n2) [] in
      let blocks =
        Charset.refine
          (Array.fold_left (fun acc (cs, _) -> cs :: acc)
             (Array.fold_left (fun acc (cs, _) -> cs :: acc) [] t2)
             t1)
      in
      List.iter
        (fun block ->
          let c = Charset.choose block in
          let lefts = ref [] and rights = ref [] in
          Array.iteri (fun i (cs, _) -> if Charset.mem c cs then lefts := i :: !lefts) t1;
          Array.iteri (fun j (cs, _) -> if Charset.mem c cs then rights := j :: !rights) t2;
          let br = Charset.ranges block in
          List.iter
            (fun i ->
              List.iter
                (fun j ->
                  let k = (i * n2) + j in
                  List.iter
                    (fun (lo, hi) ->
                      cells.(k) <-
                        (match cells.(k) with
                        | (plo, phi) :: rest when phi + 1 >= lo ->
                            (plo, max phi hi) :: rest
                        | acc -> (lo, hi) :: acc))
                    br)
                !rights)
            !lefts)
        blocks;
      for i = 0 to n1 - 1 do
        for j = 0 to n2 - 1 do
          match cells.((i * n2) + j) with
          | [] -> ()
          | acc ->
              let label = Charset.of_ranges (List.rev acc) in
              let _, p' = t1.(i) and _, q' = t2.(j) in
              Nfa.Builder.add_trans b src label (materialize (p', q'))
        done
      done
    end
  done;
  let machine = Nfa.Builder.finish b ~start:start_q ~final:final_q in
  Telemetry.Metrics.Histogram.observe h_product_states
    ~labels:[ ("dir", "out") ]
    (float_of_int (Nfa.num_states machine));
  let pair_array = Array.make (Nfa.num_states machine) (0, 0) in
  List.iter (fun (q, pair) -> pair_array.(q) <- pair) !pairs;
  {
    machine;
    pair_of = (fun q -> pair_array.(q));
    state_of_pair = (fun pair -> Hashtbl.find_opt table pair);
  }

let intersect m1 m2 =
  Telemetry.Metrics.Timer.time t_intersect (fun () -> intersect_untimed m1 m2)

(* The original pairwise-intersection product, kept as the oracle for
   the randomized cross-check suite ([test/test_crosscheck.ml]): the
   minterm version above must produce a structurally identical
   machine. *)
let intersect_reference m1 m2 =
  Stats.count_product ();
  let b = Nfa.Builder.create () in
  let table : (Nfa.state * Nfa.state, Nfa.state) Hashtbl.t = Hashtbl.create 64 in
  let pairs = ref [] in
  let worklist = Queue.create () in
  let materialize pair =
    match Hashtbl.find_opt table pair with
    | Some q -> q
    | None ->
        Stats.visit_states 1;
        let q = Nfa.Builder.add_state b in
        Hashtbl.add table pair q;
        pairs := (q, pair) :: !pairs;
        Queue.add pair worklist;
        q
  in
  let start_q = materialize (Nfa.start m1, Nfa.start m2) in
  let final_q = materialize (Nfa.final m1, Nfa.final m2) in
  while not (Queue.is_empty worklist) do
    let ((p, q) as pair) = Queue.take worklist in
    let src = Hashtbl.find table pair in
    List.iter
      (fun p' -> Nfa.Builder.add_eps b src (materialize (p', q)))
      (Nfa.eps_transitions_from m1 p);
    List.iter
      (fun q' -> Nfa.Builder.add_eps b src (materialize (p, q')))
      (Nfa.eps_transitions_from m2 q);
    List.iter
      (fun (cs1, p') ->
        List.iter
          (fun (cs2, q') ->
            let label = Charset.inter cs1 cs2 in
            if not (Charset.is_empty label) then
              Nfa.Builder.add_trans b src label (materialize (p', q')))
          (Nfa.char_transitions m2 q))
      (Nfa.char_transitions m1 p)
  done;
  let machine = Nfa.Builder.finish b ~start:start_q ~final:final_q in
  let pair_array = Array.make (Nfa.num_states machine) (0, 0) in
  List.iter (fun (q, pair) -> pair_array.(q) <- pair) !pairs;
  {
    machine;
    pair_of = (fun q -> pair_array.(q));
    state_of_pair = (fun pair -> Hashtbl.find_opt table pair);
  }

let inter_lang m1 m2 = (intersect m1 m2).machine

let union_lang m1 m2 =
  let b, offset = Nfa.embed_two m1 m2 in
  let s = Nfa.Builder.add_state b in
  let f = Nfa.Builder.add_state b in
  Nfa.Builder.add_eps b s (Nfa.start m1);
  Nfa.Builder.add_eps b s (Nfa.start m2 + offset);
  Nfa.Builder.add_eps b (Nfa.final m1) f;
  Nfa.Builder.add_eps b (Nfa.final m2 + offset) f;
  Nfa.Builder.finish b ~start:s ~final:f

(* Copy [m] into a fresh builder, returning the embedded start/final. *)
let embed m b =
  let first = Nfa.Builder.add_states b (Nfa.num_states m) in
  List.iter
    (fun q ->
      List.iter
        (fun (cs, q') -> Nfa.Builder.add_trans b (q + first) cs (q' + first))
        (Nfa.char_transitions m q);
      List.iter
        (fun q' -> Nfa.Builder.add_eps b (q + first) (q' + first))
        (Nfa.eps_transitions_from m q))
    (Nfa.states m);
  (Nfa.start m + first, Nfa.final m + first)

let star m =
  let b = Nfa.Builder.create () in
  let s = Nfa.Builder.add_state b in
  let f = Nfa.Builder.add_state b in
  let ms, mf = embed m b in
  Nfa.Builder.add_eps b s ms;
  Nfa.Builder.add_eps b mf f;
  Nfa.Builder.add_eps b s f;
  Nfa.Builder.add_eps b mf ms;
  Nfa.Builder.finish b ~start:s ~final:f

let plus m = concat_lang m (star m)

let opt m = union_lang m Nfa.epsilon_lang

let repeat_untimed m ~min_count ~max_count =
  if min_count < 0 then invalid_arg "Ops.repeat: negative min";
  (match max_count with
  | Some mx when mx < min_count -> invalid_arg "Ops.repeat: max < min"
  | _ -> ());
  (* Single builder pass: each copy of [m] is embedded exactly once
     and chained by ε-edges, so the machine has Θ(k·|m|) states — the
     old recursive [concat_lang] helpers re-embedded the accumulated
     prefix on every step, visiting O(k²·|m|) states. *)
  let b = Nfa.Builder.create () in
  let start = Nfa.Builder.add_state b in
  let cur = ref start in
  for _ = 1 to min_count do
    let ms, mf = embed m b in
    Nfa.Builder.add_eps b !cur ms;
    cur := mf
  done;
  let final = Nfa.Builder.add_state b in
  (match max_count with
  | None ->
      (* mandatory prefix followed by a star over one more copy *)
      let ms, mf = embed m b in
      Nfa.Builder.add_eps b !cur ms;
      Nfa.Builder.add_eps b !cur final;
      Nfa.Builder.add_eps b mf ms;
      Nfa.Builder.add_eps b mf final
  | Some mx ->
      (* (max-min) optional copies, each with an early ε-exit *)
      Nfa.Builder.add_eps b !cur final;
      for _ = 1 to mx - min_count do
        let ms, mf = embed m b in
        Nfa.Builder.add_eps b !cur ms;
        Nfa.Builder.add_eps b mf final;
        cur := mf
      done);
  Nfa.Builder.finish b ~start ~final

let repeat m ~min_count ~max_count =
  Telemetry.Metrics.Timer.time t_repeat (fun () ->
      repeat_untimed m ~min_count ~max_count)

(* The original quadratic construction, retained as the language
   oracle for the cross-check suite. *)
let repeat_reference m ~min_count ~max_count =
  if min_count < 0 then invalid_arg "Ops.repeat: negative min";
  (match max_count with
  | Some mx when mx < min_count -> invalid_arg "Ops.repeat: max < min"
  | _ -> ());
  let rec copies k = if k = 0 then Nfa.epsilon_lang else concat_lang m (copies (k - 1)) in
  match max_count with
  | None -> concat_lang (copies min_count) (star m)
  | Some mx ->
      (* mandatory prefix followed by (max-min) optional copies *)
      let rec optionals k =
        if k = 0 then Nfa.epsilon_lang else opt (concat_lang m (optionals (k - 1)))
      in
      concat_lang (copies min_count) (optionals (mx - min_count))
