(** Language operations on {!Nfa.t} machines.

    The concatenation and intersection constructions return
    {e provenance} alongside the machine: the paper's algorithms slice
    intermediate machines by the origin of their states (Fig. 3 lines
    10–12) and track sub-machine state sets across constructions
    (§3.4.3 "shared solution representation"), so callers need to map
    states of the operands into states of the result. *)

(** Result of [concat m1 m2]: a machine for [L(m1) ∘ L(m2)] built with
    a single ε-edge [bridge] from the embedded final state of [m1] to
    the embedded start state of [m2] (Fig. 3 line 6). *)
type concat_result = {
  machine : Nfa.t;
  left_embed : Nfa.state -> Nfa.state;  (** state of [m1] → state of result *)
  right_embed : Nfa.state -> Nfa.state;  (** state of [m2] → state of result *)
  bridge : Nfa.state * Nfa.state;  (** the concatenation ε-edge *)
}

val concat : Nfa.t -> Nfa.t -> concat_result

(** Like {!concat} but discards provenance. *)
val concat_lang : Nfa.t -> Nfa.t -> Nfa.t

(** Result of [intersect m1 m2]: the cross-product machine (Fig. 3
    lines 7–8), restricted to states reachable from the start pair
    (plus the final pair, which is always materialized so the machine
    has a final state even when the intersection is empty). *)
type product_result = {
  machine : Nfa.t;
  pair_of : Nfa.state -> Nfa.state * Nfa.state;
      (** component states of a product state *)
  state_of_pair : Nfa.state * Nfa.state -> Nfa.state option;
      (** inverse of [pair_of]; [None] if the pair was unreachable *)
}

val intersect : Nfa.t -> Nfa.t -> product_result

(** Like {!intersect} but discards provenance. *)
val inter_lang : Nfa.t -> Nfa.t -> Nfa.t

(** The original pairwise-label product construction. On dense product
    cells {!intersect} refines the incident charsets into minterms
    instead of intersecting all label pairs, but produces a
    structurally identical machine; this oracle backs that claim in
    the randomized cross-check suite. *)
val intersect_reference : Nfa.t -> Nfa.t -> product_result

(** Thompson constructions. *)

val union_lang : Nfa.t -> Nfa.t -> Nfa.t

val star : Nfa.t -> Nfa.t

val plus : Nfa.t -> Nfa.t

val opt : Nfa.t -> Nfa.t

(** [repeat m ~min_count ~max_count] is [L(m){min,max}]; a [None] max
    means unbounded. Builds Θ((min + extras)·|m|) states in a single
    builder pass. *)
val repeat : Nfa.t -> min_count:int -> max_count:int option -> Nfa.t

(** The original O(k²·|m|) construction (re-embedding the accumulated
    prefix per copy); retained as the language oracle for the
    cross-check suite. Accepts the same language as {!repeat}. *)
val repeat_reference : Nfa.t -> min_count:int -> max_count:int option -> Nfa.t
