(* The tiered language-query front-end. Every inclusion / equality /
   emptiness / disjointness question in the codebase comes through
   here; this is the one place that decides whether the symbolic
   derivative tier (registered by the regex layer over AST provenance)
   or the automata kernels answer it. *)

module Metrics = Telemetry.Metrics

(* One of {symbolic, automata} is incremented per query; [fallback]
   additionally counts queries where the symbolic tier was attempted
   but bailed (fuel/size/witness demanded), so
   automata = cold automata + fallback. *)
let tier_symbolic = Metrics.Counter.make "store.tier.symbolic"
let tier_automata = Metrics.Counter.make "store.tier.automata"
let tier_fallback = Metrics.Counter.make "store.tier.fallback"
let tier_time = Metrics.Timer.make "store.tier.time"

type tier = Symbolic | Automata

let pp_tier ppf = function
  | Symbolic -> Fmt.string ppf "symbolic"
  | Automata -> Fmt.string ppf "automata"

type checkers = {
  subset : Store.prov -> Store.prov -> bool option;
  disjoint : Store.prov -> Store.prov -> bool option;
  is_empty : Store.prov -> bool option;
}

(* Written once at regex-layer module init (single domain), read-only
   afterwards. *)
let checkers : checkers option ref = ref None
let register ~subset ~disjoint ~is_empty =
  checkers := Some { subset; disjoint; is_empty }

(* The --no-symbolic ablation switch: verdicts must be byte-identical
   either way (cram-gated), only the tier counters and timings move. *)
let symbolic_flag = Atomic.make true
let set_symbolic_enabled b = Atomic.set symbolic_flag b
let symbolic_enabled () = Atomic.get symbolic_flag

let note op tier ~attempted =
  let labels = [ ("op", op) ] in
  (match tier with
  | Symbolic -> Metrics.Counter.incr ~labels tier_symbolic 1
  | Automata -> Metrics.Counter.incr ~labels tier_automata 1);
  if attempted && tier = Automata then
    Metrics.Counter.incr ~labels tier_fallback 1

(* Try the symbolic tier on a binary question. Returns the verdict and
   whether the tier was actually attempted (both operands tagged and
   the tier enabled) — the distinction feeds the fallback counter. *)
let symbolic2 pick h1 h2 =
  if not (symbolic_enabled ()) then (None, false)
  else
    match !checkers with
    | None -> (None, false)
    | Some c -> (
        match (Store.provenance h1, Store.provenance h2) with
        | Some p1, Some p2 ->
            ( Metrics.Timer.time tier_time
                ~labels:[ ("tier", "symbolic") ]
                (fun () -> pick c p1 p2),
              true )
        | _ -> (None, false))

let answer_automata op ~attempted f =
  note op Automata ~attempted;
  Metrics.Timer.time tier_time ~labels:[ ("tier", "automata") ] f

let subset_tier h1 h2 =
  match symbolic2 (fun c -> c.subset) h1 h2 with
  | Some verdict, _ ->
      note "subset" Symbolic ~attempted:true;
      (verdict, Symbolic)
  | None, attempted ->
      (answer_automata "subset" ~attempted (fun () -> Store.subset h1 h2), Automata)

let subset h1 h2 = fst (subset_tier h1 h2)

let equal h1 h2 =
  let forward = symbolic2 (fun c -> c.subset) h1 h2 in
  let verdict =
    match forward with
    | Some false, _ -> Some false
    | Some true, _ -> fst (symbolic2 (fun c -> c.subset) h2 h1)
    | None, _ -> None
  in
  match verdict with
  | Some b ->
      note "equal" Symbolic ~attempted:true;
      b
  | None ->
      answer_automata "equal" ~attempted:(snd forward) (fun () ->
          Store.equal h1 h2)

let is_empty h =
  let symbolic =
    if not (symbolic_enabled ()) then (None, false)
    else
      match (!checkers, Store.provenance h) with
      | Some c, Some p -> (c.is_empty p, true)
      | _ -> (None, false)
  in
  match symbolic with
  | Some b, _ ->
      note "is_empty" Symbolic ~attempted:true;
      b
  | None, attempted ->
      answer_automata "is_empty" ~attempted (fun () -> Store.is_empty h)

let disjoint h1 h2 =
  match symbolic2 (fun c -> c.disjoint) h1 h2 with
  | Some b, _ ->
      note "disjoint" Symbolic ~attempted:true;
      b
  | None, attempted ->
      answer_automata "disjoint" ~attempted (fun () ->
          Store.is_empty (Store.inter_lang h1 h2))

let counterexample h1 h2 =
  (* The symbolic tier can certify inclusion (answer [None]) but never
     produces the witness string itself; a [Some false] verdict still
     falls through to the automata kernels for the word. *)
  match symbolic2 (fun c -> c.subset) h1 h2 with
  | Some true, _ ->
      note "counterexample" Symbolic ~attempted:true;
      None
  | (Some false | None), attempted ->
      answer_automata "counterexample" ~attempted (fun () ->
          Store.counterexample h1 h2)
