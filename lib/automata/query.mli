(** The tiered language-query front-end.

    Every inclusion / equality / emptiness / disjointness question in
    the codebase goes through this module, so tiering policy lives in
    exactly one place. When both operands carry AST provenance
    ({!Store.provenance}) and the symbolic tier is enabled, the
    derivative-based checkers registered by the regex layer are tried
    first; the automata kernels answer otherwise, when the symbolic
    tier bails, or when an actual witness string is demanded.

    Which tier answered is recorded in the
    [store.tier.{symbolic,automata,fallback}] counters (labelled by
    [op]) and the [store.tier.time] timer, so [dprle profile], the
    cache ledger and the bench arms can price the tier. Per query
    exactly one of [symbolic]/[automata] increments; [fallback]
    additionally counts automata answers where the symbolic tier was
    attempted but bailed. *)

(** Which tier produced an answer. *)
type tier = Symbolic | Automata

val pp_tier : tier Fmt.t

(** [L(a) ⊆ L(b)]. *)
val subset : Store.handle -> Store.handle -> bool

(** {!subset} plus which tier answered — for callers that surface
    provenance to the user (e.g. [dprle lint]). *)
val subset_tier : Store.handle -> Store.handle -> bool * tier

(** [L(a) = L(b)], by symbolic two-sided inclusion or the automata
    kernel. *)
val equal : Store.handle -> Store.handle -> bool

(** [L(a) = ∅]. *)
val is_empty : Store.handle -> bool

(** [L(a) ∩ L(b) = ∅], without materializing the product when the
    symbolic tier answers. *)
val disjoint : Store.handle -> Store.handle -> bool

(** A word of [L(a) \ L(b)], if any. The symbolic tier can certify
    inclusion ([None]) but never fabricates the witness; non-inclusion
    always pays the automata kernel for the actual word. *)
val counterexample : Store.handle -> Store.handle -> string option

(** {1 Symbolic tier registration}

    Called once by the regex layer at module-init time. The checkers
    answer [Some] only when certain; [None] defers to the automata
    tier. *)

val register :
  subset:(Store.prov -> Store.prov -> bool option) ->
  disjoint:(Store.prov -> Store.prov -> bool option) ->
  is_empty:(Store.prov -> bool option) ->
  unit

(** {1 Ablation}

    The [--no-symbolic] switch. Verdicts are identical either way
    (cram-gated); only tier counters and timings move. *)

val set_symbolic_enabled : bool -> unit

val symbolic_enabled : unit -> bool
