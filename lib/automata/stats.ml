(* Instrumentation counters for the complexity experiments of §3.5 of
   the paper, kept as a thin compatibility shim over the
   {!Telemetry.Metrics} registry. The underlying counters are
   cumulative and process-wide; scoping is done by diffing snapshots
   ({!absolute} + {!diff}), so nested measurements cannot corrupt each
   other. [reset]/[snapshot] keep the historical bracketing API by
   moving a baseline instead of zeroing anything. *)

module Metrics = Telemetry.Metrics

let c_visited = Metrics.Counter.make "automata.states_visited"
let c_products = Metrics.Counter.make "automata.products_built"
let c_concats = Metrics.Counter.make "automata.concats_built"

let visit_states n = Metrics.Counter.incr c_visited n
let count_product () = Metrics.Counter.incr c_products 1
let count_concat () = Metrics.Counter.incr c_concats 1

type snapshot = {
  visited : int;  (* NFA states visited by constructions *)
  products : int; (* cross-product constructions performed *)
  concats : int;  (* concatenation constructions performed *)
}

let absolute () =
  {
    visited = Metrics.Counter.value c_visited;
    products = Metrics.Counter.value c_products;
    concats = Metrics.Counter.value c_concats;
  }

let diff after before =
  {
    visited = after.visited - before.visited;
    products = after.products - before.products;
    concats = after.concats - before.concats;
  }

let baseline = ref { visited = 0; products = 0; concats = 0 }
let reset () = baseline := absolute ()
let snapshot () = diff (absolute ()) !baseline

let pp ppf s =
  Fmt.pf ppf "visited=%d products=%d concats=%d" s.visited s.products s.concats
