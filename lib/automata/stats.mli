(** Instrumentation counters for the complexity experiments of §3.5
    of the paper: cost measured as NFA states visited during the
    concatenation and cross-product constructions, so the
    O(Q²)/O(Q³)/O(Q⁵) growth curves can be reproduced independently
    of wall-clock noise.

    This module is a compatibility shim over {!Telemetry.Metrics}: the
    counters live in the default metrics registry (as
    [automata.states_visited], [automata.products_built],
    [automata.concats_built]) and only ever grow. Measurement is
    diff-based — take {!absolute} before and after the region of
    interest and subtract with {!diff}; nested measurements are then
    independent. The historical {!reset}/{!snapshot} bracketing is
    kept for convenience (it moves a private baseline, it does not
    zero the counters), but note that nested [reset] brackets still
    share that one baseline — new code should use {!absolute}. *)

(** Record [n] NFA states visited (called by {!Ops}). *)
val visit_states : int -> unit

(** Record one cross-product construction. *)
val count_product : unit -> unit

(** Record one concatenation construction. *)
val count_concat : unit -> unit

type snapshot = {
  visited : int;  (** NFA states visited by constructions *)
  products : int;  (** cross-product constructions performed *)
  concats : int;  (** concatenation constructions performed *)
}

(** Cumulative counter values since process start. Never decreases. *)
val absolute : unit -> snapshot

(** [diff after before] is the pointwise difference. *)
val diff : snapshot -> snapshot -> snapshot

(** Move the baseline used by {!snapshot} to "now". *)
val reset : unit -> unit

(** Counts accumulated since the last {!reset}. *)
val snapshot : unit -> snapshot

val pp : snapshot Fmt.t
