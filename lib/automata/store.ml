(* Hash-consed language handles with memoized operations. See the
   .mli for the contract; the two load-bearing pieces here are the
   canonical key (equal keys must imply equal languages — we get the
   stronger property that the trimmed machines are isomorphic) and the
   disabled mode, which must behave exactly like the pre-store code
   path so [--no-cache] is a faithful ablation. *)

module Metrics = Telemetry.Metrics

let intern_hit = Metrics.Counter.make "store.intern.hit"
let intern_miss = Metrics.Counter.make "store.intern.miss"
let opcache_hit = Metrics.Counter.make "store.opcache.hit"
let opcache_miss = Metrics.Counter.make "store.opcache.miss"
let opcache_evict = Metrics.Counter.make "store.opcache.evict"
let machine_states = Metrics.Histogram.make "store.machine.states"

(* The ledger's raw material: per op, where the cache spends ([key] =
   keying/lookup, paid on hit and miss alike) and what a hit avoids
   ([miss] = the compute the cache would have skipped). [Ledger] below
   derives net savings from these plus the hit/miss counters. *)
let ledger_key = Metrics.Timer.make "store.ledger.key"
let ledger_miss = Metrics.Timer.make "store.ledger.miss"

(* Atomic so an engine worker spawned after [--no-cache] reliably
   observes the ablation flag; it is only ever written from the main
   domain (CLI setup, bench arms). *)
let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Cost gate *)

(* The ledger (below) prices every cache; this is the policy end that
   acts on the price. Two mechanisms, per the memo-discipline lesson
   that caching only pays above a work threshold:

   - size gate: machines below [min_states] skip canonical keying
     (interning a 2-state machine costs more to serialize than to
     rebuild), and op pairs below it skip the memo tables; machines
     above [max_states] skip it from the other side — the key is a
     full serialization of the trimmed machine, so on a 500-state
     sanitizer preimage it costs ~30 us while the memo hit it enables
     saves ~15 us of recompute. Too big to key is priced like too
     small to matter; pointer identity (the physeq MRU) still shares
     repeated interns of the same physical machine;
   - auto-disable: per domain and per op class, a running net-saved
     estimate (hits x avg miss cost - total key cost, the ledger
     formula) is evaluated every 64 events once [min_samples] events
     were seen; an op that stays below [-trip_saved_ns] has its cache
     switched off for the rest of the domain's life (sticky, surfaced
     by the [store.gate.tripped] counter).

   The trip thresholds are deliberately high-hysteresis: bench diffs
   and cram tests hard-gate counter values, so a decision that flips
   with scheduler noise would make deterministic workloads flaky. A
   cache must be unambiguously parasitic (net below -5 ms) before the
   gate acts; [set_auto_gate false] is the ablation override. *)
module Gate = struct
  let auto = Atomic.make true
  let min_states = Atomic.make 4
  let max_states = Atomic.make 256
  let min_samples = Atomic.make 512
  let trip_saved_ns = Atomic.make 5_000_000
  let tripped_c = Metrics.Counter.make "store.gate.tripped"
  let skip_c = Metrics.Counter.make "store.gate.skip"

  type acc = {
    mutable hits : int;
    mutable misses : int;
    mutable key_ns : int64;
    mutable miss_ns : int64;
    mutable disabled : bool;
  }

  let make_acc () =
    { hits = 0; misses = 0; key_ns = 0L; miss_ns = 0L; disabled = false }

  let reset_acc a =
    a.hits <- 0;
    a.misses <- 0;
    a.key_ns <- 0L;
    a.miss_ns <- 0L;
    a.disabled <- false

  let skip op = Metrics.Counter.incr ~labels:[ ("op", op) ] skip_c 1

  (* [can_trip:false] for intern: its ledger row prices a hit at the
     allocation it avoids (~100 ns), but the real value of handle
     identity is the per-handle memo state downstream (min-DFA,
     emptiness) that only shared handles accumulate — disabling
     interning from its own row is a false economy that measurably
     blows up minimization (3x on the eve fixpoint). The memo ops
     have a sound valuation (a hit avoids exactly the measured miss
     compute), so they may trip. *)
  let note op a ~can_trip ~hit ~key_ns ~miss_ns =
    if hit then a.hits <- a.hits + 1 else a.misses <- a.misses + 1;
    a.key_ns <- Int64.add a.key_ns key_ns;
    a.miss_ns <- Int64.add a.miss_ns miss_ns;
    let samples = a.hits + a.misses in
    if
      can_trip && Atomic.get auto && (not a.disabled)
      && samples land 63 = 0
      && samples >= Atomic.get min_samples
    then begin
      let avg_miss =
        if a.misses = 0 then 0.
        else Int64.to_float a.miss_ns /. float_of_int a.misses
      in
      let net = (float_of_int a.hits *. avg_miss) -. Int64.to_float a.key_ns in
      if net < -.float_of_int (Atomic.get trip_saved_ns) then begin
        a.disabled <- true;
        Metrics.Counter.incr ~labels:[ ("op", op) ] tripped_c 1
      end
    end
end

(* AST provenance: an extensible tag a higher layer (the regex
   compiler) attaches to a handle, recording which expression the
   machine was built from so the tiered query front-end ({!Query}) can
   answer inclusion questions symbolically without touching the
   machine. Extensible because the store sits below the regex layer
   and cannot mention [Ast.t]. *)
type prov = ..

type handle = {
  id : int;
  nfa : Nfa.t;
  mutable prov : prov option;
  (* [keyed] = this handle's id is stable for its language in this
     domain (it came out of the intern/word table), so it is usable as
     a memo key. A gated or disabled-store handle is not: its id never
     repeats, and memoizing on it would only fill tables with garbage. *)
  mutable keyed : bool;
  mutable dfa_memo : Dfa.t option;
  mutable min_dfa_memo : Dfa.t option;
  mutable minimized_memo : Nfa.t option;
  mutable empty_memo : bool option;
  mutable compact_memo : handle option;
      (* the interned handle of this machine's minimal DFA — a slot of
         its own because the canonical key of the minimized machine is
         itself the expensive part, and [min_dfa_memo] alone would
         leave every caller re-paying it *)
}

let nfa h = h.nfa
let id h = h.id

(* ------------------------------------------------------------------ *)
(* Canonical key *)

(* Serialization of the trimmed machine under a deterministic BFS
   renumbering. Two machines whose trimmed forms are isomorphic under
   *this* traversal order produce equal strings; since the traversal
   is a function of the machine's structure alone, equal keys imply
   the trimmed machines are isomorphic, hence language-equal. (The
   converse is not sought: structurally different machines for the
   same language hash apart, which only costs sharing.)

   Traversal: BFS from the start state, expanding each state's char
   edges ordered by (label, old destination id) and then its ε-edges
   ordered by old destination id. Trim guarantees every state but the
   final state of an empty-language machine is reachable; any
   leftovers are appended in old-id order so the key is total. *)
let canonical_key m0 =
  (* op results arrive already trim; checking costs two array sweeps
     while [trim] rebuilds the machine through a Builder *)
  let m = if Nfa.is_trim m0 then m0 else fst (Nfa.trim m0) in
  let n = Nfa.num_states m in
  let order = Array.make (max n 1) (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  let enqueue q =
    if order.(q) < 0 then begin
      order.(q) <- !next;
      incr next;
      Queue.add q queue
    end
  in
  enqueue (Nfa.start m);
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    let chars =
      List.sort
        (fun (c1, d1) (c2, d2) ->
          let c = Charset.compare c1 c2 in
          if c <> 0 then c else compare (d1 : int) d2)
        (Nfa.char_transitions m q)
    in
    List.iter (fun (_, d) -> enqueue d) chars;
    List.iter enqueue (List.sort compare (Nfa.eps_transitions_from m q))
  done;
  for q = 0 to n - 1 do
    if order.(q) < 0 then begin
      order.(q) <- !next;
      incr next
    end
  done;
  let inv = Array.make (max n 1) 0 in
  for q = 0 to n - 1 do
    inv.(order.(q)) <- q
  done;
  (* The emit path runs per edge per state and the keys are interned
     thousands of times per workload, so every byte is written
     directly — a [Printf.sprintf] here costs more than the rest of
     the traversal combined on dense 256-char machines. *)
  let buf = Buffer.create 1024 in
  let add_int i = Buffer.add_string buf (string_of_int i) in
  add_int n;
  Buffer.add_char buf '#';
  add_int order.(Nfa.start m);
  Buffer.add_char buf '#';
  add_int order.(Nfa.final m);
  for i = 0 to n - 1 do
    let q = inv.(i) in
    Buffer.add_char buf '|';
    let chars =
      List.sort
        (fun (c1, d1) (c2, d2) ->
          let c = Charset.compare c1 c2 in
          if c <> 0 then c else compare (d1 : int) d2)
        (List.map (fun (cs, d) -> (cs, order.(d))) (Nfa.char_transitions m q))
    in
    List.iter
      (fun (cs, d) ->
        List.iter
          (fun (lo, hi) ->
            add_int lo;
            Buffer.add_char buf '-';
            add_int hi;
            Buffer.add_char buf ',')
          (Charset.ranges cs);
        Buffer.add_char buf '>';
        add_int d;
        Buffer.add_char buf ';')
      chars;
    Buffer.add_char buf '!';
    List.iter
      (fun d ->
        add_int d;
        Buffer.add_char buf ',')
      (List.sort compare
         (List.map (fun d -> order.(d)) (Nfa.eps_transitions_from m q)))
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Intern table *)

(* One intern table per domain: the store is deliberately not shared
   across engine workers (no locks on the solve hot path; a worker's
   cache dies with its domain). Handles must therefore stay inside
   the domain that interned them. *)
let intern_table_key : (string, handle) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let intern_table () = Domain.DLS.get intern_table_key

(* Monotone across [clear]/[set_enabled] — and globally unique across
   domains — so stale ids in surviving caller-side memo keys can never
   alias a new machine. *)
let next_id = Atomic.make 0

let fresh_handle m =
  let id = Atomic.fetch_and_add next_id 1 in
  {
    id;
    nfa = m;
    prov = None;
    keyed = false;
    dfa_memo = None;
    min_dfa_memo = None;
    minimized_memo = None;
    empty_memo = None;
    compact_memo = None;
  }

let intern_gate_key : Gate.acc Domain.DLS.key =
  Domain.DLS.new_key Gate.make_acc

(* Physical-identity fast path: callers that hold one machine value
   across many solves (a corpus-wide attack language, a compiled
   constant) re-intern the same physical [Nfa.t] once per file.
   Machines are immutable, so pointer equality proves language
   equality; a tiny MRU list answers those repeats without paying the
   canonical key again. *)
let physeq_limit = 8

let physeq_key : (Nfa.t * handle) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let physeq_find m =
  let rec go = function
    | [] -> None
    | (m', h) :: _ when m' == m -> Some h
    | _ :: rest -> go rest
  in
  go !(Domain.DLS.get physeq_key)

let physeq_add m h =
  let r = Domain.DLS.get physeq_key in
  let rest = List.filter (fun (m', _) -> m' != m) !r in
  r := (m, h) :: List.filteri (fun i _ -> i < physeq_limit - 1) rest

(* ------------------------------------------------------------------ *)
(* AST provenance plumbing *)

(* Cost-gated and disabled-store interns return fresh, unshared
   handles, so provenance must survive handle identity: a side table
   keyed by *physical* machine identity recovers the tag for any
   handle wrapping the same immutable [Nfa.t]. Per-domain, bounded,
   reset by [clear]. *)
module ProvTbl = Hashtbl.Make (struct
  type t = Nfa.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let prov_table_key : prov ProvTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ProvTbl.create 64)

let prov_table_cap = 8192

let record_machine_prov m p =
  let t = Domain.DLS.get prov_table_key in
  if ProvTbl.mem t m || ProvTbl.length t < prov_table_cap then
    ProvTbl.replace t m p

let set_provenance h p =
  h.prov <- Some p;
  record_machine_prov h.nfa p

let provenance h =
  match h.prov with
  | Some _ as p -> p
  | None -> (
      match ProvTbl.find_opt (Domain.DLS.get prov_table_key) h.nfa with
      | Some p ->
          h.prov <- Some p;
          Some p
      | None -> None)

(* Hooks the regex layer installs at module-init time (single-domain,
   before any worker spawns; read-only afterwards): provenance for
   word literals and Σ*, and composition of provenance across the
   AST-expressible binary ops. *)
let prov_of_word : (string -> prov) option ref = ref None
let set_prov_of_word f = prov_of_word := Some f
let prov_of_top : prov option ref = ref None
let set_prov_of_top p = prov_of_top := Some p

let prov_combiner :
    (op:[ `Concat | `Union ] -> prov -> prov -> prov option) option ref =
  ref None

let set_prov_combiner f = prov_combiner := Some f

(* Attach composed provenance to a binary-op result when both operands
   carry one and the combiner accepts (it refuses oversized ASTs). A
   memo hit may return a handle that is already tagged — leave it. *)
let combined_prov ~op h1 h2 res =
  (match !prov_combiner with
  | Some f when provenance res = None -> (
      match (provenance h1, provenance h2) with
      | Some p1, Some p2 -> (
          match f ~op p1 p2 with
          | Some p -> set_provenance res p
          | None -> ())
      | _ -> ())
  | _ -> ());
  res

let attach_word_prov w h =
  (match !prov_of_word with
  | Some f when provenance h = None -> set_provenance h (f w)
  | _ -> ());
  h

let attach_top_prov h =
  (match !prov_of_top with
  | Some p when provenance h = None -> set_provenance h p
  | _ -> ());
  h

(* Interning pays the canonical key — that serialization is the
   "key-hash tax" the cache-effectiveness ledger prices, because the
   key cost scales with machine size while a hit saves the rebuild the
   caller already did plus the memo state attached to the shared
   handle. The cost gate keeps the tax off machines too small to ever
   repay it ([Gate.min_states]) and off a domain whose ledger shows
   keying losing outright (auto-disable).

   [~force] bypasses the size floor and the auto-disable (not the
   [max_states] ceiling): a long-lived handle that seeds downstream
   memos — a system constant, an analyzer bound — must have a stable
   id even when its machine is tiny, because an unkeyed fresh handle
   turns every memo keyed on it into a permanent miss. *)
let intern_gated ~force m =
  if not (enabled ()) then fresh_handle m
  else
    match physeq_find m with
    | Some h ->
        Metrics.Counter.incr intern_hit 1;
        h
    | None ->
        let a = Domain.DLS.get intern_gate_key in
        let n = Nfa.num_states m in
        if
          (not force)
          && (a.Gate.disabled || n < Atomic.get Gate.min_states)
        then begin
          Gate.skip "intern";
          fresh_handle m
        end
        else if n > Atomic.get Gate.max_states then begin
          (* above the ceiling the canonical serialization costs more
             than any downstream memo hit repays; share by pointer
             identity only, so a caller holding one big machine across
             solves still gets one handle *)
          Gate.skip "intern";
          let h = fresh_handle m in
          physeq_add m h;
          h
        end
        else begin
          let table = intern_table () in
          let t0 = Telemetry.Clock.now_ns () in
          let key =
            Metrics.Timer.time ledger_key
              ~labels:[ ("op", "intern") ]
              (fun () -> canonical_key m)
          in
          let key_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
          match Hashtbl.find_opt table key with
          | Some h ->
              Metrics.Counter.incr intern_hit 1;
              Gate.note "intern" a ~can_trip:false ~hit:true ~key_ns ~miss_ns:0L;
              physeq_add m h;
              h
          | None ->
              Metrics.Counter.incr intern_miss 1;
              Metrics.Histogram.observe machine_states
                (float_of_int (Nfa.num_states m));
              let t1 = Telemetry.Clock.now_ns () in
              let h =
                Metrics.Timer.time ledger_miss
                  ~labels:[ ("op", "intern") ]
                  (fun () -> fresh_handle m)
              in
              let miss_ns = Int64.sub (Telemetry.Clock.now_ns ()) t1 in
              h.keyed <- true;
              Hashtbl.replace table key h;
              Gate.note "intern" a ~can_trip:false ~hit:false ~key_ns ~miss_ns;
              physeq_add m h;
              h
        end

let intern m = intern_gated ~force:false m
let intern_keyed m = intern_gated ~force:true m
let canon m = if not (enabled ()) then m else (intern m).nfa

(* ------------------------------------------------------------------ *)
(* Constant fast paths *)

(* The dominant intern traffic in the analysis layers is re-interning
   machines rebuilt from the same constant — word literals evaluated
   once per fixpoint iteration, the implicit-top Σ* looked up on every
   absent binding. Both have a far cheaper stable key than the
   canonical serialization: the string itself, or nothing at all. The
   handles they return are [keyed] (their ids are stable per domain),
   so downstream op memos work at full strength without the tax. *)

let word_table_key : (string, handle) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let of_word w =
  if not (enabled ()) then attach_word_prov w (fresh_handle (Nfa.of_word w))
  else
    let table = Domain.DLS.get word_table_key in
    match Hashtbl.find_opt table w with
    | Some h ->
        Metrics.Counter.incr intern_hit 1;
        h
    | None ->
        (* one canonical-key toll (unless size-gated) so an equal
           machine arriving via another construction path still shares
           the handle; every later ask for this word is a string hash *)
        let h = intern (Nfa.of_word w) in
        h.keyed <- true;
        Hashtbl.replace table w h;
        attach_word_prov w h

let top_handle_key : handle option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let top () =
  if not (enabled ()) then attach_top_prov (fresh_handle Nfa.sigma_star)
  else
    let r = Domain.DLS.get top_handle_key in
    match !r with
    | Some h ->
        Metrics.Counter.incr intern_hit 1;
        h
    | None ->
        let h = intern Nfa.sigma_star in
        h.keyed <- true;
        r := Some h;
        attach_top_prov h

(* ------------------------------------------------------------------ *)
(* Per-handle memo slots *)

let dfa h =
  if not (enabled ()) then Dfa.of_nfa h.nfa
  else
    match h.dfa_memo with
    | Some d -> d
    | None ->
        let d = Dfa.of_nfa h.nfa in
        h.dfa_memo <- Some d;
        d

let min_dfa h =
  if not (enabled ()) then Dfa.minimize (Dfa.of_nfa h.nfa)
  else
    match h.min_dfa_memo with
    | Some d -> d
    | None ->
        let d = Dfa.minimize (dfa h) in
        h.min_dfa_memo <- Some d;
        d

let minimized h =
  let record m =
    (* compaction preserves the language, so the minimized machine
       inherits the handle's provenance via the side table — a later
       intern of it yields a symbolically answerable handle *)
    (match provenance h with Some p -> record_machine_prov m p | None -> ());
    m
  in
  if not (enabled ()) then record (Lang.compact h.nfa)
  else
    match h.minimized_memo with
    | Some m -> m
    | None ->
        let m = record (Lang.compact h.nfa) in
        h.minimized_memo <- Some m;
        m

let is_empty h =
  if not (enabled ()) then Nfa.is_empty_lang h.nfa
  else
    match h.empty_memo with
    | Some b -> b
    | None ->
        let b = Nfa.is_empty_lang h.nfa in
        h.empty_memo <- Some b;
        b

let compacted h =
  let inherit_prov c =
    (match provenance h with
    | Some p when provenance c = None -> set_provenance c p
    | _ -> ());
    c
  in
  if not (enabled ()) then inherit_prov (fresh_handle (Dfa.to_nfa (min_dfa h)))
  else
    match h.compact_memo with
    | Some c -> c
    | None ->
        let c = inherit_prov (intern (Dfa.to_nfa (min_dfa h))) in
        h.compact_memo <- Some c;
        (* compaction is idempotent: re-minimizing a machine that is
           already a minimal DFA yields an isomorphic machine, hence
           the same canonical key and the same handle *)
        c.compact_memo <- Some c;
        c

(* ------------------------------------------------------------------ *)
(* Generic bounded LRU memoization *)

module Memo = struct
  type 'v entry = { value : 'v; mutable stamp : int }

  type 'v state = {
    table : (int list, 'v entry) Hashtbl.t;
    mutable tick : int;
    gate : Gate.acc;
  }

  (* A memo names a per-domain table: [create] allocates a DLS key and
     each domain materializes its own state on first use, for the same
     reason the intern table is domain-local. The [clearers] list is
     only ever extended at module-init time (all [create] call sites
     are top-level definitions), before any worker domain exists. *)
  type 'v t = { op : string; key : 'v state Domain.DLS.key }

  (* Every table registers a clearer so [Store.clear] reaches caches
     created by higher layers (solver, residual) without a type-level
     dependency on their value types. A clearer resets the calling
     domain's instance; worker tables are dropped wholesale when their
     domain exits. *)
  let clearers : (unit -> unit) list ref = ref []

  (* Written from the main domain before workers spawn ([Domain.spawn]
     publishes it); racy mid-flight writes would only skew eviction. *)
  let capacity = ref 4096

  let create ~op =
    let key =
      Domain.DLS.new_key (fun () ->
          { table = Hashtbl.create 64; tick = 0; gate = Gate.make_acc () })
    in
    let t = { op; key } in
    clearers :=
      (fun () ->
        let s = Domain.DLS.get key in
        Hashtbl.reset s.table;
        s.tick <- 0;
        Gate.reset_acc s.gate)
      :: !clearers;
    t

  (* Batch-evict the least-recently-used half: O(n) with no auxiliary
     order structure to maintain on hits, amortized O(1) per insert. *)
  let evict_half op s =
    let n = Hashtbl.length s.table in
    let stamps = Array.make n 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun _ e ->
        stamps.(!i) <- e.stamp;
        incr i)
      s.table;
    Array.sort compare stamps;
    let cutoff = stamps.(n / 2) in
    let victims =
      Hashtbl.fold
        (fun k e acc -> if e.stamp < cutoff then k :: acc else acc)
        s.table []
    in
    List.iter (Hashtbl.remove s.table) victims;
    Metrics.Counter.incr ~labels:[ ("op", op) ] opcache_evict (List.length victims)

  let find_or_compute t ~key f =
    if not (enabled ()) then f ()
    else begin
      let s = Domain.DLS.get t.key in
      if s.gate.Gate.disabled then begin
        Gate.skip t.op;
        f ()
      end
      else begin
        s.tick <- s.tick + 1;
        let labels = [ ("op", t.op) ] in
        let t0 = Telemetry.Clock.now_ns () in
        let found =
          Metrics.Timer.time ledger_key ~labels (fun () ->
              Hashtbl.find_opt s.table key)
        in
        let key_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
        match found with
        | Some e ->
            e.stamp <- s.tick;
            Metrics.Counter.incr ~labels opcache_hit 1;
            Gate.note t.op s.gate ~can_trip:true ~hit:true ~key_ns ~miss_ns:0L;
            e.value
        | None ->
            Metrics.Counter.incr ~labels opcache_miss 1;
            let t1 = Telemetry.Clock.now_ns () in
            let v = Metrics.Timer.time ledger_miss ~labels f in
            let miss_ns = Int64.sub (Telemetry.Clock.now_ns ()) t1 in
            if Hashtbl.length s.table >= !capacity then evict_half t.op s;
            Hashtbl.replace s.table key { value = v; stamp = s.tick };
            Gate.note t.op s.gate ~can_trip:true ~hit:false ~key_ns ~miss_ns;
            v
      end
    end
end

(* ------------------------------------------------------------------ *)
(* Cached binary operations *)

let inter_memo : handle Memo.t = Memo.create ~op:"inter_lang"
let concat_memo : handle Memo.t = Memo.create ~op:"concat_lang"
let union_memo : handle Memo.t = Memo.create ~op:"union_lang"
let cex_memo : string option Memo.t = Memo.create ~op:"counterexample"

(* A pair is worth memoizing only when both ids are stable (a gated
   handle's id never repeats — caching on it fills the table with
   entries no lookup can ever hit) and the operands carry enough
   states for a recompute to cost more than the table traffic. *)
let memoizable h1 h2 =
  h1.keyed && h2.keyed
  && Nfa.num_states h1.nfa + Nfa.num_states h2.nfa
     >= Atomic.get Gate.min_states

let cached_binop memo op f h1 h2 =
  if (not (enabled ())) || memoizable h1 h2 then
    Memo.find_or_compute memo ~key:[ h1.id; h2.id ] f
  else begin
    Gate.skip op;
    f ()
  end

(* Algebraic identities, checked by handle identity before any table
   is consulted: the same physical handle is trivially the same
   language, and the per-domain Σ* handle absorbs/neutralizes lattice
   ops. The abstract-interpretation layer hits these constantly — a
   join point unions each unchanged binding with itself, and a fresh
   variable's first refinement intersects with implicit top — and
   every shortcut here skips a whole product construction. Sound with
   the store disabled too ([==] on handles never cross-identifies);
   [is_top] only ever matches the cached enabled-path handle. *)
let is_top h =
  match !(Domain.DLS.get top_handle_key) with
  | Some t -> t == h
  | None -> false

let inter_lang h1 h2 =
  if h1 == h2 then h1
  else if is_top h1 then h2
  else if is_top h2 then h1
  else
    cached_binop inter_memo "inter_lang"
      (fun () -> intern (Ops.inter_lang h1.nfa h2.nfa))
      h1 h2

let concat_lang h1 h2 =
  combined_prov ~op:`Concat h1 h2
    (cached_binop concat_memo "concat_lang"
       (fun () -> intern (Ops.concat_lang h1.nfa h2.nfa))
       h1 h2)

let union_lang h1 h2 =
  if h1 == h2 then h1
  else if is_top h1 then h1
  else if is_top h2 then h2
  else
    combined_prov ~op:`Union h1 h2
      (cached_binop union_memo "union_lang"
         (fun () -> intern (Ops.union_lang h1.nfa h2.nfa))
         h1 h2)

let counterexample h1 h2 =
  if h1 == h2 then None
  else if is_top h2 then None (* L ⊆ Σ* *)
  else
    cached_binop cex_memo "counterexample"
      (fun () -> Lang.counterexample h1.nfa h2.nfa)
      h1 h2

let subset h1 h2 = counterexample h1 h2 = None
let equal h1 h2 = subset h1 h2 && subset h2 h1

(* ------------------------------------------------------------------ *)
(* Cache-effectiveness ledger *)

module Ledger = struct
  module Snapshot = Metrics.Snapshot

  type row = {
    op : string;
    hits : int;
    misses : int;
    key_ns : int64;
    miss_ns : int64;
    avg_miss_ns : float;
    net_saved_ns : float;
  }

  (* One row per op seen in the snapshot: the memo tables (from the
     [store.opcache.*] counters) plus the intern table itself. The
     formula prices a cache by what its hits actually avoided (the
     average observed miss cost) minus what every caller paid to ask
     (total keying/lookup time) — a cache whose net is negative costs
     more than it saves on this workload. *)
  let of_snapshot snap =
    let ops = Hashtbl.create 8 in
    let note_op labels =
      match List.assoc_opt "op" labels with
      (* intern tracks hits in its own counters, not the per-memo ones;
         it gets a dedicated row below rather than a generic one here. *)
      | Some "intern" | None -> ()
      | Some op -> Hashtbl.replace ops op ()
    in
    List.iter
      (fun (name, labels, _) ->
        if name = "store.opcache.hit" || name = "store.opcache.miss" then
          note_op labels)
      (Snapshot.counters snap);
    List.iter
      (fun (name, labels, _) ->
        if name = "store.ledger.key" || name = "store.ledger.miss" then
          note_op labels)
      (Snapshot.timers snap);
    let timer name op =
      match Snapshot.timer_stat snap ~labels:[ ("op", op) ] name with
      | Some s -> s.Snapshot.total_ns
      | None -> 0L
    in
    let row op ~hits ~misses =
      let key_ns = timer "store.ledger.key" op in
      let miss_ns = timer "store.ledger.miss" op in
      let avg_miss_ns =
        if misses = 0 then 0.
        else Int64.to_float miss_ns /. float_of_int misses
      in
      {
        op;
        hits;
        misses;
        key_ns;
        miss_ns;
        avg_miss_ns;
        net_saved_ns = (float_of_int hits *. avg_miss_ns) -. Int64.to_float key_ns;
      }
    in
    let memo_rows =
      Hashtbl.fold
        (fun op () acc ->
          let c name = Snapshot.counter_value snap ~labels:[ ("op", op) ] name in
          row op ~hits:(c "store.opcache.hit") ~misses:(c "store.opcache.miss")
          :: acc)
        ops []
    in
    let all =
      if
        Snapshot.counter_value snap "store.intern.hit" > 0
        || Snapshot.counter_value snap "store.intern.miss" > 0
      then
        row "intern"
          ~hits:(Snapshot.counter_value snap "store.intern.hit")
          ~misses:(Snapshot.counter_value snap "store.intern.miss")
        :: memo_rows
      else memo_rows
    in
    (* worst offenders first: most negative net savings at the top *)
    List.sort (fun a b -> compare a.net_saved_ns b.net_saved_ns) all

  let ms ns = ns /. 1e6

  let pp_row ppf r =
    Fmt.pf ppf "%-18s %8d %8d %10.3f %12.1f %12.3f %12.3f" r.op r.hits r.misses
      (ms (Int64.to_float r.key_ns))
      r.avg_miss_ns
      (ms (Int64.to_float r.miss_ns))
      (ms r.net_saved_ns)

  let pp ppf rows =
    Fmt.pf ppf "%-18s %8s %8s %10s %12s %12s %12s@." "op" "hits" "misses"
      "key(ms)" "avg_miss(ns)" "miss(ms)" "net_saved(ms)";
    List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rows
end

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let clear () =
  Hashtbl.reset (intern_table ());
  Hashtbl.reset (Domain.DLS.get word_table_key);
  ProvTbl.reset (Domain.DLS.get prov_table_key);
  Domain.DLS.get top_handle_key := None;
  Domain.DLS.get physeq_key := [];
  Gate.reset_acc (Domain.DLS.get intern_gate_key);
  List.iter (fun f -> f ()) !Memo.clearers

let on_clear f = Memo.clearers := f :: !Memo.clearers

let set_enabled b =
  let was = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  if was && not b then clear ()

let set_capacity n = Memo.capacity := max 16 n
let set_memo_min_states n = Atomic.set Gate.min_states (max 0 n)
let memo_min_states () = Atomic.get Gate.min_states
let set_memo_max_states n = Atomic.set Gate.max_states (max 1 n)
let memo_max_states () = Atomic.get Gate.max_states
let set_auto_gate b = Atomic.set Gate.auto b
let auto_gate () = Atomic.get Gate.auto

let set_gate_thresholds ?min_samples ?trip_saved_ns () =
  Option.iter
    (fun n -> Atomic.set Gate.min_samples (max 64 n))
    min_samples;
  Option.iter
    (fun n -> Atomic.set Gate.trip_saved_ns (max 0 n))
    trip_saved_ns
