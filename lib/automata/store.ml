(* Hash-consed language handles with memoized operations. See the
   .mli for the contract; the two load-bearing pieces here are the
   canonical key (equal keys must imply equal languages — we get the
   stronger property that the trimmed machines are isomorphic) and the
   disabled mode, which must behave exactly like the pre-store code
   path so [--no-cache] is a faithful ablation. *)

module Metrics = Telemetry.Metrics

let intern_hit = Metrics.Counter.make "store.intern.hit"
let intern_miss = Metrics.Counter.make "store.intern.miss"
let opcache_hit = Metrics.Counter.make "store.opcache.hit"
let opcache_miss = Metrics.Counter.make "store.opcache.miss"
let opcache_evict = Metrics.Counter.make "store.opcache.evict"
let machine_states = Metrics.Histogram.make "store.machine.states"

(* The ledger's raw material: per op, where the cache spends ([key] =
   keying/lookup, paid on hit and miss alike) and what a hit avoids
   ([miss] = the compute the cache would have skipped). [Ledger] below
   derives net savings from these plus the hit/miss counters. *)
let ledger_key = Metrics.Timer.make "store.ledger.key"
let ledger_miss = Metrics.Timer.make "store.ledger.miss"

(* Atomic so an engine worker spawned after [--no-cache] reliably
   observes the ablation flag; it is only ever written from the main
   domain (CLI setup, bench arms). *)
let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag

type handle = {
  id : int;
  nfa : Nfa.t;
  mutable dfa_memo : Dfa.t option;
  mutable min_dfa_memo : Dfa.t option;
  mutable minimized_memo : Nfa.t option;
  mutable empty_memo : bool option;
}

let nfa h = h.nfa
let id h = h.id

(* ------------------------------------------------------------------ *)
(* Canonical key *)

(* Serialization of the trimmed machine under a deterministic BFS
   renumbering. Two machines whose trimmed forms are isomorphic under
   *this* traversal order produce equal strings; since the traversal
   is a function of the machine's structure alone, equal keys imply
   the trimmed machines are isomorphic, hence language-equal. (The
   converse is not sought: structurally different machines for the
   same language hash apart, which only costs sharing.)

   Traversal: BFS from the start state, expanding each state's char
   edges ordered by (label, old destination id) and then its ε-edges
   ordered by old destination id. Trim guarantees every state but the
   final state of an empty-language machine is reachable; any
   leftovers are appended in old-id order so the key is total. *)
let canonical_key m0 =
  let m, _ = Nfa.trim m0 in
  let n = Nfa.num_states m in
  let order = Array.make (max n 1) (-1) in
  let next = ref 0 in
  let queue = Queue.create () in
  let enqueue q =
    if order.(q) < 0 then begin
      order.(q) <- !next;
      incr next;
      Queue.add q queue
    end
  in
  enqueue (Nfa.start m);
  while not (Queue.is_empty queue) do
    let q = Queue.pop queue in
    let chars =
      List.sort
        (fun (c1, d1) (c2, d2) ->
          let c = Charset.compare c1 c2 in
          if c <> 0 then c else compare (d1 : int) d2)
        (Nfa.char_transitions m q)
    in
    List.iter (fun (_, d) -> enqueue d) chars;
    List.iter enqueue (List.sort compare (Nfa.eps_transitions_from m q))
  done;
  for q = 0 to n - 1 do
    if order.(q) < 0 then begin
      order.(q) <- !next;
      incr next
    end
  done;
  let inv = Array.make (max n 1) 0 in
  for q = 0 to n - 1 do
    inv.(order.(q)) <- q
  done;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d#%d#%d" n order.(Nfa.start m) order.(Nfa.final m));
  for i = 0 to n - 1 do
    let q = inv.(i) in
    Buffer.add_char buf '|';
    let chars =
      List.sort
        (fun (c1, d1) (c2, d2) ->
          let c = Charset.compare c1 c2 in
          if c <> 0 then c else compare (d1 : int) d2)
        (List.map (fun (cs, d) -> (cs, order.(d))) (Nfa.char_transitions m q))
    in
    List.iter
      (fun (cs, d) ->
        List.iter
          (fun (lo, hi) -> Buffer.add_string buf (Printf.sprintf "%d-%d," lo hi))
          (Charset.ranges cs);
        Buffer.add_string buf (Printf.sprintf ">%d;" d))
      chars;
    Buffer.add_char buf '!';
    List.iter
      (fun d -> Buffer.add_string buf (Printf.sprintf "%d," d))
      (List.sort compare
         (List.map (fun d -> order.(d)) (Nfa.eps_transitions_from m q)))
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Intern table *)

(* One intern table per domain: the store is deliberately not shared
   across engine workers (no locks on the solve hot path; a worker's
   cache dies with its domain). Handles must therefore stay inside
   the domain that interned them. *)
let intern_table_key : (string, handle) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let intern_table () = Domain.DLS.get intern_table_key

(* Monotone across [clear]/[set_enabled] — and globally unique across
   domains — so stale ids in surviving caller-side memo keys can never
   alias a new machine. *)
let next_id = Atomic.make 0

let fresh_handle m =
  let id = Atomic.fetch_and_add next_id 1 in
  {
    id;
    nfa = m;
    dfa_memo = None;
    min_dfa_memo = None;
    minimized_memo = None;
    empty_memo = None;
  }

(* Interning pays the canonical key on {e every} call — that
   serialization is the "key-hash tax" the cache-effectiveness ledger
   prices, because a hit saves almost nothing here (a handle
   allocation) while the key cost scales with machine size. *)
let intern m =
  if not (enabled ()) then fresh_handle m
  else
    let table = intern_table () in
    let key =
      Metrics.Timer.time ledger_key
        ~labels:[ ("op", "intern") ]
        (fun () -> canonical_key m)
    in
    match Hashtbl.find_opt table key with
    | Some h ->
        Metrics.Counter.incr intern_hit 1;
        h
    | None ->
        Metrics.Counter.incr intern_miss 1;
        Metrics.Histogram.observe machine_states
          (float_of_int (Nfa.num_states m));
        let h =
          Metrics.Timer.time ledger_miss
            ~labels:[ ("op", "intern") ]
            (fun () -> fresh_handle m)
        in
        Hashtbl.replace table key h;
        h

let canon m = if not (enabled ()) then m else (intern m).nfa

(* ------------------------------------------------------------------ *)
(* Per-handle memo slots *)

let dfa h =
  if not (enabled ()) then Dfa.of_nfa h.nfa
  else
    match h.dfa_memo with
    | Some d -> d
    | None ->
        let d = Dfa.of_nfa h.nfa in
        h.dfa_memo <- Some d;
        d

let min_dfa h =
  if not (enabled ()) then Dfa.minimize (Dfa.of_nfa h.nfa)
  else
    match h.min_dfa_memo with
    | Some d -> d
    | None ->
        let d = Dfa.minimize (dfa h) in
        h.min_dfa_memo <- Some d;
        d

let minimized h =
  if not (enabled ()) then Lang.compact h.nfa
  else
    match h.minimized_memo with
    | Some m -> m
    | None ->
        let m = Lang.compact h.nfa in
        h.minimized_memo <- Some m;
        m

let is_empty h =
  if not (enabled ()) then Nfa.is_empty_lang h.nfa
  else
    match h.empty_memo with
    | Some b -> b
    | None ->
        let b = Nfa.is_empty_lang h.nfa in
        h.empty_memo <- Some b;
        b

(* ------------------------------------------------------------------ *)
(* Generic bounded LRU memoization *)

module Memo = struct
  type 'v entry = { value : 'v; mutable stamp : int }

  type 'v state = { table : (int list, 'v entry) Hashtbl.t; mutable tick : int }

  (* A memo names a per-domain table: [create] allocates a DLS key and
     each domain materializes its own state on first use, for the same
     reason the intern table is domain-local. The [clearers] list is
     only ever extended at module-init time (all [create] call sites
     are top-level definitions), before any worker domain exists. *)
  type 'v t = { op : string; key : 'v state Domain.DLS.key }

  (* Every table registers a clearer so [Store.clear] reaches caches
     created by higher layers (solver, residual) without a type-level
     dependency on their value types. A clearer resets the calling
     domain's instance; worker tables are dropped wholesale when their
     domain exits. *)
  let clearers : (unit -> unit) list ref = ref []

  (* Written from the main domain before workers spawn ([Domain.spawn]
     publishes it); racy mid-flight writes would only skew eviction. *)
  let capacity = ref 4096

  let create ~op =
    let key = Domain.DLS.new_key (fun () -> { table = Hashtbl.create 64; tick = 0 }) in
    let t = { op; key } in
    clearers :=
      (fun () ->
        let s = Domain.DLS.get key in
        Hashtbl.reset s.table;
        s.tick <- 0)
      :: !clearers;
    t

  (* Batch-evict the least-recently-used half: O(n) with no auxiliary
     order structure to maintain on hits, amortized O(1) per insert. *)
  let evict_half op s =
    let n = Hashtbl.length s.table in
    let stamps = Array.make n 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun _ e ->
        stamps.(!i) <- e.stamp;
        incr i)
      s.table;
    Array.sort compare stamps;
    let cutoff = stamps.(n / 2) in
    let victims =
      Hashtbl.fold
        (fun k e acc -> if e.stamp < cutoff then k :: acc else acc)
        s.table []
    in
    List.iter (Hashtbl.remove s.table) victims;
    Metrics.Counter.incr ~labels:[ ("op", op) ] opcache_evict (List.length victims)

  let find_or_compute t ~key f =
    if not (enabled ()) then f ()
    else begin
      let s = Domain.DLS.get t.key in
      s.tick <- s.tick + 1;
      let labels = [ ("op", t.op) ] in
      let found =
        Metrics.Timer.time ledger_key ~labels (fun () ->
            Hashtbl.find_opt s.table key)
      in
      match found with
      | Some e ->
          e.stamp <- s.tick;
          Metrics.Counter.incr ~labels opcache_hit 1;
          e.value
      | None ->
          Metrics.Counter.incr ~labels opcache_miss 1;
          let v = Metrics.Timer.time ledger_miss ~labels f in
          if Hashtbl.length s.table >= !capacity then evict_half t.op s;
          Hashtbl.replace s.table key { value = v; stamp = s.tick };
          v
    end
end

(* ------------------------------------------------------------------ *)
(* Cached binary operations *)

let inter_memo : handle Memo.t = Memo.create ~op:"inter_lang"
let concat_memo : handle Memo.t = Memo.create ~op:"concat_lang"
let union_memo : handle Memo.t = Memo.create ~op:"union_lang"
let cex_memo : string option Memo.t = Memo.create ~op:"counterexample"

let inter_lang h1 h2 =
  Memo.find_or_compute inter_memo ~key:[ h1.id; h2.id ] (fun () ->
      intern (Ops.inter_lang h1.nfa h2.nfa))

let concat_lang h1 h2 =
  Memo.find_or_compute concat_memo ~key:[ h1.id; h2.id ] (fun () ->
      intern (Ops.concat_lang h1.nfa h2.nfa))

let union_lang h1 h2 =
  Memo.find_or_compute union_memo ~key:[ h1.id; h2.id ] (fun () ->
      intern (Ops.union_lang h1.nfa h2.nfa))

let counterexample h1 h2 =
  Memo.find_or_compute cex_memo ~key:[ h1.id; h2.id ] (fun () ->
      Lang.counterexample h1.nfa h2.nfa)

let subset h1 h2 = counterexample h1 h2 = None
let equal h1 h2 = subset h1 h2 && subset h2 h1

(* ------------------------------------------------------------------ *)
(* Cache-effectiveness ledger *)

module Ledger = struct
  module Snapshot = Metrics.Snapshot

  type row = {
    op : string;
    hits : int;
    misses : int;
    key_ns : int64;
    miss_ns : int64;
    avg_miss_ns : float;
    net_saved_ns : float;
  }

  (* One row per op seen in the snapshot: the memo tables (from the
     [store.opcache.*] counters) plus the intern table itself. The
     formula prices a cache by what its hits actually avoided (the
     average observed miss cost) minus what every caller paid to ask
     (total keying/lookup time) — a cache whose net is negative costs
     more than it saves on this workload. *)
  let of_snapshot snap =
    let ops = Hashtbl.create 8 in
    let note_op labels =
      match List.assoc_opt "op" labels with
      (* intern tracks hits in its own counters, not the per-memo ones;
         it gets a dedicated row below rather than a generic one here. *)
      | Some "intern" | None -> ()
      | Some op -> Hashtbl.replace ops op ()
    in
    List.iter
      (fun (name, labels, _) ->
        if name = "store.opcache.hit" || name = "store.opcache.miss" then
          note_op labels)
      (Snapshot.counters snap);
    List.iter
      (fun (name, labels, _) ->
        if name = "store.ledger.key" || name = "store.ledger.miss" then
          note_op labels)
      (Snapshot.timers snap);
    let timer name op =
      match Snapshot.timer_stat snap ~labels:[ ("op", op) ] name with
      | Some s -> s.Snapshot.total_ns
      | None -> 0L
    in
    let row op ~hits ~misses =
      let key_ns = timer "store.ledger.key" op in
      let miss_ns = timer "store.ledger.miss" op in
      let avg_miss_ns =
        if misses = 0 then 0.
        else Int64.to_float miss_ns /. float_of_int misses
      in
      {
        op;
        hits;
        misses;
        key_ns;
        miss_ns;
        avg_miss_ns;
        net_saved_ns = (float_of_int hits *. avg_miss_ns) -. Int64.to_float key_ns;
      }
    in
    let memo_rows =
      Hashtbl.fold
        (fun op () acc ->
          let c name = Snapshot.counter_value snap ~labels:[ ("op", op) ] name in
          row op ~hits:(c "store.opcache.hit") ~misses:(c "store.opcache.miss")
          :: acc)
        ops []
    in
    let all =
      if
        Snapshot.counter_value snap "store.intern.hit" > 0
        || Snapshot.counter_value snap "store.intern.miss" > 0
      then
        row "intern"
          ~hits:(Snapshot.counter_value snap "store.intern.hit")
          ~misses:(Snapshot.counter_value snap "store.intern.miss")
        :: memo_rows
      else memo_rows
    in
    (* worst offenders first: most negative net savings at the top *)
    List.sort (fun a b -> compare a.net_saved_ns b.net_saved_ns) all

  let ms ns = ns /. 1e6

  let pp_row ppf r =
    Fmt.pf ppf "%-18s %8d %8d %10.3f %12.1f %12.3f %12.3f" r.op r.hits r.misses
      (ms (Int64.to_float r.key_ns))
      r.avg_miss_ns
      (ms (Int64.to_float r.miss_ns))
      (ms r.net_saved_ns)

  let pp ppf rows =
    Fmt.pf ppf "%-18s %8s %8s %10s %12s %12s %12s@." "op" "hits" "misses"
      "key(ms)" "avg_miss(ns)" "miss(ms)" "net_saved(ms)";
    List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rows
end

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let clear () =
  Hashtbl.reset (intern_table ());
  List.iter (fun f -> f ()) !Memo.clearers

let set_enabled b =
  let was = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  if was && not b then clear ()

let set_capacity n = Memo.capacity := max 16 n
