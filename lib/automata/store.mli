(** Interned language store: hash-consed {!Nfa.t} handles with
    memoized automata operations.

    The paper's pathological row (`secure`, Fig. 12) is driven by
    re-processing the same constant machines once per path and per
    solve; §4 suggests minimization/caching as the fix. This module is
    that caching substrate. A {!handle} names a machine in a
    {e domain-local} intern table keyed by a {e canonical key} — the pruned
    ({!Nfa.trim}med) machine serialized under a deterministic
    breadth-first renumbering, so structurally equal machines (up to
    dead states and state numbering) share one handle. Equal keys
    imply isomorphic trimmed machines and therefore equal languages.

    Each handle carries memo slots for the expensive unary questions
    (determinization, minimization, emptiness), and the binary
    operations ([inter]/[concat]/[union]/[subset]/[equal]/
    [counterexample]) go through bounded LRU caches keyed on handle-id
    tuples. Cache behaviour is observable through the
    [store.intern.{hit,miss}] and [store.opcache.{hit,miss,evict}]
    counters (the op-cache ones labelled [op=...]) and the
    [store.machine.states] histogram (sizes of newly interned
    machines), and ablatable: {!set_enabled}[ false] (the binaries'
    [--no-cache]) turns every entry point into a transparent
    passthrough that computes exactly what the un-stored code would.

    Call sites that need {e provenance} — the paper's sub-NFA slicing
    invariant in [Ops.concat]/[Ops.intersect] — must keep operating on
    raw [Nfa.t] values: a handle's representative machine is the first
    machine interned under its key, so state identities of a specific
    construction are not preserved across the store.

    {b Domains.} The store is deliberately not shared across engine
    workers: every domain gets its own intern table and its own memo
    tables (no locks on the solve hot path; a worker's caches die with
    its domain). Handles must therefore never cross a domain boundary
    — each job interns what it needs inside its worker. Handle ids
    remain globally unique, and the enable switch and capacity apply
    process-wide (set them before spawning workers). *)

type handle

(** {1 Interning} *)

(** Intern a machine, returning its shared handle. When the store is
    disabled this is a fresh passthrough handle wrapping [m] itself
    (no key is computed).

    Interning is {e cost-gated}: machines below the size threshold
    ({!set_memo_min_states}) skip the canonical key and come back as
    fresh unshared handles (serializing a 2-state machine costs more
    than rebuilding it); machines above the ceiling
    ({!set_memo_max_states}) skip it from the other side — the key is
    a full serialization whose cost scales with the machine while the
    memo hits it enables do not, so a 500-state preimage pays more to
    key than any hit saves. Repeated interns of the same physical
    machine still share a handle via a small pointer-equality MRU
    (sound because {!Nfa.t} is immutable). Finally, a domain whose
    running ledger shows keying losing outright stops paying it
    altogether ({!set_auto_gate}). All decisions are observable via
    the [store.gate.skip{op=...}] and [store.gate.tripped{op=...}]
    counters. *)
val intern : Nfa.t -> handle

(** [intern_keyed m] interns like {!intern} but bypasses the
    [min_states] size floor and the ledger auto-disable (the
    [max_states] ceiling still applies). For long-lived machines that
    seed downstream memos — system constants, analyzer bounds — where
    a stable id matters more than the (tiny) canonical-key tax: an
    unkeyed fresh handle turns every memo entry keyed on it into a
    permanent miss, recomputing the memoized operation on every
    pass. *)
val intern_keyed : Nfa.t -> handle

(** [of_word w] = the interned handle of [Nfa.of_word w], served from
    a per-domain word table keyed by [w] itself — no machine rebuild,
    no canonical key after the first ask. The fast path for constant
    hot loops (abstract interpretation re-evaluating the same literal
    every iteration). Counts as an intern hit. *)
val of_word : string -> handle

(** The interned handle of [Nfa.sigma_star] (Σ*, the implicit top of
    the analysis domain), cached per domain. Counts as an intern
    hit. *)
val top : unit -> handle

(** The handle's representative machine: the first machine interned
    under its canonical key (language-equal to every machine since
    merged into it). *)
val nfa : handle -> Nfa.t

(** Dense id, unique per process. Handles with equal ids denote the
    same interned machine; use ids as memo keys ({!Memo}). *)
val id : handle -> int

(** [canon m = nfa (intern m)] — replace a machine by its interned
    representative. Identity when the store is disabled. *)
val canon : Nfa.t -> Nfa.t

(** {1 Memoized unary operations} *)

(** Determinization of the handle's machine, computed once. *)
val dfa : handle -> Dfa.t

(** Minimized DFA ([Dfa.minimize] of {!dfa}), computed once. *)
val min_dfa : handle -> Dfa.t

(** [Lang.compact] of the handle's machine, computed once. *)
val minimized : handle -> Nfa.t

(** Language emptiness, computed once. *)
val is_empty : handle -> bool

(** The interned handle of the machine's minimal DFA, computed (and
    canonically keyed) once per handle. The analysis layer's value
    compaction calls this once per refine/join — without the slot it
    would re-pay the canonical key of the minimized machine on every
    visit even when {!min_dfa} hits. *)
val compacted : handle -> handle

(** {1 AST provenance}

    An extensible tag a higher layer attaches to a handle recording
    which expression the machine was built from — the regex compiler
    registers [Regex.Symbolic.Regex_ast] so the tiered query
    front-end ({!Query}) can answer inclusion/emptiness symbolically.
    Provenance is also recorded against the *physical* machine in a
    per-domain side table, so cost-gated fresh handles wrapping the
    same immutable [Nfa.t] recover the tag; both the field and the
    side table die with {!clear} (and with the domain), exactly like
    the handles themselves. *)

type prov = ..

(** Tag a handle (and its underlying machine) with its origin. *)
val set_provenance : handle -> prov -> unit

(** The tag, if this handle or its physical machine carries one. *)
val provenance : handle -> prov option

(** {2 Provenance hooks}

    Installed once by the regex layer at module-init time (before any
    worker domain spawns); the store itself never constructs a
    [prov]. *)

(** Provenance for {!of_word} handles. *)
val set_prov_of_word : (string -> prov) -> unit

(** Provenance for the implicit-top Σ* handle. *)
val set_prov_of_top : prov -> unit

(** Compose provenance across {!concat_lang}/{!union_lang}; return
    [None] to refuse (e.g. when the combined AST would be too big to
    ever answer symbolically). *)
val set_prov_combiner :
  (op:[ `Concat | `Union ] -> prov -> prov -> prov option) -> unit

(** {1 Cached binary operations}

    Results are themselves interned, so algebraically convergent
    expressions share handles across different operation paths.

    Lookups are cost-gated: a pair is memoized only when both operand
    handles are stable (interned, not size-gated fresh handles — a
    never-repeating id fills the table with unreachable entries) and
    their combined size is at least {!set_memo_min_states}; below
    that, recomputing is cheaper than the table traffic. An op class
    whose running ledger stays parasitic is auto-disabled per domain
    ({!set_auto_gate}). *)

val inter_lang : handle -> handle -> handle

val concat_lang : handle -> handle -> handle

val union_lang : handle -> handle -> handle

(** A word of [L(a) \ L(b)], if any (cached; {!subset} and {!equal}
    answer from the same cache line). *)
val counterexample : handle -> handle -> string option

val subset : handle -> handle -> bool

val equal : handle -> handle -> bool

(** {1 Generic memoization}

    Bounded LRU tables keyed on handle-id lists, sharing the store's
    enable switch, capacity, and [store.opcache.*] counters (labelled
    with [op]). Higher layers (the solver's concat-intersect, the
    residual construction) register their own caches here without the
    store needing to know their value types. *)

module Memo : sig
  type 'v t

  (** [create ~op] registers a new table; [op] labels its counters
      and must be unique per call site. The table participates in
      {!clear}. *)
  val create : op:string -> 'v t

  (** [find_or_compute t ~key f] returns the cached value for [key],
      or runs [f], caches, and returns. When the store is disabled
      this is just [f ()]. *)
  val find_or_compute : 'v t -> key:int list -> (unit -> 'v) -> 'v
end

(** {1 Cache-effectiveness ledger}

    Derived view over a metrics snapshot: per op, what the cache's
    hits actually avoided versus what every caller paid to ask. The
    raw material is recorded by the store itself — the
    [store.ledger.key{op=...}] timer brackets keying/lookup work
    (canonical-key serialization for [intern], table lookup for memo
    ops; paid on hit and miss alike) and [store.ledger.miss{op=...}]
    brackets the computation a hit would have skipped. *)

module Ledger : sig
  type row = {
    op : string;
    hits : int;
    misses : int;
    key_ns : int64;  (** total keying/lookup time *)
    miss_ns : int64;  (** total compute time of misses *)
    avg_miss_ns : float;  (** [miss_ns / misses]; 0 when no misses *)
    net_saved_ns : float;
        (** [hits·avg_miss_ns − key_ns]: negative means the cache
            costs more than it saves on this workload *)
  }

  (** One row per op present in the snapshot ([store.opcache.*] memo
      tables plus ["intern"]), most negative [net_saved_ns] first. *)
  val of_snapshot : Telemetry.Metrics.Snapshot.t -> row list

  (** Fixed-width table, header plus one line per row. *)
  val pp : row list Fmt.t
end

(** {1 Lifecycle} *)

(** [true] iff interning and caching are active (the default). *)
val enabled : unit -> bool

(** Turn the store on or off. Turning it off also {!clear}s it, so an
    ablation run ([--no-cache]) holds no stale state. *)
val set_enabled : bool -> unit

(** Drop the calling domain's intern table and every op-cache
    (outstanding handles stay valid; their memo slots are
    unaffected), and reset the cost gate's accumulators. Benchmarks
    call this between arms. *)
val clear : unit -> unit

(** Register an external cache-reset hook to run on every {!clear} —
    for higher-layer caches of handles (e.g. the analysis layer's
    condition-language table) that must not outlive the store state
    they were built from. Call at module-init time, before any worker
    domain exists. *)
val on_clear : (unit -> unit) -> unit

(** Per-table entry cap for the LRU op-caches (default 4096; at least
    16). When a table fills, the least-recently-used half is evicted
    in one batch. *)
val set_capacity : int -> unit

(** {1 Cost gate}

    Policy end of the ledger: memoize only where it pays. *)

(** Size threshold (states; default 4, 0 disables the size gate):
    machines below it are not interned, and op pairs whose combined
    operand size is below it are not memoized. Process-wide; set
    before spawning workers. *)
val set_memo_min_states : int -> unit

val memo_min_states : unit -> int

(** Size ceiling (states; default 256, clamps at 1): machines above
    it are not canonically keyed — they come back as fresh handles
    shared only by pointer identity. The canonical key serializes the
    whole trimmed machine, so its cost grows with the machine while a
    memo hit's value does not; past the ceiling the key is the most
    expensive thing the store does. Process-wide; set before spawning
    workers. *)
val set_memo_max_states : int -> unit

val memo_max_states : unit -> int

(** Ledger-driven auto-disable (default on): per domain and per op
    class, once enough events were seen ([min_samples], default 512)
    and the running net-saved estimate stays below [-trip_saved_ns]
    (default 5 ms), that cache is switched off for the rest of the
    domain's life — sticky, counted by [store.gate.tripped{op=...}].
    The thresholds are high-hysteresis on purpose: bench diffs
    hard-gate counters, so only an unambiguously parasitic cache may
    trip on a deterministic workload. [set_auto_gate false] is the
    ablation override for bench arms that need timing-independent
    counter streams. *)
val set_auto_gate : bool -> unit

val auto_gate : unit -> bool

(** Tighten or relax the auto-disable hysteresis ([min_samples]
    clamps at 64, [trip_saved_ns] at 0). Tests use this to trip the
    gate on synthetic workloads without waiting for 5 ms of waste. *)
val set_gate_thresholds :
  ?min_samples:int -> ?trip_saved_ns:int -> unit -> unit
