(* Breadth-first traversal of the determinized machine, carrying the
   word spelled so far. The frontier is processed lazily: forcing the
   next element of the Seq advances the BFS just far enough. *)

let enumerate_dfa concretize (d : Dfa.t) =
  let rec layer queue () =
    match queue with
    | [] -> Seq.Nil
    | (state, word) :: rest ->
        let successors =
          List.concat_map
            (fun (cs, q') ->
              List.map (fun c -> (q', word ^ String.make 1 c)) (concretize cs))
            (Dfa.transitions d state)
        in
        let tail = layer (rest @ successors) in
        if Dfa.is_final d state then Seq.Cons (word, tail) else tail ()
  in
  layer [ (Dfa.start d, "") ]

(* Minimizing first trims dead branches, so forcing the sequence never
   spins in a part of the machine that cannot produce another word.
   The minimized DFA is built at most once, through the store's
   per-handle memo, and the stream is [Seq.memoize]d so forcing it a
   second time replays recorded nodes instead of re-walking the DFA. *)
let enumerate m =
  let h = Store.intern m in
  Seq.memoize (fun () ->
      enumerate_dfa (fun cs -> [ Charset.choose cs ]) (Store.min_dfa h) ())

let exhaustive ~alphabet m =
  let h = Store.intern m in
  Seq.memoize (fun () ->
      let restricted =
        Store.inter_lang h (Store.intern (Ops.star (Nfa.of_charset alphabet)))
      in
      enumerate_dfa Charset.to_list (Store.min_dfa restricted) ())

let take n m = List.of_seq (Seq.take n (enumerate m))
