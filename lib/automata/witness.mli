(** Lazy witness enumeration.

    {!Nfa.sample_words} returns a bounded list; this module exposes
    the language as an on-demand {!Seq.t} in shortest-first order,
    which the testcase generator uses to print as many exploits as a
    client asks for without pre-committing to a bound.

    Enumeration is over the determinized machine, so each word is
    produced once; charset edges are concretized one representative
    per refined block, i.e. the sequence {e samples} each structural
    path rather than spelling out all byte choices (a single [Σ] edge
    yields one witness, not 256). Use {!exhaustive} for the complete
    language restricted to a small alphabet. *)

(** Shortest-first sampled enumeration (see above). The sequence is
    finite iff the sampled language is. The minimized DFA behind the
    stream is built at most once (via {!Store.min_dfa}) and the stream
    itself is memoized, so forcing it repeatedly does no new automaton
    work. *)
val enumerate : Nfa.t -> string Seq.t

(** Complete shortest-first enumeration of [L(m) ∩ alphabet*]. The
    sequence is infinite when that language is. *)
val exhaustive : alphabet:Charset.t -> Nfa.t -> string Seq.t

(** First [n] of {!enumerate}. *)
val take : int -> Nfa.t -> string list
