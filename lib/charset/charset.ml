(* Sorted lists of disjoint, non-adjacent inclusive intervals over
   bytes 0-255. The normal form is unique, so structural equality of
   the lists coincides with set equality. *)

type t = (int * int) list

let empty : t = []

let full : t = [ (0, 255) ]

(* Normalization: sort by lower bound, then merge overlapping or
   adjacent intervals. All constructors funnel through [normalize] so
   every value of type [t] is in normal form. *)
let normalize (intervals : (int * int) list) : t =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a b)
      (List.filter (fun (lo, hi) -> lo <= hi) intervals)
  in
  let rec merge = function
    | (lo1, hi1) :: (lo2, hi2) :: rest when lo2 <= hi1 + 1 ->
        merge ((lo1, max hi1 hi2) :: rest)
    | iv :: rest -> iv :: merge rest
    | [] -> []
  in
  merge sorted

let clamp_byte c =
  if c < 0 || c > 255 then invalid_arg "Charset: byte out of range" else c

let singleton c =
  let b = Char.code c in
  [ (b, b) ]

let range lo hi =
  let lo = Char.code lo and hi = Char.code hi in
  if lo > hi then invalid_arg "Charset.range: lo > hi";
  [ (lo, hi) ]

let of_list chars = normalize (List.map (fun c -> (Char.code c, Char.code c)) chars)

let of_string s = of_list (List.init (String.length s) (String.get s))

let of_ranges rs =
  List.iter (fun (lo, hi) -> ignore (clamp_byte lo); ignore (clamp_byte hi)) rs;
  normalize rs

let ranges (t : t) = t

let digit = range '0' '9'
let lower = range 'a' 'z'
let upper = range 'A' 'Z'

let union a b = normalize (a @ b)

let alpha = union lower upper
let word = union alpha (union digit (singleton '_'))
let space = of_list [ ' '; '\t'; '\n'; '\r'; '\011'; '\012' ]
let printable = [ (32, 126) ]

let rec inter (a : t) (b : t) : t =
  match (a, b) with
  | [], _ | _, [] -> []
  | (lo1, hi1) :: ta, (lo2, hi2) :: tb ->
      let lo = max lo1 lo2 and hi = min hi1 hi2 in
      let rest = if hi1 < hi2 then inter ta b else inter a tb in
      if lo <= hi then (lo, hi) :: rest else rest

let complement (a : t) : t =
  let rec gaps next = function
    | [] -> if next <= 255 then [ (next, 255) ] else []
    | (lo, hi) :: rest ->
        let tail = gaps (hi + 1) rest in
        if next <= lo - 1 then (next, lo - 1) :: tail else tail
  in
  gaps 0 a

let diff a b = inter a (complement b)

let mem c (t : t) =
  let b = Char.code c in
  List.exists (fun (lo, hi) -> lo <= b && b <= hi) t

let is_empty t = t = []

let is_full t = t = full

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let rec intersects (a : t) (b : t) =
  match (a, b) with
  | [], _ | _, [] -> false
  | (lo1, hi1) :: ta, (lo2, hi2) :: tb ->
      if max lo1 lo2 <= min hi1 hi2 then true
      else if hi1 < hi2 then intersects ta b
      else intersects a tb

let subset a b = is_empty (diff a b)

let cardinal t = List.fold_left (fun acc (lo, hi) -> acc + hi - lo + 1) 0 t

let min_elt = function
  | [] -> raise Not_found
  | (lo, _) :: _ -> Char.chr lo

let choose t =
  if is_empty t then raise Not_found
  else
    let printable_part = inter t printable in
    min_elt (if is_empty printable_part then t else printable_part)

let iter f t =
  List.iter
    (fun (lo, hi) ->
      for b = lo to hi do
        f (Char.chr b)
      done)
    t

let fold f t init =
  List.fold_left
    (fun acc (lo, hi) ->
      let acc = ref acc in
      for b = lo to hi do
        acc := f (Char.chr b) !acc
      done;
      !acc)
    init t

let to_list t = List.rev (fold (fun c acc -> c :: acc) t [])

(* Partition refinement via boundary points: collect all interval
   boundaries, then cut the union of the inputs at every boundary.
   Each resulting block lies entirely inside or outside each input
   set, which is exactly the refinement property. One sort of the
   boundary array plus a single merged sweep over the (sorted)
   universe keeps this O(m log m) in the total interval count — it
   runs once per product cell / subset-search node, so the old
   repeated-union construction dominated those hot paths. *)
let refine (sets : t list) : t list =
  let intervals = List.concat sets in
  if intervals = [] then []
  else begin
    let universe = normalize intervals in
    let cuts = Array.make (2 * List.length intervals) 0 in
    List.iteri
      (fun i (lo, hi) ->
        cuts.(2 * i) <- lo;
        cuts.((2 * i) + 1) <- hi + 1)
      intervals;
    Array.sort Int.compare cuts;
    (* Walk the universe intervals and the sorted cut array together;
       every cut strictly inside the current interval splits it. *)
    let ncuts = Array.length cuts in
    let ci = ref 0 in
    let blocks = ref [] in
    List.iter
      (fun (lo, hi) ->
        while !ci < ncuts && cuts.(!ci) <= lo do incr ci done;
        let start = ref lo in
        while !ci < ncuts && cuts.(!ci) <= hi do
          let c = cuts.(!ci) in
          if c > !start then begin
            blocks := [ (!start, c - 1) ] :: !blocks;
            start := c
          end;
          incr ci
        done;
        blocks := [ (!start, hi) ] :: !blocks)
      universe;
    List.rev !blocks
  end

let pp_byte ppf b =
  let c = Char.chr b in
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ' ' -> Fmt.char ppf c
  | '\n' -> Fmt.string ppf "\\n"
  | '\t' -> Fmt.string ppf "\\t"
  | '\r' -> Fmt.string ppf "\\r"
  | '-' | ']' | '[' | '\\' | '^' -> Fmt.pf ppf "\\%c" c
  | c when b >= 33 && b <= 126 -> Fmt.char ppf c
  | _ -> Fmt.pf ppf "\\x%02x" b

let pp ppf (t : t) =
  if is_empty t then Fmt.string ppf "∅"
  else if is_full t then Fmt.string ppf "Σ"
  else
    match t with
    | [ (lo, hi) ] when lo = hi -> pp_byte ppf lo
    | _ ->
        Fmt.char ppf '[';
        List.iter
          (fun (lo, hi) ->
            if lo = hi then pp_byte ppf lo
            else if hi = lo + 1 then (pp_byte ppf lo; pp_byte ppf hi)
            else Fmt.pf ppf "%a-%a" pp_byte lo pp_byte hi)
          t;
        Fmt.char ppf ']'

let to_string t = Fmt.str "%a" pp t

let hash (t : t) = Hashtbl.hash t
