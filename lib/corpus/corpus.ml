module Ast = Webapp.Ast

(* Small deterministic PRNG (xorshift) so corpus generation is
   reproducible across runs and platforms. *)
module Prng = struct
  type t = { mutable state : int }

  let create seed = { state = (if seed = 0 then 0x2545F491 else seed) }

  let next t =
    let x = t.state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    t.state <- x land max_int;
    t.state

  let int t bound = if bound <= 1 then 0 else next t mod bound

  let pick t items = List.nth items (int t (List.length items))

  let of_string s =
    create (String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 s)
end

let word_pool =
  [ "news"; "user"; "cart"; "item"; "vote"; "page"; "post"; "shop"; "help";
    "main"; "pref"; "auth"; "sess"; "cat"; "tag"; "feed" ]

let benign_pattern_pool =
  [ "/^[a-z]{1,8}$/"; "/^[0-9]{1,6}$/"; "/^[a-zA-Z0-9_]{1,10}$/";
    "/^[a-z]+$/"; "/^(yes|no)$/"; "/^[0-9]+$/" ]

let pattern s = Regex.Parser.parse_pattern_exn s

module Fig12 = struct
  type row = {
    app : string;
    name : string;
    fg : int;
    c : int;
    paper_ts : float;
  }

  (* Fig. 12 of the paper, verbatim. *)
  let rows =
    [
      { app = "eve"; name = "edit"; fg = 58; c = 29; paper_ts = 0.32 };
      { app = "utopia"; name = "login"; fg = 295; c = 16; paper_ts = 0.052 };
      { app = "utopia"; name = "profile"; fg = 855; c = 16; paper_ts = 0.006 };
      { app = "utopia"; name = "styles"; fg = 597; c = 156; paper_ts = 0.65 };
      { app = "utopia"; name = "comm"; fg = 994; c = 102; paper_ts = 0.26 };
      { app = "warp"; name = "cxapp"; fg = 620; c = 10; paper_ts = 0.054 };
      { app = "warp"; name = "ax_help"; fg = 610; c = 4; paper_ts = 0.010 };
      { app = "warp"; name = "usr_reg"; fg = 608; c = 10; paper_ts = 0.53 };
      { app = "warp"; name = "ax_ed"; fg = 630; c = 10; paper_ts = 0.063 };
      { app = "warp"; name = "cart_shop"; fg = 856; c = 31; paper_ts = 0.17 };
      { app = "warp"; name = "req_redir"; fg = 640; c = 41; paper_ts = 0.43 };
      { app = "warp"; name = "secure"; fg = 648; c = 81; paper_ts = 577.0 };
      { app = "warp"; name = "a_cont"; fg = 606; c = 10; paper_ts = 0.057 };
      { app = "warp"; name = "usr_prf"; fg = 740; c = 66; paper_ts = 0.22 };
      { app = "warp"; name = "xw_mn"; fg = 698; c = 387; paper_ts = 0.50 };
      { app = "warp"; name = "castvote"; fg = 710; c = 10; paper_ts = 0.052 };
      { app = "warp"; name = "pay_nfo"; fg = 628; c = 10; paper_ts = 0.18 };
    ]

  let attack = Webapp.Attack.contains_quote

  (* A benign guard on a distinct input: one ⊆-edge on the surviving
     path, one If (2 blocks: the exit arm and the join). *)
  let benign_check rng i =
    let input = Printf.sprintf "%s_%d" (Prng.pick rng word_pool) i in
    Ast.If
      ( Ast.Not (Ast.Preg_match (pattern (Prng.pick rng benign_pattern_pool), Ast.Input input)),
        [ Ast.Exit ],
        [] )

  (* A guard testing a concatenation: one ⊆-edge plus one ∘-edge pair
     (the extra constraint the dependency graph sees), still 2
     blocks. *)
  let concat_check rng i =
    let input = Printf.sprintf "c%s_%d" (Prng.pick rng word_pool) i in
    Ast.If
      ( Ast.Not
          (Ast.Preg_match
             (pattern "/^u[a-z]{1,6}$/", Ast.Concat (Ast.Str "u", Ast.Input input))),
        [ Ast.Exit ],
        [] )

  (* Padding that adds CFG blocks but, being input-independent, is
     constant-folded by the symbolic executor: no path fork, no
     constraint — how the paper's [|FG|] dwarfs [|C|] on most rows. *)
  let padding_if3 rng i =
    let tested = Prng.pick rng word_pool in
    Ast.If
      ( Ast.Str_eq (Ast.Var (Printf.sprintf "mode%d" i), tested),
        [ Ast.Echo (Ast.Str (Printf.sprintf "<div class=%s>" tested)) ],
        [ Ast.Echo (Ast.Str "<div>") ] )

  let padding_if1 i =
    Ast.If (Ast.Str_eq (Ast.Var (Printf.sprintf "mode%d" i), "__never"), [], [])

  let padding_if2 i =
    Ast.If (Ast.Str_eq (Ast.Var (Printf.sprintf "mode%d" i), "__never"), [ Ast.Exit ], [])

  (* Large string constants for the [secure] row: the paper attributes
     its 577 s outlier to explicitly-represented large constants. *)
  let big_literal rng len =
    String.init len (fun _ ->
        let chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 =,()<>" in
        chars.[Prng.int rng (String.length chars)])

  (* Per-row budget (see the module doc): with G guards (2 blocks, one
     ⊆-edge each), q of them concatenation guards (one extra ∘-pair
     each), and a sink of one ⊆-edge + one ∘-pair:
       c  = G + q + 2
       fg = 1 + 2·G + padding blocks                                  *)
  let program { app; name; fg; c; _ } =
    let rng = Prng.of_string (app ^ "/" ^ name) in
    let is_secure = name = "secure" in
    (* the secure row's four re-validation checks contribute 8 blocks
       (4 Ifs) and 8 constraints (4 ⊆-edges + 4 ∘-pairs) on top of
       the shared structure below *)
    let fg = if is_secure then fg - 8 else fg in
    let c = if is_secure then c - 8 else c in
    let guard_total = min (c - 2) ((fg - 1) / 2) in
    let concat_guards = c - 2 - guard_total in
    assert (guard_total >= 1 && concat_guards >= 0 && concat_guards <= guard_total);
    (* the faulty filter on posted_id is one of the plain guards *)
    let plain_guards = guard_total - concat_guards - 1 in
    assert (plain_guards >= 0);
    let guards =
      List.init plain_guards (fun i -> benign_check rng i)
      @ List.init concat_guards (fun i -> concat_check rng i)
    in
    let block_budget = fg - 1 - (2 * guard_total) in
    let p3, extra =
      match block_budget mod 3 with
      | 0 -> (block_budget / 3, [])
      | 1 -> ((block_budget - 1) / 3, [ padding_if1 0 ])
      | _ -> ((block_budget - 2) / 3, [ padding_if2 0 ])
    in
    let mode_setup =
      List.init (max p3 1) (fun i ->
          Ast.Assign (Printf.sprintf "mode%d" i, Ast.Str (Prng.pick rng word_pool)))
    in
    let padding = extra @ List.init p3 (fun i -> padding_if3 rng i) in
    let faulty_filter =
      Ast.If
        ( Ast.Not (Ast.Preg_match (pattern "/[\\d]+$/", Ast.Input "posted_id")),
          [ Ast.Exit ],
          [] )
    in
    let table = Prng.pick rng word_pool in
    let sink =
      if is_secure then begin
        (* The paper attributes this row's 577 s outlier to large
           string constants "explicitly represented and tracked
           through state machine transformations". We reproduce the
           cause: the query embeds a multi-kilobyte template, and the
           code then re-validates the *built* query several times, so
           every check drags the big constant through another
           concat-intersect. All checks share [posted_id], coupling
           them into one CI-group. *)
        let prefix =
          big_literal rng 8000 ^ " SELECT * FROM " ^ table ^ " WHERE id=nid_"
        in
        let recheck pat =
          Ast.If
            ( Ast.Not (Ast.Preg_match (pattern pat, Ast.Var "q")),
              [ Ast.Exit ],
              [] )
        in
        [ Ast.Assign ("q", Ast.Concat (Ast.Str prefix, Ast.Input "posted_id")) ]
        @ List.map recheck [ "/SELECT/"; "/FROM/"; "/WHERE/"; "/id=nid_/" ]
        @ [ Ast.Query (Ast.Var "q") ]
      end
      else
        [
          Ast.Assign
            ( "q",
              Ast.Concat
                ( Ast.Str ("SELECT * FROM " ^ table ^ " WHERE id=nid_"),
                  Ast.Input "posted_id" ) );
          Ast.Query (Ast.Var "q");
        ]
    in
    mode_setup @ guards @ padding @ [ faulty_filter ] @ sink
end

module Fig11 = struct
  type app = {
    name : string;
    version : string;
    files : int;
    loc : int;
    vulnerable : int;
  }

  (* Fig. 11 of the paper, verbatim. *)
  let apps =
    [
      { name = "eve"; version = "1.0"; files = 8; loc = 905; vulnerable = 1 };
      { name = "utopia"; version = "1.3.0"; files = 24; loc = 5438; vulnerable = 4 };
      { name = "warp"; version = "1.2.1"; files = 44; loc = 24365; vulnerable = 12 };
    ]

  (* A benign page: correctly-anchored filters, safe fixed queries. *)
  let benign_program rng ~target_loc =
    let stmts = ref [] in
    let emit s = stmts := s :: !stmts in
    let input = Printf.sprintf "%s_id" (Prng.pick rng word_pool) in
    emit
      (Ast.If
         ( Ast.Not (Ast.Preg_match (pattern "/^[0-9]+$/", Ast.Input input)),
           [ Ast.Exit ],
           [] ));
    emit
      (Ast.Assign
         ( "q",
           Ast.Concat
             ( Ast.Str ("SELECT * FROM " ^ Prng.pick rng word_pool ^ " WHERE id="),
               Ast.Input input ) ));
    emit (Ast.Query (Ast.Var "q"));
    (* filler output statements until the page is long enough *)
    let current () = Ast.loc (List.rev !stmts) in
    while current () < target_loc do
      emit
        (Ast.If
           ( Ast.Str_eq (Ast.Var "q", Prng.pick rng word_pool),
             [ Ast.Echo (Ast.Str ("<p>" ^ Prng.pick rng word_pool ^ "</p>")) ],
             [ Ast.Echo (Ast.Str "<hr>") ] ))
    done;
    List.rev !stmts

  (* A benign page with a data-dependent accumulator loop: the query
     grows an unbounded ",0" tail, so bounded unrolling can never
     exhaust its paths — only the static analysis (join + widening at
     the loop head) proves the sink safe. *)
  let loop_program rng ~target_loc =
    let table = Prng.pick rng word_pool in
    let stmts = ref [] in
    let emit s = stmts := s :: !stmts in
    emit (Ast.Assign ("ids", Ast.Str "0"));
    emit
      (Ast.While
         ( Ast.Not (Ast.Preg_match (pattern "/^done$/", Ast.Input "more")),
           [ Ast.Assign ("ids", Ast.Concat (Ast.Var "ids", Ast.Str ",0")) ] ));
    emit
      (Ast.Assign
         ( "q",
           Ast.Concat
             ( Ast.Str ("SELECT * FROM " ^ table ^ " WHERE id IN ("),
               Ast.Concat (Ast.Var "ids", Ast.Str ")") ) ));
    emit (Ast.Query (Ast.Var "q"));
    let current () = Ast.loc (List.rev !stmts) in
    while current () < target_loc do
      emit
        (Ast.If
           ( Ast.Str_eq (Ast.Var "q", Prng.pick rng word_pool),
             [ Ast.Echo (Ast.Str ("<p>" ^ Prng.pick rng word_pool ^ "</p>")) ],
             [ Ast.Echo (Ast.Str "<hr>") ] ))
    done;
    List.rev !stmts

  let generate app =
    let rng = Prng.of_string (app.name ^ app.version) in
    let vuln_rows =
      List.filter (fun { Fig12.app = a; _ } -> a = app.name) Fig12.rows
    in
    assert (List.length vuln_rows = app.vulnerable);
    let vuln_files =
      List.map
        (fun ({ Fig12.name; _ } as row) -> (name ^ ".mphp", Fig12.program row))
        vuln_rows
    in
    let vuln_loc =
      List.fold_left (fun acc (_, p) -> acc + Ast.loc p) 0 vuln_files
    in
    let benign_count = app.files - app.vulnerable in
    let remaining = max 0 (app.loc - vuln_loc) in
    let per_file = max 8 (remaining / max 1 benign_count) in
    let benign_files =
      List.init benign_count (fun i ->
          let program =
            (* eve's first filler page carries the accumulator loop, so
               every eve scan exercises the widening/pruning path *)
            if app.name = "eve" && i = 0 then
              loop_program rng ~target_loc:per_file
            else benign_program rng ~target_loc:per_file
          in
          (Printf.sprintf "page_%02d.mphp" i, program))
    in
    vuln_files @ benign_files
end
