module Nfa = Automata.Nfa
module Query = Automata.Query
module Store = Automata.Store
module Budget = Automata.Budget

(* Analyzer-level metrics, alongside the solver's counters in the
   default registry. "sliced"/"discharged" count constraints the
   solver never saw — the analyzer's whole value proposition. *)
let c_sliced_vars = Telemetry.Metrics.Counter.make "analyze.sliced.vars"

let c_sliced_constraints =
  Telemetry.Metrics.Counter.make "analyze.sliced.constraints"

let c_discharged = Telemetry.Metrics.Counter.make "analyze.discharged"
let c_deduped = Telemetry.Metrics.Counter.make "analyze.deduped"
let c_folded = Telemetry.Metrics.Counter.make "analyze.folded"
let c_aliased = Telemetry.Metrics.Counter.make "analyze.aliased"
let c_refuted = Telemetry.Metrics.Counter.make "analyze.refuted"

type cause =
  | Empty_var of string
  | Bound_empty of string
  | Const_expr of string

let pp_cause ppf = function
  | Empty_var v ->
      Fmt.pf ppf "variable %s is constrained to the empty language" v
  | Bound_empty alt ->
      Fmt.pf ppf
        "bounds propagation forces concatenation %s to the empty language" alt
  | Const_expr alt ->
      Fmt.pf ppf "constant-only alternative %s violates its subset constraint"
        alt

type refute = { cause : cause; core : System.constr list }

type bound = { contributions : int; witness : string option }

type stats = {
  aliased : int;
  folded : int;
  deduped : int;
  discharged : int;
  sliced_vars : string list;
  sliced_constraints : int;
}

type t = {
  system : System.t;
  refute : refute option;
  witnesses : (string * string) list;
  bounds : (string * bound) list;
  stats : stats;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers over union-free alternatives.                       *)

let leaves expr =
  let rec go acc = function
    | System.Concat (a, b) -> go (go acc a) b
    | System.Union _ -> assert false (* expand_unions output is union-free *)
    | leaf -> leaf :: acc
  in
  List.rev (go [] expr)

let expr_of_leaves = function
  | [] -> invalid_arg "Analyze.expr_of_leaves: empty"
  | first :: rest ->
      List.fold_left (fun acc l -> System.Concat (acc, l)) first rest

let is_const = function System.Const _ -> true | _ -> false

let alt_vars ls =
  List.filter_map (function System.Var v -> Some v | _ -> None) ls

let constr_vars { System.lhs; _ } =
  let rec go acc = function
    | System.Const _ -> acc
    | System.Var v -> v :: acc
    | System.Concat (a, b) | System.Union (a, b) -> go (go acc a) b
  in
  go [] lhs

let vars_of_constrs constrs =
  List.sort_uniq String.compare (List.concat_map constr_vars constrs)

(* Bound refinement is skipped (soundly: the bound just stays coarser)
   once an operand machine outgrows this, so analysis never builds the
   large products that are the solver's own job. *)
let state_cap = 512

let handle_size h = List.length (Nfa.states (Store.nfa h))

(* ------------------------------------------------------------------ *)
(* Core minimization: ddmin's reduction phase, one linear pass trying
   to drop each constraint while the oracle still refutes. *)

let minimize_core ~check core =
  let rec go kept = function
    | [] -> List.rev kept
    | c :: rest -> (
        match check (List.rev_append kept rest) with
        | true -> go kept rest
        | false -> go (c :: kept) rest
        | exception Budget.Exceeded _ ->
            (* out of budget mid-shrink: the current candidate still
               refutes (only proven-removable constraints are gone) *)
            List.rev_append kept (c :: rest))
  in
  go [] core

(* ------------------------------------------------------------------ *)
(* Pass 1 — normalization: alias collapse, constant-run folding,
   duplicate-constraint dedup.                                        *)

(* Constants with equal languages (decided by the query front-end, so
   the symbolic tier answers regex-carrying constants without touching
   automata) all rewrite to the earliest-declared representative. *)
let alias_cap = 64

let alias_map system =
  let referenced =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun c ->
        List.iter
          (function
            | System.Const name -> Hashtbl.replace tbl name ()
            | _ -> ())
          (List.concat_map leaves (System.expand_unions c.System.lhs));
        Hashtbl.replace tbl c.System.rhs ())
      (System.constraints system);
    tbl
  in
  let names =
    List.filter (fun (n, _) -> Hashtbl.mem referenced n) (System.constants system)
  in
  let map = Hashtbl.create 8 in
  if List.length names <= alias_cap then begin
    let reps = ref [] in
    List.iter
      (fun (name, _) ->
        Budget.tick ();
        let h = System.const_handle system name in
        match List.find_opt (fun (_, rh) -> Query.equal h rh) !reps with
        | Some (rep, _) -> Hashtbl.replace map name rep
        | None -> reps := !reps @ [ (name, h) ])
      names
  end;
  map

type norm = {
  norm_constrs : System.constr list;
  extra_consts : (string * Nfa.t) list;
  norm_aliased : int;
  norm_folded : int;
  norm_deduped : int;
}

let normalize system =
  let aliases = alias_map system in
  let aliased = ref 0 in
  let rename name =
    match Hashtbl.find_opt aliases name with
    | Some rep ->
        incr aliased;
        rep
    | None -> name
  in
  (* fresh constants for folded runs must clash with nothing *)
  let taken = Hashtbl.create 16 in
  List.iter (fun (n, _) -> Hashtbl.replace taken n ()) (System.constants system);
  List.iter (fun v -> Hashtbl.replace taken v ()) (System.variables system);
  List.iter (fun g -> Hashtbl.replace taken g ()) (System.goals system);
  let extra = ref [] in
  let folded = ref 0 in
  let fold_memo = Hashtbl.create 8 in
  let fold_run names =
    let key = String.concat "\x00" names in
    match Hashtbl.find_opt fold_memo key with
    | Some n -> n
    | None ->
        let rec fresh n = if Hashtbl.mem taken n then fresh (n ^ "'") else n in
        let name = fresh (String.concat "." names) in
        let h =
          match names with
          | [] -> assert false
          | c :: rest ->
              List.fold_left
                (fun acc c -> Store.concat_lang acc (System.const_handle system c))
                (System.const_handle system c)
                rest
        in
        Hashtbl.replace taken name ();
        Hashtbl.replace fold_memo key name;
        extra := (name, Store.nfa h) :: !extra;
        name
  in
  let rebuild_alt alt =
    let ls =
      List.map
        (function
          | System.Const c -> System.Const (rename c) | leaf -> leaf)
        (leaves alt)
    in
    let flush acc run =
      match List.rev run with
      | [] -> acc
      | [ c ] -> System.Const c :: acc
      | names ->
          folded := !folded + List.length names;
          System.Const (fold_run names) :: acc
    in
    let rec go acc run = function
      | [] -> List.rev (flush acc run)
      | System.Const c :: rest -> go acc (c :: run) rest
      | leaf :: rest -> go (leaf :: flush acc run) [] rest
    in
    expr_of_leaves (go [] [] ls)
  in
  let rebuild { System.lhs; rhs } =
    Budget.tick ();
    let lhs =
      match List.map rebuild_alt (System.expand_unions lhs) with
      | [] -> assert false
      | a :: rest -> List.fold_left (fun acc x -> System.Union (acc, x)) a rest
    in
    { System.lhs; rhs = rename rhs }
  in
  let rebuilt = List.map rebuild (System.constraints system) in
  let seen = Hashtbl.create 16 in
  let deduped = ref 0 in
  let uniq =
    List.filter
      (fun c ->
        let key = Fmt.str "%a" System.pp_constr c in
        if Hashtbl.mem seen key then begin
          incr deduped;
          false
        end
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      rebuilt
  in
  {
    norm_constrs = uniq;
    extra_consts = List.rev !extra;
    norm_aliased = !aliased;
    norm_folded = !folded;
    norm_deduped = !deduped;
  }

(* ------------------------------------------------------------------ *)
(* Pass 2 — bounds propagation.

   Per-variable upper bounds are meets of handles contributed by the
   constraints: the right-hand constant for a bare [v ⊆ c]
   alternative, and the universal residual {w | pre·w·post ⊆ c}
   (exact, {!Residual.max_middle}) for a single-variable alternative
   between constant runs. Multi-variable alternatives are checked
   forward: the concatenation of leaf bounds over-approximates the
   alternative's language, and every admissible assignment keeps each
   variable nonempty, so a forward bound disjoint from the right-hand
   constant refutes the system. Each contribution is tagged with its
   constraint index — that is what cores, discharge exclusion, and
   blame are made of. *)

exception Refuted of cause * int list

let residual_memo : Store.handle Store.Memo.t =
  Store.Memo.create ~op:"analyze.residual"

let run_handle system = function
  | [] -> Store.of_word ""
  | first :: rest ->
      List.fold_left
        (fun acc c -> Store.concat_lang acc (System.const_handle system c))
        (System.const_handle system first)
        rest

let residual_handle system ~pre ~post ~upper =
  let pre_h = run_handle system pre and post_h = run_handle system post in
  if
    handle_size pre_h > state_cap
    || handle_size post_h > state_cap
    || handle_size upper > state_cap
  then None
  else
    Some
      (Store.Memo.find_or_compute residual_memo
         ~key:[ Store.id pre_h; Store.id post_h; Store.id upper ]
         (fun () ->
           Store.intern_keyed
             (Residual.max_middle ~pre:(Store.nfa pre_h)
                ~post:(Store.nfa post_h) ~upper:(Store.nfa upper))))

type contribs = (string, (int * Store.handle) list) Hashtbl.t

(* contributions per variable + the multi-variable alternatives left
   for the forward check; raises [Refuted] on a failed constant-only
   inclusion *)
let collect system constrs : contribs * (int * System.expr list * Store.handle) list =
  let contribs : contribs = Hashtbl.create 16 in
  let add v i h =
    let existing = Option.value (Hashtbl.find_opt contribs v) ~default:[] in
    Hashtbl.replace contribs v ((i, h) :: existing)
  in
  let forward = ref [] in
  List.iteri
    (fun i { System.lhs; rhs } ->
      let rhs_h = System.const_handle system rhs in
      List.iter
        (fun alt ->
          Budget.tick ();
          let ls = leaves alt in
          match alt_vars ls with
          | [] ->
              if not (Query.subset (run_handle system
                                      (List.filter_map
                                         (function
                                           | System.Const c -> Some c
                                           | _ -> None)
                                         ls))
                        rhs_h)
              then
                raise
                  (Refuted
                     (Const_expr (Fmt.str "%a" System.pp_expr alt), [ i ]))
          | [ v ] -> (
              match ls with
              | [ System.Var _ ] -> add v i rhs_h
              | _ -> (
                  let rec split pre = function
                    | System.Const c :: rest -> split (c :: pre) rest
                    | System.Var _ :: rest ->
                        ( List.rev pre,
                          List.filter_map
                            (function System.Const c -> Some c | _ -> None)
                            rest )
                    | (System.Concat _ | System.Union _) :: _ | [] ->
                        assert false
                  in
                  let pre, post = split [] ls in
                  match residual_handle system ~pre ~post ~upper:rhs_h with
                  | Some h -> add v i h
                  | None -> () (* over the cap: stay coarse *)))
          | _ :: _ :: _ -> forward := (i, ls, rhs_h) :: !forward)
        (System.expand_unions lhs))
    constrs;
  (contribs, List.rev !forward)

let contributions contribs v =
  Option.value (Hashtbl.find_opt contribs v) ~default:[]

(* meet of [v]'s contributions, constraints in [exclude] not
   participating (discharge checks ask "what do the *others* know?") *)
let var_bound ?(exclude = fun _ -> false) contribs v =
  List.fold_left
    (fun acc (i, h) -> if exclude i then acc else Store.inter_lang acc h)
    (Store.top ())
    (List.rev (contributions contribs v))

let eval_leaves ?exclude system contribs ls =
  List.fold_left
    (fun acc leaf ->
      match acc with
      | None -> None
      | Some acc ->
          let h =
            match leaf with
            | System.Const c -> System.const_handle system c
            | System.Var v -> var_bound ?exclude contribs v
            | System.Concat _ | System.Union _ -> assert false
          in
          if handle_size h > state_cap then None
          else
            let r = Store.concat_lang acc h in
            if handle_size r > state_cap then None else Some r)
    (Some (Store.of_word ""))
    ls

(* The whole pass, usable as the minimization oracle: [Some _] iff the
   constraint list is refuted, with the indices the blame seeds from.
   Conceptually a worklist fixpoint over the dependency graph's
   vertices; with constants confined to right-hand sides and operand
   positions, information only flows leaf-to-root, so the meet phase
   followed by one forward sweep already is the fixpoint. *)
let bounds_refute system constrs =
  match
    let contribs, forward = collect system constrs in
    List.iter
      (fun v ->
        Budget.tick ();
        match contributions contribs v with
        | [] -> ()
        | cs ->
            if Query.is_empty (var_bound contribs v) then
              raise (Refuted (Empty_var v, List.map fst cs)))
      (vars_of_constrs constrs);
    List.iter
      (fun (i, ls, rhs_h) ->
        Budget.tick ();
        match eval_leaves system contribs ls with
        | Some h when Query.disjoint h rhs_h ->
            let blame =
              i
              :: List.concat_map
                   (fun v -> List.map fst (contributions contribs v))
                   (alt_vars ls)
            in
            raise
              (Refuted
                 ( Bound_empty (Fmt.str "%a" System.pp_expr (expr_of_leaves ls)),
                   List.sort_uniq compare blame ))
        | _ -> ())
      forward;
    ()
  with
  | () -> None
  | exception Refuted (cause, blame) -> Some (cause, blame)

let refute_with_core system constrs (cause, blame) =
  let candidate = List.filteri (fun i _ -> List.mem i blame) constrs in
  let check cs = Option.is_some (bounds_refute system cs) in
  (* the blame set contains every contribution the refutation used, so
     the candidate refutes on its own and ddmin can shrink from it *)
  let core =
    if check candidate then minimize_core ~check candidate
    else (* defensive: blame tracking failed us; fall back to the lot *)
      minimize_core ~check constrs
  in
  { cause; core }

(* ------------------------------------------------------------------ *)
(* Pass 3 — discharge: drop constraints implied by what the others
   already enforce. Greedy and sequential: each check excludes the
   constraint itself plus everything dropped before it, so mutually
   redundant pairs cannot vanish together. *)

let discharge system contribs constrs =
  let removed = Hashtbl.create 8 in
  let kept =
    List.filteri
      (fun i c ->
        let exclude j = j = i || Hashtbl.mem removed j in
        let rhs_h = System.const_handle system c.System.rhs in
        let removable =
          List.for_all
            (fun alt ->
              Budget.tick ();
              let ls = leaves alt in
              if List.for_all is_const ls then
                (* decided satisfiable during collection *)
                true
              else
                match eval_leaves ~exclude system contribs ls with
                | Some h -> Query.subset h rhs_h
                | None -> false)
            (System.expand_unions c.System.lhs)
        in
        if removable then Hashtbl.replace removed i ();
        not removable)
      constrs
  in
  (kept, Hashtbl.length removed)

(* ------------------------------------------------------------------ *)
(* Pass 4 — cone-of-influence slicing. Connected components of the
   variable-sharing relation are independent conjuncts; a component
   holding no goal variable is proved satisfiable once (each variable
   set to the shortest word of its bound) and dropped, its witnesses
   re-joining the solver's assignments afterwards. A component whose
   witness check fails is conservatively kept. *)

let shortest_of_bound contribs v =
  Nfa.shortest_word (Store.nfa (var_bound contribs v))

let witness_ok system comp_constrs witness_of =
  List.for_all
    (fun { System.lhs; rhs } ->
      let rhs_h = System.const_handle system rhs in
      List.for_all
        (fun alt ->
          Budget.tick ();
          let h =
            List.fold_left
              (fun acc leaf ->
                let h =
                  match leaf with
                  | System.Const c -> System.const_handle system c
                  | System.Var v -> Store.of_word (witness_of v)
                  | System.Concat _ | System.Union _ -> assert false
                in
                Store.concat_lang acc h)
              (Store.of_word "")
              (leaves alt)
          in
          Query.subset h rhs_h)
        (System.expand_unions lhs))
    comp_constrs

let slice ~goals system contribs constrs =
  let vars = vars_of_constrs constrs in
  let goals = List.filter (fun g -> List.mem g vars) goals in
  if goals = [] then (constrs, [], [])
  else begin
    (* union-find over variables, joined by co-occurrence *)
    let parent = Hashtbl.create 16 in
    let rec find v =
      match Hashtbl.find_opt parent v with
      | None -> v
      | Some p ->
          let root = find p in
          Hashtbl.replace parent v root;
          root
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    List.iter
      (fun c ->
        match List.sort_uniq String.compare (constr_vars c) with
        | [] -> ()
        | first :: rest -> List.iter (union first) rest)
      constrs;
    let goal_roots = List.sort_uniq String.compare (List.map find goals) in
    let in_cone c =
      match constr_vars c with
      | [] -> true (* constant-only: kept (discharge already ran) *)
      | v :: _ -> List.mem (find v) goal_roots
    in
    let out_roots =
      List.sort_uniq String.compare
        (List.filter_map
           (fun v ->
             let r = find v in
             if List.mem r goal_roots then None else Some r)
           vars)
    in
    let dropped = Hashtbl.create 8 in
    List.iter
      (fun root ->
        let comp_vars = List.filter (fun v -> find v = root) vars in
        let comp_constrs =
          List.filter
            (fun c ->
              match constr_vars c with
              | [] -> false
              | v :: _ -> find v = root)
            constrs
        in
        let witnesses =
          List.map
            (fun v ->
              match shortest_of_bound contribs v with
              | Some w -> (v, w)
              | None -> assert false (* empty bounds refuted earlier *))
            comp_vars
        in
        let witness_of v = List.assoc v witnesses in
        if witness_ok system comp_constrs witness_of then
          Hashtbl.replace dropped root witnesses)
      out_roots;
    let kept =
      List.filter
        (fun c ->
          in_cone c
          ||
          match constr_vars c with
          | [] -> true
          | v :: _ -> not (Hashtbl.mem dropped (find v)))
        constrs
    in
    let witnesses =
      List.sort compare
        (Hashtbl.fold (fun _ ws acc -> ws @ acc) dropped [])
    in
    let sliced_vars = List.map fst witnesses in
    (kept, witnesses, sliced_vars)
  end

(* ------------------------------------------------------------------ *)

let run ?(goals = []) system =
  match normalize system with
  | { norm_constrs; extra_consts; norm_aliased; norm_folded; norm_deduped } -> (
      Telemetry.Metrics.Counter.incr c_aliased norm_aliased;
      Telemetry.Metrics.Counter.incr c_folded norm_folded;
      Telemetry.Metrics.Counter.incr c_deduped norm_deduped;
      let norm_sys =
        System.with_goals
          (System.make_exn
             ~consts:(System.constants system @ extra_consts)
             ~constraints:norm_constrs)
          (System.goals system)
      in
      let goals =
        let seen = Hashtbl.create 4 in
        List.filter
          (fun g ->
            if Hashtbl.mem seen g then false
            else begin
              Hashtbl.replace seen g ();
              true
            end)
          (goals @ System.goals system)
      in
      let stats ?(discharged = 0) ?(sliced_vars = []) ?(sliced_constraints = 0)
          () =
        {
          aliased = norm_aliased;
          folded = norm_folded;
          deduped = norm_deduped;
          discharged;
          sliced_vars;
          sliced_constraints;
        }
      in
      let bounds_report contribs =
        List.map
          (fun v ->
            ( v,
              {
                contributions = List.length (contributions contribs v);
                witness = shortest_of_bound contribs v;
              } ))
          (vars_of_constrs norm_constrs)
      in
      match bounds_refute norm_sys norm_constrs with
      | Some refutation ->
          Telemetry.Metrics.Counter.incr c_refuted 1;
          let refute = refute_with_core norm_sys norm_constrs refutation in
          let contribs, _ =
            try collect norm_sys norm_constrs
            with Refuted _ -> (Hashtbl.create 0, [])
          in
          {
            system = norm_sys;
            refute = Some refute;
            witnesses = [];
            bounds = bounds_report contribs;
            stats = stats ();
          }
      | None ->
          let contribs, _ = collect norm_sys norm_constrs in
          let kept, discharged = discharge norm_sys contribs norm_constrs in
          Telemetry.Metrics.Counter.incr c_discharged discharged;
          let kept, witnesses, sliced_vars =
            slice ~goals norm_sys contribs kept
          in
          let sliced_constraints =
            List.length norm_constrs - discharged - List.length kept
          in
          Telemetry.Metrics.Counter.incr c_sliced_vars
            (List.length sliced_vars);
          Telemetry.Metrics.Counter.incr c_sliced_constraints
            sliced_constraints;
          {
            system = System.with_constraints norm_sys kept;
            refute = None;
            witnesses;
            bounds = bounds_report contribs;
            stats =
              stats ~discharged ~sliced_vars ~sliced_constraints ();
          })
