(** Pre-solve static analysis over constraint systems: everything the
    decision procedure can learn from the dependency structure
    (§3.4.1, Fig. 5 of the paper) {e before} any group machine is
    built.

    Four passes, in order:

    + {b normalization} — constants denoting equal languages collapse
      to one representative (union-find flavoured, decided by
      {!Automata.Query.equal} so the symbolic derivative tier answers
      first), maximal runs of ≥2 constant leaves in an alternative
      fold into one fresh constant, and structurally duplicate
      constraints dedup;
    + {b bounds propagation} — a worklist fixpoint computes a regular
      upper bound per variable: the meet of its direct ⊆-edge
      constants together with the universal residuals
      [{w | pre·w·post ⊆ c}] contributed by single-variable
      alternatives ({!Residual.max_middle}); multi-variable
      alternatives are then checked forward by concatenating leaf
      bounds. An empty variable bound, a constant-only alternative
      that fails its inclusion, or a forward concatenation disjoint
      from its bound each refute the system outright;
    + {b discharge} — a constraint all of whose alternatives are
      implied by the bounds the {e other} constraints impose is
      dropped: the solver never sees it;
    + {b cone-of-influence slicing} — with goal variables declared
      (({!System.goals} or [~goals]); an empty goal set disables the
      pass), connected components of the variable-sharing relation
      that contain no goal are satisfied once by a singleton witness
      per variable (shortest word of its bound) and dropped; the
      witnesses re-join the solver's assignments so solutions stay
      total.

    Soundness: a discharged constraint is implied by the remaining
    system (every admissible assignment keeps each variable inside
    its upper bound, and variables are nonempty by the RMA
    semantics), and a sliced component is variable-disjoint from the
    rest — the conjunction splits, and the component was proved
    satisfiable — so both passes preserve the Sat/Unsat verdict.
    Refutations are sound because bounds only over-approximate.

    When a pass refutes, the explaining constraint subset is shrunk
    delta-debugging style ({!minimize_core}) to a 1-minimal core.

    All language queries go through {!Automata.Query} /
    {!Automata.Store}, and the loops tick the ambient
    {!Automata.Budget}, so analysis of pathological systems degrades
    to [Budget.Exceeded] exactly like the solver proper. *)

(** Why the analyzer refuted. {!Solver} maps these onto its
    [unsat_reason] constructors. *)
type cause =
  | Empty_var of string
      (** the variable's upper bound (direct constants ∩ residuals)
          is the empty language *)
  | Bound_empty of string
      (** the rendered multi-variable alternative whose forward bound
          is disjoint from its right-hand constant *)
  | Const_expr of string
      (** the rendered constant-only alternative that fails its
          inclusion *)

val pp_cause : cause Fmt.t

type refute = {
  cause : cause;
  core : System.constr list;
      (** 1-minimal refuting subset of the normalized constraints, in
          system order *)
}

(** Per-variable upper-bound summary, for reports. *)
type bound = {
  contributions : int;  (** direct ⊆-edges + residual occurrences *)
  witness : string option;
      (** shortest word of the bound; [None] iff the bound is empty *)
}

type stats = {
  aliased : int;  (** constant references rewritten to a representative *)
  folded : int;  (** constant-run leaves folded into fresh constants *)
  deduped : int;  (** duplicate constraints dropped *)
  discharged : int;  (** trivially-satisfied constraints dropped *)
  sliced_vars : string list;  (** variables dropped by the slice, sorted *)
  sliced_constraints : int;  (** constraints dropped by the slice *)
}

type t = {
  system : System.t;
      (** the normalized, discharged, sliced system the solver should
          consume; meaningless when [refute] is [Some _] *)
  refute : refute option;
  witnesses : (string * string) list;
      (** singleton assignments for sliced-away variables, to re-join
          solver solutions; sorted by variable *)
  bounds : (string * bound) list;  (** per variable, sorted *)
  stats : stats;
}

(** Run all four passes. [goals] is prepended to the system's own
    {!System.goals}. *)
val run : ?goals:string list -> System.t -> t

(** [minimize_core ~check core] shrinks [core] — for which
    [check core] must already hold — to a 1-minimal sublist by
    attempting to drop each element in turn (the ddmin reduction
    phase). A [check] raising {!Automata.Budget.Exceeded} aborts the
    search and returns the current (still refuting, possibly
    non-minimal) candidate. *)
val minimize_core :
  check:(System.constr list -> bool) ->
  System.constr list ->
  System.constr list
