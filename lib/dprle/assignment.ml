module Nfa = Automata.Nfa
module SMap = Map.Make (String)

type t = Nfa.t SMap.t

let of_list bindings = SMap.of_seq (List.to_seq bindings)

let find t v =
  match SMap.find_opt v t with
  | Some lang -> lang
  | None -> invalid_arg (Printf.sprintf "Assignment.find: unbound variable %S" v)

let find_opt t v = SMap.find_opt v t

let bindings t = SMap.bindings t

let variables t = List.map fst (SMap.bindings t)

(* Through the store: [prune_subsumed] compares all pairs of
   disjuncts, and the same variable languages recur across them. *)
let subsumes a b =
  SMap.for_all
    (fun v lang_b ->
      match SMap.find_opt v a with
      | None -> false
      | Some lang_a ->
          Automata.Query.subset
            (Automata.Store.intern lang_b)
            (Automata.Store.intern lang_a))
    b

let equal a b = subsumes a b && subsumes b a

let prune_subsumed assignments =
  let indexed = List.mapi (fun i a -> (i, a)) assignments in
  List.filter_map
    (fun (i, a) ->
      let dominated =
        List.exists
          (fun (j, b) ->
            i <> j && subsumes b a && ((not (subsumes a b)) || j < i))
          indexed
      in
      if dominated then None else Some a)
    indexed

let witness t =
  let exception Empty in
  try
    Some
      (List.map
         (fun (v, lang) ->
           match Nfa.shortest_word lang with
           | Some w -> (v, w)
           | None -> raise Empty)
         (SMap.bindings t))
  with Empty -> None

let samples t v ~n = Nfa.sample_words (find t v) ~max_len:24 ~max_count:n

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (v, lang) -> Fmt.pf ppf "%s ↦ /%s/@ " v (Regex.Pretty.pretty lang))
    (SMap.bindings t);
  Fmt.pf ppf "@]"

let pp_witnesses ppf t =
  match witness t with
  | None -> Fmt.string ppf "<empty language>"
  | Some ws ->
      Fmt.pf ppf "[%a]"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (v, w) -> Fmt.pf ppf "%s ↦ %S" v w))
        ws
