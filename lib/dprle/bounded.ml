module Nfa = Automata.Nfa

type result = Sat of (string * string) list | Unsat_within_bound

module SSet = Set.Make (String)

let alphabet system =
  let labels =
    List.concat_map
      (fun (_, m) ->
        Nfa.fold_char_transitions m ~init:[] ~f:(fun acc _ cs _ -> cs :: acc))
      (System.constants system)
  in
  let blocks = Charset.refine labels in
  let covered = List.fold_left Charset.union Charset.empty blocks in
  let rest = Charset.complement covered in
  let blocks = if Charset.is_empty rest then blocks else rest :: blocks in
  List.sort_uniq Char.compare (List.map Charset.choose blocks)

(* Words over [alpha] in shortest-first order, capped. *)
let words alpha ~max_len ~cap =
  let out = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  Queue.add "" queue;
  while (not (Queue.is_empty queue)) && !count < cap do
    let w = Queue.take queue in
    out := w :: !out;
    incr count;
    if String.length w < max_len then
      List.iter (fun c -> Queue.add (w ^ String.make 1 c) queue) alpha
  done;
  List.rev !out

let rec expr_vars acc = function
  | System.Const _ -> acc
  | System.Var v -> SSet.add v acc
  | System.Concat (a, b) | System.Union (a, b) -> expr_vars (expr_vars acc a) b

(* Exact check of one constraint under concrete variable words. With
   constants in the lhs the check quantifies over the whole constant
   language, so instead of sampling we test language-level inclusion
   with variables replaced by singleton languages. *)
let constraint_holds system bound { System.lhs; rhs } =
  let rec lang_of = function
    | System.Const c -> System.const_lang system c
    | System.Var v -> Nfa.of_word (List.assoc v bound)
    | System.Concat (a, b) -> Automata.Ops.concat_lang (lang_of a) (lang_of b)
    | System.Union (a, b) -> Automata.Ops.union_lang (lang_of a) (lang_of b)
  in
  Automata.Query.subset
    (Automata.Store.intern (lang_of lhs))
    (System.const_handle system rhs)

let check system words =
  let vars = System.variables system in
  let bound =
    List.map (fun v -> (v, Option.value (List.assoc_opt v words) ~default:"")) vars
  in
  List.for_all (constraint_holds system bound) (System.constraints system)

let solve ?(candidates_per_var = 4096) ~max_len system =
  let vars = System.variables system in
  let alpha = alphabet system in
  let candidates = words alpha ~max_len ~cap:candidates_per_var in
  let constraints =
    List.map
      (fun ({ System.lhs; _ } as c) -> (expr_vars SSet.empty lhs, c))
      (System.constraints system)
  in
  (* check a constraint as soon as its last variable gets bound *)
  let exception Found of (string * string) list in
  let rec assign bound remaining =
    match remaining with
    | [] -> raise (Found (List.rev bound))
    | v :: rest ->
        let now_bound = SSet.of_list (v :: List.map fst bound) in
        let ready =
          List.filter (fun (vs, _) -> SSet.mem v vs && SSet.subset vs now_bound) constraints
        in
        List.iter
          (fun w ->
            let bound' = (v, w) :: bound in
            if List.for_all (fun (_, c) -> constraint_holds system bound' c) ready
            then assign bound' rest)
          candidates
  in
  (* constant-only constraints must hold outright *)
  let constant_ok =
    List.for_all
      (fun (vs, c) -> (not (SSet.is_empty vs)) || constraint_holds system [] c)
      constraints
  in
  if not constant_ok then Unsat_within_bound
  else
    match assign [] vars with
    | () -> Unsat_within_bound
    | exception Found witness -> Sat witness
