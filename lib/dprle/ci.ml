module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Store = Automata.Store

type solution = { v1 : Nfa.t; v2 : Nfa.t; cut : Nfa.state * Nfa.state }

type result = { solutions : solution list; m5 : Nfa.t; m4 : Nfa.t }

let compute m1 m2 m3 =
  (* Fig. 3 line 6: l4 = c1 ∘ c2, joined by a single ε-bridge. *)
  let cat = Ops.concat m1 m2 in
  let bridge_src, bridge_dst = cat.bridge in
  (* Fig. 3 lines 7–8: l5 = l4 ∩ c3 via the cross-product. *)
  let prod = Ops.intersect cat.machine m3 in
  let m5 = prod.machine in
  (* Lines 10–12: the interesting ε-edges are the images of the
     bridge — product states (bridge_src · d) → (bridge_dst · d). The
     product construction only creates ε-edges that share the
     right-hand component, so scanning the states whose left component
     is [bridge_src] enumerates exactly Qlhs × Qrhs ∩ δ5(·, ε). *)
  (* The emptiness filter (line 15) asks, per candidate cut (qa, qb),
     whether [induce_from_final m5 qa] or [induce_from_start m5 qb] is
     empty. Those answers are memberships in two fixed sets — states
     reachable from m5's start and states co-reachable to its final —
     so both BFS passes run once and every cut is decided by two flag
     reads instead of two full traversals. *)
  let reach = lazy (Nfa.reachable_flags m5 (Nfa.start m5)) in
  let coreach = lazy (Nfa.coreachable_flags m5 (Nfa.final m5)) in
  let solutions =
    List.filter_map
      (fun qa ->
        let left, d = prod.pair_of qa in
        if left <> bridge_src then None
        else
          match prod.state_of_pair (bridge_dst, d) with
          | None -> None
          | Some qb when not (Nfa.has_eps_edge m5 qa qb) -> None
          | Some qb ->
              if
                Nfa.Flags.mem (Lazy.force reach) qa
                && Nfa.Flags.mem (Lazy.force coreach) qb
              then
                (* Lines 13–15: slice the big machine at the cut. *)
                Some
                  {
                    v1 = Nfa.induce_from_final m5 qa;
                    v2 = Nfa.induce_from_start m5 qb;
                    cut = (qa, qb);
                  }
              else None)
      (Nfa.states m5)
  in
  { solutions; m5; m4 = cat.machine }

(* The whole result is cached on the interned operand triple: Fig. 12
   rows and symexec paths re-pose the same (c1, c2, c3) queries, and
   everything in [result] — including the state-identity provenance of
   the cut slices — is self-consistent relative to the interned
   representatives the computation ran on. The raw [Ops.concat]/
   [Ops.intersect] inside [compute] stay uncached by construction. *)
let ci_memo : result Store.Memo.t = Store.Memo.create ~op:"ci"

let concat_intersect m1 m2 m3 =
  Telemetry.Span.with_span ~name:"ci.concat_intersect"
    ~attrs:
      [
        ("m1_states", `Int (Nfa.num_states m1));
        ("m2_states", `Int (Nfa.num_states m2));
        ("m3_states", `Int (Nfa.num_states m3));
      ]
  @@ fun () ->
  let result =
    if not (Store.enabled ()) then compute m1 m2 m3
    else
      let h1 = Store.intern m1 and h2 = Store.intern m2 and h3 = Store.intern m3 in
      Store.Memo.find_or_compute ci_memo
        ~key:[ Store.id h1; Store.id h2; Store.id h3 ]
        (fun () -> compute (Store.nfa h1) (Store.nfa h2) (Store.nfa h3))
  in
  Telemetry.Span.add_attr "m5_states" (`Int (Nfa.num_states result.m5));
  Telemetry.Span.add_attr "eps_cuts" (`Int (List.length result.solutions));
  result

let solve m1 m2 m3 = (concat_intersect m1 m2 m3).solutions
