type node = Const of string | Var of string | Tmp of int

let node_equal = ( = )
let node_compare = Stdlib.compare

let pp_node ppf = function
  | Const c -> Fmt.string ppf c
  | Var v -> Fmt.string ppf v
  | Tmp i -> Fmt.pf ppf "t%d" i

type concat = { left : node; right : node; result : node }

type t = {
  system : System.t;
  nodes : node list;
  subsets : (node * node) list;
  concats : concat list;
}

module NSet = Set.Make (struct
  type t = node

  let compare = node_compare
end)

(* Fig. 5: descend the expression, returning its vertex and
   accumulating ∘-edge pairs for every concatenation via fresh
   temporaries. *)
let of_system system =
  Telemetry.Span.with_span ~name:"depgraph" @@ fun () ->
  let next_tmp = ref 0 in
  let concats = ref [] in
  let rec visit : System.expr -> node = function
    | System.Const c -> Const c
    | System.Var v -> Var v
    | System.Concat (a, b) ->
        let left = visit a in
        let right = visit b in
        let result = Tmp !next_tmp in
        incr next_tmp;
        concats := { left; right; result } :: !concats;
        result
    | System.Union _ -> assert false (* expanded below *)
  in
  let subsets =
    (* the §3.1.2 union extension: [e ⊆ c] splits into one ⊆-edge per
       union-free alternative of [e] *)
    List.concat_map
      (fun { System.lhs; rhs } ->
        List.map
          (fun alternative -> (Const rhs, visit alternative))
          (System.expand_unions lhs))
      (System.constraints system)
  in
  let concats = List.rev !concats in
  let nodes =
    let add acc n = NSet.add n acc in
    let acc =
      List.fold_left (fun acc (c, n) -> add (add acc c) n) NSet.empty subsets
    in
    let acc =
      List.fold_left
        (fun acc { left; right; result } -> add (add (add acc left) right) result)
        acc concats
    in
    NSet.elements acc
  in
  Telemetry.Span.add_attr "nodes" (`Int (List.length nodes));
  Telemetry.Span.add_attr "subset_edges" (`Int (List.length subsets));
  Telemetry.Span.add_attr "concat_pairs" (`Int (List.length concats));
  { system; nodes; subsets; concats }

(* Union-find over nodes joined by ∘-edge pairs. *)
let ci_groups t =
  let parent : (node, node) Hashtbl.t = Hashtbl.create 16 in
  let rec find n =
    match Hashtbl.find_opt parent n with
    | None -> n
    | Some p ->
        let root = find p in
        Hashtbl.replace parent n root;
        root
  in
  let union a b =
    let ra = find a and rb = find b in
    if node_compare ra rb <> 0 then Hashtbl.replace parent ra rb
  in
  (* Constant operands never join two concatenations into one group:
     a constant's language is fixed, so it cannot couple the ε-cut
     choices of otherwise-independent constraints. Only shared
     variables (and temporaries) propagate group membership. *)
  let joins = function Const _ -> false | Var _ | Tmp _ -> true in
  List.iter
    (fun { left; right; result } ->
      if joins left then union left result;
      if joins right then union right result)
    t.concats;
  let groups = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let root = find n in
      let existing = Option.value (Hashtbl.find_opt groups root) ~default:[] in
      Hashtbl.replace groups root (n :: existing))
    t.nodes;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []

let node_id = function
  | Const c -> "c_" ^ c
  | Var v -> "v_" ^ v
  | Tmp i -> Printf.sprintf "t_%d" i

let to_dot ?(highlight = []) t =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph depgraph {\n  rankdir=TB;\n";
  List.iter
    (fun n ->
      let shape = match n with Const _ -> "box" | Var _ -> "ellipse" | Tmp _ -> "diamond" in
      let extra =
        if List.exists (node_equal n) highlight then
          ", style=filled, fillcolor=lightgrey"
        else ""
      in
      pf "  %s [shape=%s, label=\"%s\"%s];\n" (node_id n) shape
        (Fmt.str "%a" pp_node n)
        extra)
    t.nodes;
  List.iter
    (fun (c, n) -> pf "  %s -> %s [style=dashed, label=\"⊆\"];\n" (node_id c) (node_id n))
    t.subsets;
  List.iter
    (fun { left; right; result } ->
      pf "  %s -> %s [label=\"l\"];\n" (node_id left) (node_id result);
      pf "  %s -> %s [label=\"r\"];\n" (node_id right) (node_id result))
    t.concats;
  pf "}\n";
  Buffer.contents buf
