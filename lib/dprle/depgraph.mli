(** Dependency graphs over constraint systems (§3.4.1, Fig. 5 of the
    paper).

    Each unique variable or constant gets one vertex; every
    concatenation [E ∘ E] in a constraint introduces a fresh temporary
    vertex [Tmp]. Two edge kinds mirror the paper's:

    - [SubsetEdge (c, n)] — written [c ⇢ n] — requires [⟦n⟧ ⊆ ⟦c⟧];
      [c] is always a constant vertex.
    - [ConcatEdgePair { left; right; result }] — a ∘-edge pair —
      constrains [⟦result⟧] to strings of [⟦left⟧ ∘ ⟦right⟧]. *)

type node = Const of string | Var of string | Tmp of int

val node_equal : node -> node -> bool

val node_compare : node -> node -> int

val pp_node : node Fmt.t

type concat = { left : node; right : node; result : node }

type t = {
  system : System.t;
  nodes : node list;  (** every vertex, constants and temporaries included *)
  subsets : (node * node) list;  (** [(c, n)]: ⟦n⟧ ⊆ ⟦c⟧ *)
  concats : concat list;  (** in creation order; operands precede results *)
}

(** Build the graph by recursive descent of each constraint's
    derivation (the collecting semantics of Fig. 5). *)
val of_system : System.t -> t

(** The {e CI-groups} of §3.4.3: connected components of the relation
    "joined by a ∘-edge". Nodes not touching any ∘-edge form singleton
    groups. Each group lists its member nodes. *)
val ci_groups : t -> node list list

(** Graphviz rendering (solid arrows: ∘-edge pairs; dashed: ⊆).
    [highlight] nodes render filled — [dprle analyze --dot] marks the
    goal cone this way. *)
val to_dot : ?highlight:node list -> t -> string
