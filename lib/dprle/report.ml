type concat_census = {
  triple : Depgraph.concat;
  cuts : int;
}

type t = {
  nodes : int;
  subset_edges : int;
  concat_pairs : int;
  groups : int;
  singleton_vars : int;
  cut_candidates : int;
  max_group_combinations : int;
  solutions : int;
  automata : Automata.Stats.snapshot;
  census : concat_census list;
}

let pp_census ppf census =
  List.iter
    (fun { triple = { Depgraph.left; right; result }; cuts } ->
      Fmt.pf ppf "@ %a = %a ∘ %a: %d ε-cut(s)" Depgraph.pp_node result
        Depgraph.pp_node left Depgraph.pp_node right cuts)
    census

let pp ppf r =
  Fmt.pf ppf
    "@[<v>nodes: %d (⊆-edges %d, ∘-pairs %d)@ CI-groups: %d (+%d singleton \
     variables)@ ε-cut candidates: %d (largest group: %d combinations)@ \
     solutions: %d@ automata: %a"
    r.nodes r.subset_edges r.concat_pairs r.groups r.singleton_vars
    r.cut_candidates r.max_group_combinations r.solutions Automata.Stats.pp
    r.automata;
  if r.census <> [] then
    Fmt.pf ppf "@ @[<v2>ε-cuts per concatenation (§3.5 disjunction width):%a@]"
      pp_census r.census;
  Fmt.pf ppf "@]"

let solve_with_report ?(config = Solver.Config.default) (g : Depgraph.t) =
  let measured () =
    let census = Solver.cut_census g in
    let groups = Depgraph.ci_groups g in
    let concat_groups, singles =
      List.partition (fun members -> List.length members > 1) groups
    in
    let singleton_vars =
      List.length
        (List.filter (function [ Depgraph.Var _ ] -> true | _ -> false) singles)
    in
    (* combinations multiply within a group; find each group's product *)
    let triple_group tid =
      let { Depgraph.result; _ } = List.nth g.concats tid in
      List.find_opt (List.exists (Depgraph.node_equal result)) concat_groups
    in
    let group_products = Hashtbl.create 8 in
    List.iter
      (fun (tid, cuts) ->
        match triple_group tid with
        | None -> ()
        | Some members ->
            let key = List.hd members in
            let current = Option.value (Hashtbl.find_opt group_products key) ~default:1 in
            Hashtbl.replace group_products key (current * max 1 cuts))
      census;
    let max_group_combinations =
      Hashtbl.fold (fun _ v acc -> max v acc) group_products 0
    in
    (* Diff-based scoping: nested [solve_with_report] calls (or any
       concurrent bracketing) each hold their own [before] snapshot, so
       they report independent counts — unlike the historical global
       [Stats.reset] bracketing, which a nested call would clobber. *)
    let before = Automata.Stats.absolute () in
    (* The whole measured pass (census + solve) already runs under
       [config.budget] via [with_budget] below; pass the solver an
       unlimited budget so the two do not stack. An [Error] here can
       only be the ambient outer budget firing mid-solve — re-raise it
       so the boundary below reports it uniformly. *)
    let outcome =
      match
        Solver.run_graph
          { config with budget = Automata.Budget.unlimited }
          g
      with
      | Ok outcome -> outcome
      | Error (Solver.Error.Budget_exceeded stop) ->
          raise (Automata.Budget.Exceeded stop)
    in
    let automata = Automata.Stats.diff (Automata.Stats.absolute ()) before in
    let solutions =
      match outcome with Solver.Sat l -> List.length l | Solver.Unsat _ -> 0
    in
    ( outcome,
      {
        nodes = List.length g.nodes;
        subset_edges = List.length g.subsets;
        concat_pairs = List.length g.concats;
        groups = List.length concat_groups;
        singleton_vars;
        cut_candidates = List.fold_left (fun acc (_, c) -> acc + c) 0 census;
        max_group_combinations;
        solutions;
        automata;
        census =
          List.map
            (fun (tid, cuts) -> { triple = List.nth g.concats tid; cuts })
            census;
      } )
  in
  try Ok (Automata.Budget.with_budget config.budget measured)
  with Automata.Budget.Exceeded stop ->
    Error (Solver.Error.Budget_exceeded stop)
