(** Per-solve instrumentation, for benches and the CLI's [--stats].

    Complements {!Automata.Stats} (low-level states visited) with the
    solver-level quantities the paper's §3.5 reasons about: how many
    CI-groups and concatenations a system has, how many ε-cut
    candidates each concatenation admits, and how many combinations
    were explored versus admitted. *)

(** One concatenation triple of the dependency graph together with its
    ε-cut candidate count — the per-concatenation disjunction width of
    §3.5. *)
type concat_census = {
  triple : Depgraph.concat;
  cuts : int;
}

type t = {
  nodes : int;  (** dependency-graph vertices *)
  subset_edges : int;
  concat_pairs : int;
  groups : int;  (** CI-groups with at least one concatenation *)
  singleton_vars : int;
  cut_candidates : int;  (** ε-cuts summed over all concatenations *)
  max_group_combinations : int;
      (** largest per-group product of cut candidates *)
  solutions : int;  (** disjuncts returned (after Maximal pruning) *)
  automata : Automata.Stats.snapshot;
      (** NFA construction work done during this solve (snapshot diff) *)
  census : concat_census list;
      (** per-concatenation ε-cut table, in triple creation order *)
}

val pp : t Fmt.t

(** Solve and measure in one pass under [config] (default
    {!Solver.Config.default}). Returns the outcome together with the
    report, or the solver error if [config]'s budget ran out — the
    budget covers the whole measured pass, census included.
    Measurement is diff-based over {!Automata.Stats} snapshots, so
    nested or interleaved calls report independent counts. *)
val solve_with_report :
  ?config:Solver.Config.t ->
  Depgraph.t ->
  (Solver.outcome * t, Solver.Error.t) result
