module Nfa = Automata.Nfa
module Dfa = Automata.Dfa
module Ops = Automata.Ops
module Store = Automata.Store
module Query = Automata.Query

module IS = Set.Make (Int)

(* States of [dfa] reachable from its start by words of [lang]:
   breadth-first search over the product, collecting the DFA
   component at the NFA's final state. *)
let reach_set (dfa : Dfa.t) (lang : Nfa.t) =
  let visited = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let push pair =
    if not (Hashtbl.mem visited pair) then begin
      Hashtbl.add visited pair ();
      Queue.add pair worklist
    end
  in
  push (Nfa.start lang, Dfa.start dfa);
  let acc = ref IS.empty in
  while not (Queue.is_empty worklist) do
    let n, d = Queue.take worklist in
    if n = Nfa.final lang then acc := IS.add d !acc;
    List.iter (fun n' -> push (n', d)) (Nfa.eps_transitions_from lang n);
    List.iter
      (fun (cs, n') ->
        List.iter
          (fun (cs', d') ->
            if Charset.intersects cs cs' then push (n', d'))
          (Dfa.transitions dfa d))
      (Nfa.char_transitions lang n)
  done;
  !acc

(* Universal-acceptance subset construction: from the start set [t0],
   track the image of the set under each input; accept while the
   whole set stays within [good]. *)
let universal_subset_machine (dfa : Dfa.t) t0 good =
  let b = Nfa.Builder.create () in
  let final = Nfa.Builder.add_state b in
  let table = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let materialize set =
    let key = IS.elements set in
    match Hashtbl.find_opt table key with
    | Some q -> q
    | None ->
        let q = Nfa.Builder.add_state b in
        Hashtbl.add table key q;
        if IS.subset set good then Nfa.Builder.add_eps b q final;
        Queue.add (set, q) worklist;
        q
  in
  let start = materialize t0 in
  (* Note: a set may leave [good] and re-enter (the image maps states,
     it does not accumulate them), so every reachable set must be
     expanded; only the final set's inclusion in [good] matters. *)
  while not (Queue.is_empty worklist) do
    let set, src = Queue.take worklist in
    let labels =
      IS.fold (fun q acc -> List.map fst (Dfa.transitions dfa q) @ acc) set []
    in
    List.iter
      (fun block ->
        let c = Charset.choose block in
        let image =
          IS.fold
            (fun q acc ->
              match Dfa.step dfa q c with
              | Some q' -> IS.add q' acc
              | None -> acc (* complete DFA: unreachable *))
            set IS.empty
        in
        Nfa.Builder.add_trans b src block (materialize image))
      (Charset.refine labels)
  done;
  Nfa.Builder.finish b ~start ~final

let max_middle_uncached ~pre ~post ~upper =
  if Nfa.is_empty_lang pre || Nfa.is_empty_lang post then Nfa.sigma_star
  else begin
    (* complement-free: complete the DFA so every word has a run *)
    let dfa = Dfa.complement (Dfa.complement (Dfa.of_nfa upper)) in
    let t0 = reach_set dfa pre in
    if IS.is_empty t0 then Nfa.sigma_star
    else begin
      let post_dfa = Dfa.of_nfa post in
      let as_nfa = Dfa.to_nfa dfa in
      let good =
        List.fold_left
          (fun acc q ->
            (* is post ⊆ L(dfa started at q)? *)
            let from_q = Nfa.induce_from_start as_nfa q in
            if Dfa.subset post_dfa (Dfa.of_nfa from_q) then IS.add q acc else acc)
          IS.empty
          (List.init (Dfa.num_states dfa) Fun.id)
      in
      universal_subset_machine dfa t0 good
    end
  end

(* The maximalization loop re-poses the same (pre, post, upper)
   residual once per occurrence per iteration, and the solver's
   preprocessing poses it again for every alternative sharing a
   constant run — cache the whole construction on the interned
   operand triple. *)
let max_middle_memo : Nfa.t Store.Memo.t =
  Store.Memo.create ~op:"residual.max_middle"

let max_middle ~pre ~post ~upper =
  if not (Store.enabled ()) then max_middle_uncached ~pre ~post ~upper
  else
    (* force-keyed: tiny operands (a one-char prefix, a 2-state
       attack language) would otherwise come back unkeyed with a
       fresh id per call, turning this memo into permanent misses *)
    let hp = Store.intern_keyed pre
    and hq = Store.intern_keyed post
    and hu = Store.intern_keyed upper in
    Store.Memo.find_or_compute max_middle_memo
      ~key:[ Store.id hp; Store.id hq; Store.id hu ]
      (fun () ->
        Store.canon
          (max_middle_uncached ~pre:(Store.nfa hp) ~post:(Store.nfa hq)
             ~upper:(Store.nfa hu)))

(* Flatten a constraint's left-hand side into its leaves, then compute
   for each occurrence of [v] the concatenation of the leaf languages
   before and after it under the current assignment. *)
let leaves expr =
  let rec go acc = function
    | System.Concat (a, b) -> go (go acc a) b
    | leaf -> leaf :: acc
  in
  List.rev (go [] expr)

(* Constants resolve to the system's shared handles; assignment
   values are interned on the spot (cheap relative to the residual
   they feed, and identical values across occurrences collapse). *)
let leaf_handle system a = function
  | System.Const c -> System.const_handle system c
  | System.Var v -> Store.intern (Assignment.find a v)
  | System.Concat _ | System.Union _ -> assert false

(* Bounds from one union-free alternative of the left-hand side. *)
let alternative_bounds system a v upper alternative =
  let ls = leaves alternative in
  let arr = Array.of_list ls in
  let n = Array.length arr in
  let rec collect i acc =
    if i >= n then acc
    else if arr.(i) = System.Var v then begin
      let side lo hi =
        let rec build j m =
          if j > hi then m
          else build (j + 1) (Store.concat_lang m (leaf_handle system a arr.(j)))
        in
        build lo (Store.intern Nfa.epsilon_lang)
      in
      let pre = Store.nfa (side 0 (i - 1)) in
      let post = Store.nfa (side (i + 1) (n - 1)) in
      collect (i + 1) (max_middle ~pre ~post ~upper :: acc)
    end
    else collect (i + 1) acc
  in
  collect 0 []

(* Every union-free alternative of [e ⊆ c] is a conjunct, so each
   alternative containing [v] contributes its bounds. *)
let occurrence_bounds system a v { System.lhs; rhs } =
  let upper = System.const_lang system rhs in
  List.concat_map
    (alternative_bounds system a v upper)
    (System.expand_unions lhs)

let maximize_var system a v =
  let bounds =
    List.concat_map (occurrence_bounds system a v) (System.constraints system)
  in
  match bounds with
  | [] -> Assignment.find a v (* unconstrained: leave as-is *)
  | first :: rest ->
      Store.minimized
        (List.fold_left
           (fun acc b -> Store.inter_lang acc (Store.intern b))
           (Store.intern first) rest)

(* Local satisfaction check (kept here rather than in Validate to
   avoid a dependency cycle). *)
let satisfies system a =
  let rec expr_handle = function
    | System.Const c -> System.const_handle system c
    | System.Var v -> Store.intern (Assignment.find a v)
    | System.Concat (e1, e2) -> Store.concat_lang (expr_handle e1) (expr_handle e2)
    | System.Union (e1, e2) -> Store.union_lang (expr_handle e1) (expr_handle e2)
  in
  List.for_all
    (fun { System.lhs; rhs } ->
      Query.subset (expr_handle lhs) (System.const_handle system rhs))
    (System.constraints system)

let maximize system a =
  let vars = Assignment.variables a in
  let rec loop a iterations =
    let a', grew =
      List.fold_left
        (fun (a, grew) v ->
          let current = Assignment.find a v in
          let bigger = maximize_var system a v in
          if Query.subset (Store.intern bigger) (Store.intern current) then
            (a, grew)
          else begin
            let candidate =
              Assignment.of_list
                ((v, Ops.union_lang current bigger)
                :: List.remove_assoc v (Assignment.bindings a))
            in
            (* When [v] occurs more than once in a constraint, the
               occurrence bounds were computed against the old value
               of the other occurrences; re-check before accepting. *)
            if satisfies system candidate then (candidate, true) else (a, grew)
          end)
        (a, false) vars
    in
    (* the lattice of possible values is finite, but guard anyway *)
    if grew && iterations < 16 then loop a' (iterations + 1) else a'
  in
  let result = loop a 0 in
  Assignment.of_list
    (List.map
       (fun (v, lang) -> (v, Store.minimized (Store.intern lang)))
       (Assignment.bindings result))
