let string_literal s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\"\""
      | c when Char.code c >= 32 && Char.code c <= 126 -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\u{%x}" (Char.code c)))
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec re_term : Regex.Ast.t -> string = function
  | Regex.Ast.Empty -> "re.none"
  | Regex.Ast.Epsilon -> "(str.to_re \"\")"
  | Regex.Ast.Chars cs ->
      if Charset.is_full cs then "re.allchar"
      else
        let ranges =
          List.map
            (fun (lo, hi) ->
              if lo = hi then
                Printf.sprintf "(str.to_re %s)"
                  (string_literal (String.make 1 (Char.chr lo)))
              else
                Printf.sprintf "(re.range %s %s)"
                  (string_literal (String.make 1 (Char.chr lo)))
                  (string_literal (String.make 1 (Char.chr hi))))
            (Charset.ranges cs)
        in
        (match ranges with
        | [] -> "re.none"
        | [ one ] -> one
        | many -> Printf.sprintf "(re.union %s)" (String.concat " " many))
  | Regex.Ast.Seq (a, b) -> Printf.sprintf "(re.++ %s %s)" (re_term a) (re_term b)
  | Regex.Ast.Alt (a, b) -> Printf.sprintf "(re.union %s %s)" (re_term a) (re_term b)
  | Regex.Ast.Star a -> Printf.sprintf "(re.* %s)" (re_term a)
  | Regex.Ast.Plus a -> Printf.sprintf "(re.+ %s)" (re_term a)
  | Regex.Ast.Opt a -> Printf.sprintf "(re.opt %s)" (re_term a)
  | Regex.Ast.Repeat (a, lo, Some hi) ->
      Printf.sprintf "((_ re.loop %d %d) %s)" lo hi (re_term a)
  | Regex.Ast.Repeat (a, lo, None) ->
      Printf.sprintf "(re.++ ((_ re.loop %d %d) %s) (re.* %s))" lo lo (re_term a)
        (re_term a)

let lang_re_term lang = re_term (Regex.Simplify.simplify (Regex.State_elim.to_regex lang))

(* sanitize variable names for SMT symbols (~ is fine in |…| quoting) *)
let symbol v =
  if String.for_all (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false) v
  then v
  else "|" ^ v ^ "|"

let singleton_word lang =
  match Automata.Nfa.shortest_word lang with
  | Some w when
      Automata.Query.equal (Automata.Store.intern lang) (Automata.Store.of_word w)
    -> Some w
  | _ -> None

let of_system system =
  let lines = ref [] in
  let out fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  List.iter (fun v -> out "(declare-const %s String)" (symbol v)) (System.variables system);
  let quantified = ref false in
  let fresh_u = ref 0 in
  let constraint_assertions { System.lhs; rhs } =
    let upper = lang_re_term (System.const_lang system rhs) in
    List.iter
      (fun alternative ->
        (* leaves of the union-free alternative *)
        let rec leaves acc = function
          | System.Concat (a, b) -> leaves (leaves acc a) b
          | leaf -> leaf :: acc
        in
        let ls = List.rev (leaves [] alternative) in
        (* multi-word constants become universally quantified words *)
        let bound = ref [] in
        let terms =
          List.map
            (fun leaf ->
              match leaf with
              | System.Var v -> symbol v
              | System.Const c -> (
                  let lang = System.const_lang system c in
                  match singleton_word lang with
                  | Some w -> string_literal w
                  | None ->
                      quantified := true;
                      let u = Printf.sprintf "u%d" !fresh_u in
                      incr fresh_u;
                      bound := (u, lang_re_term lang) :: !bound;
                      u)
              | System.Concat _ | System.Union _ -> assert false)
            ls
        in
        let concat =
          match terms with
          | [] -> string_literal ""
          | [ one ] -> one
          | many -> Printf.sprintf "(str.++ %s)" (String.concat " " many)
        in
        let body = Printf.sprintf "(str.in_re %s %s)" concat upper in
        match !bound with
        | [] -> out "(assert %s)" body
        | bindings ->
            let decls =
              String.concat " "
                (List.map (fun (u, _) -> Printf.sprintf "(%s String)" u) bindings)
            in
            let guards =
              String.concat " "
                (List.map
                   (fun (u, re) -> Printf.sprintf "(str.in_re %s %s)" u re)
                   bindings)
            in
            out "(assert (forall (%s) (=> (and %s true) %s)))" decls guards body)
      (System.expand_unions lhs)
  in
  List.iter constraint_assertions (System.constraints system);
  out "(check-sat)";
  out "(get-model)";
  let header =
    [
      (if !quantified then "(set-logic ALL)" else "(set-logic QF_S)");
      "(set-info :source |exported by dprle (Hooimeijer & Weimer, PLDI 2009 \
       reproduction)|)";
    ]
  in
  String.concat "\n" (header @ List.rev !lines) ^ "\n"
