module Nfa = Automata.Nfa
module Query = Automata.Query
module Ops = Automata.Ops
module Store = Automata.Store
module Budget = Automata.Budget

let log = Logs.Src.create "dprle.solver" ~doc:"RMA constraint solver"

module Log = (val Logs.src_log log)
module Span = Telemetry.Span

(* Solver-level metrics, alongside the construction-level counters of
   {!Automata.Stats} in the default registry. *)
let c_solves = Telemetry.Metrics.Counter.make "solver.solves"

let h_group_combinations =
  Telemetry.Metrics.Histogram.make "solver.group_combinations"

(* One timer series per solve phase, nested like the spans, so
   `dprle profile` can apportion solver self-time without tracing. *)
let t_phase = Telemetry.Metrics.Timer.make "solver.phase"
let timed name f = Telemetry.Metrics.Timer.time t_phase ~labels:[ ("phase", name) ] f

(* Structured unsatisfiability. Every constructor renders to exactly
   the diagnostic string the pre-redesign [Unsat of string] carried,
   so CLI output (and the cram tests pinning it) is unchanged. *)
type unsat_reason =
  | Const_expr_violation
  | Const_violation of string
  | No_cut of int
  | All_combinations_empty
  | Empty_variable of string
  | Bound_empty of string

let pp_unsat_reason ppf = function
  | Const_expr_violation ->
      Fmt.string ppf "constant expression violates its subset constraint"
  | Const_violation name ->
      Fmt.pf ppf "constant %s violates a subset constraint" name
  | No_cut tid ->
      Fmt.pf ppf "concatenation %d admits no ε-cut: its language is empty" tid
  | All_combinations_empty ->
      Fmt.string ppf
        "every ε-cut combination of a CI-group forces an empty language"
  | Empty_variable v ->
      Fmt.pf ppf "variable %s is constrained to the empty language" v
  | Bound_empty alt ->
      Fmt.pf ppf
        "bounds propagation forces concatenation %s to the empty language" alt

let unsat_message reason = Fmt.str "%a" pp_unsat_reason reason

type refutation = { reason : unsat_reason; core : System.constr list }

type outcome = Sat of Assignment.t list | Unsat of refutation

module Config = struct
  type t = {
    max_solutions : int;
    combination_limit : int;
    budget : Budget.t;
    analyze : bool;
    goals : string list;
  }

  let default =
    {
      max_solutions = 256;
      combination_limit = 4096;
      budget = Budget.unlimited;
      analyze = true;
      goals = [];
    }

  let make ?(max_solutions = 256) ?(combination_limit = 4096)
      ?(budget = Budget.unlimited) ?(analyze = true) ?(goals = []) () =
    { max_solutions; combination_limit; budget; analyze; goals }
end

module Error = struct
  type t = Budget_exceeded of Budget.stop

  let pp ppf = function
    | Budget_exceeded stop -> Fmt.pf ppf "budget exceeded: %a" Budget.pp_stop stop

  let to_string e = Fmt.str "%a" pp e
end

module NMap = Map.Make (struct
  type t = Depgraph.node

  let compare = Depgraph.node_compare
end)

module NSet = Set.Make (struct
  type t = Depgraph.node

  let compare = Depgraph.node_compare
end)

(* ------------------------------------------------------------------ *)
(* Slices: every group node's solution is a sub-machine of a root
   machine, delimited by endpoints that are either fixed (the root's
   start/final) or symbolic references to the ε-cut chosen for a
   concatenation. This is the paper's shared-solution-representation
   invariant: one machine per constraint tree, nodes as views. *)

type endpoint =
  | Root_start
  | Root_final
  | Cut_source of int  (** source state of triple [i]'s chosen ε-cut *)
  | Cut_target of int  (** target state of triple [i]'s chosen ε-cut *)

type slice = { entry : endpoint; exit_ : endpoint }

(* A root machine under construction. [cuts] maps each concatenation
   (by index in [Depgraph.concats]) whose bridge lives in this machine
   to its candidate ε-cut state pairs. [slices] lists the group nodes
   whose solutions are views of this machine. *)
type record = {
  nfa : Nfa.t;
  cuts : (int * (Nfa.state * Nfa.state) list) list;
  slices : (Depgraph.node * slice) list;
}

exception Unsatisfiable of unsat_reason

let unsat reason = raise (Unsatisfiable reason)

(* ------------------------------------------------------------------ *)
(* Constant-operand preprocessing.

   ε-cut slicing assigns each *variable* operand exactly the language
   the chosen cut witnesses, so any combination of values drawn from a
   solution satisfies the constraint. A *constant* operand is not
   assigned: the constraint quantifies over its whole language, while
   a cut only witnesses the words reaching that one cut state. For a
   singleton constant (a string literal — the paper's running example
   and every system the symbolic executor emits) the two coincide; for
   a multi-word constant they do not, and raw slicing would be
   unsound (e.g. [a* ∘ v ⊆ (ab)*] must force [v = ∅]).

   Exact repair for the common shapes: a maximal leading or trailing
   run of constant leaves containing a multi-word constant is folded
   into the right-hand side with the universal residual
   [{w | pre·w·post ⊆ c}] ({!Residual.max_middle}) — an equivalence,
   not an approximation. Constant-only alternatives are decided by
   inclusion outright. The remaining case — a multi-word constant
   {e between} two variables — keeps its slicing but flags the group
   so every ε-cut combination is verified against the constraints
   before being admitted (sound, possibly incomplete; noted in
   DESIGN.md). *)

(* Memoized on the handle id: the answer survives across disjuncts,
   constraint files, and repeated solves of shared constants. *)
let singleton_memo : bool Store.Memo.t = Store.Memo.create ~op:"is_singleton"

let is_singleton_handle h =
  Store.Memo.find_or_compute singleton_memo ~key:[ Store.id h ] (fun () ->
      match Nfa.shortest_word (Store.nfa h) with
      | None -> false
      (* [w] is drawn from the language, so {w} ⊆ L always holds; one
         inclusion check decides equality. *)
      | Some w -> Query.subset h (Store.of_word w))

let leaves expr =
  let rec go acc = function
    | System.Concat (a, b) -> go (go acc a) b
    | leaf -> leaf :: acc
  in
  List.rev (go [] expr)

let preprocess system =
  let const_handle = System.const_handle system in
  let is_singleton name = is_singleton_handle (const_handle name) in
  let fresh = ref 0 in
  let extra = ref [] in
  let residual_const ~pre ~post ~upper =
    let name = Printf.sprintf "#res%d" !fresh in
    incr fresh;
    extra :=
      (name,
        Residual.max_middle ~pre:(Store.nfa pre) ~post:(Store.nfa post)
          ~upper:(Store.nfa upper))
      :: !extra;
    name
  in
  let run_lang run =
    List.fold_left
      (fun acc leaf ->
        match leaf with
        | System.Const c -> Store.concat_lang acc (const_handle c)
        | _ -> assert false)
      (Store.intern Nfa.epsilon_lang) run
  in
  let needs_fold run =
    run <> []
    && List.exists
         (function System.Const c -> not (is_singleton c) | _ -> false)
         run
  in
  let rebuild = function
    | [] -> None
    | first :: rest ->
        Some (List.fold_left (fun acc l -> System.Concat (acc, l)) first rest)
  in
  let transform { System.lhs; rhs } =
    List.filter_map
      (fun alternative ->
        let ls = leaves alternative in
        let is_const = function System.Const _ -> true | _ -> false in
        let rec split_run acc = function
          | leaf :: rest when is_const leaf -> split_run (leaf :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let pre_run, rest = split_run [] ls in
        let post_run_rev, mid_rev = split_run [] (List.rev rest) in
        let post_run = List.rev post_run_rev in
        let mid = List.rev mid_rev in
        if mid = [] then begin
          (* constant-only alternative: decide inclusion now *)
          if not (Query.subset (run_lang pre_run) (const_handle rhs)) then
            unsat Const_expr_violation;
          None
        end
        else begin
          let fold_pre = needs_fold pre_run and fold_post = needs_fold post_run in
          if not (fold_pre || fold_post) then
            Option.map (fun lhs -> { System.lhs; rhs }) (rebuild ls)
          else begin
            let eps = Store.intern Nfa.epsilon_lang in
            let pre = if fold_pre then run_lang pre_run else eps in
            let post = if fold_post then run_lang post_run else eps in
            let rhs' = residual_const ~pre ~post ~upper:(const_handle rhs) in
            let kept =
              (if fold_pre then [] else pre_run)
              @ mid
              @ if fold_post then [] else post_run
            in
            Option.map (fun lhs -> { System.lhs; rhs = rhs' }) (rebuild kept)
          end
        end)
      (System.expand_unions lhs)
  in
  let constraints = List.concat_map transform (System.constraints system) in
  System.make_exn
    ~consts:(System.constants system @ List.rev !extra)
    ~constraints

(* After preprocessing, the only inexact spots are concatenations with
   a non-singleton constant operand (necessarily between variables). *)
let group_needs_verification (g : Depgraph.t) members =
  let member_set = NSet.of_list members in
  List.exists
    (fun { Depgraph.left; right; result } ->
      NSet.mem result member_set
      && List.exists
           (function
             | Depgraph.Const c ->
                 not (is_singleton_handle (System.const_handle g.system c))
             | _ -> false)
           [ left; right ])
    g.concats

(* ------------------------------------------------------------------ *)
(* Base languages: the paper's initial node-to-NFA mapping (Σ* for
   variables, ⟦c⟧ for constants) with every inbound subset edge
   applied up front — invariant 1 of §3.4.3, subset constraints
   before concatenations. *)

(* The base map carries store handles, not raw machines: the inbound
   intersections and the constant-vs-constant inclusions below are the
   first places repeated constants pay off, and downstream consumers
   (group solving, the singleton-group fast path) reuse the same
   handles for their own cached queries. *)
let base_languages (g : Depgraph.t) =
  let const_handle c = System.const_handle g.system c in
  let inbound n =
    List.filter_map
      (fun (c, n') ->
        if Depgraph.node_equal n n' then
          match c with
          | Depgraph.Const name -> Some (const_handle name)
          | _ -> assert false (* RHS of ⊆ is a constant by the grammar *)
        else None)
      g.subsets
  in
  List.fold_left
    (fun acc n ->
      let h =
        match n with
        | Depgraph.Const name ->
            let own = const_handle name in
            (* constant-vs-constant constraints are decided here *)
            List.iter
              (fun upper ->
                if not (Query.subset own upper) then
                  unsat (Const_violation (Fmt.str "%a" Depgraph.pp_node n)))
              (inbound n);
            own
        | Depgraph.Var _ | Depgraph.Tmp _ -> (
            match inbound n with
            | [] -> Store.intern Nfa.sigma_star
            | first :: rest -> List.fold_left Store.inter_lang first rest)
      in
      NMap.add n h acc)
    NMap.empty g.nodes

(* ------------------------------------------------------------------ *)
(* Machine construction: process the concatenations in creation order
   (operands precede results), building for each the machine
   (left ∘ right) ∩ base[result] and re-rooting any structure already
   accumulated in tmp operands into the new machine. *)

(* Index the product states by their concatenation-machine component:
   one concat state maps to the product states (and partner base
   states) it survived in. *)
let index_product (prod : Ops.product_result) =
  let table : (Nfa.state, (Nfa.state * Nfa.state) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun q ->
      let p, d = prod.pair_of q in
      let existing = Option.value (Hashtbl.find_opt table p) ~default:[] in
      Hashtbl.replace table p ((q, d) :: existing))
    (Nfa.states prod.machine);
  fun p -> Option.value (Hashtbl.find_opt table p) ~default:[]

(* Lift the ε-cut pairs of an embedded machine into the product: each
   old cut (qa, qb) survives as (qa·d, qb·d) for every base state d
   under which qa is still reachable. This is where disjunctive
   candidates multiply — the |M3| factor of the paper's §3.5 bound. *)
let lift_cuts ~embed ~(prod : Ops.product_result) ~index pairs =
  List.concat_map
    (fun (qa, qb) ->
      List.filter_map
        (fun (q, d) ->
          match prod.state_of_pair (embed qb, d) with
          | Some qb' when Nfa.has_eps_edge prod.machine q qb' -> Some (q, qb')
          | _ -> None)
        (index (embed qa)))
    pairs

(* Re-root a record that becomes the [side] operand of a new
   concatenation: the closed end stays a root endpoint, the open end
   (the one the bridge extends) becomes a symbolic cut reference. *)
let relocate_slices ~triple_id ~side slices =
  let map_endpoint ep =
    match (ep, side) with
    | Root_final, `Left -> Cut_source triple_id
    | Root_start, `Right -> Cut_target triple_id
    | other, _ -> other
  in
  List.map
    (fun (n, { entry; exit_ }) ->
      (n, { entry = map_endpoint entry; exit_ = map_endpoint exit_ }))
    slices

let build_machines (g : Depgraph.t) base =
  let records : (int, record) Hashtbl.t = Hashtbl.create 16 in
  (* tmp node id → record index *)
  let record_of_tmp : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_record = ref 0 in
  let consumed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let operand n =
    match n with
    | Depgraph.Tmp id ->
        let rid = Hashtbl.find record_of_tmp id in
        Hashtbl.replace consumed rid ();
        let r = Hashtbl.find records rid in
        (r.nfa, Some r)
    (* raw machines from here on: the concat/intersect provenance
       below slices the result by state identity, which an interned
       representative would not preserve *)
    | _ -> (Store.nfa (NMap.find n base), None)
  in
  List.iteri
    (fun triple_id { Depgraph.left; right; result } ->
      let left_nfa, left_rec = operand left in
      let right_nfa, right_rec = operand right in
      let cat = Ops.concat left_nfa right_nfa in
      let prod = Ops.intersect cat.machine (Store.nfa (NMap.find result base)) in
      let index = index_product prod in
      (* this triple's own ε-cut candidates: images of the bridge *)
      let bridge_src, bridge_dst = cat.bridge in
      let own_cuts =
        lift_cuts ~embed:Fun.id ~prod ~index [ (bridge_src, bridge_dst) ]
      in
      let lifted_cuts side_rec embed =
        match side_rec with
        | None -> []
        | Some r ->
            List.map
              (fun (tid, pairs) -> (tid, lift_cuts ~embed ~prod ~index pairs))
              r.cuts
      in
      let lifted_slices side_rec side =
        match side_rec with
        | None -> []
        | Some r -> relocate_slices ~triple_id ~side r.slices
      in
      (* fresh slices for plain-variable operands; constants carry no
         solution and tmp operands already have their slice *)
      let operand_slice n side =
        match n with
        | Depgraph.Var _ ->
            let slice =
              match side with
              | `Left -> { entry = Root_start; exit_ = Cut_source triple_id }
              | `Right -> { entry = Cut_target triple_id; exit_ = Root_final }
            in
            [ (n, slice) ]
        | _ -> []
      in
      let record =
        {
          nfa = prod.machine;
          cuts =
            ((triple_id, own_cuts) :: lifted_cuts left_rec cat.left_embed)
            @ lifted_cuts right_rec cat.right_embed;
          slices =
            (result, { entry = Root_start; exit_ = Root_final })
            :: operand_slice left `Left
            @ operand_slice right `Right
            @ lifted_slices left_rec `Left
            @ lifted_slices right_rec `Right;
        }
      in
      let rid = !next_record in
      incr next_record;
      Hashtbl.add records rid record;
      (match result with
      | Depgraph.Tmp id -> Hashtbl.add record_of_tmp id rid
      | _ -> assert false);
      ())
    g.concats;
  (* roots: records never consumed as an operand *)
  Hashtbl.fold
    (fun rid r acc -> if Hashtbl.mem consumed rid then acc else r :: acc)
    records []

(* ------------------------------------------------------------------ *)
(* Solving one CI-group: enumerate combinations of one ε-cut per
   concatenation; each combination induces, for every node, the
   intersection of its slices; reject combinations that force an
   empty language; drop pointwise-subsumed assignments (Maximal). *)

let resolve_endpoint (nfa : Nfa.t) choice = function
  | Root_start -> Nfa.start nfa
  | Root_final -> Nfa.final nfa
  | Cut_source tid -> fst (List.assoc tid choice)
  | Cut_target tid -> snd (List.assoc tid choice)

let slice_language (r : record) choice { entry; exit_ } =
  let m = Nfa.induce_from_start r.nfa (resolve_endpoint r.nfa choice entry) in
  Nfa.induce_from_final m (resolve_endpoint r.nfa choice exit_)

(* Lazy cartesian product of the per-concatenation cut candidates; the
   paper's §3.5 notes that the first solution can be produced without
   enumerating the rest, so combinations are only materialized as
   consumed. *)
let rec cartesian = function
  | [] -> Seq.return []
  | (tid, candidates) :: rest ->
      let tails = cartesian rest in
      Seq.concat_map
        (fun cut -> Seq.map (fun tail -> (tid, cut) :: tail) tails)
        (List.to_seq candidates)

let solve_group ~combination_limit ~raw_cap ~verify (roots : record list) base
    (members : NSet.t) =
  Span.with_span ~name:"gci" ~attrs:[ ("group_size", `Int (NSet.cardinal members)) ]
  @@ fun () ->
  timed "gci" @@ fun () ->
  (* all concatenations of this group, with their candidates *)
  let cut_menu = List.concat_map (fun r -> r.cuts) roots in
  Span.add_attr "concats" (`Int (List.length cut_menu));
  Span.add_attr "cut_census"
    (`String
       (String.concat ","
          (List.map
             (fun (tid, cs) -> Printf.sprintf "t%d:%d" tid (List.length cs))
             cut_menu)));
  List.iter
    (fun (tid, candidates) ->
      if candidates = [] then unsat (No_cut tid))
    cut_menu;
  let total =
    List.fold_left (fun acc (_, c) -> acc * List.length c) 1 cut_menu
  in
  Span.add_attr "combinations" (`Int total);
  Telemetry.Metrics.Histogram.observe h_group_combinations (float_of_int total);
  if total > combination_limit then
    Log.warn (fun m ->
        m
          "exploring %d of %d ε-cut combinations (the exponential worst case \
           of §3.5); the solution list may be incomplete"
          combination_limit total);
  let solutions = ref [] in
  let found = ref 0 in
  Seq.iter
    (fun choice ->
      (* a root's cuts are disjoint from other roots'; each root only
         needs its own sub-choice, which [List.assoc] finds in the
         full choice list *)
      let exception Dead in
      match
        NSet.fold
          (fun n acc ->
            let slices =
              List.concat_map
                (fun r ->
                  List.filter_map
                    (fun (n', s) ->
                      if Depgraph.node_equal n n' then
                        Some (slice_language r choice s)
                      else None)
                    r.slices)
                roots
            in
            match n with
            | Depgraph.Const _ -> acc
            | Depgraph.Var _ | Depgraph.Tmp _ ->
                (* slices are interned: distinct ε-cut combinations
                   often induce identical slice languages, so their
                   intersections, emptiness checks, and compactions
                   all answer from cache after the first one *)
                let h =
                  match slices with
                  | [] -> NMap.find n base
                  | first :: rest ->
                      List.fold_left Store.inter_lang (Store.intern first)
                        (List.map Store.intern rest)
                in
                if Query.is_empty h then raise Dead
                else if match n with Depgraph.Var _ -> true | _ -> false then
                  (n, h) :: acc
                else acc)
          members []
      with
      | bindings ->
          let assignment =
            Assignment.of_list
              (List.map
                 (fun (n, h) ->
                   match n with
                   | Depgraph.Var v -> (v, Store.minimized h)
                   | _ -> assert false)
                 bindings)
          in
          (* groups with a multi-word constant operand: slicing is not
             exact there, so admit only verified combinations *)
          if match verify with None -> true | Some check -> check assignment
          then begin
            incr found;
            solutions := assignment :: !solutions
          end
      | exception Dead -> ())
    (Seq.take combination_limit
       (Seq.take_while (fun _ -> !found < raw_cap) (cartesian cut_menu)));
  (* Early pruning: drop assignments pointwise contained in another
     (the final Maximal filter runs after maximalization in [solve]). *)
  let unsubsumed = Assignment.prune_subsumed (List.rev !solutions) in
  Span.add_attr "solutions" (`Int (List.length unsubsumed));
  if unsubsumed = [] then unsat All_combinations_empty;
  unsubsumed

(* ------------------------------------------------------------------ *)

let rec expr_variables acc = function
  | System.Const _ -> acc
  | System.Var v -> v :: acc
  | System.Concat (a, b) | System.Union (a, b) ->
      expr_variables (expr_variables acc a) b

let solve_graph ~max_solutions ~combination_limit (g : Depgraph.t) =
  Span.with_span ~name:"solve" @@ fun () ->
  timed "solve" @@ fun () ->
  Telemetry.Metrics.Counter.incr c_solves 1;
  try
    let g =
      Depgraph.of_system
        (Span.with_span ~name:"preprocess" (fun () ->
             timed "preprocess" (fun () -> preprocess g.system)))
    in
    let raw_cap = max 64 (max_solutions * 4) in
    let base =
      Span.with_span ~name:"reduce" (fun () ->
          timed "reduce" (fun () -> base_languages g))
    in
    let roots =
      Span.with_span ~name:"build-machines" (fun () ->
          timed "build-machines" (fun () -> build_machines g base))
    in
    let groups = Depgraph.ci_groups g in
    let group_solutions =
      List.filter_map
        (fun members ->
          match members with
          | [ Depgraph.Const _ ] -> None (* handled in base_languages *)
          | [ (Depgraph.Var v as n) ] ->
              let h = NMap.find n base in
              if Query.is_empty h then unsat (Empty_variable v)
              else Some [ Assignment.of_list [ (v, Store.minimized h) ] ]
          | members ->
              let member_set = NSet.of_list members in
              let group_roots =
                List.filter
                  (fun r ->
                    List.exists (fun (n, _) -> NSet.mem n member_set) r.slices)
                  roots
              in
              let verify =
                if not (group_needs_verification g members) then None
                else begin
                  let group_vars =
                    List.filter_map
                      (function Depgraph.Var v -> Some v | _ -> None)
                      members
                  in
                  let relevant =
                    List.filter
                      (fun { System.lhs; _ } ->
                        List.exists
                          (fun v -> List.mem v group_vars)
                          (expr_variables [] lhs))
                      (System.constraints g.system)
                  in
                  Some
                    (fun a ->
                      List.for_all (Validate.constraint_holds g.system a) relevant)
                end
              in
              Some
                (solve_group ~combination_limit ~raw_cap ~verify group_roots base
                   member_set))
        groups
    in
    (* conjunction of independent groups: cartesian combination *)
    let combined =
      Span.with_span ~name:"combine"
        ~attrs:[ ("groups", `Int (List.length group_solutions)) ]
      @@ fun () ->
      timed "combine" @@ fun () ->
      List.fold_left
        (fun acc sols ->
          let merged =
            List.concat_map
              (fun a ->
                List.map
                  (fun b ->
                    Assignment.of_list (Assignment.bindings a @ Assignment.bindings b))
                  sols)
              acc
          in
          (* keep the cap loose until the end so disjunct order stays
             deterministic *)
          if List.length merged > max_solutions * 4 then
            List.filteri (fun i _ -> i < max_solutions * 4) merged
          else merged)
        [ Assignment.of_list [] ]
        group_solutions
    in
    (* RMA's Maximal condition: grow every variable of every disjunct
       as far as the other variables allow (the paper's worked
       examples merge ε-cut slices exactly this way, e.g.
       [v1 ↦ x(yy|yyyy)] in §3.1.1), then drop disjuncts the growth
       made redundant. *)
    let maximized =
      Span.with_span ~name:"maximize"
        ~attrs:[ ("disjuncts_in", `Int (List.length combined)) ]
      @@ fun () ->
      timed "maximize" @@ fun () ->
      Assignment.prune_subsumed
        (List.map (Residual.maximize g.system) combined)
    in
    let capped = List.filteri (fun i _ -> i < max_solutions) maximized in
    Log.debug (fun m ->
        m "solved: %d groups, %d disjunctive solutions" (List.length group_solutions)
          (List.length capped));
    Sat capped
  with Unsatisfiable reason -> Unsat { reason; core = [] }

(* ------------------------------------------------------------------ *)
(* Public entry points. [run]/[run_graph] are the primary API: config
   record in, [result] out, with budget exhaustion surfaced as a
   structured error rather than an exception. *)

let reason_of_cause = function
  | Analyze.Empty_var v -> Empty_variable v
  | Analyze.Bound_empty alt -> Bound_empty alt
  | Analyze.Const_expr _ -> Const_expr_violation

(* The analyzer pre-pass, then the solver proper on whatever survives.
   An analyzer refutation carries its minimal core; a solver-proper
   refutation carries an empty core (minimizing one would mean
   re-solving subsets — the [dprle analyze] report is the tool for
   blame beyond what the static passes can see). Sliced-away
   variables re-join every solution as their singleton witnesses so
   assignments stay total over the original system. *)
let solve_system (cfg : Config.t) system =
  if not cfg.analyze then
    solve_graph ~max_solutions:cfg.max_solutions
      ~combination_limit:cfg.combination_limit
      (Depgraph.of_system system)
  else
    let a =
      Span.with_span ~name:"analyze" (fun () ->
          timed "analyze" (fun () -> Analyze.run ~goals:cfg.goals system))
    in
    match a.Analyze.refute with
    | Some { Analyze.cause; core } ->
        Unsat { reason = reason_of_cause cause; core }
    | None -> (
        match
          solve_graph ~max_solutions:cfg.max_solutions
            ~combination_limit:cfg.combination_limit
            (Depgraph.of_system a.Analyze.system)
        with
        | Unsat _ as u -> u
        | Sat sols -> (
            match a.Analyze.witnesses with
            | [] -> Sat sols
            | ws ->
                let extra =
                  List.map (fun (v, w) -> (v, Store.nfa (Store.of_word w))) ws
                in
                Sat
                  (List.map
                     (fun s ->
                       Assignment.of_list (Assignment.bindings s @ extra))
                     sols)))

let run_graph (cfg : Config.t) g =
  try
    Ok
      (Budget.with_budget cfg.budget (fun () ->
           solve_system cfg g.Depgraph.system))
  with Budget.Exceeded stop -> Error (Error.Budget_exceeded stop)

let run (cfg : Config.t) system =
  (* pre-solve lint: surface likely authoring bugs (empty bounding
     constants, constant-only contradictions) on the log before any
     machine is built *)
  List.iter
    (fun f -> Log.warn (fun m -> m "lint: %a" Static.pp_finding f))
    (Static.quick system);
  try
    Ok (Budget.with_budget cfg.budget (fun () -> solve_system cfg system))
  with Budget.Exceeded stop -> Error (Error.Budget_exceeded stop)

let first_solution g =
  match solve_graph ~max_solutions:1 ~combination_limit:4096 g with
  | Sat (a :: _) -> Some a
  | Sat [] | Unsat _ -> None

let cut_census g =
  match
    let base = base_languages g in
    let roots = build_machines g base in
    List.concat_map
      (fun r -> List.map (fun (tid, cuts) -> (tid, List.length cuts)) r.cuts)
      roots
  with
  | census -> List.sort compare census
  | exception Unsatisfiable _ -> []
