(** The decision procedure for general systems of subset constraints
    (§3.4 of the paper).

    Pipeline, mirroring the paper's:

    + build the dependency graph ({!Depgraph});
    + resolve {e basic} constraints — vertices with only inbound
      ⊆-edges — by NFA intersection (the [reduce] step of Fig. 7,
      lines 3–8), and check constant-vs-constant inclusions;
    + split the remaining vertices into {e CI-groups} (nodes connected
      by ∘-edge pairs, §3.4.3) and solve each with the generalized
      concat-intersect procedure [gci] (Fig. 8), producing the
      disjunctive solutions;
    + combine per-group disjuncts into full assignments (the worklist
      of Fig. 7 materialized as a cartesian product with a cap).

    The [gci] here follows the paper's two invariants: inbound subset
    constraints are applied {e before} concatenations (operand
    machines are pre-narrowed, and each concatenation result is
    intersected with its subset constant immediately), and solutions
    share one machine per constraint tree — every group node's
    language is a {e slice} of a root machine, delimited by the
    ε-cut chosen for each concatenation (the sub-NFA tracking of
    Fig. 8). Narrowing a root machine therefore updates every
    embedded solution at once. Disjunctive solutions are exactly the
    combinations of one ε-cut per concatenation, with empty-language
    combinations rejected (as in Fig. 3 line 15) and pointwise
    subsumed assignments dropped (they would violate Maximal). *)

(** Why a system is unsatisfiable, as a machine-matchable variant.
    {!pp_unsat_reason} renders each constructor to exactly the
    diagnostic string the CLI has always printed. *)
type unsat_reason =
  | Const_expr_violation
      (** a constant-only alternative fails its subset constraint *)
  | Const_violation of string
      (** the named constant node fails an inbound subset constraint *)
  | No_cut of int
      (** concatenation [i] (index in [Depgraph.concats]) admits no
          ε-cut: its language is empty *)
  | All_combinations_empty
      (** every ε-cut combination of some CI-group forces an empty
          language *)
  | Empty_variable of string
      (** the named variable's inbound constraints intersect to ∅ *)
  | Bound_empty of string
      (** the pre-solve analyzer's forward bound for the rendered
          multi-variable alternative is disjoint from its right-hand
          constant ({!Analyze.Bound_empty}) *)

val pp_unsat_reason : unsat_reason Fmt.t

(** [pp_unsat_reason] as a string — the legacy [Unsat of string]
    payload. *)
val unsat_message : unsat_reason -> string

(** An unsatisfiability verdict with blame. [core] is a 1-minimal
    refuting subset of the (normalized) constraints when the
    pre-solve analyzer produced the verdict, and empty when the
    solver proper did — minimizing a solver-level refutation would
    mean re-solving constraint subsets; [dprle analyze] is the tool
    for that kind of blame. *)
type refutation = { reason : unsat_reason; core : System.constr list }

type outcome =
  | Sat of Assignment.t list
      (** all (deduplicated, unsubsumed) disjunctive satisfying
          assignments, at most [Config.max_solutions] of them *)
  | Unsat of refutation

(** Solve configuration for {!run}/{!run_graph}. *)
module Config : sig
  type t = {
    max_solutions : int;
        (** cap on returned disjuncts (default 256) *)
    combination_limit : int;
        (** cap on ε-cut combinations explored per CI-group (default
            4096) — the paper's §3.5 exponential worst case made
            tangible. Combinations are enumerated lazily (the paper
            notes the first solution needs no full enumeration); when
            the cap truncates the search a warning is logged and the
            returned disjunct list may be incomplete (each disjunct
            is still sound). *)
    budget : Automata.Budget.t;
        (** resource budget installed for the duration of the solve
            (default {!Automata.Budget.unlimited}) *)
    analyze : bool;
        (** run the {!Analyze} pre-pass (default [true]): refute,
            discharge, and slice statically before any group machine
            is built. [false] is the ablation arm — verdicts are
            identical either way (cram-gated) *)
    goals : string list;
        (** extra goal variables for the analyzer's cone-of-influence
            slicing, prepended to {!System.goals} (default: none) *)
  }

  val default : t

  val make :
    ?max_solutions:int ->
    ?combination_limit:int ->
    ?budget:Automata.Budget.t ->
    ?analyze:bool ->
    ?goals:string list ->
    unit ->
    t
end

(** Failures that are neither [Sat] nor [Unsat]. Budget exhaustion is
    deliberately {e not} an {!unsat_reason}: [Unsat] is a semantic
    verdict about the system, while running out of budget says
    nothing about satisfiability. *)
module Error : sig
  type t = Budget_exceeded of Automata.Budget.stop

  val pp : t Fmt.t
  val to_string : t -> string
end

(** [run config system] builds the dependency graph and decides the
    system under [config], including its budget. This is the primary
    entry point. *)
val run : Config.t -> System.t -> (outcome, Error.t) result

(** Like {!run} on an already-built graph. *)
val run_graph : Config.t -> Depgraph.t -> (outcome, Error.t) result

(** First satisfying assignment only (the mode the paper's §3.5 notes
    can avoid full enumeration). *)
val first_solution : Depgraph.t -> Assignment.t option

(** Structural measurement for {!Report}: for every concatenation of
    the graph (by its index in [Depgraph.concats]), the number of
    ε-cut candidates in its fully-built root machine — the per-triple
    disjunction width of §3.5. Empty list if the system is already
    unsatisfiable at the constant level. *)
val cut_census : Depgraph.t -> (int * int) list
