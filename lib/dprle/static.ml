module Store = Automata.Store
module Query = Automata.Query

type severity = Warning | Info

type finding = { severity : severity; check : string; message : string }

let pp_severity ppf = function
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp_finding ppf f =
  Fmt.pf ppf "%a: [%s] %s" pp_severity f.severity f.check f.message

(* The leaves of a union-free alternative, left to right; [None] when
   a variable occurs (the alternative is not constant-only). *)
let const_leaves expr =
  let rec go acc = function
    | System.Const c -> Option.map (fun acc -> c :: acc) acc
    | System.Var _ -> None
    | System.Concat (a, b) -> go (go acc a) b
    | System.Union _ -> assert false (* expand_unions output is union-free *)
  in
  Option.map List.rev (go (Some []) expr)

let alternative_handle system leaves =
  match leaves with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun acc c -> Store.concat_lang acc (System.const_handle system c))
           (System.const_handle system first)
           rest)

(* Constraints whose right-hand constant is the empty language: the
   left side is forced empty, which is almost always an authoring
   error (a regex that matches nothing, an over-intersected constant).
   The solve itself may still be Sat — with every variable ∅. *)
let empty_rhs system =
  List.filter_map
    (fun { System.lhs = _; rhs } ->
      if Query.is_empty (System.const_handle system rhs) then
        Some
          {
            severity = Warning;
            check = "empty-rhs";
            message =
              Fmt.str
                "constant '%s' denotes the empty language; every lhs \
                 constrained by it is forced empty"
                rhs;
          }
      else None)
    (System.constraints system)

(* Constant-only alternatives decide by one language query — answered
   by the symbolic derivative tier when the constants carry their
   regex ASTs, automata otherwise; the finding records which. If it
   fails, the whole system is unsatisfiable before any solve. *)
let contradictions system =
  List.concat_map
    (fun { System.lhs; rhs } ->
      List.filter_map
        (fun alt ->
          match const_leaves alt with
          | None -> None
          | Some leaves -> (
              match alternative_handle system leaves with
              | None -> None
              | Some h -> (
                  match Query.subset_tier h (System.const_handle system rhs) with
                  | true, _ -> None
                  | false, tier ->
                      Some
                        {
                          severity = Warning;
                          check = "const-contradiction";
                          message =
                            Fmt.str
                              "constant-only constraint %a ⊆ %s does not \
                               hold: the system is unsatisfiable \
                               (tier=%a)"
                              System.pp_expr alt rhs Query.pp_tier tier;
                        })))
        (System.expand_unions lhs))
    (System.constraints system)

(* Variables never bounded by a direct ⊆-edge: only concatenations
   constrain them, so their solved languages ride entirely on the
   ε-cut machinery (and an unsatisfiable bound can hide in plain
   sight). *)
let unconstrained graph =
  let direct =
    List.filter_map
      (function _, Depgraph.Var v -> Some v | _ -> None)
      graph.Depgraph.subsets
  in
  List.filter_map
    (fun v ->
      if List.mem v direct then None
      else
        Some
          {
            severity = Info;
            check = "unconstrained-var";
            message =
              Fmt.str
                "variable '%s' has no direct subset constraint (bounded only \
                 through concatenations)"
                v;
          })
    (System.variables graph.Depgraph.system)

(* CI-groups where one variable feeds several ∘-edge pairs: the
   ε-cut choices couple, and the paper's §3.5 worst case — the number
   of cut combinations multiplying across concatenations — becomes
   reachable. *)
let ci_cycles graph =
  let groups = Depgraph.ci_groups graph in
  List.filter_map
    (fun group ->
      let concats_in =
        List.filter
          (fun (c : Depgraph.concat) ->
            List.exists (Depgraph.node_equal c.result) group)
          graph.Depgraph.concats
      in
      if List.length concats_in < 2 then None
      else
        let operand_vars =
          List.concat_map
            (fun (c : Depgraph.concat) ->
              List.filter_map
                (function Depgraph.Var v -> Some v | _ -> None)
                [ c.left; c.right ])
            concats_in
        in
        let shared =
          List.sort_uniq compare
            (List.filter
               (fun v ->
                 List.length (List.filter (String.equal v) operand_vars) >= 2)
               operand_vars)
        in
        if shared = [] then None
        else
          Some
            {
              severity = Info;
              check = "ci-cycle";
              message =
                Fmt.str
                  "CI-group with %d concatenations is coupled through \
                   variable(s) %s: ε-cut combinations multiply across them"
                  (List.length concats_in)
                  (String.concat ", " shared);
            })
    groups

(* The analyzer as a lint: when the static passes refute the system,
   surface the minimal explaining core — the blame a solver-level
   "unsat" alone cannot give. *)
let unsat_core system =
  match (Analyze.run system).Analyze.refute with
  | None -> []
  | Some { Analyze.cause; core } ->
      [
        {
          severity = Warning;
          check = "unsat-core";
          message =
            Fmt.str "system is unsatisfiable (%a); minimal core: %s"
              Analyze.pp_cause cause
              (String.concat "; "
                 (List.map (Fmt.str "%a" System.pp_constr) core));
        };
      ]

(* Both checks decide by memoized store queries (the symbolic tier
   first), so auto-emitting them before every solve stays cheap. *)
let quick system = empty_rhs system @ contradictions system

let lint ?graph system =
  let graph =
    match graph with Some g -> g | None -> Depgraph.of_system system
  in
  empty_rhs system @ contradictions system @ unsat_core system
  @ unconstrained graph @ ci_cycles graph
