(** Pre-solve lint over constraint systems: cheap static checks that
    catch authoring errors and predict solver blow-ups before any
    machine is built.

    All language queries go through the interned store
    ({!Automata.Store}), so repeated lints of overlapping systems
    (e.g. per-candidate solves in webcheck) re-use memoized
    emptiness/inclusion results.

    Checks:
    - [empty-rhs] ({e warning}) — a constraint's right-hand constant
      denotes ∅, forcing its whole left side empty.
    - [const-contradiction] ({e warning}) — a constant-only
      alternative of some left side is not included in its bound: the
      system is unsatisfiable, decided by one memoized inclusion.
    - [unsat-core] ({e warning}) — the {!Analyze} pre-solve passes
      refute the system; the finding carries the minimal explaining
      constraint core.
    - [unconstrained-var] ({e info}) — a variable with no direct
      ⊆-edge in the dependency graph, bounded only through
      concatenations.
    - [ci-cycle] ({e info}) — a CI-group whose ∘-edge pairs share a
      variable: the §3.5 worst case (multiplying ε-cut combinations)
      is reachable.

    {!Solver.run} auto-emits the [empty-rhs] and
    [const-contradiction] findings to the log (stderr) before solving
    — the cheap checks that flag likely authoring bugs. The
    [dprle lint] subcommand prints everything. *)

type severity = Warning | Info

type finding = { severity : severity; check : string; message : string }

val pp_severity : severity Fmt.t

(** Rendered as ["warning: [check] message"]. *)
val pp_finding : finding Fmt.t

(** All checks. Builds a {!Depgraph.t} unless one is supplied. *)
val lint : ?graph:Depgraph.t -> System.t -> finding list

(** The [empty-rhs] and [const-contradiction] checks — what
    {!Solver.run} emits; O(number of alternatives) memoized
    emptiness/inclusion queries, the symbolic tier answering first. *)
val quick : System.t -> finding list
