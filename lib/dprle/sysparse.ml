type error = { line : int; col : int; message : string }

let pp_error ppf { line; col; message } =
  Fmt.pf ppf "%d:%d: %s" line col message

exception Failed of error

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)

type token =
  | Tlet
  | Tname of string
  | Tpattern of string  (* body between the slashes, verbatim *)
  | Tstring of string  (* decoded literal *)
  | Teq
  | Tsubset
  | Tdot
  | Tpipe
  | Tlparen
  | Trparen
  | Tsemi
  | Teof

type lexer = { input : string; mutable pos : int; mutable line : int; mutable bol : int }

let fail_at lx message =
  raise (Failed { line = lx.line; col = lx.pos - lx.bol + 1; message })

let peek_char lx =
  if lx.pos < String.length lx.input then Some lx.input.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let rec skip_trivia lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_trivia lx
  | Some '#' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_trivia lx
  | _ -> ()

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let lex_name lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_name_char c | None -> false) do
    advance lx
  done;
  String.sub lx.input start (lx.pos - start)

(* /…/ with \/ as an escaped slash; the body is handed to the regex
   pattern parser untouched otherwise. *)
let lex_pattern lx =
  advance lx (* opening slash *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> fail_at lx "unterminated /pattern/"
    | Some '/' -> advance lx
    | Some '\\' ->
        advance lx;
        (match peek_char lx with
        | Some '/' ->
            Buffer.add_char buf '/';
            advance lx
        | Some c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c;
            advance lx
        | None -> fail_at lx "unterminated /pattern/");
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_string lx =
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char lx with
    | None -> fail_at lx "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' ->
        advance lx;
        (match peek_char lx with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some '0' -> Buffer.add_char buf '\000'
        | Some (('"' | '\\') as c) -> Buffer.add_char buf c
        | Some c -> fail_at lx (Printf.sprintf "unknown escape \\%c" c)
        | None -> fail_at lx "unterminated string literal");
        advance lx;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
  in
  go ();
  Buffer.contents buf

let next_token lx =
  skip_trivia lx;
  match peek_char lx with
  | None -> Teof
  | Some '=' ->
      advance lx;
      Teq
  | Some '<' ->
      advance lx;
      (match peek_char lx with
      | Some '=' ->
          advance lx;
          Tsubset
      | _ -> fail_at lx "expected '<='")
  | Some '.' ->
      advance lx;
      Tdot
  | Some '|' ->
      advance lx;
      Tpipe
  | Some '(' ->
      advance lx;
      Tlparen
  | Some ')' ->
      advance lx;
      Trparen
  | Some ';' ->
      advance lx;
      Tsemi
  | Some '/' -> Tpattern (lex_pattern lx)
  | Some '"' -> Tstring (lex_string lx)
  | Some c when is_name_char c ->
      let name = lex_name lx in
      if name = "let" then Tlet else Tname name
  | Some c -> fail_at lx (Printf.sprintf "unexpected character %C" c)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)

type parser_state = { lx : lexer; mutable tok : token }

let bump st = st.tok <- next_token st.lx

let expect st tok what =
  if st.tok = tok then bump st else fail_at st.lx ("expected " ^ what)

let parse_const_value st =
  match st.tok with
  | Tpattern body ->
      bump st;
      (match Regex.Parser.parse_pattern body with
      | Ok p -> Regex.Compile.pattern_to_nfa p
      | Error e -> fail_at st.lx (Fmt.str "bad pattern: %a" Regex.Parser.pp_error e))
  | Tstring s ->
      bump st;
      (* via the store's word path so the constant carries AST
         provenance and answers symbolically *)
      Automata.Store.nfa (Automata.Store.of_word s)
  | _ -> fail_at st.lx "expected /pattern/ or \"string\""

let parse st =
  let consts = ref [] in
  let constraints = ref [] in
  let goals = ref [] in
  let defined name = List.mem_assoc name !consts in
  let leaf name = if defined name then System.Const name else System.Var name in
  (* lhs := term ('|' term)*;  term := factor ('.' factor)*;
     factor := NAME | '(' lhs ')' *)
  let rec parse_lhs () =
    let first = parse_term () in
    match st.tok with
    | Tpipe ->
        bump st;
        System.Union (first, parse_lhs ())
    | _ -> first
  and parse_term () =
    let first = parse_factor () in
    match st.tok with
    | Tdot ->
        bump st;
        System.Concat (first, parse_term ())
    | _ -> first
  and parse_factor () =
    match st.tok with
    | Tname name ->
        bump st;
        leaf name
    | Tlparen ->
        bump st;
        let inner = parse_lhs () in
        (match st.tok with
        | Trparen -> bump st
        | _ -> fail_at st.lx "expected ')'");
        inner
    | _ -> fail_at st.lx "expected operand"
  in
  let rec stmts () =
    match st.tok with
    | Teof -> ()
    | Tlet ->
        bump st;
        let name =
          match st.tok with
          | Tname n ->
              bump st;
              n
          | _ -> fail_at st.lx "expected constant name after let"
        in
        if defined name then
          fail_at st.lx (Printf.sprintf "duplicate constant %S" name);
        expect st Teq "'='";
        let value = parse_const_value st in
        expect st Tsemi "';'";
        consts := (name, value) :: !consts;
        stmts ()
    (* [goal v1 v2;] — disambiguated by the lookahead: a bare [goal]
       followed by another name is a declaration; anything else (e.g.
       [goal <= c;]) still parses as a constraint over a variable that
       happens to be named "goal". *)
    | Tname "goal" when (skip_trivia st.lx;
                         match peek_char st.lx with
                         | Some c -> is_name_char c
                         | None -> false) ->
        bump st;
        let rec names () =
          match st.tok with
          | Tname n ->
              bump st;
              if defined n then
                fail_at st.lx (Printf.sprintf "goal %S names a constant" n);
              goals := n :: !goals;
              names ()
          | _ -> ()
        in
        names ();
        expect st Tsemi "';'";
        stmts ()
    | Tname _ | Tlparen ->
        let lhs = parse_lhs () in
        expect st Tsubset "'<='";
        let rhs =
          match st.tok with
          | Tname n ->
              bump st;
              n
          | _ -> fail_at st.lx "expected constant name on the right of '<='"
        in
        if not (defined rhs) then
          fail_at st.lx
            (Printf.sprintf "right-hand side %S is not a defined constant" rhs);
        expect st Tsemi "';'";
        constraints := { System.lhs; rhs } :: !constraints;
        stmts ()
    | _ -> fail_at st.lx "expected 'let' or a constraint"
  in
  stmts ();
  match
    System.make ~consts:(List.rev !consts) ~constraints:(List.rev !constraints)
  with
  | Ok system -> System.with_goals system (List.rev !goals)
  | Error msg -> fail_at st.lx msg

let parse input =
  let lx = { input; pos = 0; line = 1; bol = 0 } in
  let st = { lx; tok = Teof } in
  match
    bump st;
    parse st
  with
  | system -> Ok system
  | exception Failed e -> Error e

let parse_exn input =
  match parse input with
  | Ok system -> system
  | Error e -> invalid_arg (Fmt.str "Sysparse.parse_exn: %a" pp_error e)

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))
