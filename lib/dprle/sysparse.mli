(** Concrete syntax for constraint systems, in the style of the
    paper's released stand-alone solver. A file is a sequence of
    statements:

    {v
      # SQL-injection example (Fig. 1 / §2)
      let filter = /[\d]+$/;        # preg-style pattern constant
      let prefix = "nid_";          # literal string constant
      let unsafe = /'/;             # any string containing a quote

      v1 <= filter;
      prefix . v1 <= unsafe;
    v}

    [/…/] constants use [preg_match] semantics: anchors are honored
    and unanchored sides match arbitrary context (so [/x/] is Σ*xΣ*
    and [/^x$/] is exactly [x]). ["…"] constants are literal strings
    with the usual escapes. Identifiers not bound by [let] are
    variables. [#] starts a line comment.

    Left-hand sides support the paper's §3.1.2 union extension with
    grouping: [lhs := term ('|' term)*], [term := factor ('.'
    factor)*], [factor := NAME | '(' lhs ')'] — e.g.
    [(a | b) . v <= c;].

    [goal v1 v2;] declares goal variables for the pre-solve
    analyzer's cone-of-influence slicing ({!System.goals}); systems
    without goal statements are analyzed with every variable as a
    goal. The keyword only binds when followed by a name, so a
    variable named [goal] still parses in constraint position. *)

type error = { line : int; col : int; message : string }

val pp_error : error Fmt.t

val parse : string -> (System.t, error) result

val parse_exn : string -> System.t

(** Parse the contents of a file at [path]. *)
val parse_file : string -> (System.t, error) result
