type expr =
  | Const of string
  | Var of string
  | Concat of expr * expr
  | Union of expr * expr

type constr = { lhs : expr; rhs : string }

let rec expand_unions = function
  | (Const _ | Var _) as leaf -> [ leaf ]
  | Union (a, b) -> expand_unions a @ expand_unions b
  | Concat (a, b) ->
      let left = expand_unions a and right = expand_unions b in
      List.concat_map (fun l -> List.map (fun r -> Concat (l, r)) right) left

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  consts : Automata.Nfa.t SMap.t;
  (* Interned views of [consts], built on first use so systems
     assembled programmatically (tests, bench) don't pay for keys they
     never query. Per-system rather than global: handles are plain
     lookups here, invalidation is the store's problem. *)
  handles : Automata.Store.handle SMap.t Lazy.t;
  order : string list;
  constrs : constr list;
  goals : string list;
}

let rec expr_names vars consts = function
  | Const c -> (vars, SSet.add c consts)
  | Var v -> (SSet.add v vars, consts)
  | Concat (a, b) | Union (a, b) ->
      let vars, consts = expr_names vars consts a in
      expr_names vars consts b

let make ~consts ~constraints =
  let rec build map order = function
    | [] -> Ok (map, List.rev order)
    | (name, lang) :: rest ->
        if SMap.mem name map then Error (Printf.sprintf "duplicate constant %S" name)
        else build (SMap.add name lang map) (name :: order) rest
  in
  match build SMap.empty [] consts with
  | Error _ as e -> e
  | Ok (map, order) ->
      let vars, used =
        List.fold_left
          (fun (vars, used) { lhs; rhs } ->
            let vars, used = expr_names vars used lhs in
            (vars, SSet.add rhs used))
          (SSet.empty, SSet.empty) constraints
      in
      let missing = SSet.filter (fun c -> not (SMap.mem c map)) used in
      let clashing = SSet.inter vars (SSet.of_list (SMap.fold (fun k _ acc -> k :: acc) map [])) in
      if not (SSet.is_empty missing) then
        Error (Printf.sprintf "undefined constant %S" (SSet.min_elt missing))
      else if not (SSet.is_empty clashing) then
        Error
          (Printf.sprintf "%S is used both as a variable and as a constant"
             (SSet.min_elt clashing))
      else
        Ok
          {
            consts = map;
            (* force-keyed: constant handles seed every downstream memo
               (residuals, meets, subset queries) and must carry stable
               ids even for tiny machines — see Store.intern_keyed *)
            handles = lazy (SMap.map Automata.Store.intern_keyed map);
            order;
            constrs = constraints;
            goals = [];
          }

let make_exn ~consts ~constraints =
  match make ~consts ~constraints with
  | Ok t -> t
  | Error msg -> invalid_arg ("System.make_exn: " ^ msg)

let with_goals t goals =
  (match List.find_opt (fun g -> SMap.mem g t.consts) goals with
  | Some g -> invalid_arg (Printf.sprintf "System.with_goals: goal %S names a constant" g)
  | None -> ());
  let seen = Hashtbl.create 4 in
  let goals =
    List.filter
      (fun g ->
        if Hashtbl.mem seen g then false
        else begin
          Hashtbl.replace seen g ();
          true
        end)
      goals
  in
  { t with goals }

let const_of_regex s = Regex.Compile.to_nfa (Regex.Parser.parse_exn s)

let const_of_pattern s =
  Regex.Compile.pattern_to_nfa (Regex.Parser.parse_pattern_exn s)

(* Via the store's word fast path so the machine carries AST
   provenance and word-literal constants answer symbolically. *)
let const_of_word w = Automata.Store.nfa (Automata.Store.of_word w)

let constants t = List.map (fun name -> (name, SMap.find name t.consts)) t.order

let constraints t = t.constrs

let goals t = t.goals

(* Constraint-subset view used by the pre-solve analyzer: constants,
   goals, and the lazy handle table are shared, so interned lookups
   made on the original system stay warm on the reduced one. *)
let with_constraints t constrs = { t with constrs }

let const_lang t name =
  match SMap.find_opt name t.consts with
  | Some lang -> lang
  | None -> invalid_arg (Printf.sprintf "System.const_lang: unknown constant %S" name)

let const_handle t name =
  match SMap.find_opt name (Lazy.force t.handles) with
  | Some h -> h
  | None ->
      invalid_arg (Printf.sprintf "System.const_handle: unknown constant %S" name)

let variables t =
  let vars =
    List.fold_left
      (fun acc { lhs; _ } -> fst (expr_names acc SSet.empty lhs))
      SSet.empty t.constrs
  in
  SSet.elements vars

let size t = List.length t.constrs

let rec pp_expr ppf = function
  | Const c -> Fmt.string ppf c
  | Var v -> Fmt.string ppf v
  | Concat (a, b) -> Fmt.pf ppf "%a . %a" pp_atom a pp_atom b
  | Union (a, b) -> Fmt.pf ppf "%a | %a" pp_expr a pp_expr b

(* parenthesize unions inside concatenations *)
and pp_atom ppf = function
  | Union _ as e -> Fmt.pf ppf "(%a)" pp_expr e
  | e -> pp_expr ppf e

let pp_constr ppf { lhs; rhs } = Fmt.pf ppf "%a <= %s" pp_expr lhs rhs

let pp ppf t =
  List.iter (fun c -> Fmt.pf ppf "%a;@ " pp_constr c) t.constrs
