(** Systems of subset constraints over regular languages — the input
    language of the decision procedure (grammar of Fig. 2 of the
    paper):

    {v
      S ::= E ⊆ C          subset constraint
      E ::= E ∘ E | C | V   concatenation of constants and variables
    v}

    Constants are named regular languages; variables are free. A
    system is the conjunction of its constraints. *)

type expr =
  | Const of string  (** reference to a defined constant *)
  | Var of string
  | Concat of expr * expr
  | Union of expr * expr
      (** the §3.1.2 extension: [(e1|e2) ⊆ c ≡ e1 ⊆ c ∧ e2 ⊆ c];
          solved by distributing over concatenation and splitting the
          constraint (see {!expand_unions}) *)

type constr = { lhs : expr; rhs : string  (** constant name *) }

(** Rewrite an expression into union-free alternatives: unions split,
    and distribute over concatenation ([(a|b)∘c → a∘c, b∘c]). A
    constraint [e ⊆ c] is equivalent to the conjunction of
    [e' ⊆ c] over the alternatives [e']. The expansion is exponential
    in the number of nested unions — the price of the encoding, noted
    in DESIGN.md. *)
val expand_unions : expr -> expr list

type t

(** {1 Construction} *)

(** [make ~consts ~constraints] checks that every constant reference
    resolves and that no name is both a constant and a variable.
    Constant names must be unique. The goal set starts empty; see
    {!with_goals}. *)
val make :
  consts:(string * Automata.Nfa.t) list ->
  constraints:constr list ->
  (t, string) result

val make_exn :
  consts:(string * Automata.Nfa.t) list -> constraints:constr list -> t

(** [with_goals t gs] declares the variables whose values the caller
    actually queries (the [goal] statement of the surface syntax); the
    pre-solve analyzer's cone-of-influence slicing keys on them, and
    an empty list means "everything is a goal". Goals are
    deduplicated; raises [Invalid_argument] if one names a constant. *)
val with_goals : t -> string list -> t

(** Convenience constructors for constant languages. *)

val const_of_regex : string -> Automata.Nfa.t
(** [const_of_regex "a(b|c)*"] — exact (fully anchored) language.
    Raises [Invalid_argument] on a malformed regex. *)

val const_of_pattern : string -> Automata.Nfa.t
(** [const_of_pattern "/[\\d]+$/"] — the language {e accepted} by a
    [preg_match]-style check, honoring its anchors. *)

val const_of_word : string -> Automata.Nfa.t
(** Singleton language. *)

(** {1 Accessors} *)

val constants : t -> (string * Automata.Nfa.t) list

val constraints : t -> constr list

(** Declared goal variables, declaration order, deduplicated. *)
val goals : t -> string list

(** [with_constraints t cs] is [t] with its constraint list replaced —
    constants, goals, and interned handles are shared with [t]. No
    validation is re-run; the intended use is shrinking to a subset of
    [constraints t] (slices, unsat cores). *)
val with_constraints : t -> constr list -> t

val const_lang : t -> string -> Automata.Nfa.t

(** Interned {!Automata.Store} handle for a constant, so the solver's
    memoized operations key on it across disjuncts and across solves.
    Handles for all constants are created lazily on the first call.
    Raises [Invalid_argument] on an unknown name. *)
val const_handle : t -> string -> Automata.Store.handle

(** Variables occurring anywhere in the system, sorted. *)
val variables : t -> string list

(** Number of constraints. *)
val size : t -> int

(** {1 Printing} *)

val pp_expr : expr Fmt.t

val pp_constr : constr Fmt.t

val pp : t Fmt.t
