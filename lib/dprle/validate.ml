module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Store = Automata.Store
module Query = Automata.Query
module Lang = Automata.Lang

(* Constraint checking goes through the store: the group-verification
   path in the solver re-evaluates the same constraints for every
   admitted ε-cut combination, mostly over repeated languages. *)
let rec expr_handle system a : System.expr -> Store.handle = function
  | System.Const c -> System.const_handle system c
  | System.Var v -> Store.intern (Assignment.find a v)
  | System.Concat (e1, e2) ->
      Store.concat_lang (expr_handle system a e1) (expr_handle system a e2)
  | System.Union (e1, e2) ->
      Store.union_lang (expr_handle system a e1) (expr_handle system a e2)

let expr_lang system a expr = Store.nfa (expr_handle system a expr)

let constraint_holds system a { System.lhs; rhs } =
  Query.subset (expr_handle system a lhs) (System.const_handle system rhs)

let satisfying system a =
  List.for_all (constraint_holds system a) (System.constraints system)

let ci_satisfying ~c1 ~c2 ~c3 { Ci.v1; v2; _ } =
  let subset m1 m2 = Query.subset (Store.intern m1) (Store.intern m2) in
  subset v1 c1 && subset v2 c2 && subset (Ops.concat_lang v1 v2) c3

let ci_all_solutions ~c1 ~c2 ~c3 solutions =
  let target = Ops.inter_lang (Ops.concat_lang c1 c2) c3 in
  let covered =
    List.fold_left
      (fun acc { Ci.v1; v2; _ } -> Ops.union_lang acc (Ops.concat_lang v1 v2))
      Nfa.empty_lang solutions
  in
  Query.equal (Store.intern covered) (Store.intern target)

(* Candidate extension strings for a variable: strings allowed by some
   constraint constant but missing from the assigned language. These
   are the plausible ways an assignment could fail to be maximal. *)
let extension_candidates ?(samples = 5) system a v =
  let lang = Assignment.find a v in
  List.concat_map
    (fun (_, const) ->
      let missing = Lang.difference const lang in
      Nfa.sample_words missing ~max_len:8 ~max_count:samples)
    (System.constants system)

let maximal_probe ?(samples = 5) system a =
  List.for_all
    (fun v ->
      let lang = Assignment.find a v in
      List.for_all
        (fun w ->
          let extended =
            Assignment.of_list
              ((v, Ops.union_lang lang (Nfa.of_word w))
              :: List.remove_assoc v (Assignment.bindings a))
          in
          not (satisfying system extended))
        (extension_candidates ~samples system a v))
    (Assignment.variables a)

let pairwise_incomparable solutions =
  let arr = Array.of_list solutions in
  let n = Array.length arr in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Assignment.subsumes arr.(i) arr.(j) then ok := false
    done
  done;
  !ok
