module Budget = Automata.Budget
module Span = Telemetry.Span
module Snapshot = Telemetry.Metrics.Snapshot

type 'a outcome =
  | Done of 'a
  | Timeout
  | Budget_exceeded
  | Failed of string

type 'a job_result = {
  index : int;
  outcome : 'a outcome;
  elapsed_ns : int64;
  worker : int;
}

type stats = {
  workers : int;
  jobs : int;
  wall_ns : int64;
  worker_spans : (string * Span.t) list;
}

let default_jobs () = Domain.recommended_domain_count ()

let pp_outcome pp_done ppf = function
  | Done v -> pp_done ppf v
  | Timeout -> Fmt.string ppf "budget exceeded: timeout"
  | Budget_exceeded -> Fmt.string ppf "budget exceeded: state budget exhausted"
  | Failed msg -> Fmt.pf ppf "internal failure: %s" msg

let outcome_of_stop = function
  | Budget.Timeout -> Timeout
  | Budget.Out_of_states -> Budget_exceeded

(* One job, fully isolated: its own budget window, and any exception it
   leaks becomes [Failed] so the rest of the batch still completes. *)
let run_job ~budget ~f ~worker index item =
  let t0 = Telemetry.Clock.now_ns () in
  let outcome =
    match Budget.run budget (fun () -> f worker item) with
    | Ok v -> Done v
    | Error stop -> outcome_of_stop stop
    | exception e -> Failed (Printexc.to_string e)
  in
  {
    index;
    outcome;
    elapsed_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0;
    worker;
  }

let map ?jobs ?(budget = Budget.unlimited) ?(name = "batch") ~f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let workers =
    min (max 1 (Option.value jobs ~default:(default_jobs ()))) (max 1 n)
  in
  let t0 = Telemetry.Clock.now_ns () in
  let results, worker_spans =
    if workers = 1 then
      (* Inline fast path: runs in the calling domain, so spans nest
         into the caller's open trace and the caller's store is used
         directly. *)
      (List.mapi (fun i item -> run_job ~budget ~f ~worker:0 i item)
         (Array.to_list items),
       [])
    else begin
      (* Slots are disjoint per index and only read after the joins
         below, so the plain array is race-free. *)
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let trace = Span.enabled () in
      let worker_body w () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (run_job ~budget ~f ~worker:w i items.(i));
            loop ()
          end
        in
        let span =
          if trace then
            let (), sp =
              Span.collect ~name:(Fmt.str "%s-worker-%d" name w) loop
            in
            Some sp
          else begin
            loop ();
            None
          end
        in
        (* The worker domain's metrics land in its own domain-local
           default registry; hand a snapshot back for the merge. *)
        (span, Snapshot.of_default ())
      in
      let domains =
        List.init workers (fun w -> Domain.spawn (worker_body w))
      in
      let joined = List.map Domain.join domains in
      List.iter (fun (_, snap) -> Snapshot.absorb snap) joined;
      let worker_spans =
        List.filter_map
          (fun (w, (sp, _)) ->
            Option.map (fun sp -> (Fmt.str "worker-%d" w, sp)) sp)
          (List.mapi (fun w j -> (w, j)) joined)
      in
      ( Array.to_list results
        |> List.map (function
             | Some r -> r
             | None -> assert false (* every index is claimed *)),
        worker_spans )
    end
  in
  let wall_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
  (results, { workers; jobs = n; wall_ns; worker_spans })
