module Budget = Automata.Budget
module Span = Telemetry.Span
module Snapshot = Telemetry.Metrics.Snapshot

type failure = { message : string; backtrace : string option }

type 'a outcome =
  | Done of 'a
  | Timeout
  | Budget_exceeded
  | Failed of failure

type 'a job_result = {
  index : int;
  outcome : 'a outcome;
  elapsed_ns : int64;
  worker : int;
}

type stats = {
  workers : int;
  jobs : int;
  wall_ns : int64;
  worker_spans : (string * Span.t) list;
}

let default_jobs () = Domain.recommended_domain_count ()

let pp_outcome pp_done ppf = function
  | Done v -> pp_done ppf v
  | Timeout -> Fmt.string ppf "budget exceeded: timeout"
  | Budget_exceeded -> Fmt.string ppf "budget exceeded: state budget exhausted"
  | Failed f -> Fmt.pf ppf "internal failure: %s" f.message

let outcome_of_stop = function
  | Budget.Timeout -> Timeout
  | Budget.Out_of_states -> Budget_exceeded

let failure_of_exn e =
  (* read the backtrace before anything else can raise over it *)
  let backtrace =
    if Printexc.backtrace_status () then
      match Printexc.get_backtrace () with "" -> None | bt -> Some bt
    else None
  in
  { message = Printexc.to_string e; backtrace }

(* One job, fully isolated: its own budget window, and any exception it
   leaks becomes [Failed] so the rest of the batch still completes. *)
let run_job ~budget ~f ~worker index item =
  let t0 = Telemetry.Clock.now_ns () in
  let outcome =
    match Budget.run budget (fun () -> f worker item) with
    | Ok v -> Done v
    | Error stop -> outcome_of_stop stop
    | exception e -> Failed (failure_of_exn e)
  in
  {
    index;
    outcome;
    elapsed_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0;
    worker;
  }

module Pool = struct
  (* Long-lived worker domains parked on a condition variable between
     batches. The payoff over spawn-per-batch is the warm DLS state:
     each worker keeps its Automata.Store intern/memo tables across
     batches, so constants re-used by consecutive batches are cache
     hits instead of rebuilds.

     Coordination is a single mutex + two conditions. A batch is
     (sequence number, body); workers remember the last sequence they
     ran so a broadcast can never make them run the same batch twice.
     [map] is the only producer and waits for all workers to finish
     before returning, so at most one batch is ever outstanding. *)
  type t = {
    name : string;
    size : int;
    mutex : Mutex.t;
    work : Condition.t; (* new batch posted, or stop *)
    idle : Condition.t; (* all workers finished the current batch *)
    mutable batch : (int * (int -> unit)) option;
    mutable stop : bool;
    mutable finished : int;
    mutable seq : int;
    mutable domains : unit Domain.t list; (* emptied by [shutdown] *)
  }

  let worker_loop t w =
    let rec go last =
      let task =
        Mutex.lock t.mutex;
        let rec wait () =
          if t.stop then None
          else
            match t.batch with
            | Some (s, body) when s <> last -> Some (s, body)
            | _ ->
                Condition.wait t.work t.mutex;
                wait ()
        in
        let r = wait () in
        Mutex.unlock t.mutex;
        r
      in
      match task with
      | None -> ()
      | Some (s, body) ->
          (* [body] traps its own exceptions; nothing may escape here,
             or the whole pool would wedge waiting on [finished]. *)
          body w;
          Mutex.lock t.mutex;
          t.finished <- t.finished + 1;
          if t.finished = t.size then Condition.broadcast t.idle;
          Mutex.unlock t.mutex;
          go s
    in
    go 0

  let create ?(name = "pool") ~size () =
    let size = max 1 size in
    let t =
      {
        name;
        size;
        mutex = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        batch = None;
        stop = false;
        finished = 0;
        seq = 0;
        domains = [];
      }
    in
    t.domains <-
      List.init size (fun w -> Domain.spawn (fun () -> worker_loop t w));
    t

  let size t = t.size
  let alive t = t.domains <> []

  (* Idempotent: the first call joins and empties [domains]; later
     calls see the empty list and return. Every domain is joined even
     if one re-raises a worker exception — the first failure is
     re-raised only after the rest have been joined, so no domain is
     ever leaked. *)
  let shutdown t =
    match t.domains with
    | [] -> ()
    | domains ->
        t.domains <- [];
        Mutex.lock t.mutex;
        t.stop <- true;
        Condition.broadcast t.work;
        Mutex.unlock t.mutex;
        let first = ref None in
        List.iter
          (fun d ->
            match Domain.join d with
            | () -> ()
            | exception e -> (
                match !first with None -> first := Some e | Some _ -> ()))
          domains;
        (match !first with Some e -> raise e | None -> ())

  (* Claim order: indices sorted by descending weight (stable on ties)
     so the most expensive jobs start first and can't strand a lone
     worker at the tail of a skewed mix. Results stay in submission
     order either way. *)
  let claim_order ~weight items =
    let n = Array.length items in
    let order = Array.init n (fun i -> i) in
    (match weight with
    | None -> ()
    | Some wf ->
        let ws = Array.map wf items in
        Array.sort
          (fun a b ->
            match compare ws.(b) ws.(a) with 0 -> compare a b | c -> c)
          order);
    order

  let run_batch t ~budget ~name ~weight ~f items =
    let n = Array.length items in
    let order = claim_order ~weight items in
    (* Slots are disjoint per index and only read after the idle wait
       below, so the plain arrays are race-free. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let trace = Span.enabled () in
    let spans = Array.make t.size None in
    let snaps = Array.make t.size None in
    let harness_error = Atomic.make None in
    let body w =
      match
        (* The worker's registry is cumulative across batches (that is
           the point of a persistent pool), so hand back a per-batch
           diff — absorbing a raw snapshot would double-count. *)
        let before = Snapshot.of_default () in
        let rec claim () =
          let k = Atomic.fetch_and_add next 1 in
          if k < n then begin
            let i = order.(k) in
            results.(i) <- Some (run_job ~budget ~f ~worker:w i items.(i));
            claim ()
          end
        in
        if trace then begin
          let (), sp =
            Span.collect ~name:(Fmt.str "%s-worker-%d" name w) claim
          in
          spans.(w) <- Some sp
        end
        else claim ();
        snaps.(w) <- Some (Snapshot.diff ~after:(Snapshot.of_default ()) ~before)
      with
      | () -> ()
      | exception e ->
          (* Harness failure (run_job already traps job exceptions):
             remember the first one; unfilled slots surface it below. *)
          ignore (Atomic.compare_and_set harness_error None (Some (failure_of_exn e)))
    in
    Mutex.lock t.mutex;
    t.seq <- t.seq + 1;
    t.finished <- 0;
    t.batch <- Some (t.seq, body);
    Condition.broadcast t.work;
    while t.finished < t.size do
      Condition.wait t.idle t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex;
    (* Merge every snapshot that was produced; a failed worker simply
       contributes nothing (no partial, half-raised merge). *)
    Array.iter (function Some s -> Snapshot.absorb s | None -> ()) snaps;
    let worker_spans =
      List.filter_map
        (fun w -> Option.map (fun sp -> (Fmt.str "worker-%d" w, sp)) spans.(w))
        (List.init t.size Fun.id)
    in
    let results =
      Array.to_list
        (Array.mapi
           (fun i r ->
             match r with
             | Some r -> r
             | None ->
                 (* claimed-but-crashed or never claimed because a
                    worker died: surface the first harness failure
                    instead of silently dropping the job *)
                 let failure =
                   match Atomic.get harness_error with
                   | Some f -> f
                   | None ->
                       { message = "job abandoned by worker"; backtrace = None }
                 in
                 {
                   index = i;
                   outcome = Failed failure;
                   elapsed_ns = 0L;
                   worker = -1;
                 })
           results)
    in
    (results, worker_spans)

  let map ?(budget = Budget.unlimited) ?name ?weight t ~f items =
    if not (alive t) then invalid_arg "Engine.Pool.map: pool is shut down";
    let items = Array.of_list items in
    let n = Array.length items in
    let t0 = Telemetry.Clock.now_ns () in
    let results, worker_spans =
      if n = 0 then ([], [])
      else
        run_batch t ~budget
          ~name:(Option.value name ~default:t.name)
          ~weight ~f items
    in
    let wall_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
    (results, { workers = t.size; jobs = n; wall_ns; worker_spans })

  let with_pool ?name ~size f =
    let t = create ?name ~size () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let map ?jobs ?(budget = Budget.unlimited) ?(name = "batch") ?weight ~f items =
  let n = List.length items in
  let workers =
    min (max 1 (Option.value jobs ~default:(default_jobs ()))) (max 1 n)
  in
  let t0 = Telemetry.Clock.now_ns () in
  if workers = 1 then begin
    (* Inline fast path: runs in the calling domain, so spans nest
       into the caller's open trace and the caller's store is used
       directly. *)
    let results =
      List.mapi (fun i item -> run_job ~budget ~f ~worker:0 i item) items
    in
    let wall_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
    (results, { workers = 1; jobs = n; wall_ns; worker_spans = [] })
  end
  else
    let results, stats =
      Pool.with_pool ~name ~size:workers (fun pool ->
          Pool.map ~budget ~name ?weight pool ~f items)
    in
    (* include spawn + shutdown in the batch wall clock, as the old
       spawn-per-map path did *)
    let wall_ns = Int64.sub (Telemetry.Clock.now_ns ()) t0 in
    (results, { stats with wall_ns })
