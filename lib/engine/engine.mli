(** Parallel batch-solve engine.

    [map] fans a list of jobs out over a pool of OCaml 5 domains and
    merges the results {e deterministically}: the returned list is in
    submission order regardless of worker count or scheduling, so any
    output rendered from it is byte-identical for [--jobs 1] and
    [--jobs N]. (Timing lives in {!stats} and in [elapsed_ns]; keep it
    out of deterministic output.)

    Isolation per worker comes from the domain-local design of the
    layers below: each worker domain gets its own {!Automata.Store}
    intern/memo tables, its own {!Telemetry.Span} stack, and its own
    {!Telemetry.Metrics} default registry — no locks, no sharing.
    After the joins the engine absorbs every worker's metrics snapshot
    into the caller's default registry, and hands back the per-worker
    span trees for a multi-lane Chrome trace
    ({!Telemetry.Span.to_chrome_json_lanes}).

    NFA handles from a {!Automata.Store} must not cross domains; jobs
    should take plain inputs (paths, parsed systems) and build their
    automata inside [f]. *)

module Budget = Automata.Budget

(** Result of one job. [Timeout] and [Budget_exceeded] are the two
    {!Budget.stop} conditions, surfaced structurally so one
    pathological job degrades gracefully instead of sinking the batch.
    [Failed] carries the printed exception of a job that raised —
    also contained to that job. *)
type 'a outcome =
  | Done of 'a
  | Timeout
  | Budget_exceeded
  | Failed of string

type 'a job_result = {
  index : int;  (** submission index; results come back sorted by it *)
  outcome : 'a outcome;
  elapsed_ns : int64;  (** per-job wall clock *)
  worker : int;  (** which worker lane ran it (0-based) *)
}

type stats = {
  workers : int;  (** pool size actually used *)
  jobs : int;
  wall_ns : int64;  (** whole-batch wall clock *)
  worker_spans : (string * Telemetry.Span.t) list;
      (** one finished span tree per worker, labelled ["worker-k"] —
          only when a trace collection was open at [map] time, and
          only on the parallel path (with one worker, job spans nest
          directly into the caller's trace) *)
}

(** [Domain.recommended_domain_count ()] — the default pool size. *)
val default_jobs : unit -> int

(** [map ~f items] runs [f worker item] for every item.

    [jobs] (default {!default_jobs}) caps the pool; a pool larger than
    the job list is trimmed. With [jobs = 1] everything runs inline in
    the calling domain. [budget] (default {!Budget.unlimited}) is
    installed afresh around {e each} job, so a wall-clock deadline is
    per-job, not per-batch. [name] (default ["batch"]) prefixes worker
    span names.

    Jobs are claimed from a shared counter, so which worker runs which
    job is nondeterministic — but the result list is always in
    submission order. *)
val map :
  ?jobs:int ->
  ?budget:Budget.t ->
  ?name:string ->
  f:(int -> 'a -> 'b) ->
  'a list ->
  'b job_result list * stats

(** [pp_outcome pp_done] prints [Done v] with [pp_done] and the three
    failure modes as ["budget exceeded: timeout"], ["budget exceeded:
    state budget exhausted"], ["internal failure: <exn>"]. *)
val pp_outcome : 'a Fmt.t -> 'a outcome Fmt.t
