(** Parallel batch-solve engine.

    [map] fans a list of jobs out over a pool of OCaml 5 domains and
    merges the results {e deterministically}: the returned list is in
    submission order regardless of worker count or scheduling, so any
    output rendered from it is byte-identical for [--jobs 1] and
    [--jobs N]. (Timing lives in {!stats} and in [elapsed_ns]; keep it
    out of deterministic output.)

    Isolation per worker comes from the domain-local design of the
    layers below: each worker domain gets its own {!Automata.Store}
    intern/memo tables, its own {!Telemetry.Span} stack, and its own
    {!Telemetry.Metrics} default registry — no locks, no sharing.
    After each batch the engine absorbs every worker's metrics
    snapshot into the caller's default registry, and hands back the
    per-worker span trees for a multi-lane Chrome trace
    ({!Telemetry.Span.to_chrome_json_lanes}).

    For repeated batches, {!Pool} keeps the worker domains (and their
    warm domain-local stores) alive between calls instead of paying a
    [Domain.spawn] per batch. [map] itself remains the one-shot
    convenience wrapper: it builds a transient pool and shuts it down.

    NFA handles from a {!Automata.Store} must not cross domains; jobs
    should take plain inputs (paths, parsed systems) and build their
    automata inside [f]. *)

module Budget = Automata.Budget

(** A job or worker that raised: the printed exception plus the
    recorded backtrace when [Printexc.record_backtrace] was on (and
    nonempty) at the raise site. *)
type failure = { message : string; backtrace : string option }

(** Result of one job. [Timeout] and [Budget_exceeded] are the two
    {!Budget.stop} conditions, surfaced structurally so one
    pathological job degrades gracefully instead of sinking the batch.
    [Failed] carries the failure of a job that raised — also contained
    to that job. *)
type 'a outcome =
  | Done of 'a
  | Timeout
  | Budget_exceeded
  | Failed of failure

type 'a job_result = {
  index : int;  (** submission index; results come back sorted by it *)
  outcome : 'a outcome;
  elapsed_ns : int64;  (** per-job wall clock *)
  worker : int;
      (** which worker lane ran it (0-based); [-1] for a job whose
          worker died before writing a result *)
}

type stats = {
  workers : int;  (** pool size actually used *)
  jobs : int;
  wall_ns : int64;  (** whole-batch wall clock *)
  worker_spans : (string * Telemetry.Span.t) list;
      (** one finished span tree per worker, labelled ["worker-k"] —
          only when a trace collection was open at [map] time, and
          only on the parallel path (with one worker, job spans nest
          directly into the caller's trace) *)
}

(** [Domain.recommended_domain_count ()] — the default pool size. *)
val default_jobs : unit -> int

(** Persistent worker pool: the domains (and their domain-local
    intern/memo stores) survive across {!Pool.map} calls, so constants
    shared by consecutive batches are warm-cache hits instead of
    rebuilds, and the per-batch [Domain.spawn] cost is paid once at
    {!Pool.create}.

    A pool has a single producer: at most one {!Pool.map} may be in
    flight at a time (calls from the owning thread are naturally
    serialized; do not share a pool between threads). *)
module Pool : sig
  type t

  (** [create ~size ()] spawns [max 1 size] worker domains parked
      until the first batch. [name] (default ["pool"]) prefixes worker
      span names for batches that don't override it. *)
  val create : ?name:string -> size:int -> unit -> t

  val size : t -> int

  (** [false] once {!shutdown} has run. *)
  val alive : t -> bool

  (** Run one batch on the pool — same contract as {!Engine.map}
      (submission-order results, per-job budgets, absorbed worker
      snapshots, span lanes) with two pool-specific behaviors: worker
      stores stay warm from previous batches, and [weight] (optional)
      schedules jobs in descending-weight claim order so a skewed mix
      can't strand the tail on one worker. Metrics absorbed after a
      batch are per-batch diffs, never cumulative re-counts.

      If a {e worker} (not a job — job exceptions are already trapped
      per-job) dies mid-batch, every job it stranded comes back as
      [Failed] carrying the first worker failure, and the surviving
      workers' snapshots are still merged: no partial, half-raised
      merge, no leaked domains.

      @raise Invalid_argument if the pool was shut down. *)
  val map :
    ?budget:Budget.t ->
    ?name:string ->
    ?weight:('a -> int) ->
    t ->
    f:(int -> 'a -> 'b) ->
    'a list ->
    'b job_result list * stats

  (** Stop and join all worker domains. Idempotent. Joins {e all}
      domains even when one re-raises; the first failure is re-raised
      only after every domain has been joined, so none leak. *)
  val shutdown : t -> unit

  (** [with_pool ~size f] = [create]; [f pool]; [shutdown] under
      [Fun.protect] — the pool is joined even if [f] raises. *)
  val with_pool : ?name:string -> size:int -> (t -> 'r) -> 'r
end

(** [map ~f items] runs [f worker item] for every item.

    [jobs] (default {!default_jobs}) caps the pool; a pool larger than
    the job list is trimmed. With [jobs = 1] everything runs inline in
    the calling domain. [budget] (default {!Budget.unlimited}) is
    installed afresh around {e each} job, so a wall-clock deadline is
    per-job, not per-batch. [name] (default ["batch"]) prefixes worker
    span names. [weight] orders the claim queue as in {!Pool.map}.

    Jobs are claimed from a shared counter, so which worker runs which
    job is nondeterministic — but the result list is always in
    submission order. The parallel path is a transient {!Pool}: spawn,
    one batch, shutdown (joined under [Fun.protect]). *)
val map :
  ?jobs:int ->
  ?budget:Budget.t ->
  ?name:string ->
  ?weight:('a -> int) ->
  f:(int -> 'a -> 'b) ->
  'a list ->
  'b job_result list * stats

(** [pp_outcome pp_done] prints [Done v] with [pp_done] and the three
    failure modes as ["budget exceeded: timeout"], ["budget exceeded:
    state budget exhausted"], ["internal failure: <message>"] (the
    backtrace, if captured, is not printed here — surface it behind a
    trace flag). *)
val pp_outcome : 'a Fmt.t -> 'a outcome Fmt.t
