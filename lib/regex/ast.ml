type t =
  | Empty
  | Epsilon
  | Chars of Charset.t
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option

type pattern = { re : t; anchored_start : bool; anchored_end : bool }

let whole re = { re; anchored_start = true; anchored_end = true }

let equal = ( = )
let compare = Stdlib.compare

let rec size = function
  | Empty | Epsilon | Chars _ -> 1
  | Seq (a, b) | Alt (a, b) -> 1 + size a + size b
  | Star a | Plus a | Opt a | Repeat (a, _, _) -> 1 + size a

let chars cs = if Charset.is_empty cs then Empty else Chars cs

let seq a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | _ -> Seq (a, b)

let star = function
  | Empty | Epsilon -> Epsilon
  | Star _ as s -> s
  | Plus r | Opt r -> Star r
  | r -> Star r

let plus = function
  | Empty -> Empty
  | Epsilon -> Epsilon
  | Star _ as s -> s
  | r -> Plus r

let opt = function
  | Empty -> Epsilon
  | Epsilon -> Epsilon
  | (Star _ | Opt _) as r -> r
  | Plus r -> Star r
  | r -> Opt r

let alt a b =
  match (a, b) with
  | Empty, r | r, Empty -> r
  | Epsilon, r | r, Epsilon -> opt r
  | Chars c1, Chars c2 -> Chars (Charset.union c1 c2)
  | _ when equal a b -> a
  | _ -> Alt (a, b)

let str s =
  if s = "" then Epsilon
  else
    String.fold_left (fun acc c -> seq acc (Chars (Charset.singleton c))) Epsilon s

let repeat r lo hi =
  if lo < 0 then invalid_arg "Ast.repeat: negative bound";
  (match hi with
  | Some h when h < lo -> invalid_arg "Ast.repeat: max < min"
  | _ -> ());
  match (r, lo, hi) with
  | _, 0, Some 0 -> Epsilon
  | _, 1, Some 1 -> r
  | _, 0, None -> star r
  | _, 1, None -> plus r
  | _, 0, Some 1 -> opt r
  | Empty, 0, _ -> Epsilon
  | Empty, _, _ -> Empty
  | Epsilon, _, _ -> Epsilon
  | _ -> Repeat (r, lo, hi)

let any = Chars Charset.full

(* Printing in a reparseable concrete syntax. Precedence levels:
   0 = alternation, 1 = sequence, 2 = postfix, 3 = atom. *)

let escape_literal c =
  match c with
  | '\\' | '|' | '(' | ')' | '[' | ']' | '{' | '}' | '*' | '+' | '?' | '.' | '^'
  | '$' | '/' ->
      Printf.sprintf "\\%c" c
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | c when Char.code c >= 32 && Char.code c <= 126 -> String.make 1 c
  | c -> Printf.sprintf "\\x%02x" (Char.code c)

let escape_in_class c =
  match c with
  | '\\' | ']' | '^' | '-' -> Printf.sprintf "\\%c" c
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | c when Char.code c >= 32 && Char.code c <= 126 -> String.make 1 c
  | c -> Printf.sprintf "\\x%02x" (Char.code c)

let class_body buf cs =
  List.iter
    (fun (lo, hi) ->
      if hi = lo then Buffer.add_string buf (escape_in_class (Char.chr lo))
      else if hi = lo + 1 then begin
        Buffer.add_string buf (escape_in_class (Char.chr lo));
        Buffer.add_string buf (escape_in_class (Char.chr hi))
      end
      else begin
        Buffer.add_string buf (escape_in_class (Char.chr lo));
        Buffer.add_char buf '-';
        Buffer.add_string buf (escape_in_class (Char.chr hi))
      end)
    (Charset.ranges cs)

let charset_syntax cs =
  if Charset.is_full cs then "."
  else if Charset.equal cs Charset.digit then "\\d"
  else if Charset.equal cs Charset.word then "\\w"
  else if Charset.equal cs Charset.space then "\\s"
  else if Charset.equal cs (Charset.complement Charset.digit) then "\\D"
  else if Charset.equal cs (Charset.complement Charset.word) then "\\W"
  else if Charset.equal cs (Charset.complement Charset.space) then "\\S"
  else
    match Charset.ranges cs with
    | [ (lo, hi) ] when lo = hi -> escape_literal (Char.chr lo)
    | ranges ->
        let buf = Buffer.create 16 in
        (* Prefer the negated form when it is syntactically smaller. *)
        let negated = Charset.complement cs in
        if List.length (Charset.ranges negated) < List.length ranges / 2 then begin
          Buffer.add_string buf "[^";
          class_body buf negated
        end
        else begin
          Buffer.add_char buf '[';
          class_body buf cs
        end;
        Buffer.add_char buf ']';
        Buffer.contents buf

let rec print buf level re =
  let group min_level body =
    if level > min_level then begin
      Buffer.add_string buf "(?:";
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match re with
  | Empty -> Buffer.add_string buf "[^\\x00-\\xff]"
  | Epsilon -> Buffer.add_string buf "(?:)"
  | Chars cs -> Buffer.add_string buf (charset_syntax cs)
  | Seq (a, b) ->
      group 1 (fun () ->
          print buf 1 a;
          print buf 1 b)
  | Alt (a, b) ->
      group 0 (fun () ->
          print buf 0 a;
          Buffer.add_char buf '|';
          print buf 0 b)
  | Star a -> postfix buf a "*"
  | Plus a -> postfix buf a "+"
  | Opt a -> postfix buf a "?"
  | Repeat (a, lo, Some hi) ->
      postfix buf a
        (if lo = hi then Printf.sprintf "{%d}" lo else Printf.sprintf "{%d,%d}" lo hi)
  | Repeat (a, lo, None) -> postfix buf a (Printf.sprintf "{%d,}" lo)

and postfix buf a suffix =
  print buf 2 a;
  Buffer.add_string buf suffix

let to_string re =
  let buf = Buffer.create 32 in
  print buf 0 re;
  Buffer.contents buf

let pp ppf re = Fmt.string ppf (to_string re)

let pp_pattern ppf { re; anchored_start; anchored_end } =
  Fmt.pf ppf "/%s%s%s/"
    (if anchored_start then "^" else "")
    (to_string re)
    (if anchored_end then "$" else "")
