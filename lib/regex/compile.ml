module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Store = Automata.Store

let rec compile : Ast.t -> Nfa.t = function
  | Empty -> Nfa.empty_lang
  | Epsilon -> Nfa.epsilon_lang
  | Chars cs -> if Charset.is_empty cs then Nfa.empty_lang else Nfa.of_charset cs
  | Seq (a, b) -> Ops.concat_lang (compile a) (compile b)
  | Alt (a, b) -> Ops.union_lang (compile a) (compile b)
  | Star a -> Ops.star (compile a)
  | Plus a -> Ops.plus (compile a)
  | Opt a -> Ops.opt (compile a)
  | Repeat (a, lo, hi) -> Ops.repeat (compile a) ~min_count:lo ~max_count:hi

(* Compiled constants are interned: textually repeated regexes across
   constraint files, Fig. 12 rows, and symexec paths collapse to one
   handle, so every downstream memo (determinization, subset, ci) hits
   across those repetitions. The interned handle is tagged with the
   originating AST ({!Symbolic.attach}), which is what lets the tiered
   query front-end answer questions about compiled constants without
   re-touching the machine. *)
let to_nfa ast =
  let h = Store.intern (compile ast) in
  Symbolic.attach h ast;
  Store.nfa h

(* The substring-semantics padding, mirrored on the AST so the padded
   machine's provenance matches its language exactly. *)
let pattern_ast { Ast.re; anchored_start; anchored_end } =
  let re = if anchored_end then re else Ast.seq re (Ast.star Ast.any) in
  if anchored_start then re else Ast.seq (Ast.star Ast.any) re

let pattern_to_nfa ({ Ast.re; anchored_start; anchored_end } as pattern) =
  let core = compile re in
  let with_prefix =
    if anchored_start then core else Ops.concat_lang Nfa.sigma_star core
  in
  let padded =
    if anchored_end then with_prefix else Ops.concat_lang with_prefix Nfa.sigma_star
  in
  let h = Store.intern padded in
  Symbolic.attach h (pattern_ast pattern);
  Store.nfa h

let pattern_reject_nfa pattern =
  let h = Store.intern (pattern_to_nfa pattern) in
  Store.canon (Automata.Dfa.to_nfa (Automata.Dfa.complement (Store.dfa h)))
