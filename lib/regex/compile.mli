(** Thompson compilation of regexes to single-start/single-final
    ε-NFAs, the machine format the solver consumes.

    Compiled machines are interned through {!Automata.Store}: the
    returned NFA is the store's representative for its language key,
    so repeated compilations of the same (or structurally equivalent)
    regex yield physically shared machines and downstream memoized
    operations hit across them. With the store disabled ([--no-cache])
    compilation returns the raw Thompson machine unchanged.

    Compiled machines carry AST provenance ({!Symbolic.attach}), so
    language queries between them are answered by the symbolic
    derivative tier of {!Automata.Query} whenever it can. *)

val to_nfa : Ast.t -> Automata.Nfa.t

(** The Σ*-padded AST matching {!pattern_to_nfa}'s language — the
    provenance attached to the padded machine. *)
val pattern_ast : Ast.pattern -> Ast.t

(** Language of inputs {e accepted by} a [preg_match]-style check: an
    unanchored side is padded with Σ*, so e.g. the paper's faulty
    [/[\d]+$/] compiles to [Σ* · [0-9]+] — every string that merely
    {e ends} with digits. *)
val pattern_to_nfa : Ast.pattern -> Automata.Nfa.t

(** Language of inputs {e rejected} by the check (complement of
    {!pattern_to_nfa}); used when an analysis follows the
    pattern-failed branch. *)
val pattern_reject_nfa : Ast.pattern -> Automata.Nfa.t
