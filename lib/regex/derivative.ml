let rec nullable : Ast.t -> bool = function
  | Empty | Chars _ -> false
  | Epsilon | Star _ | Opt _ -> true
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Plus a -> nullable a
  | Repeat (a, lo, _) -> lo = 0 || nullable a

(* All construction is routed through [Simplify.norm] so every
   derivative we hand out is already in rewrite normal form; the
   coinductive loops below rely on that to quotient their visited
   sets. *)

let rec deriv_raw c : Ast.t -> Ast.t = function
  | Empty | Epsilon -> Empty
  | Chars cs -> if Charset.mem c cs then Epsilon else Empty
  | Seq (a, b) ->
      let da_b = Ast.seq (deriv_raw c a) b in
      if nullable a then Ast.alt da_b (deriv_raw c b) else da_b
  | Alt (a, b) -> Ast.alt (deriv_raw c a) (deriv_raw c b)
  | Star a as star -> Ast.seq (deriv_raw c a) star
  | Plus a -> Ast.seq (deriv_raw c a) (Ast.star a)
  | Opt a -> deriv_raw c a
  | Repeat (a, lo, hi) ->
      let rest =
        Ast.repeat a (max 0 (lo - 1)) (Option.map (fun h -> h - 1) hi)
      in
      (* d(a{0,0}) is handled by [Ast.repeat] collapsing to ε above;
         here hi ≥ 1 whenever the Repeat node survived the smart
         constructor. *)
      Ast.seq (deriv_raw c a) rest

let deriv c r = Simplify.norm (deriv_raw c r)

let matches re w =
  nullable (String.fold_left (fun r c -> deriv c r) re w)

let pattern_matches { Ast.re; anchored_start; anchored_end } w =
  let re = if anchored_end then re else Ast.seq re (Ast.star Ast.any) in
  let re = if anchored_start then re else Ast.seq (Ast.star Ast.any) re in
  matches re w

(* Emptiness is decidable syntactically for this operator set (no
   complement or intersection in the AST): a term denotes ∅ iff an ∅
   leaf survives under every alternative. *)
let rec is_empty : Ast.t -> bool = function
  | Empty -> true
  | Epsilon | Star _ | Opt _ -> false
  | Chars cs -> Charset.is_empty cs
  | Seq (a, b) -> is_empty a || is_empty b
  | Alt (a, b) -> is_empty a && is_empty b
  | Plus a -> is_empty a
  | Repeat (a, lo, _) -> lo > 0 && is_empty a

(* Antimirov partial derivatives: [pd c r] is a set of terms whose
   union of languages is the Brzozowski derivative of [r] by [c].
   Working with term sets instead of one alternation keeps each term
   small and makes the reachable state space of the inclusion check a
   subset of a finite syntactic universe. *)
let rec pd c : Ast.t -> Ast.t list = function
  | Empty | Epsilon -> []
  | Chars cs -> if Charset.mem c cs then [ Ast.Epsilon ] else []
  | Seq (a, b) ->
      let da = List.map (fun a' -> Ast.seq a' b) (pd c a) in
      if nullable a then da @ pd c b else da
  | Alt (a, b) -> pd c a @ pd c b
  | Star a as star -> List.map (fun a' -> Ast.seq a' star) (pd c a)
  | Plus a -> List.map (fun a' -> Ast.seq a' (Ast.star a)) (pd c a)
  | Opt a -> pd c a
  | Repeat (a, lo, hi) ->
      let rest =
        Ast.repeat a (max 0 (lo - 1)) (Option.map (fun h -> h - 1) hi)
      in
      List.map (fun a' -> Ast.seq a' rest) (pd c a)

(* Derivative of a term set, normalized and deduplicated. *)
let pd_set c terms =
  List.sort_uniq Ast.compare
    (List.concat_map (fun r -> List.map Simplify.norm (pd c r)) terms)

(* Local mintermization (Keil & Thiemann): the character classes that
   matter at a state are the refinement of the first-sets of its
   terms. Within a refined block every character induces the same
   partial derivatives, so we derive once per block using an arbitrary
   representative. Characters outside every first-set derive all terms
   to ∅ and need no exploration. *)
let rec first_sets acc : Ast.t -> Charset.t list = function
  | Empty | Epsilon -> acc
  | Chars cs -> cs :: acc
  | Seq (a, b) ->
      if nullable a then first_sets (first_sets acc a) b else first_sets acc a
  | Alt (a, b) -> first_sets (first_sets acc a) b
  | Star a | Plus a | Opt a | Repeat (a, _, _) -> first_sets acc a

let classes_of terms =
  Charset.refine (List.fold_left first_sets [] terms)

(* Bail thresholds: inputs above [max_ast_size] skip the symbolic tier
   outright; explorations visiting more than [fuel] states abandon it.
   Both bails return [None] — never a wrong answer. *)
let max_ast_size = 256
let default_fuel = 2048

(* Inclusion L(r1) ⊆ L(r2) by coinduction over pairs (p, Q) of one
   Antimirov term of r1 against the determinized term set of r2. A
   state refutes inclusion iff p is nullable and no member of Q is;
   if no reachable state refutes it, inclusion holds. *)
let subset ?(fuel = default_fuel) r1 r2 =
  if Ast.size r1 > max_ast_size || Ast.size r2 > max_ast_size then None
  else begin
    let r1 = Simplify.norm r1 and r2 = Simplify.norm r2 in
    let exception Bail in
    let exception Refuted in
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    let push p q =
      let state = (p, q) in
      if not (Hashtbl.mem visited state) then begin
        if Hashtbl.length visited >= fuel then raise Bail;
        Hashtbl.replace visited state ();
        Queue.add state queue
      end
    in
    try
      push r1 [ r2 ];
      while not (Queue.is_empty queue) do
        Automata.Budget.tick ();
        let p, q = Queue.pop queue in
        if nullable p && not (List.exists nullable q) then raise Refuted;
        List.iter
          (fun cls ->
            let c = Charset.choose cls in
            match pd c p with
            | [] -> ()
            | ps ->
                let q' = pd_set c q in
                List.iter (fun p' -> push (Simplify.norm p') q') ps)
          (classes_of (p :: q))
      done;
      Some true
    with
    | Refuted -> Some false
    | Bail -> None
  end

let equal ?fuel r1 r2 =
  match subset ?fuel r1 r2 with
  | Some true -> subset ?fuel r2 r1
  | other -> other

(* Disjointness L(r1) ∩ L(r2) = ∅ by coinduction over pairs of
   determinized term sets; a common word exists iff some reachable
   pair is nullable on both sides. *)
let disjoint ?(fuel = default_fuel) r1 r2 =
  if Ast.size r1 > max_ast_size || Ast.size r2 > max_ast_size then None
  else begin
    let r1 = Simplify.norm r1 and r2 = Simplify.norm r2 in
    if is_empty r1 || is_empty r2 then Some true
    else begin
      let exception Bail in
      let exception Overlap in
      let visited = Hashtbl.create 64 in
      let queue = Queue.create () in
      let push p q =
        let state = (p, q) in
        if not (Hashtbl.mem visited state) then begin
          if Hashtbl.length visited >= fuel then raise Bail;
          Hashtbl.replace visited state ();
          Queue.add state queue
        end
      in
      try
        push [ r1 ] [ r2 ];
        while not (Queue.is_empty queue) do
          Automata.Budget.tick ();
          let p, q = Queue.pop queue in
          if List.exists nullable p && List.exists nullable q then
            raise Overlap;
          List.iter
            (fun cls ->
              let c = Charset.choose cls in
              match (pd_set c p, pd_set c q) with
              | [], _ | _, [] -> ()
              | p', q' -> push p' q')
            (classes_of (p @ q))
        done;
        Some true
      with
      | Overlap -> Some false
      | Bail -> None
    end
  end
