(** Derivative-based symbolic language queries.

    An automaton-free implementation of matching and of the
    yes/no language queries (inclusion, equivalence, emptiness,
    disjointness), used both as the reference oracle against which the
    Thompson compiler is property-tested and as the first tier of
    {!Automata.Query}: Antimirov partial derivatives over {!Charset}
    classes (local mintermization — derive once per class, not per
    character, per Keil & Thiemann 2014) with a visited-set
    coinduction quotiented by {!Simplify.norm} rewrite normal forms.

    The decision procedures return [Some] only when the answer is
    certain; [None] means the check bailed on input size or fuel and
    the caller should fall back to the automata kernels. They tick
    {!Automata.Budget} like the BFS loops, so a surrounding
    [Budget.run] bounds them too. *)

(** Does the regex accept the empty string? *)
val nullable : Ast.t -> bool

(** [deriv c r] is the Brzozowski derivative: a regex for
    [{ w | c·w ∈ L(r) }]. Output is in {!Simplify.norm} rewrite
    normal form. *)
val deriv : char -> Ast.t -> Ast.t

(** Membership by repeated derivation. *)
val matches : Ast.t -> string -> bool

(** Pattern-level matching with [preg_match] substring semantics. *)
val pattern_matches : Ast.pattern -> string -> bool

(** [pd c r] is the Antimirov partial derivative: a set of terms whose
    languages union to [L(deriv c r)]. Not normalized; the decision
    procedures normalize via {!Simplify.norm} as they go. *)
val pd : char -> Ast.t -> Ast.t list

(** Syntactic emptiness — exact for this operator set (no complement
    or intersection in the AST), so it always answers. *)
val is_empty : Ast.t -> bool

(** [subset r1 r2] decides [L(r1) ⊆ L(r2)]. [None] = bailed
    (AST larger than 256 nodes, or more than [fuel] visited states;
    default fuel 2048). *)
val subset : ?fuel:int -> Ast.t -> Ast.t -> bool option

(** [equal r1 r2] decides [L(r1) = L(r2)] by two-sided inclusion. *)
val equal : ?fuel:int -> Ast.t -> Ast.t -> bool option

(** [disjoint r1 r2] decides [L(r1) ∩ L(r2) = ∅]. *)
val disjoint : ?fuel:int -> Ast.t -> Ast.t -> bool option
