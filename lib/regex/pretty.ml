let rec flatten_alt = function
  | Ast.Alt (a, b) -> flatten_alt a @ flatten_alt b
  | r -> [ r ]

let build_alt = function
  | [] -> Ast.Empty
  | first :: rest -> List.fold_left Ast.alt first rest

(* Semantic pruning: drop an alternation branch whose language is
   contained in a sibling's. Quadratic in the number of branches, one
   language query per comparison; queries go through the tiered
   front-end, so most prunes are answered symbolically without
   determinizing. *)
let prune_alternatives r =
  let rec go r =
    match r with
    | Ast.Alt _ ->
        let branches = List.map go (flatten_alt r) in
        let compiled =
          List.map (fun b -> (b, Automata.Store.intern (Compile.to_nfa b))) branches
        in
        let subset = Automata.Query.subset in
        let keep =
          List.filteri
            (fun i (_, mi) ->
              not
                (List.exists
                   (fun (j, (_, mj)) ->
                     i <> j
                     && subset mi mj
                     && ((not (subset mj mi)) || j < i))
                   (List.mapi (fun j x -> (j, x)) compiled)))
            compiled
        in
        build_alt (List.map fst keep)
    | Ast.Seq (a, b) -> Ast.seq (go a) (go b)
    | Ast.Star a -> Ast.star (go a)
    | Ast.Plus a -> Ast.plus (go a)
    | Ast.Opt a -> Ast.opt (go a)
    | Ast.Repeat (a, lo, hi) -> Ast.repeat (go a) lo hi
    | leaf -> leaf
  in
  go r

let pretty m =
  Ast.to_string
    (Simplify.simplify (prune_alternatives (Simplify.simplify (State_elim.to_regex m))))
