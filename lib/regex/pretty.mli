(** User-facing regex rendering.

    {!Simplify} is purely syntactic; this module adds the
    oracle-backed step: [prune_alternatives] drops alternation
    branches whose language is subsumed by a sibling's
    ([ab|a.* → a.*]). Each comparison is a language query through
    {!Automata.Query}, so the symbolic derivative tier answers most of
    them without determinizing; reserve it for user-facing output all
    the same. *)

val prune_alternatives : Ast.t -> Ast.t

(** [pretty m] = state-eliminate, simplify, prune: the nicest
    rendering of a machine's language we can produce. *)
val pretty : Automata.Nfa.t -> string
