(* Bottom-up rewriting to a fixpoint, with [Ast.size] as the cost
   function so rewriting terminates even when rules could ping-pong. *)

let rec flatten_alt = function
  | Ast.Alt (a, b) -> flatten_alt a @ flatten_alt b
  | r -> [ r ]

let rec flatten_seq = function
  | Ast.Seq (a, b) -> flatten_seq a @ flatten_seq b
  | r -> [ r ]

(* View a factor as a repetition of a base: [a* = a{0,∞}], etc. *)
let as_repeat = function
  | Ast.Star r -> (r, 0, None)
  | Ast.Plus r -> (r, 1, None)
  | Ast.Opt r -> (r, 0, Some 1)
  | Ast.Repeat (r, lo, hi) -> (r, lo, hi)
  | r -> (r, 1, Some 1)

let rebuild_repeat (base, lo, hi) = Ast.repeat base lo hi

(* Fuse adjacent factors over the same base: a{i,j} a{k,l} = a{i+k, j+l}. *)
let fuse_seq factors =
  let rec go = function
    | [] -> []
    | [ f ] -> [ f ]
    | f1 :: f2 :: rest ->
        let b1, lo1, hi1 = as_repeat f1 in
        let b2, lo2, hi2 = as_repeat f2 in
        if Ast.equal b1 b2 then
          let hi =
            match (hi1, hi2) with Some h1, Some h2 -> Some (h1 + h2) | _ -> None
          in
          go (rebuild_repeat (b1, lo1 + lo2, hi) :: rest)
        else f1 :: go (f2 :: rest)
  in
  go factors

let build_seq factors = List.fold_left Ast.seq Ast.Epsilon factors

let build_alt branches =
  match branches with
  | [] -> Ast.Empty
  | first :: rest -> List.fold_left Ast.alt first rest

(* Factor a common first factor out of alternation branches:
   ab|ac → a(b|c). Only factors when at least two branches share the
   head, and keeps the remaining branches untouched. *)
let factor_heads branches =
  let heads =
    List.map
      (fun branch ->
        match flatten_seq branch with
        | head :: tail -> (head, tail)
        | [] -> (Ast.Epsilon, []))
      branches
  in
  let rec group = function
    | [] -> []
    | (head, tail) :: rest ->
        let same, other = List.partition (fun (h, _) -> Ast.equal h head) rest in
        if same = [] then build_seq (head :: tail) :: group other
        else
          let tails = tail :: List.map snd same in
          Ast.seq head (build_alt (List.map build_seq tails)) :: group other
  in
  group heads

let factor_tails branches =
  let rev_seq branch = List.rev (flatten_seq branch) in
  let rec group = function
    | [] -> []
    | first :: rest -> (
        match rev_seq first with
        | [] -> first :: group rest
        | last :: rev_front ->
            let same, other =
              List.partition
                (fun b ->
                  match rev_seq b with
                  | l :: _ -> Ast.equal l last
                  | [] -> false)
                rest
            in
            if same = [] then first :: group other
            else
              let fronts =
                List.rev rev_front
                :: List.map (fun b -> List.rev (List.tl (rev_seq b))) same
              in
              Ast.seq (build_alt (List.map build_seq fronts)) last :: group other)
  in
  group branches

let simp_alt branches =
  (* dedup, merge charsets, strip ε into a trailing [opt] *)
  let branches = List.sort_uniq Ast.compare branches in
  let chars, others =
    List.partition_map
      (function Ast.Chars cs -> Left cs | r -> Right r)
      branches
  in
  let merged_chars =
    match chars with
    | [] -> []
    | _ -> [ Ast.chars (List.fold_left Charset.union Charset.empty chars) ]
  in
  let has_eps = List.mem Ast.Epsilon others in
  let others = List.filter (fun r -> r <> Ast.Epsilon) others in
  let candidates = merged_chars @ others in
  let factored_h = factor_heads candidates in
  let factored_t = factor_tails candidates in
  let pick xs ys =
    let size_of l = List.fold_left (fun acc r -> acc + Ast.size r) 0 l in
    if size_of xs <= size_of ys then xs else ys
  in
  let result = build_alt (pick (pick candidates factored_h) factored_t) in
  if has_eps then Ast.opt result else result

let rec once r =
  match r with
  | Ast.Empty | Ast.Epsilon | Ast.Chars _ -> r
  | Ast.Seq _ -> build_seq (fuse_seq (List.map once (flatten_seq r)))
  | Ast.Alt _ -> simp_alt (List.map once (flatten_alt r))
  | Ast.Star a -> Ast.star (once a)
  | Ast.Plus a -> Ast.plus (once a)
  | Ast.Opt a -> Ast.opt (once a)
  | Ast.Repeat (a, lo, hi) -> Ast.repeat (once a) lo hi

let norm = once

let simplify r =
  let rec fixpoint r budget =
    let r' = once r in
    if budget = 0 || Ast.equal r' r || Ast.size r' >= Ast.size r then
      if Ast.size r' < Ast.size r then r' else r
    else fixpoint r' (budget - 1)
  in
  fixpoint r 8
