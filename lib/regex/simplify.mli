(** Algebraic regex simplification.

    State elimination ({!State_elim}) produces correct but noisy
    expressions; this module rewrites them into smaller equivalent
    ones. All rewrites are language-preserving (property-tested
    against the Thompson/derivative semantics).

    [simplify] is purely syntactic: flattening, deduplication,
    charset-merging in alternations, quantifier fusion on equal bases
    ([a a* → a+], [a{1,2}a{0,3} → a{1,5}]), and common prefix/suffix
    factoring ([ab|ac → a(b|c)]).

    Semantic (oracle-backed) pruning of alternation branches lives in
    {!Pretty}, which may compile machines; everything here is pure AST
    rewriting. *)

val simplify : Ast.t -> Ast.t

(** [norm r] is a single bottom-up canonicalization pass: flattening,
    branch sorting/dedup, charset merging, quantifier fusion and
    prefix/suffix factoring, all rebuilt through the smart
    constructors. It is the normal form used by {!Derivative} to
    quotient its coinductive visited set — every derivative term is
    routed through [norm] so similar terms collapse to one
    representative and the state space stays finite. Deterministic and
    language-preserving; cheaper than the [simplify] fixpoint. *)
val norm : Ast.t -> Ast.t
