module Store = Automata.Store
module Query = Automata.Query

type Store.prov += Regex_ast of Ast.t

let ast h =
  match Store.provenance h with
  | Some (Regex_ast a) -> Some a
  | _ -> None

let attach h a = Store.set_provenance h (Regex_ast a)

(* Combined ASTs above this size would bust the derivative checker's
   own size bail anyway; refusing early keeps provenance chains from
   growing without bound across long concat/union folds. *)
let combine_cap = 192

(* Registration happens at module init: [Compile] references [attach],
   so linking the compiler links this module and installs the tier. *)
let () =
  Query.register
    ~subset:(fun p1 p2 ->
      match (p1, p2) with
      | Regex_ast a, Regex_ast b -> Derivative.subset a b
      | _ -> None)
    ~disjoint:(fun p1 p2 ->
      match (p1, p2) with
      | Regex_ast a, Regex_ast b -> Derivative.disjoint a b
      | _ -> None)
    ~is_empty:(function
      | Regex_ast a -> Some (Derivative.is_empty a)
      | _ -> None);
  Store.set_prov_of_word (fun w -> Regex_ast (Ast.str w));
  Store.set_prov_of_top (Regex_ast (Ast.star Ast.any));
  Store.set_prov_combiner (fun ~op p1 p2 ->
      match (p1, p2) with
      | Regex_ast a, Regex_ast b when Ast.size a + Ast.size b <= combine_cap ->
          Some
            (Regex_ast
               (match op with
               | `Concat -> Ast.seq a b
               | `Union -> Ast.alt a b))
      | _ -> None)
