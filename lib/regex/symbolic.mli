(** The regex layer's side of the tiered query front-end.

    Declares the [Regex_ast] provenance constructor and, at module
    init, registers the {!Derivative} checkers with
    {!Automata.Query} plus the {!Automata.Store} provenance hooks
    (word literals, Σ*, concat/union composition). {!Compile}
    references {!attach}, so any program that compiles a regex gets
    the symbolic tier installed for free. *)

type Automata.Store.prov += Regex_ast of Ast.t

(** Tag a handle with the AST it was compiled from. The tag must
    denote exactly the handle's language. *)
val attach : Automata.Store.handle -> Ast.t -> unit

(** The originating AST, if this handle carries one. *)
val ast : Automata.Store.handle -> Ast.t option
