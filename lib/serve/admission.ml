type t = { mutable ewma_ns : float; mutable samples : int }

let create () = { ewma_ns = 0.; samples = 0 }

let alpha = 0.2

let observe t ~service_ns =
  let s = Int64.to_float service_ns in
  t.samples <- t.samples + 1;
  t.ewma_ns <-
    (if t.samples = 1 then s else (alpha *. s) +. ((1. -. alpha) *. t.ewma_ns))

let ewma_ns t = t.ewma_ns

let projected_wait_ms t ~queue_depth ~workers =
  if t.samples = 0 || queue_depth <= 0 then 0
  else
    int_of_float
      (Float.ceil
         (t.ewma_ns *. float_of_int queue_depth
         /. float_of_int (max 1 workers)
         /. 1e6))

type decision = Admit | Reject of Api.Response.rejection

let decide t ~queue_depth ~workers ~budget_ms =
  match budget_ms with
  | None -> Admit
  | Some deadline ->
      let projected_wait_ms = projected_wait_ms t ~queue_depth ~workers in
      if projected_wait_ms > deadline then
        Reject { Api.Response.projected_wait_ms; queue_depth }
      else Admit
