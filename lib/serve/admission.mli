(** Deadline-based admission control for the daemon's request queue.

    The rule: a request that carries a [budget_ms] deadline is
    rejected {e before} it is enqueued when the queue's projected wait
    already exceeds that deadline — the client would pay its whole
    budget standing in line and then time out mid-solve anyway, so the
    structured 429-style answer ({!Api.Response.Over_capacity}, with
    the projection that triggered it) is strictly more useful.
    Requests without a deadline are always admitted (subject to the
    server's hard queue cap, which is a separate guard).

    The projection is an exponentially-weighted moving average of
    recent per-request service times (α = 0.2, so a pathological
    outlier decays in a few requests), scaled by the queue depth and
    divided by the worker count. Pure arithmetic, no clock reads —
    unit-testable without a socket in sight. *)

type t

val create : unit -> t

(** Fold one completed request's service time into the EWMA. *)
val observe : t -> service_ns:int64 -> unit

(** Current EWMA in nanoseconds (0 before any observation). *)
val ewma_ns : t -> float

(** Projected queue wait for a request arriving behind [queue_depth]
    pending requests on [workers] workers, in milliseconds (rounded
    up; 0 before any observation). *)
val projected_wait_ms : t -> queue_depth:int -> workers:int -> int

type decision = Admit | Reject of Api.Response.rejection

val decide :
  t -> queue_depth:int -> workers:int -> budget_ms:int option -> decision
