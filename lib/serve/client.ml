type t = { fd : Unix.file_descr; buf : Buffer.t }

let sockaddr_of = function
  | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
  | Server.Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      (Unix.ADDR_INET (addr, port), Unix.PF_INET)

let connect ?(retries = 100) listen =
  let sockaddr, domain = sockaddr_of listen in
  let rec go n =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () ->
        (* a stuck server must fail tests, not hang them *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
        Ok { fd; buf = Buffer.create 4096 }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when n > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        go (n - 1)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Unix.error_message e)
  in
  go retries

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t s =
  try
    let rec go off len =
      if len > 0 then begin
        let n = Unix.write_substring t.fd s off len in
        go (off + n) (len - n)
      end
    in
    go 0 (String.length s);
    Ok ()
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let recv_line t =
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents t.buf in
    match String.index_opt s '\n' with
    | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear t.buf;
        Buffer.add_substring t.buf s (i + 1) (String.length s - i - 1);
        Some line
    | None -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes t.buf chunk 0 n;
            go ()
        | exception
            Unix.Unix_error
              ((ECONNRESET | EPIPE | EAGAIN | EWOULDBLOCK), _, _) ->
            None)
  in
  go ()

(* Responses are not capped like server-side requests are: a witness
   list can legitimately outgrow the request cap. *)
let response_max_bytes = 16 * 1024 * 1024

let request t req =
  match send_raw t (Api.encode_request req ^ "\n") with
  | Error e -> Error e
  | Ok () -> (
      match recv_line t with
      | None -> Error "connection closed"
      | Some line -> (
          match Api.decode_response ~max_bytes:response_max_bytes line with
          | Ok resp -> Ok resp
          | Error rej -> Error (Fmt.str "%a" Api.pp_reject rej)))

let scrape listen =
  match connect listen with
  | Error e -> Error e
  | Ok t -> (
      let read_all () =
        let chunk = Bytes.create 4096 in
        let buf = Buffer.create 4096 in
        let rec go () =
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Buffer.contents buf
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              go ()
          | exception
              Unix.Unix_error
                ((ECONNRESET | EAGAIN | EWOULDBLOCK), _, _) ->
              Buffer.contents buf
        in
        go ()
      in
      let result =
        match send_raw t "GET /metrics HTTP/1.0\r\n\r\n" with
        | Error e -> Error e
        | Ok () -> (
            let raw = read_all () in
            (* body = everything after the header/body separator *)
            let sep = "\r\n\r\n" in
            let rec find i =
              if i + String.length sep > String.length raw then None
              else if String.sub raw i (String.length sep) = sep then Some i
              else find (i + 1)
            in
            match find 0 with
            | Some i ->
                Ok
                  (String.sub raw
                     (i + String.length sep)
                     (String.length raw - i - String.length sep))
            | None -> Error "no HTTP header/body separator in scrape reply")
      in
      close t;
      result)
