(** Blocking line-framed client for the daemon — the transport under
    [dprle-loadgen] and the serve test-suites. One request in flight
    per connection; a 30 s receive timeout guards tests against a hung
    server. *)

type t

(** Connect, retrying connection-refused/not-yet-bound every 50 ms up
    to [retries] (default 100, i.e. ~5 s) — enough for "start daemon,
    connect" scripts with no sleep. *)
val connect : ?retries:int -> Server.listen -> (t, string) result

(** Send one request frame and block for its response frame. *)
val request : t -> Api.Request.t -> (Api.Response.t, string) result

(** Escape hatch for protocol-abuse tests: send raw bytes verbatim
    (no framing added). *)
val send_raw : t -> string -> (unit, string) result

(** Next complete line, or [None] on EOF/timeout. *)
val recv_line : t -> string option

(** One-shot HTTP [GET /metrics] scrape: returns the response body
    (Prometheus text format). *)
val scrape : Server.listen -> (string, string) result

val close : t -> unit
