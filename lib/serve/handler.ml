module Snapshot = Telemetry.Metrics.Snapshot

let sum_counter snap name =
  List.fold_left
    (fun acc (n, _labels, v) -> if String.equal n name then acc + v else acc)
    0 (Snapshot.counters snap)

(* Counter series flattened to the registry's pp spelling
   ("store.opcache.hit{op=inter_lang}"), sorted for determinism. *)
let flat_counters snap =
  Snapshot.counters snap
  |> List.map (fun (name, labels, v) ->
         let rendered =
           match labels with
           | [] -> name
           | labels ->
               name ^ "{"
               ^ String.concat ","
                   (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
               ^ "}"
         in
         (rendered, v))
  |> List.sort compare

let parse_reject pp e =
  Api.Response.Error
    { code = Api.Response.Parse_error; message = Fmt.str "%a" pp e }

let solve (p : Api.Request.solve_params) =
  match Dprle.Sysparse.parse p.system with
  | Error e -> parse_reject Dprle.Sysparse.pp_error e
  | Ok system -> (
      let config =
        Dprle.Solver.Config.make ~max_solutions:p.max_solutions
          ~combination_limit:p.combination_limit ()
      in
      match Dprle.Solver.run config system with
      | Error err ->
          Api.Response.Error
            {
              code = Api.Response.Budget_exceeded;
              message = Dprle.Solver.Error.to_string err;
            }
      | Ok (Dprle.Solver.Unsat { reason; core }) ->
          Api.Response.Unsat
            {
              reason = Dprle.Solver.unsat_message reason;
              core = List.map (Fmt.str "%a" Dprle.System.pp_constr) core;
            }
      | Ok (Dprle.Solver.Sat solutions) ->
          let witnesses =
            if p.witnesses then
              List.filter_map Dprle.Assignment.witness solutions
            else []
          in
          Api.Response.Sat { solutions = List.length solutions; witnesses })

(* check = solve capped at one solution, witness extraction skipped —
   the wire twin of [dprle check]. *)
let check system_text =
  solve
    {
      (Api.Request.solve_defaults ~system:system_text) with
      Api.Request.max_solutions = 1;
    }

let lint system_text =
  match Dprle.Sysparse.parse system_text with
  | Error e -> parse_reject Dprle.Sysparse.pp_error e
  | Ok system ->
      let findings =
        Dprle.Static.lint system
        |> List.map (fun (f : Dprle.Static.finding) ->
               {
                 Api.Response.severity =
                   Fmt.str "%a" Dprle.Static.pp_severity f.severity;
                 check = f.check;
                 message = f.message;
               })
      in
      Api.Response.Lint_report { findings }

(* Same constant as webcheck's --prepass-paths default. *)
let prepass_paths = 8

(* The webcheck CLI pipeline (prepass → fixpoint prune → symbolic
   execution → per-candidate solve), re-emitted as structured sinks
   instead of prose. One intentional divergence: the CLI degrades a
   budget-exhausted static analysis to "no pruning" because its budget
   is per-candidate, whereas here the ambient budget installed by
   {!handle} covers the whole request — exhaustion anywhere becomes
   one [Budget_exceeded] error response. *)
let webcheck (p : Api.Request.webcheck_params) =
  match Webapp.Lang_parser.parse p.program with
  | Error e -> parse_reject Webapp.Lang_parser.pp_error e
  | Ok program -> (
      match Webapp.Attack.lookup p.attack with
      | None ->
          Api.Response.Error
            {
              code = Api.Response.Parse_error;
              message =
                Fmt.str "unknown attack language %S (known: %s)" p.attack
                  (String.concat ", " Webapp.Attack.names);
            }
      | Some attack ->
          let static =
            if not p.static_prune then None
            else
              let decision =
                Analysis.Prepass.decide ~path_budget:prepass_paths program
              in
              if not decision.Analysis.Prepass.run_fixpoint then None
              else Some (Analysis.Fixpoint.analyze_cached ~attack program)
          in
          let safe_ids =
            match static with
            | Some r -> Analysis.Fixpoint.safe_sink_ids r
            | None -> []
          in
          let total_sinks = List.length (Webapp.Ast.sinks program) in
          let all_pruned =
            static <> None && total_sinks > 0
            && List.length safe_ids = total_sinks
          in
          let { Webapp.Symexec.candidates; paths_truncated } =
            if all_pruned then
              { Webapp.Symexec.candidates = []; paths_truncated = false }
            else Webapp.Symexec.analyze ~max_paths:p.max_paths ~attack program
          in
          let candidates =
            List.filter
              (fun (q : Webapp.Symexec.query) ->
                not (List.mem q.Webapp.Symexec.sink_id safe_ids))
              candidates
          in
          let solved =
            List.map
              (fun (q : Webapp.Symexec.query) ->
                let verdict = Webapp.Symexec.solve q in
                let status, exploit =
                  match
                    ( verdict.Webapp.Symexec.budget,
                      verdict.Webapp.Symexec.assignment )
                  with
                  | Webapp.Symexec.Budget_exceeded _, _ ->
                      ("budget_exceeded", [])
                  | _, Some assignment ->
                      ("vulnerable", Webapp.Symexec.exploit_inputs q assignment)
                  | _, None -> ("no_exploit", [])
                in
                {
                  Api.Response.path_id = q.Webapp.Symexec.path_id;
                  sink_index = q.Webapp.Symexec.sink_index;
                  sink_id = q.Webapp.Symexec.sink_id;
                  status;
                  exploit;
                })
              candidates
          in
          let pruned =
            List.map
              (fun id ->
                {
                  Api.Response.path_id = -1;
                  sink_index = -1;
                  sink_id = id;
                  status = "proved_safe_statically";
                  exploit = [];
                })
              (List.sort compare safe_ids)
          in
          let vulnerable =
            List.length
              (List.filter
                 (fun (s : Api.Response.sink) -> s.status = "vulnerable")
                 solved)
          in
          Api.Response.Webcheck_report
            { sinks = pruned @ solved; vulnerable; paths_truncated })

let stats ~requests () =
  Api.Response.Stats_report
    { requests; counters = flat_counters (Snapshot.of_default ()) }

let handle ?(requests = 0) (req : Api.Request.t) : Api.Response.t =
  let before = Snapshot.of_default () in
  let t0 = Telemetry.Clock.now_ns () in
  (* The request budget is ambient for the whole handler, not just the
     solver call — a hostile program can blow up in path enumeration
     or the fixpoint too. Solver configs keep their default unlimited
     budget; installing unlimited is a no-op, so the ambient budget
     stays in force through nested solves. *)
  let budget =
    Automata.Budget.make ?wall_ms:req.budget_ms ?max_states:req.budget_states
      ()
  in
  let payload =
    match
      Automata.Budget.run budget (fun () ->
          match req.kind with
          | Api.Request.Solve p -> solve p
          | Api.Request.Check s -> check s
          | Api.Request.Lint s -> lint s
          | Api.Request.Webcheck p -> webcheck p
          | Api.Request.Stats -> stats ~requests ()
          | Api.Request.Shutdown -> Api.Response.Shutdown_ack { drained = 0 })
    with
    | Ok payload -> payload
    | Error stop ->
        Api.Response.Error
          {
            code = Api.Response.Budget_exceeded;
            message = Automata.Budget.stop_to_string stop;
          }
    | exception e ->
        Api.Response.Error
          { code = Api.Response.Internal; message = Printexc.to_string e }
  in
  let elapsed_us =
    Int64.to_int
      (Int64.div (Int64.sub (Telemetry.Clock.now_ns ()) t0) 1000L)
  in
  let diff = Snapshot.diff ~after:(Snapshot.of_default ()) ~before in
  {
    Api.Response.id = req.id;
    payload;
    obs =
      {
        Api.Response.elapsed_us;
        intern_hits = sum_counter diff "store.intern.hit";
        opcache_hits = sum_counter diff "store.opcache.hit";
      };
  }
