(** Request execution: one {!Api.Request.t} in, one {!Api.Response.t}
    out, in the calling domain.

    The server runs this inside {!Engine.Pool} workers, so every
    automata build and cache lookup lands in the worker's warm
    domain-local {!Automata.Store}; [dprle batch --wire] calls it
    directly in-process. Either way the contract is the same:

    - the request's [budget_ms]/[budget_states] are installed as the
      ambient {!Automata.Budget} for the {e whole} handler, so a
      hostile payload cannot hide blow-up outside the solver proper;
      exhaustion anywhere becomes an [Error Budget_exceeded] payload;
    - any exception becomes [Error Internal] — a handler never kills
      its worker;
    - [obs] is filled from a before/after {!Telemetry.Metrics.Snapshot}
      diff taken {e in this domain}: per-request wall time plus the
      request's own [store.intern.hit] / [store.opcache.hit] counts
      (the labeled op-cache series summed across operations). This is
      what makes warm-vs-cold store behaviour visible per response. *)

(** [handle ?requests req] never raises. [requests] is the completed
    request count a [Stats] request reports (the server threads its
    counter through; in-process callers can omit it). *)
val handle : ?requests:int -> Api.Request.t -> Api.Response.t

(** Loop-free path-count threshold below which webcheck requests skip
    the static fixpoint (mirrors the CLI's [--prepass-paths] default). *)
val prepass_paths : int
