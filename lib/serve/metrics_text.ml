module Snapshot = Telemetry.Metrics.Snapshot

(* Prometheus exposition names: [a-zA-Z_:][a-zA-Z0-9_:]* — the
   registry's dotted names map '.'/'-' to '_'. *)
let sanitize name =
  String.map (function '.' | '-' -> '_' | c -> c) name

let labels_str = function
  | [] -> ""
  | labels ->
      let escaped v =
        let buf = Buffer.create (String.length v + 2) in
        String.iter
          (function
            | '"' -> Buffer.add_string buf "\\\""
            | '\\' -> Buffer.add_string buf "\\\\"
            | '\n' -> Buffer.add_string buf "\\n"
            | c -> Buffer.add_char buf c)
          v;
        Buffer.contents buf
      in
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> sanitize k ^ "=\"" ^ escaped v ^ "\"") labels)
      ^ "}"

let render snapshot =
  let buf = Buffer.create 4096 in
  let line name labels value =
    Buffer.add_string buf (sanitize name);
    Buffer.add_string buf (labels_str labels);
    Buffer.add_char buf ' ';
    Buffer.add_string buf value;
    Buffer.add_char buf '\n'
  in
  let typ name kind =
    Buffer.add_string buf ("# TYPE " ^ sanitize name ^ " " ^ kind ^ "\n")
  in
  let by_series (n1, l1, _) (n2, l2, _) = compare (n1, l1) (n2, l2) in
  let grouped emit series =
    (* one # TYPE header per metric name, series sorted beneath it *)
    let sorted = List.sort by_series series in
    List.fold_left
      (fun last (name, labels, v) ->
        if last <> Some name then emit ~header:true name labels v
        else emit ~header:false name labels v;
        Some name)
      None sorted
    |> ignore
  in
  grouped
    (fun ~header name labels v ->
      if header then typ name "counter";
      line name labels (string_of_int v))
    (Snapshot.counters snapshot);
  grouped
    (fun ~header name labels v ->
      if header then typ name "gauge";
      line name labels (string_of_int v))
    (Snapshot.gauges snapshot);
  grouped
    (fun ~header name labels (h : Snapshot.histogram_stat) ->
      if header then typ (name ^ "_count") "counter";
      line (name ^ "_count") labels (string_of_int h.count);
      line (name ^ "_sum") labels (Printf.sprintf "%.6g" h.sum))
    (Snapshot.histograms snapshot);
  grouped
    (fun ~header name labels (t : Snapshot.timer_stat) ->
      if header then typ (name ^ "_calls") "counter";
      line (name ^ "_calls") labels (string_of_int t.count);
      line
        (name ^ "_seconds_total")
        labels
        (Printf.sprintf "%.9f" (Int64.to_float t.total_ns /. 1e9)))
    (Snapshot.timers snapshot);
  Buffer.contents buf
