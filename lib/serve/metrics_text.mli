(** The scrapeable [/metrics] surface: a {!Telemetry.Metrics.Snapshot}
    rendered in Prometheus text exposition format. Dotted metric names
    map to underscores ([store.intern.hit] → [store_intern_hit]);
    histograms contribute [_count]/[_sum] series, timers [_calls] and
    [_seconds_total]. Series are sorted, so two snapshots of the same
    registry state render byte-identically. *)

val render : Telemetry.Metrics.Snapshot.t -> string

(** Exposed for tests. *)
val sanitize : string -> string
