module M = Telemetry.Metrics
module Snapshot = M.Snapshot

type listen = Unix_socket of string | Tcp of string * int

let pp_listen ppf = function
  | Unix_socket path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

let listen_of_string s =
  match String.index_opt s ':' with
  | None -> Ok (Unix_socket s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> Ok (Unix_socket rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Fmt.str "tcp address %S needs HOST:PORT" rest)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p < 65536 -> Ok (Tcp (host, p))
              | _ -> Error (Fmt.str "bad port %S" port)))
      | _ ->
          (* a bare path with a colon in it is still a socket path *)
          Ok (Unix_socket s))

type config = {
  listen : listen;
  jobs : int;
  max_frame_bytes : int;
  max_queue : int;
  batch_max : int;
}

let default_config listen =
  {
    listen;
    jobs = 1;
    max_frame_bytes = Api.default_max_frame_bytes;
    max_queue = 256;
    batch_max = 32;
  }

type outcome = { served : int; rejected : int; malformed : int }

let c_connections = M.Counter.make "serve.connections"
let c_requests = M.Counter.make "serve.requests"
let c_rejected = M.Counter.make "serve.rejected"
let c_malformed = M.Counter.make "serve.malformed"
let c_disconnects = M.Counter.make "serve.disconnects"
let c_dropped = M.Counter.make "serve.responses.dropped"
let g_queue = M.Gauge.make "serve.queue.depth"

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable http : bool option;
      (* None until the first 4 bytes arrive; [Some true] marks an
         HTTP scraper (first bytes "GET "), answered once and closed *)
  mutable closed : bool;
  cid : int;
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Engine.Pool.t;
  adm : Admission.t;
  conns : (int, conn) Hashtbl.t;
  pending : (int * Api.Request.t) Queue.t;
  mutable next_cid : int;
  mutable stop : bool;
  mutable served : int;
  mutable rejected : int;
  mutable malformed : int;
}

let bind_listen = function
  | Unix_socket path ->
      (* a stale socket file from a crashed server blocks bind *)
      if Sys.file_exists path then Unix.unlink path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let close_conn st conn =
  if not conn.closed then begin
    conn.closed <- true;
    Hashtbl.remove st.conns conn.cid;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Writes never kill the server: a peer that closed mid-response just
   loses the response. *)
let write_raw st conn s =
  if not conn.closed then
    try
      let rec go off len =
        if len > 0 then begin
          let n = Unix.write_substring conn.fd s off len in
          go (off + n) (len - n)
        end
      in
      go 0 (String.length s)
    with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      M.Counter.incr c_disconnects 1;
      close_conn st conn

let respond st conn (resp : Api.Response.t) =
  write_raw st conn (Api.encode_response resp ^ "\n")

let http_metrics st conn =
  let body = Metrics_text.render (Snapshot.of_default ()) in
  let head =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      (String.length body)
  in
  write_raw st conn (head ^ body);
  close_conn st conn

let count_malformed st = st.malformed <- st.malformed + 1; M.Counter.incr c_malformed 1

let reject_over_capacity st conn (req : Api.Request.t) rejection message =
  st.rejected <- st.rejected + 1;
  M.Counter.incr c_rejected 1;
  respond st conn
    {
      Api.Response.id = req.id;
      payload =
        Api.Response.Error
          { code = Api.Response.Over_capacity rejection; message };
      obs = Api.Response.no_obs;
    }

let handle_frame st conn line =
  if String.trim line = "" then ()
  else
    match Api.decode_request ~max_bytes:st.cfg.max_frame_bytes line with
    | Error rej ->
        count_malformed st;
        respond st conn (Api.error_response ~id:"" rej)
    | Ok req -> (
        M.Counter.incr c_requests
          ~labels:[ ("kind", Api.Request.kind_name req.kind) ]
          1;
        match req.Api.Request.kind with
        | Api.Request.Stats ->
            (* answered in the main domain: its registry holds the
               absorbed per-batch diffs of every worker, so this is the
               cumulative serving-process view *)
            st.served <- st.served + 1;
            respond st conn (Handler.handle ~requests:(st.served - 1) req)
        | Api.Request.Shutdown ->
            st.stop <- true;
            st.served <- st.served + 1;
            respond st conn
              {
                Api.Response.id = req.id;
                payload =
                  Api.Response.Shutdown_ack
                    { drained = Queue.length st.pending };
                obs = Api.Response.no_obs;
              }
        | Api.Request.Solve _ | Api.Request.Check _ | Api.Request.Lint _
        | Api.Request.Webcheck _ -> (
            let queue_depth = Queue.length st.pending in
            if st.stop then
              reject_over_capacity st conn req
                { Api.Response.projected_wait_ms = 0; queue_depth }
                "server is shutting down"
            else if queue_depth >= st.cfg.max_queue then
              reject_over_capacity st conn req
                {
                  Api.Response.projected_wait_ms =
                    Admission.projected_wait_ms st.adm ~queue_depth
                      ~workers:st.cfg.jobs;
                  queue_depth;
                }
                "request queue is full"
            else
              match
                Admission.decide st.adm ~queue_depth ~workers:st.cfg.jobs
                  ~budget_ms:req.budget_ms
              with
              | Admission.Admit ->
                  Queue.push (conn.cid, req) st.pending;
                  M.Gauge.set g_queue (Queue.length st.pending)
              | Admission.Reject rejection ->
                  reject_over_capacity st conn req rejection
                    "projected queue wait exceeds the request deadline"))

let process_buffer st conn =
  if conn.http = None && Buffer.length conn.buf >= 4 then
    conn.http <- Some (String.equal (Buffer.sub conn.buf 0 4) "GET ");
  let rec split () =
    if not conn.closed then begin
      let s = Buffer.contents conn.buf in
      match String.index_opt s '\n' with
      | None ->
          if String.length s > st.cfg.max_frame_bytes then begin
            (* unterminated over-cap line: answer once and cut the
               connection — further bytes of it are unframeable *)
            count_malformed st;
            respond st conn
              (Api.error_response ~id:""
                 {
                   Api.code = Api.Response.Too_large;
                   message =
                     Fmt.str "frame exceeds %d bytes" st.cfg.max_frame_bytes;
                 });
            close_conn st conn
          end
      | Some i ->
          let line = String.sub s 0 i in
          let line =
            if String.length line > 0 && line.[String.length line - 1] = '\r'
            then String.sub line 0 (String.length line - 1)
            else line
          in
          Buffer.clear conn.buf;
          Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
          (match conn.http with
          | Some true -> http_metrics st conn
          | _ -> handle_frame st conn line);
          split ()
    end
  in
  split ()

let read_chunk = Bytes.create 65536

let conn_read st conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 ->
      M.Counter.incr c_disconnects 1;
      close_conn st conn
  | n ->
      Buffer.add_subbytes conn.buf read_chunk 0 n;
      process_buffer st conn
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      M.Counter.incr c_disconnects 1;
      close_conn st conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()

let accept_conn st =
  match Unix.accept st.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | fd, _addr ->
      M.Counter.incr c_connections 1;
      let cid = st.next_cid in
      st.next_cid <- cid + 1;
      Hashtbl.replace st.conns cid
        { fd; buf = Buffer.create 256; http = None; closed = false; cid }

(* Drain up to [batch_max] queued requests through the pool. Runs
   between selects; responses go out as soon as the batch returns.
   With the default single worker every request lands in the same
   domain-local store — the warm path the whole daemon exists for. *)
let dispatch st =
  if not (Queue.is_empty st.pending) then begin
    let n = min st.cfg.batch_max (Queue.length st.pending) in
    let batch = List.init n (fun _ -> Queue.pop st.pending) in
    M.Gauge.set g_queue (Queue.length st.pending);
    let results, _stats =
      Engine.Pool.map st.pool ~name:"serve"
        ~f:(fun _worker (_cid, req) -> Handler.handle req)
        batch
    in
    List.iter2
      (fun (cid, (req : Api.Request.t)) (r : _ Engine.job_result) ->
        Admission.observe st.adm ~service_ns:r.Engine.elapsed_ns;
        st.served <- st.served + 1;
        let resp =
          match r.Engine.outcome with
          | Engine.Done resp -> resp
          | Engine.Timeout | Engine.Budget_exceeded ->
              (* the handler normally converts budget stops itself;
                 this arm only fires if the stop escaped the worker *)
              {
                Api.Response.id = req.id;
                payload =
                  Api.Response.Error
                    {
                      code = Api.Response.Budget_exceeded;
                      message = "request budget exceeded";
                    };
                obs = Api.Response.no_obs;
              }
          | Engine.Failed f ->
              {
                Api.Response.id = req.id;
                payload =
                  Api.Response.Error
                    { code = Api.Response.Internal; message = f.Engine.message };
                obs = Api.Response.no_obs;
              }
        in
        match Hashtbl.find_opt st.conns cid with
        | Some conn -> respond st conn resp
        | None ->
            (* client vanished mid-request: the work completed and
               warmed the store; only the response is dropped *)
            M.Counter.incr c_dropped 1)
      batch results
  end

let run ?(on_ready = fun _ -> ()) cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listen cfg.listen in
  let pool = Engine.Pool.create ~name:"serve" ~size:(max 1 cfg.jobs) () in
  let st =
    {
      cfg;
      listen_fd;
      pool;
      adm = Admission.create ();
      conns = Hashtbl.create 16;
      pending = Queue.create ();
      next_cid = 0;
      stop = false;
      served = 0;
      rejected = 0;
      malformed = 0;
    }
  in
  let cleanup () =
    Hashtbl.iter
      (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      st.conns;
    Hashtbl.reset st.conns;
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    (match cfg.listen with
    | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    Engine.Pool.shutdown pool
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  on_ready (Unix.getsockname listen_fd);
  let rec loop () =
    dispatch st;
    (* stop = shutdown acked; loop until the queue is drained, then
       close everything (clients still connected see EOF) *)
    if not (st.stop && Queue.is_empty st.pending) then begin
      let conn_fds = Hashtbl.fold (fun _ c acc -> c.fd :: acc) st.conns [] in
      let fds = if st.stop then conn_fds else st.listen_fd :: conn_fds in
      (match Unix.select fds [] [] 0.25 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd = st.listen_fd then (if not st.stop then accept_conn st)
              else
                match
                  Hashtbl.fold
                    (fun _ c acc -> if c.fd = fd then Some c else acc)
                    st.conns None
                with
                | Some conn -> conn_read st conn
                | None -> ())
            readable);
      loop ()
    end
  in
  loop ();
  { served = st.served; rejected = st.rejected; malformed = st.malformed }
