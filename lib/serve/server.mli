(** The resident solver daemon: a single-threaded [Unix.select] loop
    over a Unix-domain or TCP listening socket, speaking line-delimited
    [dprle-wire/1] frames ({!Api}) and dispatching admitted requests
    onto a persistent {!Engine.Pool} whose worker domains keep their
    {!Automata.Store} intern and op-cache tables warm across requests
    — the point of residency.

    Life of a request: bytes accumulate in a per-connection buffer;
    each complete line is decoded with the total codec (undecodable
    frames get a structured error response and cost nothing else);
    [stats] and [shutdown] are answered immediately in the main domain
    (whose registry has absorbed every worker's per-batch metric
    diffs); solver kinds pass admission control ({!Admission}, plus a
    hard queue cap) and queue; between selects the queue drains in
    batches of [batch_max] through [Pool.map], and responses are
    written as each batch returns.

    A connection whose first bytes are ["GET "] is treated as an HTTP
    metrics scraper: it gets one [200 text/plain] Prometheus-format
    snapshot ({!Metrics_text}) and is closed.

    Failure containment, per connection: oversized or malformed frames
    are answered and (when unframeable) the connection is cut; a peer
    that disconnects mid-request costs nothing but the dropped
    response (the completed work still warms the store); handler
    exceptions become [Error Internal] responses. The daemon itself
    exits only on [shutdown], which stops accepting, drains the queue,
    answers everything in flight, and joins the pool. *)

type listen = Unix_socket of string | Tcp of string * int

val pp_listen : listen Fmt.t

(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (= unix). *)
val listen_of_string : string -> (listen, string) result

type config = {
  listen : listen;
  jobs : int;  (** pool size; 1 (the default) maximizes store warmth *)
  max_frame_bytes : int;  (** decode-side cap, default 1 MiB *)
  max_queue : int;  (** hard queue cap, default 256 *)
  batch_max : int;  (** requests per pool batch, default 32 *)
}

val default_config : listen -> config

(** Lifetime totals, returned when the daemon exits. *)
type outcome = { served : int; rejected : int; malformed : int }

(** [run ?on_ready config] binds, listens, serves until a [shutdown]
    request, and cleans up (sockets closed, Unix socket path unlinked,
    pool joined) even on exceptions. [on_ready] is called with the
    bound address once the socket is accepting — in-process callers
    (tests, bench) use it to start their clients without polling. *)
val run : ?on_ready:(Unix.sockaddr -> unit) -> config -> outcome
