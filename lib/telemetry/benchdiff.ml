(* Comparator over two bench snapshot files (BENCH_dprle.json). The
   gating rule mirrors what is actually deterministic in a bench run:

   - shape (schema string, experiment set, per-experiment fields) and
     integer fields (solver/op counters, memo hits) must match exactly
     — the same binary on the same corpus produces the same counts, so
     any drift is a real behavior change: HARD.
   - [seconds*] floats are wall clock: noisy by nature, flagged only
     past a ratio threshold plus an absolute noise floor, and
     downgradeable to warnings (CI runs wall-warn-only).
   - metric series compare counters exactly, histograms by
     count/sum/buckets, timers by call count only — timer nanoseconds
     are wall clock and never gated.
   - other floats (timestamps, derived speedups) are ignored.

   Experiments whose counters are inherently nondeterministic are
   skipped: bechamel's are time-quota-driven, and the parallel
   engine's absorbed worker counters depend on which domain won each
   job (per-domain memo stores make cache hits scheduling-dependent). *)

type severity = Hard | Warn

type finding = {
  experiment : string;
  field : string;
  detail : string;
  severity : severity;
}

type report = {
  findings : finding list;
  compared : int; (* experiments actually diffed *)
  skipped : string list;
}

let default_skip = [ "bechamel/microbench"; "parallel/*"; "serve/*" ]
let hard_count r = List.length (List.filter (fun f -> f.severity = Hard) r.findings)
let warn_count r = List.length (List.filter (fun f -> f.severity = Warn) r.findings)

(* Skip/include entries are glob patterns: [*] matches any substring
   (including [/]), every other character is literal. Matching is the
   classic greedy scan — anchor the first and last literal chunks,
   find the middle chunks left to right. *)
let glob_matches pat name =
  match String.split_on_char '*' pat with
  | [ lit ] -> lit = name
  | chunks ->
      let n = String.length name in
      let find_from pos chunk =
        let cl = String.length chunk in
        let rec go i =
          if i + cl > n then None
          else if String.sub name i cl = chunk then Some (i + cl)
          else go (i + 1)
        in
        go pos
      in
      let rec scan pos ~last = function
        | [] -> pos = n
        | [ chunk ] when last ->
            let cl = String.length chunk in
            cl <= n - pos && String.sub name (n - cl) cl = chunk
        | chunk :: rest -> (
            match find_from pos chunk with
            | None -> false
            | Some pos' -> scan pos' ~last rest)
      in
      (match chunks with
      | first :: rest ->
          let fl = String.length first in
          fl <= n
          && String.sub name 0 fl = first
          && scan fl ~last:true rest
      | [] -> false)

let matches_any pats name = List.exists (fun p -> glob_matches p name) pats

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let is_seconds_field = starts_with ~prefix:"seconds"

(* ------------------------------------------------------------------ *)

let series_key name labels_json = name ^ Json.to_string labels_json

let index_series items =
  List.filter_map
    (fun item ->
      match Json.member "name" item with
      | Some (Json.String name) ->
          (* missing labels = unlabeled series; never drop a series
             from comparison just because the field was elided *)
          let labels =
            Option.value (Json.member "labels" item) ~default:(Json.Obj [])
          in
          Some (series_key name labels, item)
      | _ -> None)
    items

let int_field key item =
  match Json.member key item with Some (Json.Int i) -> Some i | _ -> None

let compare_int_series ~experiment ~kind ~findings old_items new_items =
  let old_idx = index_series old_items and new_idx = index_series new_items in
  List.iter
    (fun (key, item) ->
      match List.assoc_opt key old_idx with
      | None ->
          findings :=
            {
              experiment;
              field = kind ^ " " ^ key;
              detail = "series appeared";
              severity = Hard;
            }
            :: !findings
      | Some old_item ->
          let v = int_field "value" item and v' = int_field "value" old_item in
          if v <> v' then
            let is_tier =
              String.length key >= 11 && String.sub key 0 11 = "store.tier."
            in
            let detail =
              (* a query-tier counter collapsing to zero is not mere
                 drift: some call site stopped going through the query
                 front-end (or the tier silently died) *)
              match (v', v) with
              | Some old_v, Some 0 when is_tier && old_v > 0 ->
                  Printf.sprintf
                    "%d -> 0: tier counter dropped to zero (call site \
                     bypassing the query front-end?)"
                    old_v
              | _ ->
                  Printf.sprintf "%s -> %s"
                    (match v' with Some i -> string_of_int i | None -> "?")
                    (match v with Some i -> string_of_int i | None -> "?")
            in
            findings :=
              {
                experiment;
                field = kind ^ " " ^ key;
                detail;
                severity = Hard;
              }
              :: !findings)
    new_idx;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key new_idx) then
        findings :=
          {
            experiment;
            field = kind ^ " " ^ key;
            detail = "series disappeared";
            severity = Hard;
          }
          :: !findings)
    old_idx

let compare_count_series ~experiment ~kind ~findings old_items new_items =
  (* histograms and timers: gate on the deterministic [count] field;
     buckets ride along for histograms via their JSON rendering *)
  let old_idx = index_series old_items and new_idx = index_series new_items in
  List.iter
    (fun (key, item) ->
      match List.assoc_opt key old_idx with
      | None ->
          findings :=
            {
              experiment;
              field = kind ^ " " ^ key;
              detail = "series appeared";
              severity = Hard;
            }
            :: !findings
      | Some old_item ->
          let c = int_field "count" item and c' = int_field "count" old_item in
          if c <> c' then
            findings :=
              {
                experiment;
                field = kind ^ " " ^ key ^ " count";
                detail =
                  Printf.sprintf "%s -> %s"
                    (match c' with Some i -> string_of_int i | None -> "?")
                    (match c with Some i -> string_of_int i | None -> "?");
                severity = Hard;
              }
              :: !findings;
          if kind = "histogram" then begin
            let buckets j =
              match Json.member "buckets" j with
              | Some b -> Json.to_string b
              | None -> ""
            in
            if buckets item <> buckets old_item then
              findings :=
                {
                  experiment;
                  field = kind ^ " " ^ key ^ " buckets";
                  detail = "bucket occupancy drifted";
                  severity = Hard;
                }
                :: !findings
          end)
    new_idx;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key new_idx) then
        findings :=
          {
            experiment;
            field = kind ^ " " ^ key;
            detail = "series disappeared";
            severity = Hard;
          }
          :: !findings)
    old_idx

let compare_metrics ~experiment ~findings old_m new_m =
  let items kind doc =
    match Json.member kind doc with
    | Some (Json.List l) -> l
    | _ -> []
  in
  compare_int_series ~experiment ~kind:"counter" ~findings (items "counters" old_m)
    (items "counters" new_m);
  compare_count_series ~experiment ~kind:"histogram" ~findings
    (items "histograms" old_m) (items "histograms" new_m);
  compare_count_series ~experiment ~kind:"timer" ~findings (items "timers" old_m)
    (items "timers" new_m)

let compare_experiment ~threshold ~wall_warn_only ~findings name old_e new_e =
  let fields = function Json.Obj f -> f | _ -> [] in
  let old_fields = fields old_e and new_fields = fields new_e in
  let shape_drift field detail =
    findings := { experiment = name; field; detail; severity = Hard } :: !findings
  in
  List.iter
    (fun (field, _) ->
      if not (List.mem_assoc field new_fields) then
        shape_drift field "field disappeared")
    old_fields;
  List.iter
    (fun (field, v) ->
      match List.assoc_opt field old_fields with
      | None -> shape_drift field "field appeared"
      | Some v' -> (
          match (field, v', v) with
          | "name", _, _ | "metrics", _, _ -> ()
          | _, Json.Int a, Json.Int b ->
              if a <> b then
                findings :=
                  {
                    experiment = name;
                    field;
                    detail = Printf.sprintf "%d -> %d" a b;
                    severity = Hard;
                  }
                  :: !findings
          | _, (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _)
            when is_seconds_field field ->
              let a = Option.get (Json.to_number v')
              and b = Option.get (Json.to_number v) in
              (* wall clock: flag only a real slowdown — past the
                 ratio threshold and above an absolute noise floor *)
              if b > a *. threshold && b -. a > 0.005 then
                findings :=
                  {
                    experiment = name;
                    field;
                    detail = Printf.sprintf "%.4fs -> %.4fs (%.2fx)" a b (b /. a);
                    severity = (if wall_warn_only then Warn else Hard);
                  }
                  :: !findings
          | _ -> (* derived floats, strings: not gated *) ()))
    new_fields;
  match (List.assoc_opt "metrics" old_fields, List.assoc_opt "metrics" new_fields)
  with
  | Some old_m, Some new_m -> compare_metrics ~experiment:name ~findings old_m new_m
  | None, None -> ()
  | _ -> shape_drift "metrics" "metrics block appeared/disappeared"

(* ------------------------------------------------------------------ *)

let experiments doc =
  match Json.member "experiments" doc with
  | Some (Json.List items) ->
      Ok
        (List.filter_map
           (fun e ->
             match Json.member "name" e with
             | Some (Json.String n) -> Some (n, e)
             | _ -> None)
           items)
  | _ -> Error "no experiments array"

let run ?(threshold = 1.5) ?(wall_warn_only = false) ?(skip = [])
    ?(include_ = []) ~old_doc ~new_doc () =
  let skip_pats = skip @ default_skip in
  (* an --include glob opts an experiment back in even when a skip
     pattern (default or explicit) covers it *)
  let skip name = matches_any skip_pats name && not (matches_any include_ name) in
  let ( let* ) = Result.bind in
  let findings = ref [] in
  let schema doc =
    match Json.member "schema" doc with Some (Json.String s) -> s | _ -> "?"
  in
  if schema old_doc <> schema new_doc then
    findings :=
      {
        experiment = "(document)";
        field = "schema";
        detail = Printf.sprintf "%s -> %s" (schema old_doc) (schema new_doc);
        severity = Hard;
      }
      :: !findings;
  let* old_exps = experiments old_doc in
  let* new_exps = experiments new_doc in
  let skipped e = skip (fst e) in
  let compared = ref 0 in
  List.iter
    (fun (name, new_e) ->
      if not (skip name) then
        match List.assoc_opt name old_exps with
        | None ->
            findings :=
              {
                experiment = name;
                field = "(experiment)";
                detail = "experiment appeared";
                severity = Hard;
              }
              :: !findings
        | Some old_e ->
            incr compared;
            compare_experiment ~threshold ~wall_warn_only ~findings name old_e
              new_e)
    new_exps;
  List.iter
    (fun (name, _) ->
      if (not (skip name)) && not (List.mem_assoc name new_exps) then
        findings :=
          {
            experiment = name;
            field = "(experiment)";
            detail = "experiment disappeared";
            severity = Hard;
          }
          :: !findings)
    old_exps;
  Ok
    {
      findings = List.rev !findings;
      compared = !compared;
      skipped =
        List.sort_uniq compare
          (List.map fst (List.filter skipped (new_exps @ old_exps)));
    }

let regressed_experiments r =
  List.sort_uniq compare
    (List.filter_map
       (fun f -> if f.severity = Hard then Some f.experiment else None)
       r.findings)

let pp_finding ppf f =
  Fmt.pf ppf "%s %s: %s: %s"
    (match f.severity with Hard -> "FAIL" | Warn -> "warn")
    f.experiment f.field f.detail

let pp_report ppf r =
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_finding f) r.findings;
  if r.skipped <> [] then
    Fmt.pf ppf "skipped (nondeterministic): %s@." (String.concat ", " r.skipped);
  let hard = hard_count r and warn = warn_count r in
  if hard = 0 && warn = 0 then
    Fmt.pf ppf "bench diff clean: %d experiments compared@." r.compared
  else
    Fmt.pf ppf "bench diff: %d experiments compared, %d hard, %d warn@."
      r.compared hard warn;
  match regressed_experiments r with
  | [] -> ()
  | names -> Fmt.pf ppf "regressed: %s@." (String.concat ", " names)
