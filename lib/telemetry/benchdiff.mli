(** Comparator over two bench snapshot documents (BENCH_dprle.json),
    backing [bench --diff OLD NEW].

    Deterministic content — the schema string, the experiment set,
    per-experiment fields, integer counters, histogram counts and
    bucket occupancies, timer call counts — is hard-gated: any drift
    is a behavior change. Wall-clock [seconds*] fields are flagged
    only past a ratio threshold plus an absolute noise floor, and can
    be demoted to warnings (CI runs wall-warn-only). Timer
    nanoseconds, timestamps, and derived floats are never gated.
    Experiments with inherently nondeterministic counters (bechamel,
    the [parallel/*] arms — absorbed worker counters depend on which
    domain won each job) are skipped by default; [include_] globs opt
    them back in, e.g. on a runner with known core count. *)

type severity = Hard | Warn

type finding = {
  experiment : string;
  field : string;
  detail : string;
  severity : severity;
}

type report = {
  findings : finding list;
  compared : int;  (** experiments actually diffed *)
  skipped : string list;
}

(** Skip globs applied on every run: [*] matches any substring, all
    other characters are literal. *)
val default_skip : string list

(** [run ~old_doc ~new_doc ()] compares two parsed bench documents.
    [threshold] (default 1.5) is the wall-time regression ratio;
    [wall_warn_only] demotes wall findings to warnings; [skip] adds
    experiment globs to ignore on top of {!default_skip}; [include_]
    globs override every skip (explicit opt-in wins). [Error _] when
    either document lacks an [experiments] array. *)
val run :
  ?threshold:float ->
  ?wall_warn_only:bool ->
  ?skip:string list ->
  ?include_:string list ->
  old_doc:Json.t ->
  new_doc:Json.t ->
  unit ->
  (report, string) result

val hard_count : report -> int
val warn_count : report -> int

(** Experiments with at least one hard finding, sorted. *)
val regressed_experiments : report -> string list

val pp_report : report Fmt.t
