(* The default source is the monotonic clock (CLOCK_MONOTONIC via the
   bechamel stub): timers and span durations must not jump when NTP
   steps the wall clock. A monotonicity clamp below additionally makes
   the reported time never run backwards across [set_source] games —
   which is all the span tree needs. Tests install a deterministic
   counter via [set_source]; wall-clock timestamps (run metadata, file
   names) stay with [Unix.time] at their call sites. *)

let default_source () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* [source] is written only before worker domains spawn (tests and
   CLIs configure clocks up front), but reads race with every timer in
   every domain — an [Atomic.t] makes the publication well-defined;
   the clamp is written on every read and must be domain-local. *)
let source = Atomic.make default_source
let last_ns_key : int64 ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0L)

let now_ns () =
  let last_ns = Domain.DLS.get last_ns_key in
  let raw = Int64.of_float ((Atomic.get source) () *. 1e9) in
  let clamped = if Int64.compare raw !last_ns < 0 then !last_ns else raw in
  last_ns := clamped;
  clamped

(* Installing a source resets the clamp: a deterministic test clock
   would otherwise be stuck below a previously-observed monotonic
   value. *)
let set_source f =
  Atomic.set source f;
  Domain.DLS.get last_ns_key := 0L

let use_default_source () =
  Atomic.set source default_source;
  Domain.DLS.get last_ns_key := 0L
