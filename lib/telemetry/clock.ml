(* The default source is wall-clock [Unix.gettimeofday]; a
   monotonicity clamp below makes the reported time never run
   backwards, which is all the span tree needs (NTP steps would
   otherwise produce negative durations). Tests install a
   deterministic counter via [set_source]. *)

let default_source () = Unix.gettimeofday ()
let source = ref default_source
let last_ns = ref 0L

let now_ns () =
  let raw = Int64.of_float (!source () *. 1e9) in
  let clamped = if Int64.compare raw !last_ns < 0 then !last_ns else raw in
  last_ns := clamped;
  clamped

(* Installing a source resets the clamp: a deterministic test clock
   would otherwise be stuck below a previously-observed wall-clock
   value. *)
let set_source f =
  source := f;
  last_ns := 0L

let use_default_source () =
  source := default_source;
  last_ns := 0L
