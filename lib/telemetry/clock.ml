(* The default source is wall-clock [Unix.gettimeofday]; a
   monotonicity clamp below makes the reported time never run
   backwards, which is all the span tree needs (NTP steps would
   otherwise produce negative durations). Tests install a
   deterministic counter via [set_source]. *)

let default_source () = Unix.gettimeofday ()

(* [source] is written only before worker domains spawn (tests and
   CLIs configure clocks up front), so a plain ref is fine; the clamp
   is written on every read and must be domain-local. *)
let source = ref default_source
let last_ns_key : int64 ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0L)

let now_ns () =
  let last_ns = Domain.DLS.get last_ns_key in
  let raw = Int64.of_float (!source () *. 1e9) in
  let clamped = if Int64.compare raw !last_ns < 0 then !last_ns else raw in
  last_ns := clamped;
  clamped

(* Installing a source resets the clamp: a deterministic test clock
   would otherwise be stuck below a previously-observed wall-clock
   value. *)
let set_source f =
  source := f;
  Domain.DLS.get last_ns_key := 0L

let use_default_source () =
  source := default_source;
  Domain.DLS.get last_ns_key := 0L
