(** Nanosecond timestamp source for spans and timers.

    Backed by the {e monotonic} clock ([CLOCK_MONOTONIC]): durations
    are immune to NTP steps and wall-clock adjustments. A monotonicity
    clamp additionally guarantees successive calls never decrease even
    under a misbehaving replacement source, so span and timer
    durations are always ≥ 0. Timestamps are relative to an arbitrary
    epoch (boot time) — use [Unix.time] for calendar timestamps. *)

(** Current timestamp in nanoseconds. Monotone non-decreasing. *)
val now_ns : unit -> int64

(** Replace the underlying time source (seconds as float). For
    deterministic tests. The monotonicity clamp still applies. *)
val set_source : (unit -> float) -> unit

(** Restore the default monotonic source. *)
val use_default_source : unit -> unit
