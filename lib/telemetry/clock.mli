(** Nanosecond timestamp source for spans.

    Backed by wall-clock time with a monotonicity clamp: successive
    calls never decrease, so span durations are always ≥ 0 even
    across clock steps. *)

(** Current timestamp in nanoseconds. Monotone non-decreasing. *)
val now_ns : unit -> int64

(** Replace the underlying time source (seconds as float). For
    deterministic tests. The monotonicity clamp still applies. *)
val set_source : (unit -> float) -> unit

(** Restore the default wall-clock source. *)
val use_default_source : unit -> unit
