(* Append-only JSONL event log. One JSON object per line, flushed per
   event under a mutex: webcheck's worker domains emit sink records
   concurrently, and a crash mid-run must leave every already-emitted
   line intact on disk (the flush-per-line discipline plus the
   [with_sink] Fun.protect close give that). *)

let schema = "dprle-events/1"

type t = { oc : out_channel; mutex : Mutex.t; seq : int Atomic.t }

let create oc = { oc; mutex = Mutex.create (); seq = Atomic.make 0 }
let open_file path = create (open_out path)

let emit t ~kind fields =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let line =
    Json.to_string
      (Json.Obj
         (("schema", Json.String schema)
         :: ("event", Json.String kind)
         :: ("seq", Json.Int seq)
         :: fields))
  in
  Mutex.protect t.mutex (fun () ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc)

let close t = Mutex.protect t.mutex (fun () -> close_out t.oc)

(* The global sink is set once by the CLI before any work, but worker
   domains read it on every job event — an [Atomic.t] publishes the
   sink without a data race; emission itself is mutex-guarded above. *)
let global : t option Atomic.t = Atomic.make None
let set_global sink = Atomic.set global sink

let emit_global ~kind fields =
  Option.iter (fun t -> emit t ~kind fields) (Atomic.get global)

let with_sink path f =
  match path with
  | None -> f ()
  | Some path ->
      let t = open_file path in
      set_global (Some t);
      Fun.protect
        ~finally:(fun () ->
          set_global None;
          close t)
        f
