(** Append-only JSONL event log ([--events FILE]).

    One self-describing JSON object per line; every record carries
    [("schema", "dprle-events/1")], an [event] kind, and a process-wide
    [seq] number. Lines are written and flushed atomically under a
    mutex, so worker domains can emit concurrently and a crash leaves
    all previously-emitted lines intact. *)

val schema : string

type t

val create : out_channel -> t
val open_file : string -> t

(** [emit t ~kind fields] writes one line; [schema], [event], and
    [seq] are prepended to [fields]. *)
val emit : t -> kind:string -> (string * Json.t) list -> unit

val close : t -> unit

(** Process-global sink used by library instrumentation points.
    Set it before spawning worker domains. *)

val set_global : t option -> unit

(** No-op when no global sink is installed. *)
val emit_global : kind:string -> (string * Json.t) list -> unit

(** [with_sink (Some path) f] opens [path], installs it as the global
    sink, runs [f], and closes/uninstalls on the way out (exception or
    not). [with_sink None f] just runs [f]. *)
val with_sink : string option -> (unit -> 'a) -> 'a
