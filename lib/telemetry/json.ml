type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must serialize to a JSON number: no [nan]/[infinity] tokens,
   and bare integral values keep a trailing ".0" marker so they read
   back as the same type. *)
let float_to buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> if Float.is_nan f then Buffer.add_string buf "null" else float_to buf f
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)
