type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must serialize to a JSON number: no [nan]/[infinity] tokens,
   and bare integral values keep a trailing ".0" marker so they read
   back as the same type. *)
let float_to buf f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> if Float.is_nan f then Buffer.add_string buf "null" else float_to buf f
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Fmt.string ppf (to_string v)

(* Recursive-descent parser, the dual of [write]. Accepts exactly the
   documents this repo emits (standard JSON minus \uXXXX surrogate
   pairs, which decode as a literal marker) — enough to read
   BENCH_dprle.json files back for `bench --diff`. *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* ASCII decodes exactly; anything wider keeps the
                 escaped form (we never emit it) *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf ("\\u" ^ hex);
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_list = function List items -> Some items | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_str = function String s -> Some s | _ -> None
