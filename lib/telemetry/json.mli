(** Minimal JSON document builder — just enough for the Chrome
    trace_event export and the bench snapshot files, with correct
    string escaping and number formatting (NaN/∞ become [null]). No
    parser: this repo only ever *emits* JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialization. *)
val to_string : t -> string

val pp : t Fmt.t
