(** Minimal JSON document builder and reader — just enough for the
    Chrome trace_event export, the bench snapshot files, and reading
    those snapshots back for [bench --diff]. Correct string escaping
    and number formatting (NaN/∞ become [null]). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialization. *)
val to_string : t -> string

val pp : t Fmt.t

(** Parse a complete JSON document. Standard JSON, except non-ASCII
    [\uXXXX] escapes decode to their literal escaped form (this repo
    never emits them). *)
val of_string : string -> (t, string) result

(** Accessors for reading parsed documents; [None] on kind mismatch. *)

val member : string -> t -> t option

val to_list : t -> t list option

(** Numeric value of an [Int] or [Float]. *)
val to_number : t -> float option

val to_str : t -> string option
