type labels = (string * string) list

(* Labels are canonicalized (sorted by key) so [("a","1");("b","2")]
   and its permutation address the same time series. *)
let canon labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

type hdata = {
  mutable count : int;
  mutable sum : float;
  bucket_counts : int array; (* one per bound, plus overflow at the end *)
}

type metric =
  | C of (labels, int ref) Hashtbl.t
  | H of float array * (labels, hdata) Hashtbl.t

type registry = (string, metric) Hashtbl.t

let create_registry () : registry = Hashtbl.create 32

(* The default registry is domain-local: library counters declared at
   module-init time resolve their cells per domain at increment time,
   so engine workers count without synchronization. The engine folds
   each worker's numbers back into the spawning domain's registry
   with [Snapshot.absorb] after the join. *)
let default_key : registry Domain.DLS.key = Domain.DLS.new_key create_registry
let default () = Domain.DLS.get default_key

let register registry name build check =
  match Hashtbl.find_opt registry name with
  | Some existing -> (
      match check existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry.Metrics: %S already registered with another kind"
               name))
  | None ->
      let metric, v = build () in
      Hashtbl.add registry name metric;
      v

let counter_table registry name =
  register registry name
    (fun () ->
      let table = Hashtbl.create 4 in
      (C table, table))
    (function C table -> Some table | H _ -> None)

let counter_cell table labels =
  let labels = canon labels in
  match Hashtbl.find_opt table labels with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add table labels r;
      r

let histogram_table registry ~buckets name =
  register registry name
    (fun () ->
      let table = Hashtbl.create 4 in
      (H (buckets, table), (buckets, table)))
    (function H (b, table) -> Some (b, table) | C _ -> None)

module Counter = struct
  (* A counter is a name plus (optionally) a pinned registry; its
     cells are resolved per use so each domain increments its own
     default registry. [make] still registers eagerly in the calling
     domain so kind conflicts fail fast at declaration time. *)
  type t = { name : string; fixed : registry option }

  let make ?registry name : t =
    let reg = match registry with Some r -> r | None -> default () in
    ignore (counter_table reg name : (labels, int ref) Hashtbl.t);
    { name; fixed = registry }

  let table t =
    let reg = match t.fixed with Some r -> r | None -> default () in
    counter_table reg t.name

  let incr ?(labels = []) t n =
    let r = counter_cell (table t) labels in
    r := !r + n

  let value ?(labels = []) t = !(counter_cell (table t) labels)
end

module Histogram = struct
  (* 1-2-5 decades: good resolution for state counts and machine
     sizes, the quantities §3.5 cares about. *)
  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 1e5; 1e6 |]

  type t = { name : string; buckets : float array; fixed : registry option }

  let make ?registry ?(buckets = default_buckets) name : t =
    let buckets = Array.copy buckets in
    Array.sort compare buckets;
    let reg = match registry with Some r -> r | None -> default () in
    ignore (histogram_table reg ~buckets name);
    { name; buckets; fixed = registry }

  let cell t labels =
    let reg = match t.fixed with Some r -> r | None -> default () in
    let _, table = histogram_table reg ~buckets:t.buckets t.name in
    let labels = canon labels in
    match Hashtbl.find_opt table labels with
    | Some h -> h
    | None ->
        let h =
          {
            count = 0;
            sum = 0.;
            bucket_counts = Array.make (Array.length t.buckets + 1) 0;
          }
        in
        Hashtbl.add table labels h;
        h

  let observe ?(labels = []) t v =
    let h = cell t labels in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    let buckets = t.buckets in
    let rec slot i =
      if i >= Array.length buckets then i else if v <= buckets.(i) then i else slot (i + 1)
    in
    let i = slot 0 in
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1
end

module Snapshot = struct
  type histogram_stat = {
    count : int;
    sum : float;
    buckets : (float * int) list; (* (upper bound, occupancy); +∞ last *)
  }

  type t = {
    counters : ((string * labels) * int) list;
    histograms : ((string * labels) * histogram_stat) list;
  }

  let take (registry : registry) =
    let counters = ref [] and histograms = ref [] in
    Hashtbl.iter
      (fun name metric ->
        match metric with
        | C table ->
            Hashtbl.iter
              (fun labels r -> counters := ((name, labels), !r) :: !counters)
              table
        | H (bounds, table) ->
            Hashtbl.iter
              (fun labels h ->
                let buckets =
                  List.init
                    (Array.length h.bucket_counts)
                    (fun i ->
                      ( (if i < Array.length bounds then bounds.(i) else Float.infinity),
                        h.bucket_counts.(i) ))
                in
                histograms :=
                  ((name, labels), { count = h.count; sum = h.sum; buckets })
                  :: !histograms)
              table)
      registry;
    {
      counters = List.sort compare !counters;
      histograms = List.sort (fun (a, _) (b, _) -> compare a b) !histograms;
    }

  let of_default () = take (default ())

  let diff ~after ~before =
    let counters =
      List.map
        (fun (key, v) ->
          let prior = Option.value (List.assoc_opt key before.counters) ~default:0 in
          (key, v - prior))
        after.counters
    in
    let histograms =
      List.map
        (fun ((key, h) : (string * labels) * histogram_stat) ->
          match List.assoc_opt key before.histograms with
          | None -> (key, h)
          | Some prior ->
              ( key,
                {
                  count = h.count - prior.count;
                  sum = h.sum -. prior.sum;
                  buckets =
                    List.map2
                      (fun (bound, c) (_, c') -> (bound, c - c'))
                      h.buckets prior.buckets;
                } ))
        after.histograms
    in
    { counters; histograms }

  (* Fold a worker domain's snapshot into a live registry (the calling
     domain's default unless pinned). Counter series add; histogram
     series add pointwise when the bucket layouts agree (they do for
     series produced by the same declaration) and fall back to
     count/sum only otherwise. *)
  let absorb ?registry t =
    let reg = match registry with Some r -> r | None -> default () in
    List.iter
      (fun ((name, labels), v) ->
        if v <> 0 then begin
          let r = counter_cell (counter_table reg name) labels in
          r := !r + v
        end)
      t.counters;
    List.iter
      (fun ((name, labels), (h : histogram_stat)) ->
        if h.count <> 0 then begin
          let bounds =
            Array.of_list
              (List.filter_map
                 (fun (b, _) -> if b = Float.infinity then None else Some b)
                 h.buckets)
          in
          let _, table = histogram_table reg ~buckets:bounds name in
          let labels = canon labels in
          let cell =
            match Hashtbl.find_opt table labels with
            | Some c -> c
            | None ->
                let c =
                  {
                    count = 0;
                    sum = 0.;
                    bucket_counts = Array.make (List.length h.buckets) 0;
                  }
                in
                Hashtbl.add table labels c;
                c
          in
          cell.count <- cell.count + h.count;
          cell.sum <- cell.sum +. h.sum;
          if List.length h.buckets = Array.length cell.bucket_counts then
            List.iteri
              (fun i (_, c) -> cell.bucket_counts.(i) <- cell.bucket_counts.(i) + c)
              h.buckets
        end)
      t.histograms

  let counters t = List.map (fun ((name, labels), v) -> (name, labels, v)) t.counters

  let histograms t =
    List.map (fun ((name, labels), h) -> (name, labels, h)) t.histograms

  let counter_value ?(labels = []) t name =
    Option.value (List.assoc_opt (name, canon labels) t.counters) ~default:0

  let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

  let to_json t =
    let counter_json ((name, labels), v) =
      Json.Obj
        [ ("name", Json.String name); ("labels", labels_json labels); ("value", Json.Int v) ]
    in
    let histogram_json ((name, labels), h) =
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("count", Json.Int h.count);
          ("sum", Json.Float h.sum);
          ( "buckets",
            Json.List
              (List.filter_map
                 (fun (bound, c) ->
                   if c = 0 then None
                   else
                     Some
                       (Json.Obj
                          [
                            ( "le",
                              if bound = Float.infinity then Json.String "+Inf"
                              else Json.Float bound );
                            ("count", Json.Int c);
                          ]))
                 h.buckets) );
        ]
    in
    Json.Obj
      [
        ("counters", Json.List (List.map counter_json t.counters));
        ("histograms", Json.List (List.map histogram_json t.histograms));
      ]

  let pp_labels ppf = function
    | [] -> ()
    | labels ->
        Fmt.pf ppf "{%a}"
          Fmt.(list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
          labels

  let pp ppf t =
    List.iter
      (fun ((name, labels), v) -> Fmt.pf ppf "%s%a = %d@." name pp_labels labels v)
      t.counters;
    List.iter
      (fun ((name, labels), h) ->
        Fmt.pf ppf "%s%a: count=%d sum=%g@." name pp_labels labels h.count h.sum)
      t.histograms
end
