type labels = (string * string) list

(* Labels are canonicalized (sorted by key) so [("a","1");("b","2")]
   and its permutation address the same time series. *)
let canon labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

type hdata = {
  mutable count : int;
  mutable sum : float;
  mutable vmax : float; (* largest observed value; meaningful when count > 0 *)
  bucket_counts : int array; (* one per bound, plus overflow at the end *)
}

type tdata = {
  mutable t_count : int;
  mutable total_ns : int64;
  mutable self_ns : int64; (* total minus time spent in nested timers *)
  mutable max_ns : int64;
}

type metric =
  | C of (labels, int ref) Hashtbl.t
  | G of (labels, int ref) Hashtbl.t
  | H of float array * (labels, hdata) Hashtbl.t
  | T of (labels, tdata) Hashtbl.t

type registry = (string, metric) Hashtbl.t

let create_registry () : registry = Hashtbl.create 32

(* The default registry is domain-local: library counters declared at
   module-init time resolve their cells per domain at increment time,
   so engine workers count without synchronization. The engine folds
   each worker's numbers back into the spawning domain's registry
   with [Snapshot.absorb] after the join. *)
let default_key : registry Domain.DLS.key = Domain.DLS.new_key create_registry
let default () = Domain.DLS.get default_key

(* Global kill switch for all cost accounting (timers and the store's
   ledger clock reads). Written from the main domain before workers
   spawn — bench flips it to price the instrumentation itself. *)
let timing_flag = Atomic.make true
let timing_enabled () = Atomic.get timing_flag
let set_timing_enabled b = Atomic.set timing_flag b

let register registry name build check =
  match Hashtbl.find_opt registry name with
  | Some existing -> (
      match check existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry.Metrics: %S already registered with another kind"
               name))
  | None ->
      let metric, v = build () in
      Hashtbl.add registry name metric;
      v

let counter_table registry name =
  register registry name
    (fun () ->
      let table = Hashtbl.create 4 in
      (C table, table))
    (function C table -> Some table | _ -> None)

let gauge_table registry name =
  register registry name
    (fun () ->
      let table = Hashtbl.create 4 in
      (G table, table))
    (function G table -> Some table | _ -> None)

let timer_table registry name =
  register registry name
    (fun () ->
      let table = Hashtbl.create 4 in
      (T table, table))
    (function T table -> Some table | _ -> None)

let int_cell table labels =
  let labels = canon labels in
  match Hashtbl.find_opt table labels with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add table labels r;
      r

let counter_cell = int_cell

let histogram_table registry ~buckets name =
  register registry name
    (fun () ->
      let table = Hashtbl.create 4 in
      (H (buckets, table), (buckets, table)))
    (function H (b, table) -> Some (b, table) | _ -> None)

module Counter = struct
  (* A counter is a name plus (optionally) a pinned registry; its
     cells are resolved per use so each domain increments its own
     default registry. [make] still registers eagerly in the calling
     domain so kind conflicts fail fast at declaration time. *)
  type t = { name : string; fixed : registry option }

  let make ?registry name : t =
    let reg = match registry with Some r -> r | None -> default () in
    ignore (counter_table reg name : (labels, int ref) Hashtbl.t);
    { name; fixed = registry }

  let table t =
    let reg = match t.fixed with Some r -> r | None -> default () in
    counter_table reg t.name

  let incr ?(labels = []) t n =
    let r = counter_cell (table t) labels in
    r := !r + n

  let value ?(labels = []) t = !(counter_cell (table t) labels)
end

module Gauge = struct
  (* Last-value semantics: [set] overwrites, [add] adjusts. Unlike
     counters a gauge may go down; snapshot diffs pass the current
     value through unchanged and [absorb] keeps the maximum across
     domains (the useful cross-worker reading for occupancy-style
     gauges). *)
  type t = { name : string; fixed : registry option }

  let make ?registry name : t =
    let reg = match registry with Some r -> r | None -> default () in
    ignore (gauge_table reg name : (labels, int ref) Hashtbl.t);
    { name; fixed = registry }

  let table t =
    let reg = match t.fixed with Some r -> r | None -> default () in
    gauge_table reg t.name

  let set ?(labels = []) t v = int_cell (table t) labels := v

  let add ?(labels = []) t n =
    let r = int_cell (table t) labels in
    r := !r + n

  let value ?(labels = []) t = !(int_cell (table t) labels)
end

module Histogram = struct
  (* 1-2-5 decades: good resolution for state counts and machine
     sizes, the quantities §3.5 cares about. *)
  let default_buckets =
    [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 1e5; 1e6 |]

  type t = { name : string; buckets : float array; fixed : registry option }

  let make ?registry ?(buckets = default_buckets) name : t =
    let buckets = Array.copy buckets in
    Array.sort compare buckets;
    let reg = match registry with Some r -> r | None -> default () in
    ignore (histogram_table reg ~buckets name);
    { name; buckets; fixed = registry }

  let cell t labels =
    let reg = match t.fixed with Some r -> r | None -> default () in
    let _, table = histogram_table reg ~buckets:t.buckets t.name in
    let labels = canon labels in
    match Hashtbl.find_opt table labels with
    | Some h -> h
    | None ->
        let h =
          {
            count = 0;
            sum = 0.;
            vmax = Float.neg_infinity;
            bucket_counts = Array.make (Array.length t.buckets + 1) 0;
          }
        in
        Hashtbl.add table labels h;
        h

  let observe ?(labels = []) t v =
    let h = cell t labels in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v > h.vmax then h.vmax <- v;
    let buckets = t.buckets in
    let rec slot i =
      if i >= Array.length buckets then i else if v <= buckets.(i) then i else slot (i + 1)
    in
    let i = slot 0 in
    h.bucket_counts.(i) <- h.bucket_counts.(i) + 1
  end

module Timer = struct
  type t = { name : string; fixed : registry option }

  let make ?registry name : t =
    let reg = match registry with Some r -> r | None -> default () in
    ignore (timer_table reg name : (labels, tdata) Hashtbl.t);
    { name; fixed = registry }

  let table t =
    let reg = match t.fixed with Some r -> r | None -> default () in
    timer_table reg t.name

  let cell t labels =
    let table = table t in
    let labels = canon labels in
    match Hashtbl.find_opt table labels with
    | Some d -> d
    | None ->
        let d = { t_count = 0; total_ns = 0L; self_ns = 0L; max_ns = 0L } in
        Hashtbl.add table labels d;
        d

  (* The open-timer stack, one per domain: each frame accumulates the
     time of the timers nested inside it, so a closing timer can book
     [elapsed - children] as self time. Like the span stack this makes
     timers nestable and engine-worker-safe without synchronization. *)
  let frames_key : int64 ref list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let record cell elapsed ~self =
    cell.t_count <- cell.t_count + 1;
    cell.total_ns <- Int64.add cell.total_ns elapsed;
    cell.self_ns <- Int64.add cell.self_ns self;
    if Int64.compare elapsed cell.max_ns > 0 then cell.max_ns <- elapsed

  let time ?(labels = []) t f =
    if not (Atomic.get timing_flag) then f ()
    else begin
      let frames = Domain.DLS.get frames_key in
      let child_acc = ref 0L in
      frames := child_acc :: !frames;
      let t0 = Clock.now_ns () in
      let finally () =
        let elapsed = Int64.sub (Clock.now_ns ()) t0 in
        (frames :=
           match !frames with
           | top :: rest when top == child_acc -> rest
           | other -> List.filter (fun r -> r != child_acc) other);
        (match !frames with
        | parent :: _ -> parent := Int64.add !parent elapsed
        | [] -> ());
        record (cell t labels) elapsed
          ~self:(Int64.max 0L (Int64.sub elapsed !child_acc))
      in
      Fun.protect ~finally f
    end

  (* Record an externally-measured duration. It books as a leaf: full
     duration as self time, and charged as child time to the innermost
     open [time] frame so enclosing self times stay exclusive. *)
  let observe_ns ?(labels = []) t ns =
    if Atomic.get timing_flag then begin
      (match !(Domain.DLS.get frames_key) with
      | parent :: _ -> parent := Int64.add !parent ns
      | [] -> ());
      record (cell t labels) ns ~self:ns
    end

  let count ?(labels = []) t = (cell t labels).t_count
  let total_ns ?(labels = []) t = (cell t labels).total_ns
end

module Snapshot = struct
  type histogram_stat = {
    count : int;
    sum : float;
    max : float; (* largest observed value; [neg_infinity] when count = 0 *)
    buckets : (float * int) list; (* (upper bound, occupancy); +∞ last *)
  }

  type timer_stat = {
    count : int;
    total_ns : int64;
    self_ns : int64;
    max_ns : int64;
  }

  type t = {
    counters : ((string * labels) * int) list;
    gauges : ((string * labels) * int) list;
    histograms : ((string * labels) * histogram_stat) list;
    timers : ((string * labels) * timer_stat) list;
  }

  let take (registry : registry) =
    let counters = ref []
    and gauges = ref []
    and histograms = ref []
    and timers = ref [] in
    Hashtbl.iter
      (fun name metric ->
        match metric with
        | C table ->
            Hashtbl.iter
              (fun labels r -> counters := ((name, labels), !r) :: !counters)
              table
        | G table ->
            Hashtbl.iter
              (fun labels r -> gauges := ((name, labels), !r) :: !gauges)
              table
        | H (bounds, table) ->
            Hashtbl.iter
              (fun labels h ->
                let buckets =
                  List.init
                    (Array.length h.bucket_counts)
                    (fun i ->
                      ( (if i < Array.length bounds then bounds.(i) else Float.infinity),
                        h.bucket_counts.(i) ))
                in
                histograms :=
                  ( (name, labels),
                    { count = h.count; sum = h.sum; max = h.vmax; buckets } )
                  :: !histograms)
              table
        | T table ->
            Hashtbl.iter
              (fun labels d ->
                timers :=
                  ( (name, labels),
                    {
                      count = d.t_count;
                      total_ns = d.total_ns;
                      self_ns = d.self_ns;
                      max_ns = d.max_ns;
                    } )
                  :: !timers)
              table)
      registry;
    let by_key (a, _) (b, _) = compare a b in
    {
      counters = List.sort compare !counters;
      gauges = List.sort compare !gauges;
      histograms = List.sort by_key !histograms;
      timers = List.sort by_key !timers;
    }

  let of_default () = take (default ())

  let diff ~after ~before =
    let counters =
      List.map
        (fun (key, v) ->
          let prior = Option.value (List.assoc_opt key before.counters) ~default:0 in
          (key, v - prior))
        after.counters
    in
    (* gauges are instantaneous readings: the diff of a region is the
       value at its end, not a subtraction *)
    let gauges = after.gauges in
    let histograms =
      List.map
        (fun ((key, h) : (string * labels) * histogram_stat) ->
          match List.assoc_opt key before.histograms with
          | None -> (key, h)
          | Some prior ->
              ( key,
                {
                  count = h.count - prior.count;
                  sum = h.sum -. prior.sum;
                  (* max of just the region is not recoverable from two
                     cumulative readings; report the running max *)
                  max = h.max;
                  buckets =
                    List.map2
                      (fun (bound, c) (_, c') -> (bound, c - c'))
                      h.buckets prior.buckets;
                } ))
        after.histograms
    in
    let timers =
      List.map
        (fun ((key, (t : timer_stat)) : (string * labels) * timer_stat) ->
          match List.assoc_opt key before.timers with
          | None -> (key, t)
          | Some (prior : timer_stat) ->
              ( key,
                {
                  count = t.count - prior.count;
                  total_ns = Int64.sub t.total_ns prior.total_ns;
                  self_ns = Int64.sub t.self_ns prior.self_ns;
                  max_ns = t.max_ns (* running max, as for histograms *);
                } ))
        after.timers
    in
    { counters; gauges; histograms; timers }

  (* Fold a worker domain's snapshot into a live registry (the calling
     domain's default unless pinned). Counter and timer series add;
     gauges keep the maximum; histogram series add pointwise when the
     bucket layouts agree (they do for series produced by the same
     declaration) and fall back to count/sum only otherwise. *)
  let absorb ?registry t =
    let reg = match registry with Some r -> r | None -> default () in
    List.iter
      (fun ((name, labels), v) ->
        if v <> 0 then begin
          let r = counter_cell (counter_table reg name) labels in
          r := !r + v
        end)
      t.counters;
    List.iter
      (fun ((name, labels), v) ->
        let r = int_cell (gauge_table reg name) labels in
        if v > !r then r := v)
      t.gauges;
    List.iter
      (fun ((name, labels), (h : histogram_stat)) ->
        if h.count <> 0 then begin
          let bounds =
            Array.of_list
              (List.filter_map
                 (fun (b, _) -> if b = Float.infinity then None else Some b)
                 h.buckets)
          in
          let _, table = histogram_table reg ~buckets:bounds name in
          let labels = canon labels in
          let cell =
            match Hashtbl.find_opt table labels with
            | Some c -> c
            | None ->
                let c =
                  {
                    count = 0;
                    sum = 0.;
                    vmax = Float.neg_infinity;
                    bucket_counts = Array.make (List.length h.buckets) 0;
                  }
                in
                Hashtbl.add table labels c;
                c
          in
          cell.count <- cell.count + h.count;
          cell.sum <- cell.sum +. h.sum;
          if h.max > cell.vmax then cell.vmax <- h.max;
          if List.length h.buckets = Array.length cell.bucket_counts then
            List.iteri
              (fun i (_, c) -> cell.bucket_counts.(i) <- cell.bucket_counts.(i) + c)
              h.buckets
        end)
      t.histograms;
    List.iter
      (fun ((name, labels), (s : timer_stat)) ->
        if s.count <> 0 then begin
          let table = timer_table reg name in
          let labels = canon labels in
          let cell =
            match Hashtbl.find_opt table labels with
            | Some c -> c
            | None ->
                let c = { t_count = 0; total_ns = 0L; self_ns = 0L; max_ns = 0L } in
                Hashtbl.add table labels c;
                c
          in
          cell.t_count <- cell.t_count + s.count;
          cell.total_ns <- Int64.add cell.total_ns s.total_ns;
          cell.self_ns <- Int64.add cell.self_ns s.self_ns;
          if Int64.compare s.max_ns cell.max_ns > 0 then cell.max_ns <- s.max_ns
        end)
      t.timers

  let counters t = List.map (fun ((name, labels), v) -> (name, labels, v)) t.counters
  let gauges t = List.map (fun ((name, labels), v) -> (name, labels, v)) t.gauges

  let histograms t =
    List.map (fun ((name, labels), h) -> (name, labels, h)) t.histograms

  let timers t = List.map (fun ((name, labels), s) -> (name, labels, s)) t.timers

  let counter_value ?(labels = []) t name =
    Option.value (List.assoc_opt (name, canon labels) t.counters) ~default:0

  let timer_stat ?(labels = []) t name =
    List.assoc_opt (name, canon labels) t.timers

  let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

  let to_json t =
    let int_series_json ((name, labels), v) =
      Json.Obj
        [ ("name", Json.String name); ("labels", labels_json labels); ("value", Json.Int v) ]
    in
    let histogram_json ((name, labels), (h : histogram_stat)) =
      Json.Obj
        ([
           ("name", Json.String name);
           ("labels", labels_json labels);
           ("count", Json.Int h.count);
           ("sum", Json.Float h.sum);
         ]
        @ (if h.count > 0 then [ ("max", Json.Float h.max) ] else [])
        @ [
            ( "buckets",
              Json.List
                (List.filter_map
                   (fun (bound, c) ->
                     (* zero-count interior buckets are elided for
                        size, but the +Inf overflow bucket is always
                        explicit so tail drift is diffable *)
                     if c = 0 && bound <> Float.infinity then None
                     else
                       Some
                         (Json.Obj
                            [
                              ( "le",
                                if bound = Float.infinity then Json.String "+Inf"
                                else Json.Float bound );
                              ("count", Json.Int c);
                            ]))
                   h.buckets) );
          ])
    in
    let timer_json ((name, labels), (s : timer_stat)) =
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("count", Json.Int s.count);
          ("total_ns", Json.Int (Int64.to_int s.total_ns));
          ("self_ns", Json.Int (Int64.to_int s.self_ns));
          ("max_ns", Json.Int (Int64.to_int s.max_ns));
        ]
    in
    Json.Obj
      [
        ("counters", Json.List (List.map int_series_json t.counters));
        ("gauges", Json.List (List.map int_series_json t.gauges));
        ("histograms", Json.List (List.map histogram_json t.histograms));
        ("timers", Json.List (List.map timer_json t.timers));
      ]

  let pp_labels ppf = function
    | [] -> ()
    | labels ->
        Fmt.pf ppf "{%a}"
          Fmt.(list ~sep:(any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
          labels

  (* Deterministic text dump: counts, sums, and maxima of the
     deterministic series only. Timer durations are wall-clock noise
     and deliberately print as call counts — `dprle profile` and the
     JSON exports carry the nanoseconds. *)
  let pp ppf t =
    List.iter
      (fun ((name, labels), v) -> Fmt.pf ppf "%s%a = %d@." name pp_labels labels v)
      t.counters;
    List.iter
      (fun ((name, labels), v) ->
        Fmt.pf ppf "%s%a = %d (gauge)@." name pp_labels labels v)
      t.gauges;
    List.iter
      (fun ((name, labels), (h : histogram_stat)) ->
        if h.count > 0 then
          Fmt.pf ppf "%s%a: count=%d sum=%g max=%g@." name pp_labels labels h.count
            h.sum h.max
        else Fmt.pf ppf "%s%a: count=0@." name pp_labels labels)
      t.histograms;
    List.iter
      (fun ((name, labels), (s : timer_stat)) ->
        Fmt.pf ppf "%s%a: count=%d@." name pp_labels labels s.count)
      t.timers
end
