(** Metrics registry: named counters and histograms with labeled
    dimensions, read out as immutable {!Snapshot}s.

    Counters only ever grow; cost attribution is done by taking a
    snapshot before and after a region and calling {!Snapshot.diff} —
    unlike reset-bracketed globals, concurrent or nested measurements
    cannot corrupt each other (each holds its own [before]).

    Metrics register in the {!default} registry unless an explicit
    registry is given (tests use private registries). Registering the
    same name twice returns the same metric; re-registering under a
    different kind raises [Invalid_argument].

    The default registry is {e domain-local}: a metric made without
    [?registry] resolves its cells in the calling domain's registry at
    increment time, so engine workers count into private registries
    with no synchronization. After joining its workers the engine
    folds their snapshots back with {!Snapshot.absorb}, so a snapshot
    of the main domain's registry accounts for the whole batch. *)

type labels = (string * string) list

type registry

val create_registry : unit -> registry

(** The calling domain's default registry — the one the solver's
    instrumentation uses when no explicit registry is given. *)
val default : unit -> registry

module Counter : sig
  type t

  val make : ?registry:registry -> string -> t
  val incr : ?labels:labels -> t -> int -> unit

  (** Current cumulative value (mainly for tests; prefer snapshots). *)
  val value : ?labels:labels -> t -> int
end

module Histogram : sig
  type t

  (** 1-2-5 decades from 1 to 10⁶. *)
  val default_buckets : float array

  val make : ?registry:registry -> ?buckets:float array -> string -> t
  val observe : ?labels:labels -> t -> float -> unit
end

module Snapshot : sig
  type histogram_stat = {
    count : int;
    sum : float;
    buckets : (float * int) list;  (** (upper bound, occupancy); +∞ last *)
  }

  type t

  val take : registry -> t
  val of_default : unit -> t

  (** Pointwise [after - before]; series absent from [before] pass
      through unchanged. *)
  val diff : after:t -> before:t -> t

  val counters : t -> (string * labels * int) list
  val histograms : t -> (string * labels * histogram_stat) list

  (** Value of one counter series, 0 if absent. *)
  val counter_value : ?labels:labels -> t -> string -> int

  (** Fold a snapshot (typically taken in a worker domain just before
      it exits) into a live registry — the calling domain's default
      unless [?registry] is given. Counter series add; histogram
      series add pointwise. Used by the engine so per-batch metrics
      reflect work done on every worker. *)
  val absorb : ?registry:registry -> t -> unit

  val to_json : t -> Json.t
  val pp : t Fmt.t
end
