(** Metrics registry: named counters, gauges, histograms, and timers
    with labeled dimensions, read out as immutable {!Snapshot}s.

    Counters only ever grow; cost attribution is done by taking a
    snapshot before and after a region and calling {!Snapshot.diff} —
    unlike reset-bracketed globals, concurrent or nested measurements
    cannot corrupt each other (each holds its own [before]).

    Metrics register in the {!default} registry unless an explicit
    registry is given (tests use private registries). Registering the
    same name twice returns the same metric; re-registering under a
    different kind raises [Invalid_argument].

    The default registry is {e domain-local}: a metric made without
    [?registry] resolves its cells in the calling domain's registry at
    increment time, so engine workers count into private registries
    with no synchronization. After joining its workers the engine
    folds their snapshots back with {!Snapshot.absorb}, so a snapshot
    of the main domain's registry accounts for the whole batch. *)

type labels = (string * string) list

type registry

val create_registry : unit -> registry

(** The calling domain's default registry — the one the solver's
    instrumentation uses when no explicit registry is given. *)
val default : unit -> registry

(** Global switch for all duration measurement ({!Timer.time},
    {!Timer.observe_ns}, and the store ledger's clock reads). On by
    default; bench flips it off to price the instrumentation itself.
    Set from the main domain before worker domains spawn. *)
val timing_enabled : unit -> bool

val set_timing_enabled : bool -> unit

module Counter : sig
  type t

  val make : ?registry:registry -> string -> t
  val incr : ?labels:labels -> t -> int -> unit

  (** Current cumulative value (mainly for tests; prefer snapshots). *)
  val value : ?labels:labels -> t -> int
end

module Gauge : sig
  (** Instantaneous values that may go up or down (pool occupancy,
      queue depth). Snapshot [diff] passes the latest reading through;
      [absorb] keeps the maximum across domains. *)
  type t

  val make : ?registry:registry -> string -> t
  val set : ?labels:labels -> t -> int -> unit
  val add : ?labels:labels -> t -> int -> unit
  val value : ?labels:labels -> t -> int
end

module Histogram : sig
  type t

  (** 1-2-5 decades from 1 to 10⁶. *)
  val default_buckets : float array

  val make : ?registry:registry -> ?buckets:float array -> string -> t
  val observe : ?labels:labels -> t -> float -> unit
end

module Timer : sig
  (** Monotonic-clock duration accounting. Timers nest: each series
      records call count, cumulative [total_ns], cumulative [self_ns]
      (total minus time spent in timers opened inside it, on the same
      domain), and the maximum single duration. The open-timer stack
      is domain-local, so engine workers time independently and their
      series fold back through {!Snapshot.absorb} like counters.

      When {!set_timing_enabled} is off, [time f] runs [f] with no
      clock reads and records nothing. *)
  type t

  val make : ?registry:registry -> string -> t

  (** [time t f] runs [f], recording its duration against [t] (and
      excluding it from the enclosing timer's self time). Exceptions
      propagate; the duration is recorded either way. *)
  val time : ?labels:labels -> t -> (unit -> 'a) -> 'a

  (** Record an externally-measured duration as a leaf: it books fully
      as self time and is charged as child time to the innermost open
      [time] frame. Used by the store ledger, which brackets with raw
      {!Clock.now_ns} reads to keep memo-lookup overhead minimal. *)
  val observe_ns : ?labels:labels -> t -> int64 -> unit

  val count : ?labels:labels -> t -> int
  val total_ns : ?labels:labels -> t -> int64
end

module Snapshot : sig
  type histogram_stat = {
    count : int;
    sum : float;
    max : float;  (** largest observed value; [neg_infinity] when count = 0 *)
    buckets : (float * int) list;  (** (upper bound, occupancy); +∞ last *)
  }

  type timer_stat = {
    count : int;
    total_ns : int64;
    self_ns : int64;
    max_ns : int64;
  }

  type t

  val take : registry -> t
  val of_default : unit -> t

  (** Pointwise [after - before]; series absent from [before] pass
      through unchanged. Gauges report [after]'s reading; histogram
      and timer maxima are running maxima (a region's own max is not
      recoverable from two cumulative readings). *)
  val diff : after:t -> before:t -> t

  val counters : t -> (string * labels * int) list
  val gauges : t -> (string * labels * int) list
  val histograms : t -> (string * labels * histogram_stat) list
  val timers : t -> (string * labels * timer_stat) list

  (** Value of one counter series, 0 if absent. *)
  val counter_value : ?labels:labels -> t -> string -> int

  (** One timer series, if present. *)
  val timer_stat : ?labels:labels -> t -> string -> timer_stat option

  (** Fold a snapshot (typically taken in a worker domain just before
      it exits) into a live registry — the calling domain's default
      unless [?registry] is given. Counter and timer series add;
      histogram series add pointwise; gauges keep the maximum. Used by
      the engine so per-batch metrics reflect work done on every
      worker. *)
  val absorb : ?registry:registry -> t -> unit

  (** Zero-count interior histogram buckets are elided, but the +Inf
      overflow bucket is always explicit so tail drift is diffable. *)
  val to_json : t -> Json.t

  (** Deterministic text dump: counters, gauges, histogram
      count/sum/max, and timer {e call counts} only — never
      nanoseconds, so cram tests stay stable. *)
  val pp : t Fmt.t
end
