type attr = [ `Int of int | `Float of float | `String of string | `Bool of bool ]

type t = {
  name : string;
  mutable attrs : (string * attr) list;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable children_rev : t list;
}

let name s = s.name
let attrs s = s.attrs
let duration_ns s = s.dur_ns
let children s = List.rev s.children_rev

(* The open-span stack. Tracing is off exactly when the stack is
   empty: instrumentation points call {!with_span} unconditionally and
   pay only this emptiness check until someone higher up opens a
   {!collect} scope. *)
let stack : t list ref = ref []
let enabled () = !stack <> []

let collect ?(attrs = []) ~name f =
  let span =
    { name; attrs; start_ns = Clock.now_ns (); dur_ns = 0L; children_rev = [] }
  in
  stack := span :: !stack;
  let finally () =
    (match !stack with
    | top :: rest when top == span -> stack := rest
    | _ -> stack := List.filter (fun s -> s != span) !stack);
    span.dur_ns <- Int64.sub (Clock.now_ns ()) span.start_ns;
    match !stack with
    | parent :: _ -> parent.children_rev <- span :: parent.children_rev
    | [] -> ()
  in
  let result = Fun.protect ~finally f in
  (result, span)

let with_span ?attrs ~name f =
  if not (enabled ()) then f () else fst (collect ?attrs ~name f)

let collect_emit ?(attrs = []) ~name ~emit f =
  let span =
    { name; attrs; start_ns = Clock.now_ns (); dur_ns = 0L; children_rev = [] }
  in
  stack := span :: !stack;
  let finally () =
    (match !stack with
    | top :: rest when top == span -> stack := rest
    | _ -> stack := List.filter (fun s -> s != span) !stack);
    span.dur_ns <- Int64.sub (Clock.now_ns ()) span.start_ns;
    (match !stack with
    | parent :: _ -> parent.children_rev <- span :: parent.children_rev
    | [] -> ());
    emit span
  in
  Fun.protect ~finally f

let add_attr key value =
  match !stack with
  | [] -> ()
  | top :: _ -> top.attrs <- top.attrs @ [ (key, value) ]

(* ------------------------------------------------------------------ *)
(* Exports *)

let attr_to_json : attr -> Json.t = function
  | `Int i -> Json.Int i
  | `Float f -> Json.Float f
  | `String s -> Json.String s
  | `Bool b -> Json.Bool b

let to_chrome_json ?(pid = 1) ?(tid = 1) root =
  let us_of ns = Int64.to_float ns /. 1e3 in
  let events = ref [] in
  let rec emit span =
    let event =
      Json.Obj
        [
          ("name", Json.String span.name);
          ("cat", Json.String "dprle");
          ("ph", Json.String "X");
          ("ts", Json.Float (us_of (Int64.sub span.start_ns root.start_ns)));
          ("dur", Json.Float (us_of span.dur_ns));
          ("pid", Json.Int pid);
          ("tid", Json.Int tid);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) span.attrs));
        ]
    in
    events := event :: !events;
    List.iter emit (children span)
  in
  emit root;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_string ?pid ?tid root = Json.to_string (to_chrome_json ?pid ?tid root)

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns >= 1e9 then Fmt.pf ppf "%.3fs" (ns /. 1e9)
  else if ns >= 1e6 then Fmt.pf ppf "%.3fms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.pf ppf "%.1fus" (ns /. 1e3)
  else Fmt.pf ppf "%.0fns" ns

let pp_attr ppf (k, v) =
  match v with
  | `Int i -> Fmt.pf ppf "%s=%d" k i
  | `Float f -> Fmt.pf ppf "%s=%g" k f
  | `String s -> Fmt.pf ppf "%s=%s" k s
  | `Bool b -> Fmt.pf ppf "%s=%b" k b

let pp_tree ppf root =
  let rec go indent span =
    Fmt.pf ppf "%s%s  %a" indent span.name pp_duration span.dur_ns;
    List.iter (fun a -> Fmt.pf ppf " %a" pp_attr a) span.attrs;
    Fmt.pf ppf "@.";
    List.iter (go (indent ^ "  ")) (children span)
  in
  go "" root
