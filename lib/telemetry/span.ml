type attr = [ `Int of int | `Float of float | `String of string | `Bool of bool ]

type t = {
  name : string;
  mutable attrs : (string * attr) list;
  start_ns : int64;
  mutable dur_ns : int64;
  mutable children_rev : t list;
}

let name s = s.name
let attrs s = s.attrs
let duration_ns s = s.dur_ns
let start_ns s = s.start_ns
let children s = List.rev s.children_rev

(* The open-span stack, one per domain: each engine worker collects
   its own tree without synchronization, and the trees are merged as
   separate lanes at export time ({!to_chrome_json_lanes}). Tracing is
   off in a domain exactly when its stack is empty: instrumentation
   points call {!with_span} unconditionally and pay only this
   emptiness check until someone higher up (in the same domain) opens
   a {!collect} scope. *)
let stack_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key
let enabled () = !(stack ()) <> []

let collect ?(attrs = []) ~name f =
  let stack = stack () in
  let span =
    { name; attrs; start_ns = Clock.now_ns (); dur_ns = 0L; children_rev = [] }
  in
  stack := span :: !stack;
  let finally () =
    (match !stack with
    | top :: rest when top == span -> stack := rest
    | _ -> stack := List.filter (fun s -> s != span) !stack);
    span.dur_ns <- Int64.sub (Clock.now_ns ()) span.start_ns;
    match !stack with
    | parent :: _ -> parent.children_rev <- span :: parent.children_rev
    | [] -> ()
  in
  let result = Fun.protect ~finally f in
  (result, span)

let with_span ?attrs ~name f =
  if not (enabled ()) then f () else fst (collect ?attrs ~name f)

let collect_emit ?(attrs = []) ~name ~emit f =
  let stack = stack () in
  let span =
    { name; attrs; start_ns = Clock.now_ns (); dur_ns = 0L; children_rev = [] }
  in
  stack := span :: !stack;
  let finally () =
    (match !stack with
    | top :: rest when top == span -> stack := rest
    | _ -> stack := List.filter (fun s -> s != span) !stack);
    span.dur_ns <- Int64.sub (Clock.now_ns ()) span.start_ns;
    (match !stack with
    | parent :: _ -> parent.children_rev <- span :: parent.children_rev
    | [] -> ());
    emit span
  in
  Fun.protect ~finally f

let add_attr key value =
  match !(stack ()) with
  | [] -> ()
  | top :: _ -> top.attrs <- top.attrs @ [ (key, value) ]

let graft ~parent child = parent.children_rev <- child :: parent.children_rev

(* ------------------------------------------------------------------ *)
(* Exports *)

let attr_to_json : attr -> Json.t = function
  | `Int i -> Json.Int i
  | `Float f -> Json.Float f
  | `String s -> Json.String s
  | `Bool b -> Json.Bool b

let us_of ns = Int64.to_float ns /. 1e3

(* Complete ("ph":"X") events for one span tree, timestamps relative
   to [base], appended (in depth-first order) onto [acc] reversed. *)
let chrome_events ~pid ~tid ~base root acc =
  let events = ref acc in
  let rec emit span =
    let event =
      Json.Obj
        [
          ("name", Json.String span.name);
          ("cat", Json.String "dprle");
          ("ph", Json.String "X");
          ("ts", Json.Float (us_of (Int64.sub span.start_ns base)));
          ("dur", Json.Float (us_of span.dur_ns));
          ("pid", Json.Int pid);
          ("tid", Json.Int tid);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) span.attrs));
        ]
    in
    events := event :: !events;
    List.iter emit (children span)
  in
  emit root;
  !events

let trace_of_events events_rev =
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev events_rev));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_chrome_json ?(pid = 1) ?(tid = 1) root =
  trace_of_events (chrome_events ~pid ~tid ~base:root.start_ns root [])

let to_chrome_string ?pid ?tid root = Json.to_string (to_chrome_json ?pid ?tid root)

(* Multi-lane export: the main tree on tid 1 plus one lane per worker
   tree, all sharing a common time base (the earliest start across the
   trees) so concurrent work lines up in the viewer. Each lane gets a
   ["thread_name"] metadata event so Perfetto shows the worker label
   instead of a bare tid. *)
let to_chrome_json_lanes ?(pid = 1) ~lanes root =
  let base =
    List.fold_left
      (fun acc (_, s) -> if Int64.compare s.start_ns acc < 0 then s.start_ns else acc)
      root.start_ns lanes
  in
  let thread_name ~tid label =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String label) ]);
      ]
  in
  let events = chrome_events ~pid ~tid:1 ~base root [ thread_name ~tid:1 "main" ] in
  let events, _ =
    List.fold_left
      (fun (acc, tid) (label, span) ->
        (chrome_events ~pid ~tid ~base span (thread_name ~tid label :: acc), tid + 1))
      (events, 2) lanes
  in
  trace_of_events events

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns >= 1e9 then Fmt.pf ppf "%.3fs" (ns /. 1e9)
  else if ns >= 1e6 then Fmt.pf ppf "%.3fms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.pf ppf "%.1fus" (ns /. 1e3)
  else Fmt.pf ppf "%.0fns" ns

let pp_attr ppf (k, v) =
  match v with
  | `Int i -> Fmt.pf ppf "%s=%d" k i
  | `Float f -> Fmt.pf ppf "%s=%g" k f
  | `String s -> Fmt.pf ppf "%s=%s" k s
  | `Bool b -> Fmt.pf ppf "%s=%b" k b

let pp_tree ppf root =
  let rec go indent span =
    Fmt.pf ppf "%s%s  %a" indent span.name pp_duration span.dur_ns;
    List.iter (fun a -> Fmt.pf ppf " %a" pp_attr a) span.attrs;
    Fmt.pf ppf "@.";
    List.iter (go (indent ^ "  ")) (children span)
  in
  go "" root
