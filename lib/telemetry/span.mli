(** Hierarchical tracing spans.

    Instrumentation points wrap their work in {!with_span}; when no
    trace is being collected this costs one list-emptiness check, so
    the instrumentation can stay on permanently. A caller that wants a
    trace wraps the whole computation in {!collect} and receives the
    finished span tree, exportable as Chrome [trace_event] JSON
    ({!to_chrome_json}, load in [chrome://tracing] or Perfetto) or as
    an indented text tree ({!pp_tree}).

    Spans nest dynamically: a [with_span] entered while another span
    is open becomes its child. The span stack is domain-local: each
    engine worker collects its own tree without synchronization, and
    the per-worker trees are merged into one trace as separate lanes
    by {!to_chrome_json_lanes} (or attached to a parent tree with
    {!graft}). Exceptions close spans correctly. *)

type attr = [ `Int of int | `Float of float | `String of string | `Bool of bool ]

(** A finished span: name, attributes, and duration, with children in
    execution order. *)
type t

val name : t -> string
val attrs : t -> (string * attr) list
val duration_ns : t -> int64

(** Absolute start timestamp ({!Clock.now_ns} at span open). *)
val start_ns : t -> int64

val children : t -> t list

(** [true] while a {!collect} scope is open in the calling domain. *)
val enabled : unit -> bool

(** [collect ~name f] runs [f] with tracing enabled, wrapping it in a
    span named [name]; returns [f ()]'s result and the finished span
    tree. Inside an outer [collect] it simply nests (and additionally
    returns the sub-tree). *)
val collect : ?attrs:(string * attr) list -> name:string -> (unit -> 'a) -> 'a * t

(** [with_span ~name f] runs [f] inside a child span when tracing is
    enabled, or calls [f] directly (no allocation) when it is not. *)
val with_span : ?attrs:(string * attr) list -> name:string -> (unit -> 'a) -> 'a

(** Like {!collect}, but delivers the finished span tree to [emit] on
    {e both} the normal and the exceptional path (with the children
    recorded so far), then lets any exception continue unwinding.
    This is the flush-on-crash primitive behind [--trace]: an
    interrupted or failing run still leaves its partial trace behind.
    [emit] runs inside the [Fun.protect] finaliser, so it should not
    itself raise. *)
val collect_emit :
  ?attrs:(string * attr) list -> name:string -> emit:(t -> unit) -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span, for values only
    known mid-phase (e.g. a cut census discovered during the phase).
    No-op when tracing is disabled. *)
val add_attr : string -> attr -> unit

(** Attach an already-finished span tree as the last child of
    [parent]. The engine uses this to hang a worker's lane under the
    batch root once the worker has been joined; never graft a span
    that is still open. *)
val graft : parent:t -> t -> unit

(** Chrome [trace_event] export: a ["traceEvents"] array of complete
    ("ph":"X") events, timestamps in microseconds relative to the
    root. *)
val to_chrome_json : ?pid:int -> ?tid:int -> t -> Json.t

val to_chrome_string : ?pid:int -> ?tid:int -> t -> string

(** [to_chrome_json_lanes ~lanes root] exports [root] on tid 1 plus
    one additional lane (tid 2, 3, ...) per [(label, tree)] in
    [lanes], all against a common time base — the earliest start
    across every tree — so concurrent worker activity lines up in the
    viewer. Each lane carries a ["thread_name"] metadata event with
    its label. *)
val to_chrome_json_lanes : ?pid:int -> lanes:(string * t) list -> t -> Json.t

(** Indented text tree: one line per span with duration and
    attributes, children indented two spaces. *)
val pp_tree : t Fmt.t

val pp_duration : int64 Fmt.t
