type expr =
  | Str of string
  | Var of string
  | Input of string
  | Concat of expr * expr
  | Lower of expr
  | Upper of expr
  | Addslashes of expr
  | Replace of char * string * expr

type cmp = Len_eq | Len_le | Len_ge

type cond =
  | Preg_match of Regex.Ast.pattern * expr
  | Str_eq of expr * string
  | Strlen of expr * cmp * int
  | Not of cond

type stmt =
  | Assign of string * expr
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Exit
  | Query of expr
  | Echo of expr

type program = stmt list

module SSet = Set.Make (String)

let rec expr_inputs acc = function
  | Str _ | Var _ -> acc
  | Input name -> SSet.add name acc
  | Concat (a, b) -> expr_inputs (expr_inputs acc a) b
  | Lower e | Upper e | Addslashes e | Replace (_, _, e) -> expr_inputs acc e

let rec cond_inputs acc = function
  | Preg_match (_, e) -> expr_inputs acc e
  | Str_eq (e, _) | Strlen (e, _, _) -> expr_inputs acc e
  | Not c -> cond_inputs acc c

let rec stmt_inputs acc = function
  | Assign (_, e) | Query e | Echo e -> expr_inputs acc e
  | Exit -> acc
  | If (c, t, f) ->
      let acc = cond_inputs acc c in
      let acc = List.fold_left stmt_inputs acc t in
      List.fold_left stmt_inputs acc f
  | While (c, body) ->
      let acc = cond_inputs acc c in
      List.fold_left stmt_inputs acc body

let inputs program = SSet.elements (List.fold_left stmt_inputs SSet.empty program)

let rec stmt_blocks = function
  | Assign _ | Exit | Query _ | Echo _ -> 0
  | If (_, t, f) ->
      (* one join block, plus a block per non-empty arm *)
      1
      + (if t = [] then 0 else 1)
      + (if f = [] then 0 else 1)
      + List.fold_left (fun acc s -> acc + stmt_blocks s) 0 (t @ f)
  | While (_, body) ->
      (* loop-head block + exit/join block, plus one for a non-empty body *)
      2
      + (if body = [] then 0 else 1)
      + List.fold_left (fun acc s -> acc + stmt_blocks s) 0 body

let basic_blocks program =
  1 + List.fold_left (fun acc s -> acc + stmt_blocks s) 0 program

let sinks program =
  let acc = ref [] in
  let rec stmt s =
    match s with
    | Query _ -> acc := s :: !acc
    | If (_, t, f) ->
        List.iter stmt t;
        List.iter stmt f
    | While (_, body) -> List.iter stmt body
    | Assign _ | Exit | Echo _ -> ()
  in
  List.iter stmt program;
  List.rev !acc

let sink_id program s =
  let rec go i = function
    | [] -> None
    | s' :: rest -> if s' == s then Some i else go (i + 1) rest
  in
  go 0 (sinks program)

(* ------------------------------------------------------------------ *)
(* Printing: concrete mini-PHP syntax                                 *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr ppf = function
  | Str s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Var v -> Fmt.pf ppf "$%s" v
  | Input name -> Fmt.pf ppf "input(\"%s\")" (escape_string name)
  | Concat (a, b) -> Fmt.pf ppf "%a . %a" pp_expr a pp_expr b
  | Lower e -> Fmt.pf ppf "strtolower(%a)" pp_expr e
  | Upper e -> Fmt.pf ppf "strtoupper(%a)" pp_expr e
  | Addslashes e -> Fmt.pf ppf "addslashes(%a)" pp_expr e
  | Replace (c, s, e) ->
      Fmt.pf ppf "str_replace(\"%s\", \"%s\", %a)"
        (escape_string (String.make 1 c))
        (escape_string s) pp_expr e

let pp_cmp ppf = function
  | Len_eq -> Fmt.string ppf "=="
  | Len_le -> Fmt.string ppf "<="
  | Len_ge -> Fmt.string ppf ">="

let rec pp_cond ppf = function
  | Preg_match (p, e) ->
      Fmt.pf ppf "preg_match(%a, %a)" Regex.Ast.pp_pattern p pp_expr e
  | Str_eq (e, s) -> Fmt.pf ppf "%a == \"%s\"" pp_expr e (escape_string s)
  | Strlen (e, cmp, n) -> Fmt.pf ppf "strlen(%a) %a %d" pp_expr e pp_cmp cmp n
  | Not c -> Fmt.pf ppf "!%a" pp_cond c

let rec pp_stmt ppf = function
  | Assign (v, e) -> Fmt.pf ppf "$%s = %a;" v pp_expr e
  | Exit -> Fmt.string ppf "exit;"
  | Query e -> Fmt.pf ppf "query(%a);" pp_expr e
  | Echo e -> Fmt.pf ppf "echo %a;" pp_expr e
  | If (c, t, []) ->
      Fmt.pf ppf "@[<v>if (%a) {@;<1 2>@[<v>%a@]@ }@]" pp_cond c pp_block t
  | If (c, t, f) ->
      Fmt.pf ppf "@[<v>if (%a) {@;<1 2>@[<v>%a@]@ } else {@;<1 2>@[<v>%a@]@ }@]"
        pp_cond c pp_block t pp_block f
  | While (c, body) ->
      Fmt.pf ppf "@[<v>while (%a) {@;<1 2>@[<v>%a@]@ }@]" pp_cond c pp_block body

and pp_block ppf stmts = Fmt.(list ~sep:cut pp_stmt) ppf stmts

let pp_program ppf program = Fmt.pf ppf "@[<v>%a@]" pp_block program

let to_source program = Fmt.str "%a@." pp_program program

let loc program =
  let src = to_source program in
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 src
