(** Abstract syntax of the mini-PHP string language.

    This models the fragment of PHP that the paper's evaluation
    analyses: string manipulation with input reads, concatenation,
    [preg_match] guards, [while] loops, and database query sinks —
    the features of the Fig. 1 vulnerability plus the loops real
    applications contain. The path-sensitive symbolic executor (like
    the paper's) works on loop-free path slices obtained by bounded
    unrolling; the {!Analysis} layer handles loops soundly via
    widening. *)

type expr =
  | Str of string  (** string literal *)
  | Var of string  (** local variable [$x] *)
  | Input of string  (** [$_POST['name']] — attacker-controlled *)
  | Concat of expr * expr  (** PHP's [.] operator *)
  | Lower of expr  (** [strtolower(e)] — solved via regular preimages *)
  | Upper of expr  (** [strtoupper(e)] *)
  | Addslashes of expr
      (** [addslashes(e)] — the classic sanitizer; solved via
          transducer preimages ({!Automata.Fst}) *)
  | Replace of char * string * expr
      (** [str_replace("c", "s", e)] with a single-character needle *)

type cmp = Len_eq | Len_le | Len_ge

type cond =
  | Preg_match of Regex.Ast.pattern * expr
      (** [preg_match('/…/', e)] — the paper's central primitive *)
  | Str_eq of expr * string  (** [e == "lit"] *)
  | Strlen of expr * cmp * int
      (** [strlen(e) ==/<=/>= n] — the §3.1.2 length-restriction
          extension; compiles to the regular language [.{n}] /
          [.{0,n}] / [.{n,}] *)
  | Not of cond

type stmt =
  | Assign of string * expr  (** [$x = e;] *)
  | If of cond * stmt list * stmt list
  | While of cond * stmt list  (** [while (c) { … }] *)
  | Exit  (** [exit;] — abandons the request *)
  | Query of expr  (** [query(e);] — the SQL sink *)
  | Echo of expr  (** output; irrelevant to the analysis but
                       realistic padding in corpus programs *)

type program = stmt list

(** All input names read by the program. *)
val inputs : program -> string list

(** Number of basic blocks of the program's CFG — the paper's [|FG|]
    metric (Fig. 12). Counted as: one entry block, plus, per [If], a
    join block and one block per non-empty arm; per [While], a
    loop-head block, an exit block, and one block for a non-empty
    body. *)
val basic_blocks : program -> int

(** The program's [query] sinks in syntactic pre-order ([If]: then-arm
    before else-arm; [While]: body in order). The position of a sink
    in this list is its {e sink id} — the stable identity shared
    between the static analysis ({!Analysis.Cfg}) and the symbolic
    executor, so a verdict proved on the CFG can prune the
    corresponding path-sensitive candidates. *)
val sinks : program -> stmt list

(** Sink id of a [Query] statement, by {e physical} identity within
    [sinks program] (parsing and corpus generation allocate each
    statement freshly, and path slicing preserves sharing). [None]
    for statements not in the program. *)
val sink_id : program -> stmt -> int option

(** Source lines of the pretty-printed program, the Fig. 11 LOC
    metric. *)
val loc : program -> int

val pp_expr : expr Fmt.t
val pp_cond : cond Fmt.t
val pp_program : program Fmt.t

(** Render as concrete mini-PHP syntax (reparseable). *)
val to_source : program -> string
