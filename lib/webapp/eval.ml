type event = Queried of string | Echoed of string

type result = { events : event list; exited : bool }

module SMap = Map.Make (String)

exception Exited

let rec eval_expr env inputs : Ast.expr -> string = function
  | Ast.Str s -> s
  | Ast.Var v -> (
      match SMap.find_opt v env with
      | Some s -> s
      | None -> invalid_arg (Printf.sprintf "Webapp.Eval: unassigned variable $%s" v))
  | Ast.Input name -> Option.value (List.assoc_opt name inputs) ~default:""
  | Ast.Concat (a, b) -> eval_expr env inputs a ^ eval_expr env inputs b
  | Ast.Lower e -> String.lowercase_ascii (eval_expr env inputs e)
  | Ast.Upper e -> String.uppercase_ascii (eval_expr env inputs e)
  | Ast.Addslashes e ->
      Option.get (Automata.Fst.apply Automata.Fst.addslashes (eval_expr env inputs e))
  | Ast.Replace (c, s, e) ->
      Option.get
        (Automata.Fst.apply (Automata.Fst.replace_char c s) (eval_expr env inputs e))

let rec eval_cond env inputs : Ast.cond -> bool = function
  | Ast.Preg_match (pattern, e) ->
      Regex.Derivative.pattern_matches pattern (eval_expr env inputs e)
  | Ast.Str_eq (e, s) -> String.equal (eval_expr env inputs e) s
  | Ast.Strlen (e, cmp, n) -> (
      let len = String.length (eval_expr env inputs e) in
      match cmp with
      | Ast.Len_eq -> len = n
      | Ast.Len_le -> len <= n
      | Ast.Len_ge -> len >= n)
  | Ast.Not c -> not (eval_cond env inputs c)

let run ?(max_loop_iters = 100_000) program ~inputs =
  let events = ref [] in
  let iters = ref 0 in
  let rec exec env = function
    | [] -> env
    | stmt :: rest ->
        let env =
          match stmt with
          | Ast.Assign (v, e) -> SMap.add v (eval_expr env inputs e) env
          | Ast.Exit -> raise Exited
          | Ast.Query e ->
              events := Queried (eval_expr env inputs e) :: !events;
              env
          | Ast.Echo e ->
              events := Echoed (eval_expr env inputs e) :: !events;
              env
          | Ast.If (c, t, f) -> exec env (if eval_cond env inputs c then t else f)
          | Ast.While (c, body) ->
              let rec loop env =
                if not (eval_cond env inputs c) then env
                else begin
                  incr iters;
                  if !iters > max_loop_iters then raise Exited;
                  loop (exec env body)
                end
              in
              loop env
        in
        exec env rest
  in
  let exited =
    match exec SMap.empty program with
    | _ -> false
    | exception Exited -> true
  in
  { events = List.rev !events; exited }

let queries program ~inputs =
  List.filter_map
    (function Queried q -> Some q | Echoed _ -> None)
    (run program ~inputs).events

let vulnerable_run ~attack program ~inputs =
  List.exists (Automata.Nfa.accepts attack) (queries program ~inputs)
