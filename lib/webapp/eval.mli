(** Concrete interpreter for the mini-PHP language.

    Used in two roles: to execute corpus programs on generated
    exploit inputs — the end-to-end check that a solver witness really
    drives an attack string into the query sink — and as the
    reference semantics the symbolic executor is property-tested
    against. *)

type event =
  | Queried of string  (** a [query(e)] sink fired with this SQL text *)
  | Echoed of string

type result = {
  events : event list;  (** in execution order *)
  exited : bool;  (** the run ended at an [exit;] *)
}

(** [run program ~inputs] executes with [$_POST] bound by [inputs];
    missing inputs default to the empty string. Reading an unassigned
    local variable is an error (raises [Invalid_argument]) — corpus
    programs are well-formed. A run exceeding [max_loop_iters] total
    loop iterations (default 100_000) is abandoned as if it hit
    [exit;] — divergent requests never reach a sink. *)
val run :
  ?max_loop_iters:int -> Ast.program -> inputs:(string * string) list -> result

(** Just the SQL strings sent to the database. *)
val queries : Ast.program -> inputs:(string * string) list -> string list

(** Does any issued query land in the attack language? *)
val vulnerable_run :
  attack:Automata.Nfa.t -> Ast.program -> inputs:(string * string) list -> bool
