type error = { line : int; col : int; message : string }

let pp_error ppf { line; col; message } =
  Fmt.pf ppf "%d:%d: %s" line col message

exception Failed of error

type cursor = { input : string; mutable pos : int; mutable line : int; mutable bol : int }

let fail cur message =
  raise (Failed { line = cur.line; col = cur.pos - cur.bol + 1; message })

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.input then Some cur.input.[cur.pos + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.bol <- cur.pos + 1
  | _ -> ());
  cur.pos <- cur.pos + 1

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance cur;
      skip_trivia cur
  | Some '/' when peek2 cur = Some '/' ->
      let rec to_eol () =
        match peek cur with
        | Some '\n' | None -> ()
        | Some _ ->
            advance cur;
            to_eol ()
      in
      to_eol ();
      skip_trivia cur
  | _ -> ()

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let lex_name cur =
  let start = cur.pos in
  while (match peek cur with Some c -> is_name_char c | None -> false) do
    advance cur
  done;
  if cur.pos = start then fail cur "expected identifier";
  String.sub cur.input start (cur.pos - start)

let expect_char cur c =
  skip_trivia cur;
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let lex_string cur =
  expect_char cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some (('"' | '\\') as c) -> Buffer.add_char buf c
        | Some c -> fail cur (Printf.sprintf "unknown escape \\%c" c)
        | None -> fail cur "unterminated string");
        advance cur;
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  Buffer.contents buf

let lex_pattern cur =
  expect_char cur '/';
  let buf = Buffer.create 16 in
  Buffer.add_char buf '/';
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated /pattern/"
    | Some '/' ->
        advance cur;
        Buffer.add_char buf '/'
    | Some '\\' ->
        advance cur;
        Buffer.add_char buf '\\';
        (match peek cur with
        | Some c ->
            Buffer.add_char buf c;
            advance cur
        | None -> fail cur "unterminated /pattern/");
        go ()
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        go ()
  in
  go ();
  match Regex.Parser.parse_pattern (Buffer.contents buf) with
  | Ok p -> p
  | Error e -> fail cur (Fmt.str "bad pattern: %a" Regex.Parser.pp_error e)

let rec parse_atom cur =
  skip_trivia cur;
  match peek cur with
  | Some '"' -> Ast.Str (lex_string cur)
  | Some '$' ->
      advance cur;
      Ast.Var (lex_name cur)
  | Some c when is_name_char c -> (
      let name = lex_name cur in
      match name with
      | "input" ->
          expect_char cur '(';
          skip_trivia cur;
          let arg = lex_string cur in
          expect_char cur ')';
          Ast.Input arg
      | "strtolower" ->
          expect_char cur '(';
          let e = parse_expr cur in
          expect_char cur ')';
          Ast.Lower e
      | "strtoupper" ->
          expect_char cur '(';
          let e = parse_expr cur in
          expect_char cur ')';
          Ast.Upper e
      | "addslashes" ->
          expect_char cur '(';
          let e = parse_expr cur in
          expect_char cur ')';
          Ast.Addslashes e
      | "str_replace" ->
          expect_char cur '(';
          skip_trivia cur;
          let needle = lex_string cur in
          if String.length needle <> 1 then
            fail cur "str_replace: single-character needle expected";
          expect_char cur ',';
          skip_trivia cur;
          let replacement = lex_string cur in
          expect_char cur ',';
          let e = parse_expr cur in
          expect_char cur ')';
          Ast.Replace (needle.[0], replacement, e)
      | _ ->
          fail cur
            "expected input(...), strtolower(...), strtoupper(...), $var, or \
             \"string\"")
  | _ -> fail cur "expected expression"

and parse_expr cur =
  let first = parse_atom cur in
  skip_trivia cur;
  match peek cur with
  | Some '.' ->
      advance cur;
      Ast.Concat (first, parse_expr cur)
  | _ -> first

let rec parse_cond cur =
  skip_trivia cur;
  match peek cur with
  | Some '!' ->
      advance cur;
      Ast.Not (parse_cond cur)
  | Some '(' ->
      advance cur;
      let c = parse_cond cur in
      expect_char cur ')';
      c
  | Some c when is_name_char c ->
      let save = (cur.pos, cur.line, cur.bol) in
      let name = lex_name cur in
      if name = "preg_match" then begin
        expect_char cur '(';
        skip_trivia cur;
        let pattern = lex_pattern cur in
        expect_char cur ',';
        let e = parse_expr cur in
        expect_char cur ')';
        Ast.Preg_match (pattern, e)
      end
      else if name = "strlen" then begin
        expect_char cur '(';
        let e = parse_expr cur in
        expect_char cur ')';
        skip_trivia cur;
        let cmp =
          match (peek cur, peek2 cur) with
          | Some '=', Some '=' ->
              advance cur;
              advance cur;
              Ast.Len_eq
          | Some '<', Some '=' ->
              advance cur;
              advance cur;
              Ast.Len_le
          | Some '>', Some '=' ->
              advance cur;
              advance cur;
              Ast.Len_ge
          | _ -> fail cur "expected ==, <=, or >= after strlen(...)"
        in
        skip_trivia cur;
        let start = cur.pos in
        while (match peek cur with Some '0' .. '9' -> true | _ -> false) do
          advance cur
        done;
        if cur.pos = start then fail cur "expected length bound";
        let n = int_of_string (String.sub cur.input start (cur.pos - start)) in
        Ast.Strlen (e, cmp, n)
      end
      else begin
        (* an equality whose left side starts with input(...) *)
        let p, l, b = save in
        cur.pos <- p;
        cur.line <- l;
        cur.bol <- b;
        parse_equality cur
      end
  | Some ('$' | '"') -> parse_equality cur
  | _ -> fail cur "expected condition"

and parse_equality cur =
  let e = parse_expr cur in
  skip_trivia cur;
  expect_char cur '=';
  expect_char cur '=';
  skip_trivia cur;
  let s = lex_string cur in
  Ast.Str_eq (e, s)

let rec parse_block cur =
  expect_char cur '{';
  let stmts = parse_stmts cur in
  expect_char cur '}';
  stmts

and parse_stmts cur =
  skip_trivia cur;
  match peek cur with
  | None | Some '}' -> []
  | _ ->
      let s = parse_stmt cur in
      s :: parse_stmts cur

and parse_stmt cur =
  skip_trivia cur;
  match peek cur with
  | Some '$' ->
      advance cur;
      let v = lex_name cur in
      skip_trivia cur;
      expect_char cur '=';
      let e = parse_expr cur in
      expect_char cur ';';
      Ast.Assign (v, e)
  | Some c when is_name_char c -> (
      let name = lex_name cur in
      match name with
      | "exit" ->
          expect_char cur ';';
          Ast.Exit
      | "query" ->
          expect_char cur '(';
          let e = parse_expr cur in
          expect_char cur ')';
          expect_char cur ';';
          Ast.Query e
      | "echo" ->
          let e = parse_expr cur in
          expect_char cur ';';
          Ast.Echo e
      | "if" ->
          expect_char cur '(';
          let cond = parse_cond cur in
          expect_char cur ')';
          let then_branch = parse_block cur in
          skip_trivia cur;
          let else_branch =
            let save = (cur.pos, cur.line, cur.bol) in
            match peek cur with
            | Some 'e' ->
                let name = lex_name cur in
                if name = "else" then parse_block cur
                else begin
                  let p, l, b = save in
                  cur.pos <- p;
                  cur.line <- l;
                  cur.bol <- b;
                  []
                end
            | _ -> []
          in
          Ast.If (cond, then_branch, else_branch)
      | "while" ->
          expect_char cur '(';
          let cond = parse_cond cur in
          expect_char cur ')';
          let body = parse_block cur in
          Ast.While (cond, body)
      | kw -> fail cur (Printf.sprintf "unknown statement '%s'" kw))
  | _ -> fail cur "expected statement"

let parse input =
  let cur = { input; pos = 0; line = 1; bol = 0 } in
  match
    let program = parse_stmts cur in
    skip_trivia cur;
    (match peek cur with
    | None -> ()
    | Some _ -> fail cur "trailing input");
    program
  with
  | program -> Ok program
  | exception Failed e -> Error e

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error e -> invalid_arg (Fmt.str "Webapp.Lang_parser.parse_exn: %a" pp_error e)
