module Nfa = Automata.Nfa
module Store = Automata.Store
module Query = Automata.Query
module System = Dprle.System

let t_analyze = Telemetry.Metrics.Timer.make "symexec.analyze"
let t_solve = Telemetry.Metrics.Timer.make "symexec.solve"

(* Symbolic strings: concatenations of literals and input reads, each
   read carrying a chain of pending string transforms (outermost
   first): the value of [In (x, [f; g])] is [f(g(x))]. Every
   transform has a transducer with regular preimages, which is how a
   constraint on the transformed value is pulled back to the raw
   input. *)
type xform = Lower | Upper | Addslashes | Replace of char * string

let xform_fst = function
  | Lower -> Automata.Fst.map_chars Char.lowercase_ascii
  | Upper -> Automata.Fst.map_chars Char.uppercase_ascii
  | Addslashes -> Automata.Fst.addslashes
  | Replace (c, s) -> Automata.Fst.replace_char c s

let xform_string t s =
  match t with
  | Lower -> String.lowercase_ascii s
  | Upper -> String.uppercase_ascii s
  | Addslashes | Replace _ -> Option.get (Automata.Fst.apply (xform_fst t) s)

let xform_name = function
  | Lower -> "lower"
  | Upper -> "upper"
  | Addslashes -> "slashes"
  | Replace (c, s) -> Printf.sprintf "repl%c_%s" c s

(* RMA variable standing for the transformed read of an input *)
let slot_var input chain =
  List.fold_left (fun acc t -> acc ^ "~" ^ xform_name t) input chain

(* Prepend a transform to a chain; adjacent ASCII case maps absorb. *)
let extend t chain =
  match (t, chain) with
  | (Lower | Upper), (Lower | Upper) :: rest -> t :: rest
  | _ -> t :: chain

type leaf = Lit of string | In of string * xform list

type sym = leaf list

let map_sym t sym =
  List.map
    (function
      | Lit s -> Lit (xform_string t s)
      | In (x, chain) -> In (x, extend t chain))
    sym

let rec eval_sym env : Ast.expr -> sym = function
  | Ast.Str s -> if s = "" then [] else [ Lit s ]
  | Ast.Var v -> (
      match List.assoc_opt v env with
      | Some s -> s
      | None ->
          invalid_arg (Printf.sprintf "Webapp.Symexec: unassigned variable $%s" v))
  | Ast.Input name -> [ In (name, []) ]
  | Ast.Concat (a, b) -> eval_sym env a @ eval_sym env b
  | Ast.Lower e -> map_sym Lower (eval_sym env e)
  | Ast.Upper e -> map_sym Upper (eval_sym env e)
  | Ast.Addslashes e -> map_sym Addslashes (eval_sym env e)
  | Ast.Replace (c, s, e) -> map_sym (Replace (c, s)) (eval_sym env e)

(* Collapse adjacent literals so constraint systems stay small. *)
let normalize sym =
  let rec go = function
    | Lit a :: Lit b :: rest -> go (Lit (a ^ b) :: rest)
    | leaf :: rest -> leaf :: go rest
    | [] -> []
  in
  go sym

(* A path condition: the symbolic value must lie in the language. *)
type obligation = { sym : sym; lang : Nfa.t; descr : string }

type query = {
  path_id : int;
  sink_index : int;
  sink_id : int;
  system : System.t;
  benign_system : System.t;
      (* the same path constraints without the sink obligation: its
         solutions are inputs that reach the sink innocently, used to
         recover the query the program intended to issue *)
  input_vars : string list;
  slots : (string * string * xform list) list;
      (* (system variable, input it reads, pending transform chain) *)
  constraint_count : int;
}

(* Constant folding: a condition whose operand contains no input read
   has a concrete value; the executor then follows only the feasible
   branch instead of forking. This keeps path counts proportional to
   the number of input-dependent branches, as in any real symbolic
   executor. *)
let concrete_string sym =
  let rec go acc = function
    | [] -> Some (String.concat "" (List.rev acc))
    | Lit s :: rest -> go (s :: acc) rest
    | In _ :: _ -> None
  in
  go [] sym

let rec concrete_cond env : Ast.cond -> bool option = function
  | Ast.Not c -> Option.map not (concrete_cond env c)
  | Ast.Preg_match (pattern, e) ->
      Option.map
        (Regex.Derivative.pattern_matches pattern)
        (concrete_string (eval_sym env e))
  | Ast.Str_eq (e, s) ->
      Option.map (String.equal s) (concrete_string (eval_sym env e))
  | Ast.Strlen (e, cmp, n) ->
      Option.map
        (fun s ->
          let len = String.length s in
          match cmp with
          | Ast.Len_eq -> len = n
          | Ast.Len_le -> len <= n
          | Ast.Len_ge -> len >= n)
        (concrete_string (eval_sym env e))

(* Guard-language cache: the DFS re-derives the same syntactic
   guard's language on every path through it, and each derivation
   pays a regex compile, or a determinize + complement, plus a
   canonical key — on filler-heavy pages this was the single largest
   intern-key source in the whole pipeline. Keyed structurally on
   (condition, polarity); per-domain (machines may flow into
   handles), reset with the store so ablation runs stay faithful. *)
let guard_lang_table :
    (Ast.cond * bool, Nfa.t * string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let () =
  Store.on_clear (fun () -> Hashtbl.reset (Domain.DLS.get guard_lang_table))

let build_guard_lang value : Ast.cond -> Nfa.t * string = function
  | Ast.Not _ -> assert false (* unwrapped by [obligation_of_cond] *)
  | Ast.Preg_match (pattern, _) ->
      let lang =
        if value then Regex.Compile.pattern_to_nfa pattern
        else Regex.Compile.pattern_reject_nfa pattern
      in
      ( lang,
        Fmt.str "%spreg_match(%a)" (if value then "" else "!")
          Regex.Ast.pp_pattern pattern )
  | Ast.Str_eq (_, s) ->
      (* interned: the reject branch's complement comes from the
         handle's memoized determinization *)
      let word = Store.of_word s in
      let lang =
        if value then Store.nfa word
        else
          Store.canon
            (Automata.Dfa.to_nfa (Automata.Dfa.complement (Store.dfa word)))
      in
      (lang, Fmt.str "%s== %S" (if value then "" else "!") s)
  | Ast.Strlen (_, cmp, n) ->
      (* §3.1.2: a length check is the regular language .{n} / .{0,n}
         / .{n,} *)
      let any = Nfa.of_charset Charset.full in
      let accept =
        Store.intern
          (match cmp with
          | Ast.Len_eq -> Automata.Ops.repeat any ~min_count:n ~max_count:(Some n)
          | Ast.Len_le -> Automata.Ops.repeat any ~min_count:0 ~max_count:(Some n)
          | Ast.Len_ge -> Automata.Ops.repeat any ~min_count:n ~max_count:None)
      in
      let lang =
        if value then Store.nfa accept
        else
          Store.canon
            (Automata.Dfa.to_nfa (Automata.Dfa.complement (Store.dfa accept)))
      in
      (lang, Fmt.str "%sstrlen %d" (if value then "" else "!") n)

let guard_lang value c =
  if not (Store.enabled ()) then build_guard_lang value c
  else
    let table = Domain.DLS.get guard_lang_table in
    match Hashtbl.find_opt table (c, value) with
    | Some entry -> entry
    | None ->
        let entry = build_guard_lang value c in
        Hashtbl.replace table (c, value) entry;
        entry

(* Translate a condition (taken with polarity [value]) into an
   obligation on its symbolic operand. *)
let rec obligation_of_cond env value : Ast.cond -> obligation = function
  | Ast.Not c -> obligation_of_cond env (not value) c
  | (Ast.Preg_match (_, e) | Ast.Str_eq (e, _) | Ast.Strlen (e, _, _)) as c ->
      let lang, descr = guard_lang value c in
      { sym = normalize (eval_sym env e); lang; descr }

(* Build a System.t from the accumulated obligations. Literals become
   named constants (deduplicated by content); the obligation languages
   become constants c0, c1, …. *)
let system_of_obligations obligations =
  let lit_table : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let consts = ref [] in
  let fresh_lit s =
    match Hashtbl.find_opt lit_table s with
    | Some name -> name
    | None ->
        let name = Printf.sprintf "lit%d" (Hashtbl.length lit_table) in
        Hashtbl.add lit_table s name;
        consts := (name, Nfa.of_word s) :: !consts;
        name
  in
  let leaf_expr = function
    | Lit s -> System.Const (fresh_lit s)
    | In (x, t) -> System.Var (slot_var x t)
  in
  let sym_expr sym =
    match sym with
    | [] -> System.Const (fresh_lit "")
    | first :: rest ->
        List.fold_left
          (fun acc leaf -> System.Concat (acc, leaf_expr leaf))
          (leaf_expr first) rest
  in
  let constraints =
    List.mapi
      (fun i { sym; lang; descr = _ } ->
        let cname = Printf.sprintf "c%d" i in
        consts := (cname, lang) :: !consts;
        { System.lhs = sym_expr sym; rhs = cname })
      obligations
  in
  System.make_exn ~consts:(List.rev !consts) ~constraints

type exploration = { candidates : query list; paths_truncated : bool }

let analyze ?(max_paths = 256) ?(max_unroll = 16) ~attack program =
  Telemetry.Span.with_span ~name:"symexec.analyze"
    ~attrs:[ ("max_paths", `Int max_paths); ("max_unroll", `Int max_unroll) ]
  @@ fun () ->
  Telemetry.Metrics.Timer.time t_analyze @@ fun () ->
  (* one interned attack language for every sink on every path — and,
     in directory mode, for every file sharing the attack pattern *)
  let attack = Store.canon attack in
  let results = ref [] in
  let path_count = ref 0 in
  let truncated = ref false in
  (* DFS over branch decisions; [obligations] accumulates in reverse.
     [fuel] bounds the total loop iterations unrolled along one path:
     loops make the path space infinite, so exhausting it (like
     exceeding [max_paths]) marks the enumeration truncated. *)
  let rec exec env obligations sink_index fuel stmts =
    match stmts with
    | [] -> finish_path ()
    | stmt :: rest -> (
        match stmt with
        | Ast.Exit -> finish_path ()
        | Ast.Assign (v, e) ->
            exec ((v, normalize (eval_sym env e)) :: List.remove_assoc v env)
              obligations sink_index fuel rest
        | Ast.Echo _ -> exec env obligations sink_index fuel rest
        | Ast.Query e ->
            let sink =
              { sym = normalize (eval_sym env e); lang = attack; descr = "sink" }
            in
            emit stmt (sink :: obligations) !sink_index;
            incr sink_index;
            exec env obligations sink_index fuel rest
        | Ast.If (c, t, f) -> (
            match concrete_cond env c with
            | Some true -> exec env obligations sink_index fuel (t @ rest)
            | Some false -> exec env obligations sink_index fuel (f @ rest)
            | None ->
                if !path_count < max_paths then begin
                  let taken = obligation_of_cond env true c in
                  let fallen = obligation_of_cond env false c in
                  incr path_count;
                  exec env (taken :: obligations) (ref !sink_index) fuel (t @ rest);
                  exec env (fallen :: obligations) (ref !sink_index) fuel (f @ rest)
                end
                else truncated := true)
        | Ast.While (c, body) -> (
            (* unroll: the taken branch re-queues the same [stmt] so a
               sink inside the body keeps its physical identity (and
               hence its sink id) across iterations *)
            match concrete_cond env c with
            | Some false -> exec env obligations sink_index fuel rest
            | Some true ->
                if fuel > 0 then
                  exec env obligations sink_index (fuel - 1)
                    (body @ (stmt :: rest))
                else begin
                  (* concretely spinning with no fuel left: this path's
                     suffix is unexplored *)
                  truncated := true;
                  finish_path ()
                end
            | None ->
                if !path_count < max_paths then begin
                  let taken = obligation_of_cond env true c in
                  let fallen = obligation_of_cond env false c in
                  incr path_count;
                  if fuel > 0 then
                    exec env (taken :: obligations) (ref !sink_index) (fuel - 1)
                      (body @ (stmt :: rest))
                  else truncated := true;
                  exec env (fallen :: obligations) (ref !sink_index) fuel rest
                end
                else truncated := true))
  and finish_path () = ()
  and emit stmt obligations sink_index =
    let sink_id = Option.value (Ast.sink_id program stmt) ~default:(-1) in
    let obligations = List.rev obligations in
    (* the sink obligation is the last one *)
    let benign_obligations =
      List.filteri (fun i _ -> i < List.length obligations - 1) obligations
    in
    (* drop obligations on purely-literal symbolic values only if they
       are trivially satisfiable; keep them otherwise so infeasible
       paths solve to Unsat *)
    let system = system_of_obligations obligations in
    let benign_system = system_of_obligations benign_obligations in
    (* |C| counts what the decision procedure consumes: the edges of
       the dependency graph — one ⊆-edge per obligation plus one
       ∘-edge pair per concatenation (Fig. 5 of the paper). *)
    let graph = Dprle.Depgraph.of_system system in
    let constraint_count =
      List.length graph.subsets + List.length graph.concats
    in
    (* which (system variable, input, transform) triples occur: the
       same input may be read plainly and through a case map *)
    let slots =
      List.sort_uniq compare
        (List.concat_map
           (fun { sym; _ } ->
             List.filter_map
               (function
                 | Lit _ -> None
                 | In (x, t) -> Some (slot_var x t, x, t))
               sym)
           obligations)
    in
    let input_vars =
      List.sort_uniq compare (List.map (fun (_, x, _) -> x) slots)
    in
    results :=
      {
        path_id = !path_count;
        sink_index;
        sink_id;
        system;
        benign_system;
        input_vars;
        slots;
        constraint_count;
      }
      :: !results
  in
  exec [] [] (ref 0) max_unroll program;
  { candidates = List.rev !results; paths_truncated = !truncated }

(* A transformed read constrains the transformed value; pull the
   solved language back to the raw input through the chain's
   transducer preimages, outermost first. *)
let pull_back chain lang =
  List.fold_left (fun acc t -> Automata.Fst.preimage (xform_fst t) acc) lang chain

(* The RMA solver treats [x] and [lower(x)] as independent variables;
   a disjunct is usable only if, per input, the intersection of all
   pulled-back slot languages is nonempty. Try disjuncts in order. *)
let input_languages query assignment =
  let exception Dead in
  try
    Some
      (Dprle.Assignment.of_list
         (List.filter_map
            (fun input ->
              let langs =
                List.filter_map
                  (fun (var, x, t) ->
                    if x <> input then None
                    else
                      Option.map (pull_back t)
                        (Dprle.Assignment.find_opt assignment var))
                  query.slots
              in
              match langs with
              | [] -> None
              | first :: rest ->
                  let h =
                    List.fold_left
                      (fun acc l -> Store.inter_lang acc (Store.intern l))
                      (Store.intern first) rest
                  in
                  if Query.is_empty h then raise Dead
                  else Some (input, Store.nfa h))
            query.input_vars))
  with Dead -> None

type budget_status = Within_budget | Budget_exceeded of Automata.Budget.stop

type provenance = Proved_safe_statically | Witnessed | Unknown

let pp_provenance ppf = function
  | Proved_safe_statically -> Fmt.string ppf "proved_safe_statically"
  | Witnessed -> Fmt.string ppf "witnessed"
  | Unknown -> Fmt.string ppf "unknown"

type verdict = {
  assignment : Dprle.Assignment.t option;
  slot_languages : (string * Nfa.t) list;
  budget : budget_status;
  provenance : provenance;
}

let statically_safe_verdict =
  {
    assignment = None;
    slot_languages = [];
    budget = Within_budget;
    provenance = Proved_safe_statically;
  }

(* Goal-directed solving: the sink obligation is always the system's
   last constraint ([emit] reverses the path-ordered accumulator), and
   its variables seed the analyzer's cone-of-influence slicing — path
   conditions on inputs the sink never reads are discharged with
   witnesses instead of solved. The slot variables must ride along as
   goals too: [input_languages] pulls exploit inputs back through
   every slot's full solved language, and a sliced slot would collapse
   to one arbitrary witness word (sound for the verdict, useless for
   reconstruction — a case-mapped filter var pinned to one spelling
   can make a real exploit unrecoverable). *)
let sink_goals query =
  let sink_vars =
    match List.rev (Dprle.System.constraints query.system) with
    | [] -> []
    | { Dprle.System.lhs; _ } :: _ ->
        let rec vars acc = function
          | Dprle.System.Var v -> v :: acc
          | Dprle.System.Const _ -> acc
          | Dprle.System.Concat (a, b) | Dprle.System.Union (a, b) ->
              vars (vars acc a) b
        in
        vars [] lhs
  in
  List.sort_uniq String.compare
    (sink_vars @ List.map (fun (var, _, _) -> var) query.slots)

let solve ?(config = Dprle.Solver.Config.default) query =
  Telemetry.Span.with_span ~name:"symexec.solve"
    ~attrs:
      [
        ("path_id", `Int query.path_id);
        ("sink_index", `Int query.sink_index);
        ("constraints", `Int query.constraint_count);
      ]
  @@ fun () ->
  Telemetry.Metrics.Timer.time t_solve @@ fun () ->
  let safe =
    {
      assignment = None;
      slot_languages = [];
      budget = Within_budget;
      provenance = Unknown;
    }
  in
  (* The winning disjunct's per-slot languages, before pull-back:
     what each system variable (e.g. [x~lower]) may evaluate to. *)
  let slot_languages_of disjunct =
    List.filter_map
      (fun (var, _, _) ->
        Option.map (fun l -> (var, l)) (Dprle.Assignment.find_opt disjunct var))
      query.slots
  in
  let goals = sink_goals query in
  let attempt max_solutions =
    match
      Dprle.Solver.run
        { config with Dprle.Solver.Config.max_solutions; goals }
        query.system
    with
    | Error (Dprle.Solver.Error.Budget_exceeded stop) ->
        Error (Budget_exceeded stop)
    | Ok (Dprle.Solver.Unsat _) -> Ok None
    | Ok (Dprle.Solver.Sat disjuncts) ->
        Ok
          (List.find_map
             (fun d ->
               Option.map (fun inputs -> (d, inputs)) (input_languages query d))
             disjuncts)
  in
  match attempt 1 with
  | Error budget -> { safe with budget }
  | Ok (Some (d, inputs)) ->
      {
        assignment = Some inputs;
        slot_languages = slot_languages_of d;
        budget = Within_budget;
        provenance = Witnessed;
      }
  | Ok None -> (
      (* only case-mapped reads can make the first disjunct unusable
         while a later one works — don't pay for enumeration otherwise *)
      if not (List.exists (fun (_, _, chain) -> chain <> []) query.slots) then
        safe
      else
        match attempt 16 with
        | Error budget -> { safe with budget }
        | Ok (Some (d, inputs)) ->
            {
              assignment = Some inputs;
              slot_languages = slot_languages_of d;
              budget = Within_budget;
              provenance = Witnessed;
            }
        | Ok None -> safe)

(* Inputs that reach the same sink without the attack constraint:
   used to reconstruct the intended query for structural comparison. *)
let benign_inputs ?(config = Dprle.Solver.Config.default) query =
  match
    Dprle.Solver.run { config with max_solutions = 4 } query.benign_system
  with
  | Ok (Dprle.Solver.Sat disjuncts) ->
      List.find_map (input_languages query) disjuncts
  | Ok (Dprle.Solver.Unsat _) | Error _ -> None

let exploit_inputs query assignment =
  List.map
    (fun input ->
      match Dprle.Assignment.find_opt assignment input with
      | Some lang -> (
          match Nfa.shortest_word lang with
          | Some w -> (input, w)
          | None -> (input, "a"))
      | None -> (input, "a"))
    query.input_vars

let first_exploit ?max_paths ~attack program =
  let all_inputs = Ast.inputs program in
  let { candidates; paths_truncated = _ } = analyze ?max_paths ~attack program in
  List.find_map
    (fun query ->
      match (solve query).assignment with
      | Some a ->
          let constrained = exploit_inputs query a in
          (* inputs the program reads but the path never constrains
             get a harmless default, as in the paper's
             [posted_userid = a] *)
          let defaults =
            List.filter_map
              (fun input ->
                if List.mem_assoc input constrained then None else Some (input, "a"))
              all_inputs
          in
          Some (constrained @ defaults)
      | None -> None)
    candidates
