(** Path-sensitive symbolic execution of mini-PHP programs into RMA
    constraint systems.

    This plays the role of the "simple prototype program analysis"
    of the paper's §4: walk every loop-free path, keep a symbolic
    store mapping locals to concatenations of string literals and
    input reads, translate each branch decision into a subset
    constraint on the inputs along it, and at every [query] sink emit
    the vulnerability query "can the issued SQL land in the attack
    language?" as one more subset constraint. The resulting system is
    exactly the paper's running example shape:

    {v   v1 ⊆ c_filter        (the taken preg_match branch)
        c_prefix ∘ v1 ⊆ c_attack   (the sink)            v}

    Solving it (with {!Dprle.Solver}) yields, per input, the full
    regular language of exploits. *)

(** One pending string transform on an input read; a read carries a
    chain of them (outermost first), e.g.
    [addslashes(strtolower(x))] ↦ [[Addslashes; Lower]]. *)
type xform = Lower | Upper | Addslashes | Replace of char * string

type query = {
  path_id : int;  (** index of the explored path *)
  sink_index : int;  (** which [query] along that path *)
  sink_id : int;
      (** {e syntactic} sink identity ({!Ast.sink_id}): stable across
          the paths reaching the same [query] statement, and shared
          with {!Analysis.Cfg} — the key static pruning filters on *)
  system : Dprle.System.t;
      (** branch + sink constraints; constants are auto-named.
          A case-mapped read appears as its own system variable
          (e.g. [x~lower]) — see [slots]. *)
  benign_system : Dprle.System.t;
      (** the same path constraints {e without} the sink obligation:
          its solutions are inputs that reach this sink innocently
          (used to recover the intended query for structural
          comparison — see {!benign_inputs}) *)
  input_vars : string list;  (** the inputs read along the path *)
  slots : (string * string * xform list) list;
      (** (system variable, input it reads, pending transform chain —
          empty for a plain read) *)
  constraint_count : int;
      (** the paper's [|C|] metric: dependency-graph edges of the
          system — one ⊆-edge per path/sink obligation plus one
          ∘-edge pair per concatenation *)
}

(** Result of path enumeration. [paths_truncated] is set whenever the
    DFS dropped work: a branch fork past [max_paths], or a loop
    iteration past [max_unroll]. A truncated enumeration with no
    solvable candidate does {e not} establish safety — callers must
    surface it (webcheck prints a warning; statically-proved sinks
    are unaffected since their verdict never relies on enumeration). *)
type exploration = {
  candidates : query list;  (** one per explored (path, sink) *)
  paths_truncated : bool;
}

(** Explore all paths (bounded by [max_paths], default 256; loops
    unrolled up to [max_unroll] iterations per path, default 16) and
    return one candidate query per (path, sink). Paths that
    concretely cannot reach a sink (ended by [exit]) yield nothing. *)
val analyze :
  ?max_paths:int ->
  ?max_unroll:int ->
  attack:Automata.Nfa.t ->
  Ast.program ->
  exploration

(** Whether a solve finished inside its configured budget. *)
type budget_status =
  | Within_budget
  | Budget_exceeded of Automata.Budget.stop
      (** the solve was cut short; the verdict says nothing about
          this path/sink *)

(** How a per-sink verdict was established.
    - [Proved_safe_statically]: the {!Analysis} fixpoint showed
      [abstract ∩ attack = ∅]; sound over {e all} paths, loops
      included, independent of path enumeration.
    - [Witnessed]: the solver produced an exploit language (and a
      concrete witness).
    - [Unknown]: no witness found — safety follows only if the
      enumeration was exhaustive (see {!exploration.paths_truncated})
      and the solve stayed within budget. *)
type provenance = Proved_safe_statically | Witnessed | Unknown

val pp_provenance : provenance Fmt.t

(** Structured result of solving one candidate query. *)
type verdict = {
  assignment : Dprle.Assignment.t option;
      (** [Some a]: the exploit language {e per input} — the solved
          language of each slot variable, pulled back through its
          case map and intersected across the input's slots. [None]
          with [budget = Within_budget] means this path/sink is safe
          (the constraint system is unsatisfiable — as for the fixed
          filter of §2 — or no disjunct survives the pull-back
          intersection). *)
  slot_languages : (string * Automata.Nfa.t) list;
      (** the winning disjunct's language per {e slot} variable
          (before pull-back): what each transformed read may evaluate
          to at the sink. Empty when there is no exploit. *)
  budget : budget_status;
  provenance : provenance;  (** [Witnessed] or [Unknown] from {!solve} *)
}

(** The verdict the static layer issues for a pruned sink: no
    assignment, within budget, [Proved_safe_statically]. *)
val statically_safe_verdict : verdict

(** Solve one candidate under [config] (default
    {!Dprle.Solver.Config.default}, unlimited budget); [config]'s
    [max_solutions] is overridden internally (1, then 16 when
    case-mapped slots make later disjuncts matter). *)
val solve : ?config:Dprle.Solver.Config.t -> query -> verdict

(** Concrete exploit inputs from a solved candidate: the shortest
    witness per constrained input, and ["a"] for inputs the path
    never constrains (mirroring the paper's [posted_userid = a]). *)
val exploit_inputs : query -> Dprle.Assignment.t -> (string * string) list

(** Per-input languages of {e benign} values: inputs that drive the
    program down the same path to the same sink, with no attack
    constraint. Running the program on their witnesses yields the
    query the programmer intended, the baseline for the structural
    injection check of {!Sql.Analysis}. [None] when the path is
    infeasible (or [config]'s budget ran out). *)
val benign_inputs :
  ?config:Dprle.Solver.Config.t -> query -> Dprle.Assignment.t option

(** End-to-end convenience: first solvable candidate's inputs. *)
val first_exploit :
  ?max_paths:int ->
  attack:Automata.Nfa.t ->
  Ast.program ->
  (string * string) list option
