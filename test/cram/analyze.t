The pre-solve analyzer: four static passes — normalization, bounds
propagation, implied-constraint discharge, and cone-of-influence
slicing — that run before any group machine is built. The subcommand
reports what each pass did; a refuted system exits 1 and prints a
1-minimal unsatisfiable core.

Bounds propagation refutes without solving: the meet of v's two
regular upper bounds is empty, and both constraints are blamed.

  $ cat > contradiction.dprle <<'SYS'
  > let digits = /^[0-9]+$/;
  > let quoted = /^'/;
  > v <= digits;
  > v <= quoted;
  > SYS

  $ dprle analyze contradiction.dprle
  system: 2 constraint(s), 1 variable(s)
  normalize: 0 aliased, 0 folded, 0 deduped
  bound: v <- 2 contribution(s)
  discharged: 0 implied constraint(s)
  verdict: unsat — variable v is constrained to the empty language
  core: v <= digits; v <= quoted
  [1]

Normalization: aliasing merges constants with equal languages, which
turns the two constraints into duplicates; discharge then removes the
constraint a tighter one implies.

  $ cat > norm.dprle <<'SYS'
  > let c_re = /^ab$/;
  > let c_lit = "ab";
  > let wide = /^[ab]*$/;
  > v <= c_re;
  > v <= c_lit;
  > v <= wide;
  > SYS

  $ dprle analyze norm.dprle
  system: 3 constraint(s), 1 variable(s)
  normalize: 1 aliased, 0 folded, 1 deduped
  bound: v <- 2 contribution(s), shortest witness "ab"
  discharged: 1 implied constraint(s)
  verdict: unknown — 1 constraint(s) remain for the solver

Slicing: a `goal` statement in the file (or repeatable --goal flags)
keys the cone of influence. The component of x shares no variable
with the goal, so it is proved satisfiable once — shortest witness of
its bound — and dropped.

  $ cat > sliced.dprle <<'SYS'
  > let ca = /^ab*$/;
  > let cc = /^cd?$/;
  > v1 <= ca;
  > x <= cc;
  > goal v1;
  > SYS

  $ dprle analyze sliced.dprle
  system: 2 constraint(s), 2 variable(s)
  normalize: 0 aliased, 0 folded, 0 deduped
  bound: v1 <- 1 contribution(s), shortest witness "a"
  bound: x <- 1 contribution(s), shortest witness "c"
  discharged: 0 implied constraint(s)
  sliced: 1 constraint(s) over goal-independent variable(s) x
  verdict: unknown — 1 constraint(s) remain for the solver

The sliced witness rejoins the solver's assignments, so `solve` still
binds every variable of the original system:

  $ dprle solve sliced.dprle --witnesses
  sat: 1 disjunctive solution(s)
  solution 1:
    [v1 ↦ "a", x ↦ "c"]
    


--dot renders the original dependency graph with the post-analysis
cone filled (the sliced x stays unfilled):

  $ dprle analyze sliced.dprle --dot sliced.dot > /dev/null
  $ grep -c 'style=filled' sliced.dot
  1
  $ grep 'v_v1' sliced.dot
    v_v1 [shape=ellipse, label="v1", style=filled, fillcolor=lightgrey];
    c_ca -> v_v1 [style=dashed, label="⊆"];

`dprle lint --dot` writes the same graph alongside its findings:

  $ dprle lint sliced.dprle --dot lint.dot
  no findings
  $ head -1 lint.dot
  digraph depgraph {

The ablation gate: --no-analyze hands the system to the solver
untouched, and the verdict lines must be identical either way (the
analyzer may legitimately change *how* a refutation is phrased for
systems it decides itself, but here the solver agrees verbatim — and
sat/unsat plus the exit code must never move).

  $ cat > fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fixed.dprle | grep -oE '^(sat|unsat)' > verdict_on.txt
  $ dprle solve fixed.dprle --no-analyze | grep -oE '^(sat|unsat)' > verdict_off.txt
  $ cmp verdict_on.txt verdict_off.txt
  $ cat verdict_on.txt
  unsat

  $ dprle solve contradiction.dprle | grep -oE '^(sat|unsat)' > c_on.txt
  $ dprle solve contradiction.dprle --no-analyze | grep -oE '^(sat|unsat)' > c_off.txt
  $ cmp c_on.txt c_off.txt

  $ dprle check sliced.dprle
  sat
  $ dprle check sliced.dprle --no-analyze
  sat

The refutation and its core travel the wire unchanged — the same
frame the `serve` daemon would answer:

  $ cat > req.jsonl <<'EOF'
  > {"schema":"dprle-wire/1","id":"q1","kind":"solve","payload":{"system":"let digits = /^[0-9]+$/;\nlet quoted = /^'/;\nv <= digits;\nv <= quoted;\n"}}
  > EOF
  $ dprle batch --wire req.jsonl 2>/dev/null | sed -E 's/"elapsed_us":[0-9]+/"elapsed_us":0/; s/"intern_hit":[0-9]+/"intern_hit":0/; s/"opcache_hit":[0-9]+/"opcache_hit":0/'
  {"schema":"dprle-wire/1","id":"q1","result":"unsat","elapsed_us":0,"store":{"intern_hit":0,"opcache_hit":0},"payload":{"reason":"variable v is constrained to the empty language","core":["v <= digits","v <= quoted"]}}

A goal naming a constant is a file error, caught at parse time:

  $ cat > badgoal.dprle <<'SYS'
  > let c = /^a$/;
  > v <= c;
  > goal c;
  > SYS
  $ dprle analyze badgoal.dprle
  error: badgoal.dprle: 3:8: goal "c" names a constant
  [2]
