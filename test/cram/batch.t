Batch mode solves every .dprle file in a directory over a worker
pool. Build a small corpus with a sat, an unsat, and a broken file:

  $ mkdir corpus
  $ cat > corpus/a_fig1.dprle <<'SYS'
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS
  $ cat > corpus/b_fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS
  $ echo 'v1 <= nope;' > corpus/c_bad.dprle

Results print in file-name order; a parse error anywhere makes the
exit code 3 (timing goes to stderr):

  $ dprle batch corpus 2>/dev/null
  a_fig1.dprle: sat (1 solution(s))
  b_fixed.dprle: unsat — variable v1 is constrained to the empty language
  c_bad.dprle: parse error: 1:12: right-hand side "nope" is not a defined constant
  === 3 system(s): 1 sat, 1 unsat, 1 parse error(s), 0 over budget, 0 failure(s) ===
  [3]

The report is byte-identical for any --jobs value:

  $ dprle batch corpus --jobs 1 2>/dev/null > jobs1.txt
  [3]
  $ dprle batch corpus --jobs 4 2>/dev/null > jobs4.txt
  [3]
  $ cmp jobs1.txt jobs4.txt && echo deterministic
  deterministic

A starved state budget degrades each job to a structured outcome
instead of sinking the batch — and deterministically so, since the
budget is charged on materialized states, not wall clock:

  $ rm corpus/c_bad.dprle
  $ dprle batch corpus --budget-states 3 2>/dev/null
  a_fig1.dprle: budget exceeded: state budget exhausted
  b_fixed.dprle: budget exceeded: state budget exhausted
  === 2 system(s): 0 sat, 0 unsat, 0 parse error(s), 2 over budget, 0 failure(s) ===
  [4]

Without .dprle files the directory is rejected:

  $ mkdir empty
  $ dprle batch empty
  error: no .dprle files in empty
  [2]

The solve subcommand exposes the same budget flags (exit code 4):

  $ dprle solve corpus/a_fig1.dprle --budget-states 3
  error: budget exceeded: state budget exhausted
  [4]
  $ dprle check corpus/a_fig1.dprle --budget-states 3
  error: budget exceeded: state budget exhausted
  [4]
