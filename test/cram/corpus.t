Regenerate the eve application from Fig. 11 and scan it end to end —
the paper's section 4 workflow on the synthetic corpus:

  $ corpusgen --app eve .
  eve      1.0        8 files    925 loc -> ./eve

  $ ls eve | head -3
  edit.mphp
  page_00.mphp
  page_01.mphp

Timing goes to stderr, so the per-app summary on stdout is stable:

  $ webcheck eve 2>/dev/null | tail -2
  === eve: 8 files scanned, 1 vulnerable ===
    vulnerable: edit.mphp

The vulnerable file matches the paper's count for eve (1 of 8):

  $ webcheck eve 2>/dev/null | grep -c VULNERABLE
  1

Directory scans fan out over a worker pool; the report is
byte-identical for any --jobs value:

  $ webcheck eve --jobs 1 2>/dev/null > jobs1.txt
  $ webcheck eve --jobs 4 2>/dev/null > jobs4.txt
  $ cmp jobs1.txt jobs4.txt && echo deterministic
  deterministic
