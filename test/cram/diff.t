bench --diff compares two bench snapshot documents. Deterministic
content — counters, experiment set, histogram shapes, timer call
counts — is hard-gated; wall-clock seconds are ratio-gated past a
noise floor and can be demoted to warnings.

Two fixtures: OLD is a small but representative snapshot, NEW injects
a 2x wall-clock regression and a counter regression into fig12, plus
a drifted histogram bucket in fig1.

  $ cat > old.json <<'JSON'
  > {"schema":"dprle-bench/2","unix_time":1754000000.0,"experiments":[
  >   {"name":"fig1/motivating","seconds":0.004,"states_visited":629,"products_built":2,"concats_built":43,"solves":1,
  >    "metrics":{"counters":[{"name":"solver.solves","value":1}],"gauges":[],
  >               "histograms":[{"name":"automata.bfs.frontier","count":104,"sum":191.0,"max":6.0,"buckets":[{"le":8.0,"count":104},{"le":"+Inf","count":104}]}],
  >               "timers":[{"name":"automata.ops.concat","count":43,"total_ns":380000,"self_ns":380000,"max_ns":23000}]}},
  >   {"name":"fig12/solving","seconds":0.200,"states_visited":150000,"products_built":120,"concats_built":800,"solves":16,
  >    "metrics":{"counters":[{"name":"solver.solves","value":16}],"gauges":[],"histograms":[],"timers":[]}},
  >   {"name":"parallel/engine","seconds":1.5,"states_visited":99,"products_built":1,"concats_built":1,"solves":48,
  >    "metrics":{"counters":[],"gauges":[],"histograms":[],"timers":[]}}
  > ]}
  > JSON

Identical documents diff clean and exit 0 (the nondeterministic
parallel/engine experiment is skipped by default):

  $ dprle-bench --diff old.json old.json
  skipped (nondeterministic): parallel/engine
  bench diff clean: 2 experiments compared

Inject regressions: fig12 wall 0.200 -> 0.450 (past the 1.5x
threshold), solves 16 -> 19 (top-level field and nested metrics
counter), and a fig1 histogram bucket drift.

  $ sed -e 's/"seconds":0.200/"seconds":0.450/' \
  >     -e 's/"solves":16/"solves":19/g' \
  >     -e 's/"value":16/"value":19/' \
  >     -e 's/{"le":8.0,"count":104}/{"le":8.0,"count":90}/' \
  >     old.json > new.json

  $ dprle-bench --diff old.json new.json
  FAIL fig1/motivating: histogram automata.bfs.frontier{} buckets: bucket occupancy drifted
  FAIL fig12/solving: seconds: 0.2000s -> 0.4500s (2.25x)
  FAIL fig12/solving: solves: 16 -> 19
  FAIL fig12/solving: counter solver.solves{}: 16 -> 19
  skipped (nondeterministic): parallel/engine
  bench diff: 2 experiments compared, 4 hard, 0 warn
  regressed: fig1/motivating, fig12/solving
  [1]

--wall-warn-only demotes the wall finding but the counter and shape
regressions still hard-fail:

  $ dprle-bench --diff old.json new.json --wall-warn-only
  FAIL fig1/motivating: histogram automata.bfs.frontier{} buckets: bucket occupancy drifted
  warn fig12/solving: seconds: 0.2000s -> 0.4500s (2.25x)
  FAIL fig12/solving: solves: 16 -> 19
  FAIL fig12/solving: counter solver.solves{}: 16 -> 19
  skipped (nondeterministic): parallel/engine
  bench diff: 2 experiments compared, 3 hard, 1 warn
  regressed: fig1/motivating, fig12/solving
  [1]

A wall-only regression under --wall-warn-only exits 0:

  $ sed -e 's/"seconds":0.200/"seconds":0.450/' old.json > wall.json
  $ dprle-bench --diff old.json wall.json --wall-warn-only
  warn fig12/solving: seconds: 0.2000s -> 0.4500s (2.25x)
  skipped (nondeterministic): parallel/engine
  bench diff: 2 experiments compared, 0 hard, 1 warn

A raised threshold tolerates the same wall delta entirely:

  $ dprle-bench --diff old.json wall.json --threshold 3.0
  skipped (nondeterministic): parallel/engine
  bench diff clean: 2 experiments compared

--include globs opt skipped experiments back in (for runners where
the parallel arms are known-deterministic, e.g. pinned core counts):

  $ dprle-bench --diff old.json old.json --include 'parallel/*'
  bench diff clean: 3 experiments compared

  $ sed -e 's/"solves":48/"solves":50/' old.json > par.json
  $ dprle-bench --diff old.json par.json --include 'parallel/*'
  FAIL parallel/engine: solves: 48 -> 50
  bench diff: 3 experiments compared, 1 hard, 0 warn
  regressed: parallel/engine
  [1]

A disappearing experiment is a hard finding:

  $ sed -e 's/"name":"fig1\/motivating"/"name":"fig1\/renamed"/' old.json > renamed.json
  $ dprle-bench --diff old.json renamed.json
  FAIL fig1/renamed: (experiment): experiment appeared
  FAIL fig1/motivating: (experiment): experiment disappeared
  skipped (nondeterministic): parallel/engine
  bench diff: 1 experiments compared, 2 hard, 0 warn
  regressed: fig1/motivating, fig1/renamed
  [1]

Usage and parse errors exit 2:

  $ dprle-bench --diff old.json
  usage: bench --diff OLD.json NEW.json [--threshold X] [--wall-warn-only] [--skip GLOB]... [--include GLOB]...
  [2]

  $ echo 'not json' > bad.json
  $ dprle-bench --diff old.json bad.json 2>/dev/null
  [2]
