The lint subcommand runs every pre-solve static check without
solving. A well-formed system is clean (exit 0):

  $ cat > clean.dprle <<'SYS'
  > # the paper's Fig. 1 system
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle lint clean.dprle
  no findings

An empty bounding constant is almost always an authoring mistake —
every left side it constrains is forced empty:

  $ cat > empty.dprle <<'SYS'
  > let nothing = /[^\d\D]/;
  > x <= nothing;
  > SYS

  $ dprle lint empty.dprle
  warning: [empty-rhs] constant 'nothing' denotes the empty language; every lhs constrained by it is forced empty
  warning: [unsat-core] system is unsatisfiable (variable x is constrained to the empty language); minimal core: x <= nothing
  [1]

The same check fires automatically (on stderr, as a log warning)
before any solve:

  $ dprle check empty.dprle
  dprle: [WARNING] lint: warning: [empty-rhs] constant 'nothing' denotes the empty language; every lhs constrained by it is forced empty
  unsat: variable x is constrained to the empty language
  [1]

A constant-only constraint that fails its inclusion makes the whole
system unsatisfiable — one language query decides it before any
depgraph machinery runs. The finding records which tier of the query
front-end answered: word-literal constants carry their regex ASTs, so
the symbolic derivative tier decides without building any product:

  $ cat > contradict.dprle <<'SYS'
  > let a = "x";
  > let b = "y";
  > a <= b;
  > SYS

  $ dprle lint contradict.dprle
  warning: [const-contradiction] constant-only constraint a ⊆ b does not hold: the system is unsatisfiable (tier=automata)
  warning: [unsat-core] system is unsatisfiable (constant-only alternative a violates its subset constraint); minimal core: a <= b
  [1]

Under --no-symbolic the same query runs on the automata kernels; the
verdict (and exit code) must be identical, only the tier note moves:

  $ dprle lint contradict.dprle --no-symbolic
  warning: [const-contradiction] constant-only constraint a ⊆ b does not hold: the system is unsatisfiable (tier=automata)
  warning: [unsat-core] system is unsatisfiable (constant-only alternative a violates its subset constraint); minimal core: a <= b
  [1]

Variables bounded only through concatenations ride entirely on the
ε-cut machinery; worth knowing when a solve blows up:

  $ cat > unconstrained.dprle <<'SYS'
  > let quote = /'/;
  > p . x <= quote;
  > p <= quote;
  > SYS

  $ dprle lint unconstrained.dprle
  info: [unconstrained-var] variable 'x' has no direct subset constraint (bounded only through concatenations)
  [1]

CI-groups coupled through a shared variable are the paper's §3.5
worst case — ε-cut combinations multiply across the concatenations:

  $ cat > cigroup.dprle <<'SYS'
  > let ca = /^o(pp)+$/;
  > let cb = /^p*(qq)+$/;
  > let cc = /^q*r$/;
  > let c1 = /^op{5}q*$/;
  > let c2 = /^p*q{4}r$/;
  > va <= ca;
  > vb <= cb;
  > vc <= cc;
  > va . vb <= c1;
  > vb . vc <= c2;
  > SYS

  $ dprle lint cigroup.dprle
  info: [ci-cycle] CI-group with 2 concatenations is coupled through variable(s) vb: ε-cut combinations multiply across them
  [1]

Parse errors exit 2, same as the solver:

  $ echo 'x <= nope;' > bad.dprle
  $ dprle lint bad.dprle
  error: bad.dprle: 1:11: right-hand side "nope" is not a defined constant
  [2]
