--metrics dumps the final registry snapshot to stderr as
deterministic sorted text: counters and gauges with values,
histograms with count/sum/max, timers with call counts only (no
nanoseconds — wall clock would make this output flaky).

  $ cat > fig1.dprle <<'SYS'
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fig1.dprle --metrics >/dev/null 2>metrics.txt
  $ cat metrics.txt
  analyze.aliased = 0
  analyze.deduped = 0
  analyze.discharged = 0
  analyze.folded = 0
  analyze.sliced.constraints = 0
  analyze.sliced.vars = 0
  automata.concats_built = 46
  automata.products_built = 3
  automata.states_visited = 676
  solver.solves = 1
  store.gate.skip{op=intern} = 4
  store.intern.hit = 38
  store.intern.miss = 22
  store.opcache.hit{op=analyze.residual} = 1
  store.opcache.hit{op=counterexample} = 1
  store.opcache.hit{op=inter_lang} = 1
  store.opcache.hit{op=is_singleton} = 1
  store.opcache.miss{op=analyze.residual} = 1
  store.opcache.miss{op=concat_lang} = 4
  store.opcache.miss{op=counterexample} = 3
  store.opcache.miss{op=inter_lang} = 2
  store.opcache.miss{op=is_singleton} = 1
  store.opcache.miss{op=residual.max_middle} = 3
  store.tier.automata{op=is_empty} = 5
  store.tier.automata{op=subset} = 5
  store.tier.symbolic{op=equal} = 3
  store.tier.symbolic{op=subset} = 2
  automata.bfs.frontier: count=98 sum=236 max=6
  automata.concat.states{dir=in}: count=46 sum=607 max=48
  automata.concat.states{dir=out}: count=46 sum=607 max=48
  automata.product.states{dir=in}: count=3 sum=92 max=48
  automata.product.states{dir=out}: count=3 sum=69 max=33
  automata.subset.visited: count=3 sum=20 max=8
  solver.group_combinations: count=1 sum=2 max=2
  store.machine.states: count=22 sum=312 max=48
  automata.dfa.determinize: count=25
  automata.dfa.minimize: count=4
  automata.lang.counterexample: count=3
  automata.ops.concat: count=46
  automata.ops.intersect: count=3
  solver.phase{phase=analyze}: count=1
  solver.phase{phase=build-machines}: count=1
  solver.phase{phase=combine}: count=1
  solver.phase{phase=gci}: count=1
  solver.phase{phase=maximize}: count=1
  solver.phase{phase=preprocess}: count=1
  solver.phase{phase=reduce}: count=1
  solver.phase{phase=solve}: count=1
  store.ledger.key{op=analyze.residual}: count=2
  store.ledger.key{op=concat_lang}: count=4
  store.ledger.key{op=counterexample}: count=4
  store.ledger.key{op=inter_lang}: count=3
  store.ledger.key{op=intern}: count=33
  store.ledger.key{op=is_singleton}: count=2
  store.ledger.key{op=residual.max_middle}: count=3
  store.ledger.miss{op=analyze.residual}: count=1
  store.ledger.miss{op=concat_lang}: count=4
  store.ledger.miss{op=counterexample}: count=3
  store.ledger.miss{op=inter_lang}: count=2
  store.ledger.miss{op=intern}: count=22
  store.ledger.miss{op=is_singleton}: count=1
  store.ledger.miss{op=residual.max_middle}: count=3
  store.tier.time{tier=automata}: count=10
  store.tier.time{tier=symbolic}: count=5

The dump is identical run over run (the determinism the cram suite
itself depends on):

  $ dprle solve fig1.dprle --metrics >/dev/null 2>metrics2.txt
  $ cmp metrics.txt metrics2.txt

--no-cache changes the counters (no store) but not the verdict, and
--metrics composes with it:

  $ dprle check fig1.dprle --no-cache --metrics 2>nocache.txt
  sat
  $ grep -c "store.opcache" nocache.txt
  0
  [1]
  $ grep "solver.solves" nocache.txt
  solver.solves = 1

webcheck takes the same flag:

  $ cat > vuln.mphp <<'PHP'
  > $x = input("x");
  > query("SELECT * FROM t WHERE a = '" . $x . "'");
  > PHP

  $ webcheck vuln.mphp --metrics >/dev/null 2>wc.txt
  $ grep "symexec" wc.txt
  symexec.analyze: count=1
  symexec.solve: count=1
