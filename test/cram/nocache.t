The interned language store is an optimization, never a semantics
change: --no-cache disables interning and every memoized automata
operation, and the output must be byte-identical.

Sat solve with witnesses:

  $ cat > fig1.dprle <<'SYS'
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fig1.dprle --witnesses > default.out
  $ dprle solve fig1.dprle --witnesses --no-cache > nocache.out
  $ cmp default.out nocache.out
  $ head -1 default.out
  sat: 1 disjunctive solution(s)

Unsat solve (both modes must agree on the exit code too):

  $ cat > fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fixed.dprle > default_unsat.out
  [1]
  $ dprle solve fixed.dprle --no-cache > nocache_unsat.out
  [1]
  $ cmp default_unsat.out nocache_unsat.out

Whole-corpus scan through the symbolic executor (timings scrubbed,
everything else — per-file verdicts, exploits, ordering — compared
byte for byte):

  $ corpusgen --app utopia . > /dev/null
  $ webcheck utopia 2>/dev/null | sed 's/([0-9.]* s)/(_ s)/' > wc_default.out
  $ webcheck utopia --no-cache 2>/dev/null | sed 's/([0-9.]* s)/(_ s)/' > wc_nocache.out
  $ cmp wc_default.out wc_nocache.out
  $ grep -c VULNERABLE wc_default.out
  4
