The symbolic derivative tier of the query front-end is an
optimization, never a semantics change: --no-symbolic routes every
language query to the automata kernels, and the output must be
byte-identical (only the store.tier.* counters move).

Sat solve with witnesses:

  $ cat > fig1.dprle <<'SYS'
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fig1.dprle --witnesses > default.out
  $ dprle solve fig1.dprle --witnesses --no-symbolic > nosym.out
  $ cmp default.out nosym.out
  $ head -1 default.out
  sat: 1 disjunctive solution(s)

Unsat solve (both modes must agree on the exit code too):

  $ cat > fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fixed.dprle > default_unsat.out
  [1]
  $ dprle solve fixed.dprle --no-symbolic > nosym_unsat.out
  [1]
  $ cmp default_unsat.out nosym_unsat.out

Both ablations stacked — automata kernels with no store either:

  $ dprle check fig1.dprle --no-symbolic --no-cache
  sat

Whole-corpus scan through the symbolic executor (timings scrubbed,
everything else — per-file verdicts, exploits, ordering — compared
byte for byte):

  $ corpusgen --app utopia . > /dev/null
  $ webcheck utopia 2>/dev/null | sed 's/([0-9.]* s)/(_ s)/' > wc_default.out
  $ webcheck utopia --no-symbolic 2>/dev/null | sed 's/([0-9.]* s)/(_ s)/' > wc_nosym.out
  $ cmp wc_default.out wc_nosym.out
  $ grep -c VULNERABLE wc_default.out
  4
