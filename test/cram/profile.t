dprle profile runs a workload under cost accounting and prints three
sections: top ops by self time, the per-tier breakdown, and the
store's cache-effectiveness ledger. The numbers are wall clock, so
the test greps structure rather than values.

  $ dprle profile --corpus eve --top 100 > prof.txt
  $ grep -c "^== " prof.txt
  3
  $ grep "^== " prof.txt
  == top ops by self time ==
  == self time by tier ==
  == cache-effectiveness ledger ==

Every instrumented tier shows up against the corpus workload (the
fixpoint analysis, symbolic execution, and the automata kernels under
the solves):

  $ grep -o "^analysis\.fixpoint\.iteration\|^symexec\.analyze\|^automata\.dfa\.minimize\|^automata\.ops\.intersect" prof.txt | sort -u
  analysis.fixpoint.iteration
  automata.dfa.minimize
  automata.ops.intersect
  symexec.analyze

The ledger's header and the intern row are present; intern's key-hash
cost is paid on every call while a hit only saves a handle lookup, so
its net savings are negative — the per-op ledger exists to expose
exactly this kind of cache that does not pay for itself:

  $ grep -E "^op +hits +misses" prof.txt
  op                     hits   misses    key(ms) avg_miss(ns)     miss(ms) net_saved(ms)
  $ grep -E "^intern .* -[0-9]" prof.txt | wc -l
  1

Unknown corpus names fail with the available set:

  $ dprle profile --corpus nosuch
  error: unknown corpus "nosuch" (have: eve, utopia, warp)
  [2]

A .dprle file works as a direct workload:

  $ cat > fig1.dprle <<'SYS'
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle profile fig1.dprle --top 100 | grep -q "solver.phase{phase=solve}"

A missing path is a usage error:

  $ dprle profile ./does-not-exist
  error: ./does-not-exist: no such file or directory
  [2]
