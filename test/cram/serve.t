The resident daemon, end to end: start dprle serve on a throwaway
Unix socket (made under /tmp — sandbox paths overflow the 108-byte
sun_path limit), drive it with dprle-loadgen, and let the smoke
run's shutdown request bring it down cleanly.

  $ D=$(mktemp -d)
  $ SOCK="unix:$D/d.sock"
  $ dprle serve "$SOCK" --max-frame-bytes 65536 2>server.log &

The warm-store demo: one cold solve, five byte-identical warm
solves. The warm responses report store intern hits and beat the
cold wall time — the whole point of residency:

  $ dprle-loadgen warm "$SOCK"
  cold: sat
  warm: sat x5
  warm intern hits > 0: true
  warm faster than cold: true

Protocol abuse: every broken frame gets a structured error on the
same connection, and a client that fires a solve and vanishes
mid-request costs the daemon nothing:

  $ dprle-loadgen chaos "$SOCK" --oversize-bytes 131072
  malformed frame: answered (malformed)
  bad version: answered (bad_version)
  unknown kind: answered (unknown_kind)
  oversized frame: answered (too_large)
  mid-request disconnect: survived: true
  still serving: sat

The smoke pass exercises each request kind and shuts the daemon
down; wait confirms it exits cleanly:

  $ dprle-loadgen smoke "$SOCK"
  solve: sat
  solve again: sat (intern hits > 0: true)
  lint: no findings
  stats: ok (requests > 0: true)
  shutdown: acked (drained 0)
  $ wait
  $ rm -rf "$D"
