The motivating example of the paper (Fig. 1), in concrete syntax:

  $ cat > fig1.dprle <<'SYS'
  > # SQL-injection example
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fig1.dprle --witnesses
  sat: 1 disjunctive solution(s)
  solution 1:
    [v1 ↦ "'0"]
    

The fixed filter is unsatisfiable (exit code 1):

  $ cat > fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fixed.dprle
  unsat: variable v1 is constrained to the empty language
  [1]

  $ dprle check fig1.dprle
  sat

Parse errors report positions:

  $ echo 'v1 <= nope;' > bad.dprle
  $ dprle solve bad.dprle
  error: bad.dprle: 1:12: right-hand side "nope" is not a defined constant
  [2]

Union syntax and stats:

  $ cat > union.dprle <<'SYS'
  > let c = /^a{1,2}$/;
  > (x | y) <= c;
  > SYS
  $ dprle solve union.dprle --stats --witnesses
  nodes: 3 (⊆-edges 2, ∘-pairs 0)
  CI-groups: 0 (+2 singleton variables)
  ε-cut candidates: 0 (largest group: 0 combinations)
  solutions: 1
  automata: visited=2 products=0 concats=1
  
  sat: 1 disjunctive solution(s)
  solution 1:
    [x ↦ "a", y ↦ "a"]
    

SMT-LIB 2.6 export for modern string solvers (Z3str/CVC5 lineage):

  $ dprle solve fig1.dprle --witnesses --smtlib fig1.smt2 > /dev/null
  $ cat fig1.smt2
  (set-logic QF_S)
  (set-info :source |exported by dprle (Hooimeijer & Weimer, PLDI 2009 reproduction)|)
  (declare-const v1 String)
  (assert (str.in_re v1 (re.++ (re.* re.allchar) (re.union (re.range "0" "9") (re.++ ((_ re.loop 2 2) (re.range "0" "9")) (re.* (re.range "0" "9")))))))
  (assert (str.in_re (str.++ "nid_" v1) (re.++ (re.++ (re.* re.allchar) (str.to_re "'")) (re.* re.allchar))))
  (check-sat)
  (get-model)
