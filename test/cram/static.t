The static analysis layer: a worklist fixpoint over variable-to-
regular-language abstractions proves sinks safe before symbolic
execution, and widening at loop heads handles programs bounded
unrolling cannot exhaust.

A loop appends ",0" to the query forever; every unrolling depth is a
distinct path, so symbolic execution alone can never cover them all:

  $ cat > loop.mphp <<'PHP'
  > $ids = "0";
  > while (!preg_match(/^done$/, input("more"))) {
  >   $ids = $ids . ",0";
  > }
  > query("SELECT * FROM t WHERE id IN (" . $ids . ")");
  > PHP

With the static layer (the default), the widened abstraction of $ids
contains no quote, so the sink is proved safe with no solving at all:

  $ webcheck loop.mphp
  loop.mphp: 4 basic blocks, all 1 sink(s) proved safe statically (symbolic execution skipped)
  sink 0: proved safe statically
  no exploitable path found
  [1]

The ablation has only the truncated path enumeration to go on, and
says so — its "safe" is weaker:

  $ webcheck loop.mphp --no-static-prune
  loop.mphp: 4 basic blocks, 17 sink-reaching path candidates
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c17 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c16 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c15 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c14 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c13 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c12 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c11 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c10 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c9 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c8 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c7 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c6 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c5 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c4 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c3 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c2 does not hold: the system is unsatisfiable (tier=automata)
  webcheck: [WARNING] lint: warning: [const-contradiction] constant-only constraint lit0 ⊆ c1 does not hold: the system is unsatisfiable (tier=automata)
  warning: path enumeration truncated at --max-paths=4096; 1 sink(s) not statically proved may have unexplored paths
  no exploitable path found
  [1]

Pruning never changes verdicts, only work: a vulnerable program is
reported identically in both modes (the analysis cannot prove its
sink safe, so nothing is pruned):

  $ cat > vuln.mphp <<'PHP'
  > $newsid = input("posted_newsid");
  > if (!preg_match(/[\d]+$/, $newsid)) { exit; }
  > query("SELECT * FROM news WHERE newsid=nid_" . $newsid);
  > PHP

  $ webcheck vuln.mphp > with.txt; echo "exit=$?"
  exit=0
  $ webcheck vuln.mphp --no-static-prune > without.txt; echo "exit=$?"
  exit=0
  $ cmp with.txt without.txt && echo identical
  identical

On a small loop-free program the fixpoint has nothing to add:
exhaustive symbolic execution is exact there, so a cheap pre-pass
skips the static layer rather than paying for both (the verdict is
the same; the work is not):

  $ cat > sanitized.mphp <<'PHP'
  > $x = input("x");
  > if (!preg_match(/^[0-9']+$/, $x)) { exit; }
  > $x = str_replace("'", "", $x);
  > query("SELECT * FROM t WHERE id=" . $x);
  > PHP

  $ webcheck sanitized.mphp
  sanitized.mphp: 3 basic blocks, 1 sink-reaching path candidates
  no exploitable path found
  [1]

--prepass-paths 0 disables the pre-pass; the fixpoint then runs and
proves the sink safe branch-sensitively — the quote-stripping branch
makes it safe even though a path-insensitive view of $x would still
contain a quote:

  $ webcheck sanitized.mphp --prepass-paths 0
  sanitized.mphp: 3 basic blocks, all 1 sink(s) proved safe statically (symbolic execution skipped)
  sink 0: proved safe statically
  no exploitable path found
  [1]
