Solver tracing on the paper's motivating system (same content as
examples/fig1.dprle): --trace-tree prints the phase hierarchy to
stderr. Durations vary run to run, so only the span names (first
column) are checked.

  $ cat > fig1.dprle <<'SYS'
  > let filter = /[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fig1.dprle --trace-tree > /dev/null 2> tree.txt
  $ awk '{print $1}' tree.txt
  dprle
  depgraph
  analyze
  depgraph
  solve
  preprocess
  depgraph
  reduce
  build-machines
  gci
  combine
  maximize

--trace writes Chrome trace_event JSON with the same phases as
complete ("ph":"X") events:

  $ dprle solve fig1.dprle --trace trace.json > /dev/null
  $ grep -c '"traceEvents"' trace.json
  1
  $ for phase in depgraph reduce gci combine; do
  >   grep -o "\"name\":\"$phase\"" trace.json | sort -u
  > done
  "name":"depgraph"
  "name":"reduce"
  "name":"gci"
  "name":"combine"

The gci span carries the group size and per-concatenation cut census:

  $ grep -o '"group_size":[0-9]*' trace.json
  "group_size":2
  $ grep -o '"cut_census":"[^"]*"' trace.json
  "cut_census":"t0:2"

Tracing composes with --stats, whose census table shows the same
disjunction width:

  $ dprle solve fig1.dprle --stats > stats.txt
  $ grep -A1 'ε-cuts per concatenation' stats.txt
  ε-cuts per concatenation (§3.5 disjunction width):
    t0 = prefix ∘ v1: 2 ε-cut(s)

An unsatisfiable solve (exit code 1) still writes its trace; a
metrics snapshot of the traced region rides along under a "metrics"
key (Chrome ignores unknown top-level keys):

  $ cat > fixed.dprle <<'SYS'
  > let filter = /^[\d]+$/;
  > let prefix = "nid_";
  > let unsafe = /'/;
  > v1 <= filter;
  > prefix . v1 <= unsafe;
  > SYS

  $ dprle solve fixed.dprle --trace unsat.json
  unsat: variable v1 is constrained to the empty language
  [1]
  $ grep -c '"traceEvents"' unsat.json
  1
  $ grep -c '"metrics"' unsat.json
  1
  $ grep -o '"store.intern.miss"' unsat.json | sort -u
  "store.intern.miss"

A run that dies mid-analysis flushes the partial trace from the
Fun.protect finaliser rather than losing it (webcheck shares the
same plumbing; $oops is never assigned):

  $ cat > boom.mphp <<'PHP'
  > $x = input("a");
  > query("SELECT " . $oops);
  > PHP

  $ webcheck boom.mphp --trace boom.json 2>/dev/null
  [125]
  $ grep -o '"name":"webcheck"' boom.json
  "name":"webcheck"
  $ grep -c '"metrics"' boom.json
  1
