The Fig. 1 mini-PHP program:

  $ cat > utopia.mphp <<'PHP'
  > $newsid = input("posted_newsid");
  > if (!preg_match(/[\d]+$/, $newsid)) {
  >   echo "Invalid article news ID.";
  >   exit;
  > }
  > $newsid = "nid_" . $newsid;
  > query("SELECT * FROM news WHERE newsid=" . $newsid);
  > PHP

  $ webcheck utopia.mphp
  utopia.mphp: 3 basic blocks, 1 sink-reaching path candidates
  VULNERABLE (path 1, sink 0, |C|=3, witnessed) — exploit confirmed by concrete run:
    posted_newsid = "'0"

The fixed program is safe (exit code 1):

  $ cat > fixed.mphp <<'PHP'
  > $newsid = input("posted_newsid");
  > if (!preg_match(/^[\d]+$/, $newsid)) { exit; }
  > $newsid = "nid_" . $newsid;
  > query("SELECT * FROM news WHERE newsid=" . $newsid);
  > PHP

  $ webcheck fixed.mphp
  fixed.mphp: 3 basic blocks, 1 sink-reaching path candidates
  no exploitable path found
  [1]

A case-mapped filter is handled via regular preimages:

  $ cat > lower.mphp <<'PHP'
  > $x = input("x");
  > if (!preg_match(/^[a-z']{1,6}$/, strtolower($x))) { exit; }
  > query("SELECT * FROM t WHERE c=" . $x);
  > PHP

  $ webcheck lower.mphp
  lower.mphp: 3 basic blocks, 1 sink-reaching path candidates
  VULNERABLE (path 1, sink 0, |C|=3, witnessed) — exploit confirmed by concrete run:
    x = "'"

Structural confirmation (Su-Wassermann criterion): the intended query
is recovered by solving the same path without the attack constraint:

  $ webcheck utopia.mphp --structural
  utopia.mphp: 3 basic blocks, 1 sink-reaching path candidates
  VULNERABLE (path 1, sink 0, |C|=3, witnessed) — exploit confirmed by concrete run:
    posted_newsid = "'0"
    intended query: SELECT * FROM news WHERE newsid=nid_0
    structural verdict: query no longer parses

A tautology payload is classified as such:

  $ cat > taut.mphp <<'PHP'
  > $id = input("id");
  > query("SELECT * FROM news WHERE newsid = '" . $id . "'");
  > PHP

  $ webcheck taut.mphp --attack tautology --structural
  taut.mphp: 1 basic blocks, 1 sink-reaching path candidates
  VULNERABLE (path 0, sink 0, |C|=3, witnessed) — exploit confirmed by concrete run:
    id = "OR1=1"
    intended query: SELECT * FROM news WHERE newsid = 'a'
    structural verdict: same structure (the regular approximation over-approximated)
