Wire mode runs dprle-wire/1 request frames through the daemon's
handler in-process: one JSON frame per line in, one response frame
per line out, consecutive frames sharing one warm store. Build a
three-line script — a witness-bearing solve, a lint, and one line of
garbage:

  $ cat > reqs.jsonl <<'EOF'
  > {"schema":"dprle-wire/1","id":"q1","kind":"solve","payload":{"system":"let filter = /[\\d]+$/;\nlet prefix = \"nid_\";\nlet unsafe = /'/;\nv1 <= filter;\nprefix . v1 <= unsafe;\n","witnesses":true}}
  > {"schema":"dprle-wire/1","id":"q2","kind":"lint","payload":{"system":"let a = \"x\";\nv1 <= a;\n"}}
  > not json at all
  > EOF

Every input line gets a response frame — the garbage line a
structured malformed error — and any error makes the exit code 1.
Timing and cache observability vary run to run, so scrub them:

  $ dprle batch --wire reqs.jsonl > out.jsonl 2> err.txt
  [1]
  $ sed -E 's/"elapsed_us":[0-9]+/"elapsed_us":0/; s/"intern_hit":[0-9]+/"intern_hit":0/; s/"opcache_hit":[0-9]+/"opcache_hit":0/' out.jsonl
  {"schema":"dprle-wire/1","id":"q1","result":"sat","elapsed_us":0,"store":{"intern_hit":0,"opcache_hit":0},"payload":{"solutions":1,"witnesses":[[["v1","'0"]]]}}
  {"schema":"dprle-wire/1","id":"q2","result":"lint","elapsed_us":0,"store":{"intern_hit":0,"opcache_hit":0},"payload":{"findings":[]}}
  {"schema":"dprle-wire/1","id":"","result":"error","elapsed_us":0,"store":{"intern_hit":0,"opcache_hit":0},"payload":{"code":"malformed","message":"frame is not valid JSON (expected null at offset 0)"}}
  $ cat err.txt
  3 response(s), 1 error(s)
