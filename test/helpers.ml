(* Shared qcheck generators and Alcotest helpers for the test suites. *)

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

(* A small alphabet keeps random words likely to hit interesting
   automaton paths. *)
let small_char = QCheck2.Gen.oneofl [ 'a'; 'b'; 'c'; '0'; '1'; '\'' ]

let word_gen = QCheck2.Gen.(string_size ~gen:small_char (int_bound 12))

let charset_gen : Charset.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let interval =
    let* lo = int_bound 255 in
    let* len = int_bound 40 in
    return (lo, min 255 (lo + len))
  in
  let* ranges = list_size (int_range 0 4) interval in
  return (Charset.of_ranges ranges)

(* Random small ε-NFA: a handful of states with random char and ε
   edges. Start and final are the first two states; the machine may
   denote the empty language. *)
let nfa_gen : Automata.Nfa.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let module Nfa = Automata.Nfa in
  let* n = int_range 2 7 in
  let* char_edges =
    list_size (int_range 0 12)
      (let* src = int_bound (n - 1) in
       let* dst = int_bound (n - 1) in
       let* c = small_char in
       let* widen = bool in
       let cs = if widen then Charset.range c (Char.chr (min 255 (Char.code c + 2)))
                else Charset.singleton c in
       return (src, cs, dst))
  in
  let* eps_edges =
    list_size (int_range 0 3)
      (let* src = int_bound (n - 1) in
       let* dst = int_bound (n - 1) in
       return (src, dst))
  in
  let b = Nfa.Builder.create () in
  let first = Nfa.Builder.add_states b n in
  List.iter (fun (s, cs, d) -> Nfa.Builder.add_trans b (first + s) cs (first + d)) char_edges;
  List.iter (fun (s, d) -> Nfa.Builder.add_eps b (first + s) (first + d)) eps_edges;
  return (Nfa.Builder.finish b ~start:first ~final:(first + 1))

(* Random words biased toward the language of [m], so agreement tests
   exercise accepting paths, not just rejections. *)
let word_for (m : Automata.Nfa.t) : string QCheck2.Gen.t =
  let open QCheck2.Gen in
  let samples = Automata.Nfa.sample_words m ~max_len:8 ~max_count:10 in
  if samples = [] then word_gen
  else oneof [ word_gen; oneofl samples ]

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)

let test name f = Alcotest.test_case name `Quick f

(* [Solver.run] with the default unlimited budget, unwrapped to the
   bare outcome — the migration target for tests written against the
   pre-Config [solve_system] signature. Unit tests never install
   budgets, so a budget error here is itself a failure. *)
let run_solver ?max_solutions ?combination_limit system =
  match
    Dprle.Solver.run
      (Dprle.Solver.Config.make ?max_solutions ?combination_limit ())
      system
  with
  | Ok outcome -> outcome
  | Error err ->
      Alcotest.failf "unexpected solver error: %s"
        (Dprle.Solver.Error.to_string err)
