open Helpers
module Ast = Webapp.Ast
module Attack = Webapp.Attack
module Eval = Webapp.Eval
module Lang_parser = Webapp.Lang_parser
module Cfg = Analysis.Cfg
module Fixpoint = Analysis.Fixpoint
module Store = Automata.Store
module Nfa = Automata.Nfa

let parse = Lang_parser.parse_exn

let loop_source =
  {|$ids = "0";
    while (!preg_match(/^done$/, input("more"))) {
      $ids = $ids . ",0";
    }
    query("SELECT * FROM t WHERE id IN (" . $ids . ")");|}

let fixed_source =
  {|$newsid = input("posted_newsid");
    if (!preg_match(/^[\d]+$/, $newsid)) { exit; }
    $newsid = "nid_" . $newsid;
    query("SELECT * FROM news WHERE newsid=" . $newsid);|}

let broken_source =
  {|$newsid = input("posted_newsid");
    if (!preg_match(/[\d]+$/, $newsid)) { exit; }
    $newsid = "nid_" . $newsid;
    query("SELECT * FROM news WHERE newsid=" . $newsid);|}

let cfg_tests =
  [
    test "an If lowers to a guarded diamond" (fun () ->
        let cfg = Cfg.build (parse fixed_source) in
        check_bool "no loop heads" true
          (Array.for_all (fun b -> not b.Cfg.loop_head) cfg.Cfg.blocks);
        let guarded =
          List.length (List.filter (fun e -> e.Cfg.guard <> None) cfg.Cfg.edges)
        in
        check_int "two guarded edges" 2 guarded;
        check_int "one sink" 1 cfg.Cfg.num_sinks);
    test "a While lowers to a loop head with a back edge" (fun () ->
        let cfg = Cfg.build (parse loop_source) in
        let heads =
          Array.to_list cfg.Cfg.blocks
          |> List.filter (fun b -> b.Cfg.loop_head)
          |> List.map (fun b -> b.Cfg.id)
        in
        check_int "one loop head" 1 (List.length heads);
        let head = List.hd heads in
        check_bool "has a back edge" true
          (List.exists
             (fun e -> e.Cfg.dst = head && e.Cfg.src > head)
             cfg.Cfg.edges));
    test "sink ids line up with Ast.sinks" (fun () ->
        let program =
          parse {|query("a"); if (preg_match(/x/, input("i"))) { query("b"); }|}
        in
        let cfg = Cfg.build program in
        check_int "two sinks" 2 cfg.Cfg.num_sinks;
        let seen = ref [] in
        Array.iter
          (fun b ->
            List.iter
              (function
                | Cfg.Query (id, _) -> seen := id :: !seen | Cfg.Assign _ -> ())
              b.Cfg.instrs)
          cfg.Cfg.blocks;
        check_bool "ids 0 and 1" true (List.sort compare !seen = [ 0; 1 ]));
  ]

let fixpoint_tests =
  [
    test "anchored filter: the sink is proved safe" (fun () ->
        let r =
          Fixpoint.analyze ~attack:Attack.contains_quote (parse fixed_source)
        in
        check_bool "safe" true (Fixpoint.safe_sink_ids r = [ 0 ]));
    test "unanchored filter: the sink is not proved safe" (fun () ->
        let r =
          Fixpoint.analyze ~attack:Attack.contains_quote (parse broken_source)
        in
        check_bool "not proved" true (Fixpoint.safe_sink_ids r = []));
    test "a data-dependent loop converges via widening and is safe" (fun () ->
        let r =
          Fixpoint.analyze ~attack:Attack.contains_quote (parse loop_source)
        in
        check_bool "safe" true (Fixpoint.safe_sink_ids r = [ 0 ]);
        check_bool "widened" true (r.Fixpoint.widenings >= 1));
    test "a quote-appending loop is not proved safe" (fun () ->
        let r =
          Fixpoint.analyze ~attack:Attack.contains_quote
            (parse
               {|$ids = "0";
                 while (!preg_match(/^done$/, input("more"))) {
                   $ids = $ids . "'";
                 }
                 query("SELECT " . $ids);|})
        in
        check_bool "not proved" true (Fixpoint.safe_sink_ids r = []));
    test "a conditional sanitizer is proved by branch refinement" (fun () ->
        let r =
          Fixpoint.analyze ~attack:Attack.contains_quote
            (parse
               {|$x = input("x");
                 if (!preg_match(/^[0-9']+$/, $x)) { exit; }
                 $x = str_replace("'", "", $x);
                 query("SELECT * FROM t WHERE id=" . $x);|})
        in
        check_bool "safe" true (Fixpoint.safe_sink_ids r = [ 0 ]));
    test "analyze_cached reuses results and resets with the store" (fun () ->
        Store.clear ();
        let program = parse fixed_source in
        let count name snap =
          Telemetry.Metrics.Snapshot.counter_value snap name
        in
        let before = Telemetry.Metrics.Snapshot.of_default () in
        let r1 =
          Fixpoint.analyze_cached ~attack:Attack.contains_quote program
        in
        let r2 =
          Fixpoint.analyze_cached ~attack:Attack.contains_quote program
        in
        let diff =
          Telemetry.Metrics.Snapshot.diff
            ~after:(Telemetry.Metrics.Snapshot.of_default ())
            ~before
        in
        check_bool "same result object" true (r1 == r2);
        check_int "one miss" 1 (count "analysis.fixpoint.cache.miss" diff);
        check_int "one hit" 1 (count "analysis.fixpoint.cache.hit" diff);
        (* a different widening budget is a different key *)
        let r3 =
          Fixpoint.analyze_cached ~widen_delay:1
            ~attack:Attack.contains_quote program
        in
        check_bool "parameters key the cache" true (r1 != r3);
        (* clearing the store voids the cache: handles would be stale *)
        Store.clear ();
        let before = Telemetry.Metrics.Snapshot.of_default () in
        let r4 =
          Fixpoint.analyze_cached ~attack:Attack.contains_quote program
        in
        let diff =
          Telemetry.Metrics.Snapshot.diff
            ~after:(Telemetry.Metrics.Snapshot.of_default ())
            ~before
        in
        check_bool "recomputed after clear" true (r1 != r4);
        check_int "miss after clear" 1
          (count "analysis.fixpoint.cache.miss" diff);
        check_bool "verdicts agree" true
          (Fixpoint.safe_sink_ids r1 = Fixpoint.safe_sink_ids r4));
  ]

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

let input_names = [ "a"; "b" ]

(* Loop-free programs over the symexec test vocabulary, extended with
   the string transforms the abstract transformers must over-
   approximate. *)
let straightline_gen =
  let open QCheck2.Gen in
  let patterns = [ "/^[0-9]+$/"; "/[0-9]$/"; "/^[a-z]*$/" ] in
  let expr_gen =
    let* name = oneofl input_names in
    let* lit = oneofl [ "q="; "'"; "x" ] in
    let* base =
      oneofl
        [ Ast.Input name; Ast.Concat (Ast.Str lit, Ast.Input name); Ast.Str lit ]
    in
    oneofl
      [
        base;
        Ast.Lower base;
        Ast.Addslashes base;
        Ast.Replace ('\'', "", base);
      ]
  in
  let stmt_gen =
    let* pat = oneofl patterns in
    let* name = oneofl input_names in
    let* e = expr_gen in
    oneofl
      [
        Ast.If
          ( Ast.Not
              (Ast.Preg_match (Regex.Parser.parse_pattern_exn pat, Ast.Input name)),
            [ Ast.Exit ],
            [] );
        Ast.Query e;
        Ast.Echo e;
      ]
  in
  list_size (int_range 1 6) stmt_gen

(* Single-loop programs: an accumulator grown inside a While whose
   condition tests an input, with a sink inside and/or after the
   loop. *)
let loopy_gen =
  let open QCheck2.Gen in
  let* seed = oneofl [ "0"; "x"; "q=" ] in
  let* tail = oneofl [ ",0"; "ab"; "'" ] in
  let* pat = oneofl [ "/^done$/"; "/^[0-9]+$/" ] in
  let* name = oneofl input_names in
  let* inner_query = bool in
  let body =
    Ast.Assign ("t", Ast.Concat (Ast.Var "t", Ast.Str tail))
    :: (if inner_query then [ Ast.Query (Ast.Var "t") ] else [])
  in
  return
    [
      Ast.Assign ("t", Ast.Str seed);
      Ast.While
        ( Ast.Not
            (Ast.Preg_match (Regex.Parser.parse_pattern_exn pat, Ast.Input name)),
          body );
      Ast.Query (Ast.Concat (Ast.Str "SELECT ", Ast.Var "t"));
    ]

let inputs_gen =
  let open QCheck2.Gen in
  let* va = word_gen in
  let* vb = word_gen in
  return [ ("a", va); ("b", vb) ]

(* Soundness: every SQL string a concrete run actually issues is a
   member of some sink's abstract query language. *)
let sound_against program ~inputs ~max_loop_iters =
  let r = Fixpoint.analyze ~attack:Attack.contains_quote program in
  let result = Eval.run ~max_loop_iters program ~inputs in
  List.for_all
    (function
      | Eval.Echoed _ -> true
      | Eval.Queried q ->
          List.exists
            (fun v -> Nfa.accepts (Store.nfa v.Fixpoint.lang) q)
            r.Fixpoint.verdicts)
    result.Eval.events

let props =
  let open QCheck2.Gen in
  let with_inputs gen = pair gen inputs_gen in
  [
    qtest ~count:80 "abstract sink languages cover concrete runs (loop-free)"
      (with_inputs straightline_gen)
      (fun (program, inputs) ->
        sound_against program ~inputs ~max_loop_iters:1000);
    qtest ~count:80 "abstract sink languages cover concrete runs (loops)"
      (with_inputs loopy_gen)
      (fun (program, inputs) ->
        sound_against program ~inputs ~max_loop_iters:20);
    qtest ~count:80 "the fixpoint terminates on loops and covers every sink"
      loopy_gen
      (fun program ->
        let r = Fixpoint.analyze ~attack:Attack.contains_quote program in
        List.length r.Fixpoint.verdicts = List.length (Ast.sinks program));
  ]

let suite =
  [
    ("analysis:cfg", cfg_tests);
    ("analysis:fixpoint", fixpoint_tests);
    ("analysis:props", props);
  ]
