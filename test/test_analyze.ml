(* The pre-solve analyzer: normalization, bounds propagation, implied-
   constraint discharge, cone-of-influence slicing, and unsat cores —
   plus the invariant everything else rides on: running the analyzer
   never changes the solver's verdict. *)

open Helpers
module System = Dprle.System
module Solver = Dprle.Solver
module Analyze = Dprle.Analyze
module Assignment = Dprle.Assignment
module Validate = Dprle.Validate

let re = System.const_of_regex

let mk_system consts constraints =
  System.make_exn
    ~consts:(List.map (fun (n, r) -> (n, re r)) consts)
    ~constraints

let run_with ~analyze system =
  match Solver.run (Solver.Config.make ~analyze ()) system with
  | Ok outcome -> outcome
  | Error err ->
      Alcotest.failf "unexpected solver error: %s"
        (Solver.Error.to_string err)

let is_sat = function Solver.Sat _ -> true | Solver.Unsat _ -> false

(* ------------------------------------------------------------------ *)
(* Units                                                              *)

let unit_tests =
  [
    test "alias collapse merges equal-language constants" (fun () ->
        (* c_re and c_lit denote the same language through different
           ASTs; after aliasing, the two constraints are duplicates *)
        let s =
          mk_system
            [ ("c_re", "ab"); ("c_lit", "ab|ab") ]
            [
              { System.lhs = Var "v"; rhs = "c_re" };
              { System.lhs = Var "v"; rhs = "c_lit" };
            ]
        in
        let a = Analyze.run s in
        check_int "aliased" 1 a.Analyze.stats.Analyze.aliased;
        check_int "deduped" 1 a.Analyze.stats.Analyze.deduped;
        check_int "one constraint left" 1
          (List.length (System.constraints a.Analyze.system)));
    test "constant runs fold into one constant" (fun () ->
        let s =
          mk_system
            [ ("p", "nid"); ("q", "_"); ("bound", ".*") ]
            [
              {
                System.lhs = Concat (Const "p", Concat (Const "q", Var "v"));
                rhs = "bound";
              };
            ]
        in
        let a = Analyze.run s in
        (* the stat counts constants merged: the run p·q is 2 *)
        check_int "folded" 2 a.Analyze.stats.Analyze.folded;
        (* the fold is language-preserving: verdicts agree *)
        check_bool "verdict preserved" true
          (is_sat (run_with ~analyze:true s)
          = is_sat (run_with ~analyze:false s)));
    test "discharge drops a constraint implied by a tighter one" (fun () ->
        let s =
          mk_system
            [ ("narrow", "ab"); ("wide", "(a|b)*") ]
            [
              { System.lhs = Var "v"; rhs = "narrow" };
              { System.lhs = Var "v"; rhs = "wide" };
            ]
        in
        let a = Analyze.run s in
        check_int "discharged" 1 a.Analyze.stats.Analyze.discharged;
        check_int "kept" 1 (List.length (System.constraints a.Analyze.system)));
    test "mutually redundant duplicates do not both vanish" (fun () ->
        (* after dedup there is one copy; even with dedup off the
           greedy exclusion would keep one — the system must still
           constrain v *)
        let s =
          mk_system
            [ ("c", "a+") ]
            [
              { System.lhs = Var "v"; rhs = "c" };
              { System.lhs = Var "v"; rhs = "c" };
            ]
        in
        let a = Analyze.run s in
        check_bool "still constrained" true
          (System.constraints a.Analyze.system <> []));
    test "slicing drops goal-independent components with witnesses"
      (fun () ->
        let s =
          mk_system
            [ ("ca", "ab*"); ("cc", "cd?") ]
            [
              { System.lhs = Var "v1"; rhs = "ca" };
              { System.lhs = Var "x"; rhs = "cc" };
            ]
        in
        let a = Analyze.run ~goals:[ "v1" ] s in
        check_bool "x sliced" true
          (List.mem "x" a.Analyze.stats.Analyze.sliced_vars);
        check_int "one constraint sliced" 1
          a.Analyze.stats.Analyze.sliced_constraints;
        check_bool "witness recorded" true
          (List.mem_assoc "x" a.Analyze.witnesses);
        (* witness satisfies the dropped constraint *)
        let w = List.assoc "x" a.Analyze.witnesses in
        check_bool "witness admissible" true
          (Automata.Nfa.accepts (re "cd?") w));
    test "no goals means no slicing" (fun () ->
        let s =
          mk_system
            [ ("ca", "ab*"); ("cc", "cd?") ]
            [
              { System.lhs = Var "v1"; rhs = "ca" };
              { System.lhs = Var "x"; rhs = "cc" };
            ]
        in
        let a = Analyze.run s in
        check_int "nothing sliced" 0
          (List.length a.Analyze.stats.Analyze.sliced_vars));
    test "sliced witnesses rejoin solver assignments" (fun () ->
        let s =
          mk_system
            [ ("ca", "ab*"); ("cc", "cd?") ]
            [
              { System.lhs = Var "v1"; rhs = "ca" };
              { System.lhs = Var "x"; rhs = "cc" };
            ]
        in
        let goaled = System.with_goals s [ "v1" ] in
        match run_with ~analyze:true goaled with
        | Solver.Unsat _ -> Alcotest.fail "expected sat"
        | Solver.Sat sols ->
            check_bool "nonempty" true (sols <> []);
            List.iter
              (fun a ->
                check_bool "x bound in every solution" true
                  (Option.is_some (Assignment.find_opt a "x")))
              sols);
    test "empty-meet refutation names its variable and core" (fun () ->
        let s =
          mk_system
            [ ("digits", "[0-9]+"); ("quote", "'.*") ]
            [
              { System.lhs = Var "v"; rhs = "digits" };
              { System.lhs = Var "v"; rhs = "quote" };
            ]
        in
        match (Analyze.run s).Analyze.refute with
        | None -> Alcotest.fail "expected a refutation"
        | Some { Analyze.cause; core } -> (
            check_int "core size" 2 (List.length core);
            match cause with
            | Analyze.Empty_var v -> check_string "variable" "v" v
            | c ->
                Alcotest.failf "wrong cause: %a" (fun ppf ->
                    Analyze.pp_cause ppf) c));
    test "analyzer run is idempotent on its own output" (fun () ->
        let s =
          mk_system
            [ ("ca", "a+b"); ("cb", "(a|b)*"); ("cc", "ab?") ]
            [
              { System.lhs = Var "v1"; rhs = "ca" };
              { System.lhs = Var "v1"; rhs = "cb" };
              { System.lhs = Concat (Var "v1", Var "v2"); rhs = "cc" };
            ]
        in
        let a = Analyze.run s in
        let b = Analyze.run a.Analyze.system in
        check_bool "no refutation appears late"
          (Option.is_none a.Analyze.refute)
          (Option.is_none b.Analyze.refute);
        (* a second pass finds nothing left to do: the fixpoint is
           reached after one run *)
        check_int "no further rewrites" 0
          (b.Analyze.stats.Analyze.aliased + b.Analyze.stats.Analyze.folded
         + b.Analyze.stats.Analyze.deduped
         + b.Analyze.stats.Analyze.discharged);
        check_int "same constraint count"
          (List.length (System.constraints a.Analyze.system))
          (List.length (System.constraints b.Analyze.system)));
    test "minimize_core is 1-minimal against a set oracle" (fun () ->
        let c name = { System.lhs = System.Var name; rhs = name } in
        let all = List.map c [ "a"; "b"; "d"; "e"; "f" ] in
        let names cs = List.map (fun x -> x.System.rhs) cs in
        (* refuted iff the subset still holds both b and e *)
        let check cs =
          List.mem "b" (names cs) && List.mem "e" (names cs)
        in
        let core = Analyze.minimize_core ~check all in
        Alcotest.(check (list string)) "exact core" [ "b"; "e" ] (names core));
  ]

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)

(* Random small systems over a pool of regexes whose pairwise
   intersections are sometimes empty, so both verdicts occur: direct
   bounds, a shared-variable meet, and a two-variable concatenation. *)
let sys_gen =
  QCheck2.Gen.(
    let pool =
      [ "a*"; "a+b"; "(ab)*"; "a|bb"; "[ab]+"; "b(a|b)*"; "[0-9]+"; "'.*";
        "a"; "c+" ]
    in
    let* r1 = oneofl pool in
    let* r2 = oneofl pool in
    let* r3 = oneofl pool in
    let* r4 = oneofl pool in
    let* shared = bool in
    let* with_concat = bool in
    let constrs =
      [
        { System.lhs = System.Var "v1"; rhs = "c1" };
        {
          System.lhs = System.Var (if shared then "v1" else "v2");
          rhs = "c2";
        };
      ]
      @
      if with_concat then
        [
          {
            System.lhs = System.Concat (System.Var "v1", System.Var "v2");
            rhs = "c3";
          };
        ]
      else [ { System.lhs = System.Var "v2"; rhs = "c3" } ]
    in
    return
      (mk_system
         [ ("c1", r1); ("c2", r2); ("c3", r3); ("c4", r4) ]
         constrs))

let prop_tests =
  [
    qtest ~count:60 "analyzer on/off never changes the verdict" sys_gen
      (fun s -> is_sat (run_with ~analyze:true s)
                = is_sat (run_with ~analyze:false s));
    qtest ~count:60 "sat solutions still satisfy after analysis" sys_gen
      (fun s ->
        match run_with ~analyze:true s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols -> List.for_all (Validate.satisfying s) sols);
    qtest ~count:60 "cores refute; every proper subset is not refuted"
      sys_gen (fun s ->
        match Analyze.run s with
        | { Analyze.refute = None; _ } -> true
        | { Analyze.refute = Some { Analyze.core; _ }; system = norm; _ } ->
            let solve_core cs =
              run_with ~analyze:false (System.with_constraints norm cs)
            in
            (* soundness: the named core alone is truly unsatisfiable *)
            (not (is_sat (solve_core core)))
            (* 1-minimality: dropping any single member leaves a subset
               the analyzer no longer refutes *)
            && List.for_all
                 (fun dropped ->
                   let rest = List.filter (fun c -> c != dropped) core in
                   Option.is_none
                     (Analyze.run (System.with_constraints norm rest))
                       .Analyze.refute)
                 core);
    qtest ~count:60 "analysis result is a sound rewrite" sys_gen (fun s ->
        (* solving the analyzer's residual system (plus its recorded
           witnesses) agrees with solving the original *)
        let a = Analyze.run s in
        match a.Analyze.refute with
        | Some _ -> not (is_sat (run_with ~analyze:false s))
        | None ->
            is_sat (run_with ~analyze:false a.Analyze.system)
            = is_sat (run_with ~analyze:false s));
  ]

let suite = [ ("analyze", unit_tests); ("analyze:props", prop_tests) ]
