(* The dprle-wire/1 codec: round-trip laws over the full request and
   response vocabulary, and one rejection test per decode failure
   mode. Generators stick to printable ASCII because the wire JSON
   emitter escapes control characters one way (\uXXXX) and the
   parser's permissive non-ASCII handling does not undo it — frames
   on the wire are produced by this codec, which never emits them. *)

open Helpers
module Request = Api.Request
module Response = Api.Response

let printable_char = QCheck2.Gen.(map Char.chr (int_range 32 126))
let pstring = QCheck2.Gen.(string_size ~gen:printable_char (int_bound 24))

let solve_params_gen =
  let open QCheck2.Gen in
  let* system = pstring in
  let* max_solutions = int_range 1 512 in
  let* combination_limit = int_range 1 8192 in
  let* witnesses = bool in
  return { Request.system; max_solutions; combination_limit; witnesses }

let webcheck_params_gen =
  let open QCheck2.Gen in
  let* program = pstring in
  let* attack = pstring in
  let* max_paths = int_range 1 4096 in
  let* static_prune = bool in
  return { Request.program; attack; max_paths; static_prune }

let kind_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun p -> Request.Solve p) solve_params_gen;
      map (fun s -> Request.Check s) pstring;
      map (fun s -> Request.Lint s) pstring;
      map (fun p -> Request.Webcheck p) webcheck_params_gen;
      return Request.Stats;
      return Request.Shutdown;
    ]

let request_gen =
  let open QCheck2.Gen in
  let* id = pstring in
  let* kind = kind_gen in
  let* budget_ms = opt (int_range 0 60_000) in
  let* budget_states = opt (int_range 0 1_000_000) in
  return { Request.id; kind; budget_ms; budget_states }

let pairs_gen = QCheck2.Gen.(small_list (pair pstring pstring))

let finding_gen =
  QCheck2.Gen.(
    map3
      (fun severity check message -> { Response.severity; check; message })
      pstring pstring pstring)

let sink_gen =
  let open QCheck2.Gen in
  let* path_id = int_range (-1) 100 in
  let* sink_index = int_range (-1) 20 in
  let* sink_id = int_range 0 20 in
  let* status = pstring in
  let* exploit = pairs_gen in
  return { Response.path_id; sink_index; sink_id; status; exploit }

let rejection_gen =
  QCheck2.Gen.(
    map2
      (fun projected_wait_ms queue_depth ->
        { Response.projected_wait_ms; queue_depth })
      small_nat small_nat)

let error_code_gen =
  let open QCheck2.Gen in
  oneof
    [
      return Response.Parse_error;
      return Response.Budget_exceeded;
      map (fun r -> Response.Over_capacity r) rejection_gen;
      return Response.Malformed;
      return Response.Too_large;
      return Response.Bad_version;
      return Response.Unknown_kind;
      return Response.Internal;
    ]

let payload_gen =
  let open QCheck2.Gen in
  oneof
    [
      (let* solutions = small_nat in
       let* witnesses = small_list pairs_gen in
       return (Response.Sat { solutions; witnesses }));
      (let* reason = pstring in
       let* core = small_list pstring in
       return (Response.Unsat { reason; core }));
      map
        (fun findings -> Response.Lint_report { findings })
        (small_list finding_gen);
      (let* sinks = small_list sink_gen in
       let* vulnerable = small_nat in
       let* paths_truncated = bool in
       return (Response.Webcheck_report { sinks; vulnerable; paths_truncated }));
      (let* requests = small_nat in
       let* counters = small_list (pair pstring small_nat) in
       return (Response.Stats_report { requests; counters }));
      map (fun drained -> Response.Shutdown_ack { drained }) small_nat;
      (let* code = error_code_gen in
       let* message = pstring in
       return (Response.Error { code; message }));
    ]

let response_gen =
  let open QCheck2.Gen in
  let* id = pstring in
  let* payload = payload_gen in
  let* elapsed_us = small_nat in
  let* intern_hits = small_nat in
  let* opcache_hits = small_nat in
  return
    {
      Response.id;
      payload;
      obs = { Response.elapsed_us; intern_hits; opcache_hits };
    }

let code_of = function
  | Error ({ code; _ } : Api.reject) -> Api.error_code_name code
  | Ok _ -> "ok"

let check_code what expected result =
  check_string what expected (code_of result)

let property_tests =
  [
    qtest ~count:500 "request: decode ∘ encode = id" request_gen (fun r ->
        Api.decode_request (Api.encode_request r) = Ok r);
    qtest ~count:500 "response: decode ∘ encode = id" response_gen (fun r ->
        Api.decode_response (Api.encode_response r) = Ok r);
    qtest ~count:200 "request frames are single-line" request_gen (fun r ->
        not (String.contains (Api.encode_request r) '\n'));
    qtest ~count:200 "response frames are single-line" response_gen (fun r ->
        not (String.contains (Api.encode_response r) '\n'));
    qtest ~count:200 "truncating an encoded request never decodes" request_gen
      (fun r ->
        let frame = Api.encode_request r in
        (* any strict prefix is an unterminated JSON object *)
        let cut = String.sub frame 0 (String.length frame / 2) in
        Result.is_error (Api.decode_request cut));
  ]

let unit_tests =
  [
    test "unknown kind is rejected as unknown_kind" (fun () ->
        check_code "unknown kind" "unknown_kind"
          (Api.decode_request
             {|{"schema":"dprle-wire/1","id":"x","kind":"frobnicate"}|}));
    test "wrong schema version is rejected as bad_version" (fun () ->
        check_code "bad version" "bad_version"
          (Api.decode_request
             {|{"schema":"dprle-wire/99","id":"x","kind":"stats"}|}));
    test "missing schema tag is malformed" (fun () ->
        check_code "no schema" "malformed"
          (Api.decode_request {|{"id":"x","kind":"stats"}|}));
    test "non-JSON frame is malformed" (fun () ->
        check_code "garbage" "malformed" (Api.decode_request "not json"));
    test "over-limit frame is rejected before parsing" (fun () ->
        check_code "too large" "too_large"
          (Api.decode_request ~max_bytes:64 (String.make 100 'a')));
    test "non-integer budget is malformed" (fun () ->
        check_code "bad budget" "malformed"
          (Api.decode_request
             {|{"schema":"dprle-wire/1","id":"x","kind":"stats","budget_ms":"fast"}|}));
    test "solve without a payload is malformed" (fun () ->
        check_code "no payload" "malformed"
          (Api.decode_request
             {|{"schema":"dprle-wire/1","id":"x","kind":"solve"}|}));
    test "solve payload defaults fill omitted fields" (fun () ->
        match
          Api.decode_request
            {|{"schema":"dprle-wire/1","id":"x","kind":"solve","payload":{"system":"v <= c;"}}|}
        with
        | Ok { kind = Request.Solve p; _ } ->
            check_string "system" "v <= c;" p.Request.system;
            check_int "max_solutions" 256 p.Request.max_solutions;
            check_int "combination_limit" 4096 p.Request.combination_limit;
            check_bool "witnesses" false p.Request.witnesses
        | other -> Alcotest.failf "expected solve, got %s" (code_of other));
    test "error_response echoes the id and code" (fun () ->
        let resp =
          Api.error_response ~id:"req-7"
            { Api.code = Response.Too_large; message = "way too big" }
        in
        check_string "id" "req-7" resp.Response.id;
        match resp.Response.payload with
        | Response.Error { code = Response.Too_large; message } ->
            check_string "message" "way too big" message
        | _ -> Alcotest.fail "expected a too_large error payload");
    test "over_capacity rejection survives the wire" (fun () ->
        let resp =
          {
            Response.id = "q";
            payload =
              Response.Error
                {
                  code =
                    Response.Over_capacity
                      { Response.projected_wait_ms = 1200; queue_depth = 17 };
                  message = "busy";
                };
            obs = Response.no_obs;
          }
        in
        match Api.decode_response (Api.encode_response resp) with
        | Ok
            {
              payload =
                Response.Error
                  { code = Response.Over_capacity r; message = "busy" };
              _;
            } ->
            check_int "projected_wait_ms" 1200 r.Response.projected_wait_ms;
            check_int "queue_depth" 17 r.Response.queue_depth
        | _ -> Alcotest.fail "over_capacity did not round-trip");
  ]

let suite = [ ("api:codec", property_tests @ unit_tests) ]
