(* The bounded brute-force baseline, and differential testing of the
   decision procedure against it. *)

open Helpers
module System = Dprle.System
module Solver = Dprle.Solver
module Bounded = Dprle.Bounded
module Assignment = Dprle.Assignment

let re = System.const_of_regex

let mk consts constraints =
  System.make_exn ~consts:(List.map (fun (n, r) -> (n, re r)) consts) ~constraints

let unit_tests =
  [
    test "alphabet is reduced to label blocks" (fun () ->
        let s = mk [ ("c", "[a-z]+[0-9]") ] [ { lhs = Var "v"; rhs = "c" } ] in
        let alpha = Bounded.alphabet s in
        (* one representative for [a-z], one for [0-9], one for the rest *)
        check_int "three blocks" 3 (List.length alpha));
    test "check validates concrete words" (fun () ->
        let s =
          mk
            [ ("c1", "a+"); ("c3", "a+b") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
            ]
        in
        check_bool "good" true (Bounded.check s [ ("v1", "aa"); ("v2", "b") ]);
        check_bool "bad" false (Bounded.check s [ ("v1", "aa"); ("v2", "a") ]);
        check_bool "default empty fails" false (Bounded.check s [ ("v1", "a") ]));
    test "solve finds a short witness" (fun () ->
        let s =
          mk
            [ ("c1", "a+"); ("c3", "a+b") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
            ]
        in
        match Bounded.solve ~max_len:3 s with
        | Bounded.Sat witness -> check_bool "checks" true (Bounded.check s witness)
        | Bounded.Unsat_within_bound -> Alcotest.fail "expected sat");
    test "solve respects the bound" (fun () ->
        (* only witnesses of length 5 exist *)
        let s = mk [ ("c", "a{5}") ] [ { lhs = Var "v"; rhs = "c" } ] in
        (match Bounded.solve ~max_len:4 s with
        | Bounded.Unsat_within_bound -> ()
        | Bounded.Sat _ -> Alcotest.fail "bound ignored");
        match Bounded.solve ~max_len:5 s with
        | Bounded.Sat _ -> ()
        | Bounded.Unsat_within_bound -> Alcotest.fail "expected sat at 5");
    test "constant-only violation detected" (fun () ->
        let s = mk [ ("a", "x"); ("b", "y") ] [ { lhs = Const "a"; rhs = "b" } ] in
        match Bounded.solve ~max_len:2 s with
        | Bounded.Unsat_within_bound -> ()
        | Bounded.Sat _ -> Alcotest.fail "expected unsat");
    test "union constraint" (fun () ->
        let s =
          mk [ ("c", "ab?") ] [ { lhs = Union (Var "v", Var "w"); rhs = "c" } ]
        in
        match Bounded.solve ~max_len:2 s with
        | Bounded.Sat witness -> check_bool "checks" true (Bounded.check s witness)
        | Bounded.Unsat_within_bound -> Alcotest.fail "expected sat");
  ]

(* Small random systems for differential testing. *)
let small_system_gen =
  QCheck2.Gen.(
    let pool = [ "a*"; "ab|b"; "(ab)*"; "a+b?"; "[ab]{1,2}"; "b+"; "a|b" ] in
    let* r1 = oneofl pool in
    let* r2 = oneofl pool in
    let* r3 = oneofl pool in
    let* shape = int_bound 2 in
    let constraints =
      match shape with
      | 0 ->
          [
            { System.lhs = System.Var "v1"; rhs = "c1" };
            { System.lhs = System.Var "v1"; rhs = "c2" };
          ]
      | 1 ->
          [
            { System.lhs = System.Var "v1"; rhs = "c1" };
            { System.lhs = System.Var "v2"; rhs = "c2" };
            { System.lhs = System.Concat (Var "v1", Var "v2"); rhs = "c3" };
          ]
      | _ ->
          [
            { System.lhs = System.Concat (Const "c1", Var "v1"); rhs = "c3" };
          ]
    in
    return (mk [ ("c1", r1); ("c2", r2); ("c3", r3) ] constraints))

let diff_props =
  [
    qtest ~count:60 "bounded sat implies solver sat" small_system_gen (fun s ->
        match Bounded.solve ~max_len:3 ~candidates_per_var:64 s with
        | Bounded.Unsat_within_bound -> true
        | Bounded.Sat _ -> (
            match run_solver s with
            | Solver.Sat _ -> true
            | Solver.Unsat _ -> false));
    qtest ~count:60 "solver unsat implies bounded unsat" small_system_gen
      (fun s ->
        match run_solver s with
        | Solver.Sat _ -> true
        | Solver.Unsat _ -> (
            match Bounded.solve ~max_len:4 ~candidates_per_var:128 s with
            | Bounded.Unsat_within_bound -> true
            | Bounded.Sat _ -> false));
    qtest ~count:40 "solver witnesses satisfy the bounded checker"
      small_system_gen
      (fun s ->
        match run_solver s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols ->
            List.for_all
              (fun a ->
                match Assignment.witness a with
                | None -> false (* solver never returns empty languages *)
                | Some words -> Bounded.check s words)
              sols);
    qtest ~count:40 "solver sat with short witness implies bounded finds one"
      small_system_gen
      (fun s ->
        match run_solver ~max_solutions:1 s with
        | Solver.Unsat _ -> true
        | Solver.Sat (a :: _) -> (
            match Assignment.witness a with
            | None -> false
            | Some words ->
                let longest =
                  List.fold_left (fun acc (_, w) -> max acc (String.length w)) 0 words
                in
                longest > 3
                ||
                (match Bounded.solve ~max_len:3 ~candidates_per_var:64 s with
                | Bounded.Sat _ -> true
                | Bounded.Unsat_within_bound -> false))
        | Solver.Sat [] -> false);
  ]

let suite = [ ("bounded:unit", unit_tests); ("bounded:diff-props", diff_props) ]
