open Helpers
module Fig11 = Corpus.Fig11
module Fig12 = Corpus.Fig12
module Ast = Webapp.Ast
module Symexec = Webapp.Symexec

let find_candidate row =
  let program = Fig12.program row in
  let candidates =
    (Symexec.analyze ~max_paths:4096 ~attack:Fig12.attack program).Symexec.candidates
  in
  match candidates with
  | [ q ] -> q
  | qs -> Alcotest.failf "%s: expected 1 candidate, got %d" row.Fig12.name (List.length qs)

let row_named name = List.find (fun r -> r.Fig12.name = name) Fig12.rows

let fig12_tests =
  [
    test "17 rows, apps match Fig. 11 vulnerable counts" (fun () ->
        check_int "rows" 17 (List.length Fig12.rows);
        List.iter
          (fun { Fig11.name; vulnerable; _ } ->
            check_int name vulnerable
              (List.length (List.filter (fun r -> r.Fig12.app = name) Fig12.rows)))
          Fig11.apps);
    test "every row's |FG| is reproduced exactly" (fun () ->
        List.iter
          (fun ({ Fig12.name; fg; _ } as row) ->
            check_int name fg (Ast.basic_blocks (Fig12.program row)))
          Fig12.rows);
    test "every row's |C| is reproduced exactly" (fun () ->
        List.iter
          (fun ({ Fig12.name; c; _ } as row) ->
            check_int name c (find_candidate row).Symexec.constraint_count)
          Fig12.rows);
    test "generation is deterministic" (fun () ->
        let row = row_named "edit" in
        check_bool "equal" true (Fig12.program row = Fig12.program row));
    test "programs are printable and reparseable" (fun () ->
        let row = row_named "login" in
        let program = Fig12.program row in
        let reparsed = Webapp.Lang_parser.parse_exn (Ast.to_source program) in
        check_bool "round trip" true (reparsed = program));
    test "a fast row solves and the exploit fires concretely" (fun () ->
        let row = row_named "ax_help" in
        let program = Fig12.program row in
        match Symexec.first_exploit ~max_paths:4096 ~attack:Fig12.attack program with
        | None -> Alcotest.fail "expected exploit"
        | Some inputs ->
            check_bool "fires" true
              (Webapp.Eval.vulnerable_run ~attack:Fig12.attack program ~inputs));
    test "the secure row carries multi-kilobyte constants" (fun () ->
        let program = Fig12.program (row_named "secure") in
        let rec max_lit_expr = function
          | Ast.Str s -> String.length s
          | Ast.Var _ | Ast.Input _ -> 0
          | Ast.Lower e | Ast.Upper e | Ast.Addslashes e
          | Ast.Replace (_, _, e) ->
              max_lit_expr e
          | Ast.Concat (a, b) -> max (max_lit_expr a) (max_lit_expr b)
        in
        let rec max_lit = function
          | Ast.Assign (_, e) | Ast.Query e | Ast.Echo e -> max_lit_expr e
          | Ast.Exit -> 0
          | Ast.If (_, t, f) ->
              List.fold_left (fun acc s -> max acc (max_lit s)) 0 (t @ f)
          | Ast.While (_, body) ->
              List.fold_left (fun acc s -> max acc (max_lit s)) 0 body
        in
        let biggest = List.fold_left (fun acc s -> max acc (max_lit s)) 0 program in
        check_bool "big constant" true (biggest > 2000));
  ]

let fig11_tests =
  [
    test "three apps with the paper's metadata" (fun () ->
        match Fig11.apps with
        | [ eve; utopia; warp ] ->
            check_string "eve" "eve" eve.name;
            check_int "eve files" 8 eve.files;
            check_int "eve loc" 905 eve.loc;
            check_string "utopia ver" "1.3.0" utopia.version;
            check_int "warp vulns" 12 warp.vulnerable
        | _ -> Alcotest.fail "expected 3 apps");
    test "generated apps have the right file counts" (fun () ->
        List.iter
          (fun app ->
            let files = Fig11.generate app in
            check_int app.Fig11.name app.Fig11.files (List.length files))
          Fig11.apps);
    test "generated LOC is within 15% of the paper's" (fun () ->
        List.iter
          (fun app ->
            let files = Fig11.generate app in
            let loc =
              List.fold_left (fun acc (_, p) -> acc + Ast.loc p) 0 files
            in
            let ratio = float_of_int loc /. float_of_int app.Fig11.loc in
            if ratio < 0.85 || ratio > 1.15 then
              Alcotest.failf "%s: loc %d vs paper %d" app.Fig11.name loc
                app.Fig11.loc)
          Fig11.apps);
    test "benign files really are safe" (fun () ->
        let files = Fig11.generate (List.hd Fig11.apps) in
        let benign =
          List.filter (fun (name, _) -> String.length name > 5 && String.sub name 0 5 = "page_") files
        in
        check_bool "has benign files" true (benign <> []);
        List.iter
          (fun (name, program) ->
            check_bool name true
              (Symexec.first_exploit ~attack:Fig12.attack program = None))
          benign);
  ]

let suite = [ ("corpus:fig12", fig12_tests); ("corpus:fig11", fig11_tests) ]
