(* Randomized cross-checks for the hot-path automata rewrites: the
   bitset BFS family, the on-the-fly subset check, the minterm
   product, and the single-pass [repeat] are each compared against the
   retained [*_reference] implementations on a deterministic, seeded
   stream of random machines. QCheck is deliberately not used here —
   the stream must be identical on every run so a failure reproduces
   byte-for-byte. *)

open Helpers
module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Lang = Automata.Lang
module SS = Nfa.StateSet

let cases = 500

let alphabet = [| 'a'; 'b'; 'c'; '0'; '1'; '\'' |]

(* Mirrors the QCheck generator in [Helpers]: small ε-NFAs over a
   6-character alphabet, with occasional interval labels; start and
   final are the first two states and the language may be empty. *)
let rand_nfa rng =
  let n = 2 + Random.State.int rng 6 in
  let b = Nfa.Builder.create () in
  let first = Nfa.Builder.add_states b n in
  let char_edges = Random.State.int rng 13 in
  for _ = 1 to char_edges do
    let src = Random.State.int rng n and dst = Random.State.int rng n in
    let c = alphabet.(Random.State.int rng (Array.length alphabet)) in
    let cs =
      if Random.State.bool rng then
        Charset.range c (Char.chr (min 255 (Char.code c + 2)))
      else Charset.singleton c
    in
    Nfa.Builder.add_trans b (first + src) cs (first + dst)
  done;
  let eps_edges = Random.State.int rng 4 in
  for _ = 1 to eps_edges do
    let src = Random.State.int rng n and dst = Random.State.int rng n in
    Nfa.Builder.add_eps b (first + src) (first + dst)
  done;
  Nfa.Builder.finish b ~start:first ~final:(first + 1)

(* Few states, many overlapping edges: product cells here exceed the
   sparse cutoff in [Ops.intersect], forcing the minterm path. *)
let rand_dense_nfa rng =
  let n = 2 + Random.State.int rng 2 in
  let b = Nfa.Builder.create () in
  let first = Nfa.Builder.add_states b n in
  let char_edges = 8 + Random.State.int rng 16 in
  for _ = 1 to char_edges do
    let src = Random.State.int rng n and dst = Random.State.int rng n in
    let c = alphabet.(Random.State.int rng (Array.length alphabet)) in
    Nfa.Builder.add_trans b (first + src)
      (Charset.range c (Char.chr (min 255 (Char.code c + Random.State.int rng 4))))
      (first + dst)
  done;
  Nfa.Builder.finish b ~start:first ~final:(first + 1)

let rand_state_set rng n =
  let set = ref SS.empty in
  for q = 0 to n - 1 do
    if Random.State.bool rng then set := SS.add q !set
  done;
  !set

let check_set_eq what i expected actual =
  if not (SS.equal expected actual) then
    Alcotest.failf "%s diverged from reference on case %d" what i

(* Structural machine equality: same states in the same order, same
   edges with equal labels. *)
let same_structure m1 m2 =
  Nfa.num_states m1 = Nfa.num_states m2
  && Nfa.start m1 = Nfa.start m2
  && Nfa.final m1 = Nfa.final m2
  && List.for_all
       (fun q ->
         Nfa.eps_transitions_from m1 q = Nfa.eps_transitions_from m2 q
         &&
         let t1 = Nfa.char_transitions m1 q and t2 = Nfa.char_transitions m2 q in
         List.length t1 = List.length t2
         && List.for_all2
              (fun (cs1, d1) (cs2, d2) -> d1 = d2 && Charset.equal cs1 cs2)
              t1 t2)
       (Nfa.states m1)

let bfs_tests =
  [
    test "bitset BFS family agrees with the StateSet reference" (fun () ->
        let rng = Random.State.make [| 0xb1; 0x5e7 |] in
        for i = 1 to cases do
          let m = rand_nfa rng in
          let n = Nfa.num_states m in
          let q0 = Random.State.int rng n in
          check_set_eq "reachable_from" i
            (Nfa.reachable_from_reference m q0)
            (Nfa.reachable_from m q0);
          check_set_eq "coreachable_to" i
            (Nfa.coreachable_to_reference m q0)
            (Nfa.coreachable_to m q0);
          let set = rand_state_set rng n in
          check_set_eq "eps_closure" i
            (Nfa.eps_closure_reference m set)
            (Nfa.eps_closure m set);
          check_bool "is_empty_lang" (Nfa.is_empty_lang_reference m)
            (Nfa.is_empty_lang m);
          (* flag variants answer the same membership questions *)
          let reach = Nfa.reachable_flags m q0 in
          let reach_ref = Nfa.reachable_from_reference m q0 in
          List.iter
            (fun q ->
              check_bool "reachable_flags" (SS.mem q reach_ref)
                (Nfa.Flags.mem reach q))
            (Nfa.states m);
          check_int "flags cardinal" (SS.cardinal reach_ref)
            (Nfa.Flags.cardinal reach);
          (* the hashed ε-index agrees with the adjacency lists *)
          let p = Random.State.int rng n and q = Random.State.int rng n in
          check_bool "has_eps_edge"
            (List.mem q (Nfa.eps_transitions_from m p))
            (Nfa.has_eps_edge m p q)
        done);
  ]

let subset_tests =
  [
    test "on-the-fly subset agrees with determinize-both" (fun () ->
        let rng = Random.State.make [| 0x5b; 0x5e7 |] in
        for i = 1 to cases do
          let a = rand_nfa rng in
          let b = rand_nfa rng in
          let expected = Lang.subset_reference a b in
          if Lang.subset a b <> expected then
            Alcotest.failf "subset diverged from reference on case %d" i;
          (match Lang.counterexample a b with
          | Some w ->
              check_bool "cex in L(a)" true (Nfa.accepts a w);
              check_bool "cex not in L(b)" false (Nfa.accepts b w)
          | None ->
              if not expected then
                Alcotest.failf "missing counterexample on case %d" i);
          if Lang.equal a b <> Lang.equal_reference a b then
            Alcotest.failf "equal diverged from reference on case %d" i
        done);
  ]

let intersect_tests =
  [
    test "minterm product is structurally identical to the reference"
      (fun () ->
        let rng = Random.State.make [| 0x1a7; 0x5e7 |] in
        for i = 1 to cases do
          (* alternate sparse and dense operands so both the pairwise
             and the minterm paths of [Ops.intersect] are covered *)
          let gen = if i mod 2 = 0 then rand_dense_nfa else rand_nfa in
          let m1 = gen rng in
          let m2 = gen rng in
          let p = Ops.intersect m1 m2 in
          let r = Ops.intersect_reference m1 m2 in
          if not (same_structure p.Ops.machine r.Ops.machine) then
            Alcotest.failf "intersect machine shape diverged on case %d" i;
          List.iter
            (fun q ->
              if p.Ops.pair_of q <> r.Ops.pair_of q then
                Alcotest.failf "intersect provenance diverged on case %d" i)
            (Nfa.states p.Ops.machine)
        done);
  ]

let repeat_tests =
  [
    test "single-pass repeat preserves the reference language" (fun () ->
        let rng = Random.State.make [| 0x4e7; 0x5e7 |] in
        for i = 1 to 200 do
          let m = rand_nfa rng in
          let min_count = Random.State.int rng 4 in
          let max_count =
            if Random.State.bool rng then None
            else Some (min_count + Random.State.int rng 4)
          in
          let fast = Ops.repeat m ~min_count ~max_count in
          let slow = Ops.repeat_reference m ~min_count ~max_count in
          if not (Lang.equal_reference fast slow) then
            Alcotest.failf "repeat language diverged on case %d (min=%d max=%s)"
              i min_count
              (match max_count with None -> "inf" | Some k -> string_of_int k);
          check_bool "not bigger than reference" true
            (Nfa.num_states fast <= Nfa.num_states slow)
        done);
  ]

let store_tests =
  [
    test "interning is sound on random machine pairs" (fun () ->
        let module Store = Automata.Store in
        let rng = Random.State.make [| 0x570; 0x5e7 |] in
        for i = 1 to cases do
          let m1 = rand_nfa rng in
          let m2 = rand_nfa rng in
          let h1 = Store.intern m1 and h2 = Store.intern m2 in
          (* key collision must mean language equality (the converse
             is not promised: different machines may hash apart) *)
          if Store.id h1 = Store.id h2 && not (Lang.equal_reference m1 m2) then
            Alcotest.failf "intern merged different languages on case %d" i;
          (* the representative a handle answers with is language-equal
             to the machine interned *)
          if not (Lang.equal_reference m1 (Store.nfa h1)) then
            Alcotest.failf "representative changed the language on case %d" i;
          if Store.subset h1 h2 <> Lang.subset_reference m1 m2 then
            Alcotest.failf "store subset diverged from reference on case %d" i;
          if
            not
              (Lang.equal_reference
                 (Store.nfa (Store.inter_lang h1 h2))
                 (Ops.inter_lang m1 m2))
          then Alcotest.failf "store inter_lang diverged on case %d" i
        done);
  ]

(* Random regex ASTs built from the raw constructors (not the smart
   ones) so [Simplify.norm] inside the derivative checker sees
   unnormalized shapes: nested ∅/ε, duplicate alternatives, counted
   repeats over empty bodies. Depth ≤ 4 keeps everything well inside
   the symbolic tier's size and fuel bounds. *)
let rand_regex rng =
  let module Ast = Regex.Ast in
  let rand_charset () =
    let c = [| 'a'; 'b'; 'c' |].(Random.State.int rng 3) in
    if Random.State.bool rng then Charset.singleton c
    else Charset.range c (Char.chr (Char.code c + Random.State.int rng 2))
  in
  let rec go depth =
    if depth = 0 then
      match Random.State.int rng 6 with
      | 0 -> Ast.Epsilon
      | 1 -> Ast.Empty
      | _ -> Ast.Chars (rand_charset ())
    else
      match Random.State.int rng 7 with
      | 0 -> Ast.Seq (go (depth - 1), go (depth - 1))
      | 1 -> Ast.Alt (go (depth - 1), go (depth - 1))
      | 2 -> Ast.Star (go (depth - 1))
      | 3 -> Ast.Plus (go (depth - 1))
      | 4 -> Ast.Opt (go (depth - 1))
      | 5 ->
          let lo = Random.State.int rng 3 in
          let hi =
            if Random.State.bool rng then None
            else Some (lo + Random.State.int rng 3)
          in
          Ast.Repeat (go (depth - 1), lo, hi)
      | _ -> go 0
  in
  go (1 + Random.State.int rng 3)

let derivative_tests =
  let module Ast = Regex.Ast in
  let module Derivative = Regex.Derivative in
  [
    test "symbolic subset/equal/disjoint agree with the compiled kernels"
      (fun () ->
        let rng = Random.State.make [| 0xd37; 0x5e7 |] in
        let answered = ref 0 in
        for i = 1 to cases do
          let r1 = rand_regex rng and r2 = rand_regex rng in
          let m1 = Regex.Compile.to_nfa r1 and m2 = Regex.Compile.to_nfa r2 in
          (match Derivative.subset r1 r2 with
          | Some v ->
              incr answered;
              if v <> Lang.subset_reference m1 m2 then
                Alcotest.failf
                  "Derivative.subset diverged on case %d: %s vs %s" i
                  (Ast.to_string r1) (Ast.to_string r2)
          | None -> () (* bailed: the automata tier owns the answer *));
          (match Derivative.equal r1 r2 with
          | Some v ->
              if v <> Lang.equal_reference m1 m2 then
                Alcotest.failf "Derivative.equal diverged on case %d" i
          | None -> ());
          (match Derivative.disjoint r1 r2 with
          | Some v ->
              if v <> Nfa.is_empty_lang_reference (Ops.inter_lang m1 m2) then
                Alcotest.failf "Derivative.disjoint diverged on case %d" i
          | None -> ());
          check_bool "syntactic emptiness"
            (Nfa.is_empty_lang_reference m1)
            (Derivative.is_empty r1)
        done;
        (* depth-bounded regexes must essentially never hit the fuel
           bail, else the tier would be dead weight on real queries *)
        check_bool "answer rate above 90%" true (!answered * 10 > cases * 9));
    test "directed: nullability at Σ*, ∅-class derivation, loop pair"
      (fun () ->
        let sigma_star = Ast.Star Ast.any in
        check_bool "Σ* is nullable" true (Derivative.nullable sigma_star);
        check_bool "Σ* ⊆ Σ*" true
          (Derivative.subset sigma_star sigma_star = Some true);
        (* deriving through an empty class yields no Antimirov terms:
           the frontier dies instead of looping on ∅ *)
        let none = Ast.Chars Charset.empty in
        check_bool "pd across ∅-class" true (Derivative.pd 'a' none = []);
        check_bool "∅-class is empty" true (Derivative.is_empty none);
        check_bool "∅ ⊆ Σ*" true (Derivative.subset none sigma_star = Some true);
        check_bool "a ⊈ ∅" true (Derivative.subset (Ast.str "a") none = Some false);
        (* the classic visited-set termination pair: both sides unfold
           forever without the coinductive cache *)
        let a = Ast.Chars (Charset.singleton 'a')
        and b = Ast.Chars (Charset.singleton 'b') in
        let lhs = Ast.Star (Ast.Alt (a, b)) in
        let rhs = Ast.Star (Ast.Seq (Ast.Star a, Ast.Star b)) in
        check_bool "(a|b)* ⊆ (a*b*)*" true (Derivative.subset lhs rhs = Some true);
        check_bool "(a*b*)* ⊆ (a|b)*" true (Derivative.subset rhs lhs = Some true);
        check_bool "equal by double inclusion" true
          (Derivative.equal lhs rhs = Some true));
  ]

let suite =
  [
    ("crosscheck:bfs", bfs_tests);
    ("crosscheck:subset", subset_tests);
    ("crosscheck:intersect", intersect_tests);
    ("crosscheck:repeat", repeat_tests);
    ("crosscheck:store", store_tests);
    ("crosscheck:derivative", derivative_tests);
  ]
