open Helpers
module Nfa = Automata.Nfa
module Ops = Automata.Ops
module Lang = Automata.Lang
module System = Dprle.System
module Depgraph = Dprle.Depgraph
module Ci = Dprle.Ci
module Solver = Dprle.Solver
module Assignment = Dprle.Assignment
module Validate = Dprle.Validate
module Residual = Dprle.Residual

let re = System.const_of_regex
let lang_of s = re s

let check_lang name expected actual =
  if not (Lang.equal (re expected) actual) then
    Alcotest.failf "%s: expected /%s/, got /%s/" name expected
      (Regex.State_elim.to_string actual)

(* ------------------------------------------------------------------ *)
(* concat_intersect (Fig. 3) on direct instances                      *)

let ci_tests =
  [
    test "running example (Fig. 4): nid_ prefix" (fun () ->
        (* c1 = "nid_", c2 = Σ*[0-9] (the faulty filter), c3 = strings
           containing a quote *)
        (* [Lang.compact] gives the small machines the paper draws in
           Fig. 4 (an unminimized Thompson machine for c3 has a second
           ε-cut describing the same solution) *)
        let c1 = Lang.compact (System.const_of_word "nid_") in
        let c2 = Lang.compact (System.const_of_pattern "/[\\d]+$/") in
        let c3 = Lang.compact (System.const_of_pattern "/'/") in
        let { Ci.solutions; _ } = Ci.concat_intersect c1 c2 c3 in
        check_int "one cut" 1 (List.length solutions);
        let { Ci.v1; v2; _ } = List.hd solutions in
        check_lang "v1" "nid_" v1;
        (* v2: contains a quote and ends with a digit *)
        check_bool "attack in v2" true (Nfa.accepts v2 "' OR 1=1 ; DROP news --9");
        check_bool "quoteless not in v2" false (Nfa.accepts v2 "42");
        check_bool "non-digit-tail not in v2" false (Nfa.accepts v2 "'x");
        check_bool "sat" true
          (Validate.ci_satisfying ~c1 ~c2 ~c3 (List.hd solutions));
        check_bool "all-solutions" true
          (Validate.ci_all_solutions ~c1 ~c2 ~c3 solutions));
    test "disjunctive example (§3.1.1)" (fun () ->
        let c1 = lang_of "x(yy)+" in
        let c2 = lang_of "(yy)*z" in
        let c3 = lang_of "xyyz|xyyyyz" in
        let { Ci.solutions; _ } = Ci.concat_intersect c1 c2 c3 in
        check_bool "nonempty" true (solutions <> []);
        List.iter
          (fun s ->
            check_bool "sat" true (Validate.ci_satisfying ~c1 ~c2 ~c3 s))
          solutions;
        check_bool "all-solutions" true
          (Validate.ci_all_solutions ~c1 ~c2 ~c3 solutions));
    test "empty intersection yields no solutions" (fun () ->
        let c1 = lang_of "a+" and c2 = lang_of "b+" in
        let c3 = lang_of "c+" in
        let { Ci.solutions; _ } = Ci.concat_intersect c1 c2 c3 in
        check_int "none" 0 (List.length solutions));
    test "epsilon splits" (fun () ->
        (* v1 ⊆ a*, v2 ⊆ a*, v1v2 ⊆ aa: cuts at 0/1/2 a's *)
        let c1 = lang_of "a*" and c2 = lang_of "a*" in
        let c3 = lang_of "aa" in
        let { Ci.solutions; _ } = Ci.concat_intersect c1 c2 c3 in
        check_bool "has solutions" true (solutions <> []);
        check_bool "all-solutions" true
          (Validate.ci_all_solutions ~c1 ~c2 ~c3 solutions));
    test "cut is a real eps edge of m5" (fun () ->
        let c1 = lang_of "ab" and c2 = lang_of "ba" in
        let c3 = lang_of "abba" in
        let { Ci.solutions; m5; _ } = Ci.concat_intersect c1 c2 c3 in
        List.iter
          (fun { Ci.cut = qa, qb; _ } ->
            check_bool "eps edge" true (Nfa.has_eps_edge m5 qa qb))
          solutions);
  ]

let ci_props =
  let langs_gen =
    QCheck2.Gen.(
      let regex_pool =
        [ "a*"; "a+b"; "(ab)*"; "a|bb"; "ab?c"; "[ab]+"; "a{1,3}"; "b(a|b)*";
          "(a|b)(a|b)"; "ba*b|a" ]
      in
      let* r1 = oneofl regex_pool in
      let* r2 = oneofl regex_pool in
      let* r3 = oneofl regex_pool in
      let* pad = oneofl [ ""; "a"; "ab"; "ba" ] in
      return (r1, r2, r3 ^ pad))
  in
  [
    qtest ~count:80 "CI: Satisfying on random instances" langs_gen
      (fun (r1, r2, r3) ->
        let c1 = lang_of r1 and c2 = lang_of r2 and c3 = lang_of r3 in
        List.for_all
          (Validate.ci_satisfying ~c1 ~c2 ~c3)
          (Ci.solve c1 c2 c3));
    qtest ~count:80 "CI: All Solutions on random instances" langs_gen
      (fun (r1, r2, r3) ->
        let c1 = lang_of r1 and c2 = lang_of r2 and c3 = lang_of r3 in
        Validate.ci_all_solutions ~c1 ~c2 ~c3 (Ci.solve c1 c2 c3));
    qtest ~count:80 "CI: no empty assignments" langs_gen (fun (r1, r2, r3) ->
        let c1 = lang_of r1 and c2 = lang_of r2 and c3 = lang_of r3 in
        List.for_all
          (fun { Ci.v1; v2; _ } ->
            (not (Nfa.is_empty_lang v1)) && not (Nfa.is_empty_lang v2))
          (Ci.solve c1 c2 c3));
    qtest ~count:80 "CI: solution count bounded by |M3| states" langs_gen
      (fun (r1, r2, r3) ->
        let c1 = lang_of r1 and c2 = lang_of r2 and c3 = lang_of r3 in
        List.length (Ci.solve c1 c2 c3) <= Nfa.num_states c3);
  ]

(* ------------------------------------------------------------------ *)
(* Dependency graphs (Fig. 5 / Fig. 6)                                *)

let mk_system consts constraints =
  System.make_exn
    ~consts:(List.map (fun (n, r) -> (n, re r)) consts)
    ~constraints

let fig6_system =
  (* v1 ⊆ c1, c2 ∘ v1 ⊆ c3 — the motivating example's shape *)
  mk_system
    [ ("c1", "(.*)[0-9]"); ("c2", "nid_"); ("c3", ".*'.*") ]
    [
      { lhs = Var "v1"; rhs = "c1" };
      { lhs = Concat (Const "c2", Var "v1"); rhs = "c3" };
    ]

let depgraph_tests =
  [
    test "fig 6 graph structure" (fun () ->
        let g = Depgraph.of_system fig6_system in
        check_int "nodes: c1 c2 c3 v1 t0" 5 (List.length g.nodes);
        check_int "subset edges" 2 (List.length g.subsets);
        check_int "concat pairs" 1 (List.length g.concats);
        let { Depgraph.left; right; result } = List.hd g.concats in
        check_bool "left is c2" true (Depgraph.node_equal left (Const "c2"));
        check_bool "right is v1" true (Depgraph.node_equal right (Var "v1"));
        check_bool "result is tmp" true (match result with Depgraph.Tmp _ -> true | _ -> false));
    test "fig 6 CI-groups" (fun () ->
        let g = Depgraph.of_system fig6_system in
        let groups = Depgraph.ci_groups g in
        let sizes = List.sort compare (List.map List.length groups) in
        (* {v1, t0} plus singletons {c1} {c2} {c3} — constant operands
           do not couple concatenations *)
        Alcotest.(check (list int)) "group sizes" [ 1; 1; 1; 2 ] sizes);
    test "nested concat makes a taller graph" (fun () ->
        let s =
          mk_system
            [ ("c1", "a*"); ("c2", "b*"); ("c3", "c*"); ("c4", "(abc)*") ]
            [
              {
                lhs = Concat (Concat (Var "v1", Var "v2"), Var "v3");
                rhs = "c4";
              };
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Var "v2"; rhs = "c2" };
              { lhs = Var "v3"; rhs = "c3" };
            ]
        in
        let g = Depgraph.of_system s in
        check_int "two tmps" 2 (List.length g.concats);
        let groups = Depgraph.ci_groups g in
        check_int "one concat group + 4 const singletons" 5 (List.length groups));
    test "dot output is generated" (fun () ->
        let dot = Depgraph.to_dot (Depgraph.of_system fig6_system) in
        check_bool "nonempty" true (String.length dot > 40));
    test "system validation" (fun () ->
        (match
           System.make ~consts:[] ~constraints:[ { lhs = Var "v"; rhs = "c" } ]
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "undefined constant accepted");
        match
          System.make
            ~consts:[ ("x", Nfa.sigma_star) ]
            ~constraints:[ { lhs = Var "x"; rhs = "x" } ]
        with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "var/const clash accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Full solver                                                        *)

let solve_exn ?max_solutions system =
  match run_solver ?max_solutions system with
  | Solver.Sat solutions -> solutions
  | Solver.Unsat { reason; _ } ->
      Alcotest.failf "unexpected unsat: %s" (Solver.unsat_message reason)

let solver_tests =
  [
    test "single variable, single constraint (§3.1.1 ex. 1)" (fun () ->
        let s =
          mk_system
            [ ("c1", "(xx)+y"); ("c2", "x*y") ]
            [ { lhs = Var "v1"; rhs = "c1" }; { lhs = Var "v1"; rhs = "c2" } ]
        in
        match solve_exn s with
        | [ a ] -> check_lang "v1" "(xx)+y" (Assignment.find a "v1")
        | sols -> Alcotest.failf "expected 1 solution, got %d" (List.length sols));
    test "disjunctive system (§3.1.1 ex. 2) — paper's A1 and A2" (fun () ->
        let s =
          mk_system
            [ ("c1", "x(yy)+"); ("c2", "(yy)*z"); ("c3", "xyyz|xyyyyz") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Var "v2"; rhs = "c2" };
              { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
            ]
        in
        let sols = solve_exn s in
        check_int "two disjuncts" 2 (List.length sols);
        let expect_one v1_re v2_re =
          check_bool
            (Printf.sprintf "solution [%s, %s] present" v1_re v2_re)
            true
            (List.exists
               (fun a ->
                 Lang.equal (Assignment.find a "v1") (re v1_re)
                 && Lang.equal (Assignment.find a "v2") (re v2_re))
               sols)
        in
        (* the paper's A1 and A2 verbatim *)
        expect_one "xyy" "z|yyz";
        expect_one "x(yy|yyyy)" "z";
        List.iter
          (fun a ->
            check_bool "satisfying" true (Validate.satisfying s a);
            check_bool "maximal (probe)" true (Validate.maximal_probe s a))
          sols;
        check_bool "incomparable" true (Validate.pairwise_incomparable sols));
    test "motivating example: exploit language" (fun () ->
        let sols = solve_exn fig6_system in
        check_int "one solution" 1 (List.length sols);
        let v1 = Assignment.find (List.hd sols) "v1" in
        check_bool "attack" true (Nfa.accepts v1 "' OR 1=1 ; DROP news --9");
        check_bool "benign blocked" false (Nfa.accepts v1 "42"));
    test "fixed filter makes the system unsat" (fun () ->
        (* with the ^ anchor, no input both passes the filter and
           produces a quoted query *)
        let s =
          mk_system
            [ ("c1", "[0-9]+"); ("c2", "nid_"); ("c3", ".*'.*") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Concat (Const "c2", Var "v1"); rhs = "c3" };
            ]
        in
        match run_solver s with
        | Solver.Unsat _ -> ()
        | Solver.Sat sols ->
            Alcotest.failf "expected unsat, got %d solutions" (List.length sols));
    test "const-vs-const inclusion holds" (fun () ->
        let s =
          mk_system
            [ ("sub", "ab"); ("super", "a.*") ]
            [ { lhs = Const "sub"; rhs = "super" } ]
        in
        check_int "trivially sat, no vars" 1 (List.length (solve_exn s)));
    test "const-vs-const inclusion fails" (fun () ->
        let s =
          mk_system
            [ ("sub", "ba"); ("super", "a.*") ]
            [ { lhs = Const "sub"; rhs = "super" } ]
        in
        match run_solver s with
        | Solver.Unsat _ -> ()
        | Solver.Sat _ -> Alcotest.fail "expected unsat");
    test "shared variable across two concats (Fig. 9 shape)" (fun () ->
        let s =
          mk_system
            [
              ("ca", "o(pp)+"); ("cb", "p*(qq)+"); ("cc", "q*r");
              ("c1", "op{5}q*"); ("c2", "p*q{4}r");
            ]
            [
              { lhs = Var "va"; rhs = "ca" };
              { lhs = Var "vb"; rhs = "cb" };
              { lhs = Var "vc"; rhs = "cc" };
              { lhs = Concat (Var "va", Var "vb"); rhs = "c1" };
              { lhs = Concat (Var "vb", Var "vc"); rhs = "c2" };
            ]
        in
        let sols = solve_exn s in
        (* the two solutions printed in §3.4.4 ... *)
        let expect va vb vc =
          check_bool
            (Printf.sprintf "[%s,%s,%s] present" va vb vc)
            true
            (List.exists
               (fun a ->
                 Lang.equal (Assignment.find a "va") (re va)
                 && Lang.equal (Assignment.find a "vb") (re vb)
                 && Lang.equal (Assignment.find a "vc") (re vc))
               sols)
        in
        expect "op{2}" "p{3}q{2}" "q{2}r";
        expect "op{4}" "pq{2}" "q{2}r";
        (* ... and the two symmetric ones the same semantics admits
           (see EXPERIMENTS.md on the discrepancy with the paper's
           stated count) *)
        expect "op{2}" "p{3}q{4}" "r";
        expect "op{4}" "pq{4}" "r";
        check_int "four maximal disjuncts" 4 (List.length sols);
        List.iter
          (fun a ->
            check_bool "satisfying" true (Validate.satisfying s a);
            check_bool "maximal (probe)" true (Validate.maximal_probe s a))
          sols;
        check_bool "incomparable" true (Validate.pairwise_incomparable sols));
    test "nested concatenation (v1.v2).v3" (fun () ->
        let s =
          mk_system
            [ ("c1", "a+"); ("c2", "b+"); ("c3", "c+"); ("c4", "abbc|aabcc") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Var "v2"; rhs = "c2" };
              { lhs = Var "v3"; rhs = "c3" };
              {
                lhs = Concat (Concat (Var "v1", Var "v2"), Var "v3");
                rhs = "c4";
              };
            ]
        in
        let sols = solve_exn s in
        check_bool "has solutions" true (sols <> []);
        List.iter
          (fun a -> check_bool "satisfying" true (Validate.satisfying s a))
          sols;
        (* the subset constraint on c4 must push back through both
           concatenations to v1 *)
        List.iter
          (fun a ->
            let v1 = Assignment.find a "v1" in
            check_bool "v1 bounded" true
              (Lang.subset v1 (re "a|aa")))
          sols);
    test "same variable twice in one concat" (fun () ->
        let s =
          mk_system
            [ ("c1", "a*"); ("c3", "aaaa") ]
            [
              { lhs = Var "v"; rhs = "c1" };
              { lhs = Concat (Var "v", Var "v"); rhs = "c3" };
            ]
        in
        let sols = solve_exn s in
        check_bool "has solutions" true (sols <> []);
        List.iter
          (fun a ->
            check_bool "satisfying" true (Validate.satisfying s a);
            check_lang "v" "aa" (Assignment.find a "v"))
          sols);
    test "unconstrained variable gets sigma-star" (fun () ->
        let s =
          mk_system [ ("c", "a*") ] [ { lhs = Var "v"; rhs = "c" } ]
        in
        match solve_exn s with
        | [ a ] -> check_lang "v" "a*" (Assignment.find a "v")
        | _ -> Alcotest.fail "expected one solution");
    test "two independent groups multiply" (fun () ->
        let s =
          mk_system
            [ ("c1", "x(yy)+"); ("c2", "(yy)*z"); ("c3", "xyyz|xyyyyz"); ("d", "q+") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Var "v2"; rhs = "c2" };
              { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
              { lhs = Var "w"; rhs = "d" };
            ]
        in
        let sols = solve_exn s in
        check_int "2 disjuncts × 1" 2 (List.length sols);
        List.iter
          (fun a -> check_lang "w" "q+" (Assignment.find a "w"))
          sols);
    test "multi-word constant operand: universal semantics" (fun () ->
        (* a* ∘ v ⊆ (ab)* must quantify over ALL of a*, forcing v = ∅:
           regression test for the ∃-slicing unsoundness found by
           differential testing (see DESIGN.md) *)
        let s =
          mk_system
            [ ("c1", "a*"); ("c3", "(ab)*") ]
            [ { lhs = Concat (Const "c1", Var "v"); rhs = "c3" } ]
        in
        (match run_solver s with
        | Solver.Unsat _ -> ()
        | Solver.Sat sols ->
            Alcotest.failf "expected unsat, got %d solutions" (List.length sols));
        (* whereas a* ∘ v ⊆ a*b has the maximal solution v = a*b *)
        let s' =
          mk_system
            [ ("c1", "a*"); ("c3", "a*b") ]
            [ { lhs = Concat (Const "c1", Var "v"); rhs = "c3" } ]
        in
        match solve_exn s' with
        | [ a ] ->
            check_lang "v" "a*b" (Assignment.find a "v");
            check_bool "satisfying" true (Validate.satisfying s' a)
        | sols -> Alcotest.failf "expected 1 solution, got %d" (List.length sols));
    test "multi-word constant on the right edge" (fun () ->
        (* v ∘ a* ⊆ ba* : v must work for every a-suffix *)
        let s =
          mk_system
            [ ("c2", "a*"); ("c3", "ba*") ]
            [ { lhs = Concat (Var "v", Const "c2"); rhs = "c3" } ]
        in
        match solve_exn s with
        | [ a ] ->
            check_lang "v" "ba*" (Assignment.find a "v");
            check_bool "satisfying" true (Validate.satisfying s a)
        | sols -> Alcotest.failf "expected 1 solution, got %d" (List.length sols));
    test "interior multi-word constant stays sound" (fun () ->
        (* v1 ∘ (a|aa) ∘ v2 ⊆ b a{1,2} c : combos are verified, so
           every returned disjunct must satisfy *)
        let s =
          mk_system
            [ ("mid", "a|aa"); ("c3", "ba{1,2}c") ]
            [
              {
                lhs = Concat (Var "v1", Concat (Const "mid", Var "v2"));
                rhs = "c3";
              };
            ]
        in
        match run_solver s with
        | Solver.Unsat _ -> ()
        | Solver.Sat sols ->
            check_bool "nonempty" true (sols <> []);
            List.iter
              (fun a ->
                check_bool "satisfying" true (Validate.satisfying s a))
              sols);
    test "concat of constants checked by inclusion" (fun () ->
        let bad =
          mk_system
            [ ("a", "x"); ("b", "y"); ("c", "xz") ]
            [ { lhs = Concat (Const "a", Const "b"); rhs = "c" } ]
        in
        (match run_solver bad with
        | Solver.Unsat _ -> ()
        | Solver.Sat _ -> Alcotest.fail "expected unsat");
        let good =
          mk_system
            [ ("a", "x"); ("b", "y"); ("c", "xy|z") ]
            [ { lhs = Concat (Const "a", Const "b"); rhs = "c" } ]
        in
        match run_solver good with
        | Solver.Sat _ -> ()
        | Solver.Unsat r -> Alcotest.failf "expected sat: %s" (Solver.unsat_message r.Solver.reason));
    test "union lhs splits into conjuncts (§3.1.2 extension)" (fun () ->
        (* (v | w) ⊆ c constrains both variables *)
        let s =
          mk_system
            [ ("c", "a{1,3}") ]
            [ { lhs = Union (Var "v", Var "w"); rhs = "c" } ]
        in
        match solve_exn s with
        | [ a ] ->
            check_lang "v" "a{1,3}" (Assignment.find a "v");
            check_lang "w" "a{1,3}" (Assignment.find a "w")
        | sols -> Alcotest.failf "expected 1 solution, got %d" (List.length sols));
    test "union distributes over concatenation" (fun () ->
        (* (p|q) . v ⊆ c: v must be safe after both prefixes *)
        let s =
          mk_system
            [ ("p", "x"); ("q", "xx"); ("c", "x{2,3}") ]
            [ { lhs = Concat (Union (Const "p", Const "q"), Var "v"); rhs = "c" } ]
        in
        let sols = solve_exn s in
        check_bool "nonempty" true (sols <> []);
        List.iter
          (fun a ->
            check_bool "satisfying" true (Validate.satisfying s a);
            (* x·v ⊆ x{2,3} gives v ⊆ x{1,2}; xx·v ⊆ x{2,3} gives
               v ⊆ x{0,1}; both ⇒ v = x *)
            check_lang "v" "x" (Assignment.find a "v"))
          sols);
    test "union in validate matches Ops.union semantics" (fun () ->
        let s =
          mk_system
            [ ("ca", "a"); ("cb", "b"); ("c", "a|b") ]
            [ { lhs = Union (Const "ca", Const "cb"); rhs = "c" } ]
        in
        check_int "sat, no vars" 1 (List.length (solve_exn s)));
    test "first_solution mode" (fun () ->
        let g = Depgraph.of_system fig6_system in
        match Solver.first_solution g with
        | Some a ->
            check_bool "satisfying" true (Validate.satisfying fig6_system a)
        | None -> Alcotest.fail "expected a solution");
  ]

(* ------------------------------------------------------------------ *)
(* Residual / maximization                                            *)

let residual_tests =
  [
    test "max_middle basic" (fun () ->
        (* {w | a·w·b ∈ L(a(ab)*b)} = (ab)*: stripping the fixed a/b
           context leaves w ∈ (ab)* *)
        let m =
          Residual.max_middle ~pre:(lang_of "a") ~post:(lang_of "b")
            ~upper:(lang_of "a(ab)*b")
        in
        check_bool "eps" true (Nfa.accepts m "");
        check_bool "ab" true (Nfa.accepts m "ab");
        check_bool "abab" true (Nfa.accepts m "abab");
        check_bool "ba" false (Nfa.accepts m "ba");
        check_bool "a" false (Nfa.accepts m "a"));
    test "max_middle with multiple pre words" (fun () ->
        (* pre = a|aa, upper = a{1,2}b* ⇒ w must work after both *)
        let m =
          Residual.max_middle ~pre:(lang_of "a|aa") ~post:(lang_of "b")
            ~upper:(lang_of "a{1,2}b*")
        in
        check_bool "b*" true (Nfa.accepts m "bbb");
        check_bool "a fails (aaa not in upper)" false (Nfa.accepts m "a"));
    test "empty pre is unconstraining" (fun () ->
        let m =
          Residual.max_middle ~pre:Nfa.empty_lang ~post:(lang_of "b")
            ~upper:(lang_of "ab")
        in
        check_bool "sigma-star" true (Lang.equal m Nfa.sigma_star));
    test "maximize grows to the paper's merged solution" (fun () ->
        let s =
          mk_system
            [ ("c1", "x(yy)+"); ("c2", "(yy)*z"); ("c3", "xyyz|xyyyyz") ]
            [
              { lhs = Var "v1"; rhs = "c1" };
              { lhs = Var "v2"; rhs = "c2" };
              { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
            ]
        in
        (* start from the narrow slice [xyyyy, z]; maximize must merge
           in xyy, yielding the paper's A2 *)
        let a =
          Assignment.of_list [ ("v1", re "xyyyy"); ("v2", re "z") ]
        in
        let m = Residual.maximize s a in
        check_lang "v1" "x(yy|yyyy)" (Assignment.find m "v1");
        check_lang "v2" "z" (Assignment.find m "v2"));
  ]

let solver_props =
  let sys_gen =
    QCheck2.Gen.(
      let pool = [ "a*"; "ab|b*"; "(ab)*"; "a+b?"; "[ab]{1,3}"; "b+a*"; "a|b|ab" ] in
      let* r1 = oneofl pool in
      let* r2 = oneofl pool in
      let* r3 = oneofl pool in
      let* r4 = oneofl pool in
      return
        (mk_system
           [ ("c1", r1); ("c2", r2); ("c3", r3 ^ "|" ^ r4) ]
           [
             { lhs = Var "v1"; rhs = "c1" };
             { lhs = Var "v2"; rhs = "c2" };
             { lhs = Concat (Var "v1", Var "v2"); rhs = "c3" };
           ]))
  in
  [
    qtest ~count:40 "solver: all disjuncts satisfy" sys_gen (fun s ->
        match run_solver s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols -> List.for_all (Validate.satisfying s) sols);
    qtest ~count:40 "solver: disjuncts pairwise incomparable" sys_gen (fun s ->
        match run_solver s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols -> Validate.pairwise_incomparable sols);
    qtest ~count:25 "solver: maximality probe" sys_gen (fun s ->
        match run_solver s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols ->
            List.for_all (fun a -> Validate.maximal_probe ~samples:3 s a) sols);
    qtest ~count:40 "solver: coverage of the concat language" sys_gen (fun s ->
        (* every word of (c1∘c2) ∩ c3 appears in v1∘v2 of some disjunct *)
        let c1 = System.const_lang s "c1"
        and c2 = System.const_lang s "c2"
        and c3 = System.const_lang s "c3" in
        let target = Ops.inter_lang (Ops.concat_lang c1 c2) c3 in
        match run_solver s with
        | Solver.Unsat _ -> Nfa.is_empty_lang target
        | Solver.Sat sols ->
            let covered =
              List.fold_left
                (fun acc a ->
                  Ops.union_lang acc
                    (Ops.concat_lang (Assignment.find a "v1")
                       (Assignment.find a "v2")))
                Nfa.empty_lang sols
            in
            Lang.equal covered target);
    qtest ~count:40 "solver: unsat iff concat language empty" sys_gen (fun s ->
        let c1 = System.const_lang s "c1"
        and c2 = System.const_lang s "c2"
        and c3 = System.const_lang s "c3" in
        let target = Ops.inter_lang (Ops.concat_lang c1 c2) c3 in
        match run_solver s with
        | Solver.Unsat _ -> Nfa.is_empty_lang target
        | Solver.Sat sols -> sols <> [] && not (Nfa.is_empty_lang target));
  ]

let report_tests =
  [
    test "report on the motivating system" (fun () ->
        let g = Depgraph.of_system fig6_system in
        let outcome, r =
          Result.get_ok (Dprle.Report.solve_with_report g)
        in
        (match outcome with
        | Solver.Sat [ _ ] -> ()
        | _ -> Alcotest.fail "expected one solution");
        check_int "nodes" 5 r.nodes;
        check_int "subsets" 2 r.subset_edges;
        check_int "concats" 1 r.concat_pairs;
        check_int "groups" 1 r.groups;
        check_int "solutions" 1 r.solutions;
        check_bool "cuts counted" true (r.cut_candidates >= 1);
        check_bool "work measured" true (r.automata.visited > 0));
    test "report on fig9: combination width" (fun () ->
        let s =
          mk_system
            [
              ("ca", "o(pp)+"); ("cb", "p*(qq)+"); ("cc", "q*r");
              ("c1", "op{5}q*"); ("c2", "p*q{4}r");
            ]
            [
              { lhs = Var "va"; rhs = "ca" };
              { lhs = Var "vb"; rhs = "cb" };
              { lhs = Var "vc"; rhs = "cc" };
              { lhs = Concat (Var "va", Var "vb"); rhs = "c1" };
              { lhs = Concat (Var "vb", Var "vc"); rhs = "c2" };
            ]
        in
        let _, r =
          Result.get_ok (Dprle.Report.solve_with_report (Depgraph.of_system s))
        in
        (* at least the paper's 2×2 cut combinations (Thompson-built
           machines carry extra ε-cut images of the same solutions) *)
        check_bool "combinations" true (r.max_group_combinations >= 4);
        check_int "groups" 1 r.groups;
        check_int "solutions" 4 r.solutions);
    test "cut census on unsat constant system is empty" (fun () ->
        let s =
          mk_system
            [ ("sub", "ba"); ("super", "a.*") ]
            [ { lhs = Const "sub"; rhs = "super" } ]
        in
        Alcotest.(check (list (pair int int)))
          "empty" []
          (Solver.cut_census (Depgraph.of_system s)));
  ]

(* Random systems with two coupled concatenations — the gci stress
   shape of Fig. 9 — validated for soundness and witness concreteness. *)
let chained_props =
  let sys_gen =
    QCheck2.Gen.(
      let pool = [ "a*"; "ab|b"; "(ab)*"; "a+b?"; "[ab]{1,2}"; "b+a*" ] in
      let* r1 = oneofl pool in
      let* r2 = oneofl pool in
      let* r3 = oneofl pool in
      let* r4 = oneofl pool in
      let* r5 = oneofl pool in
      let* nested = QCheck2.Gen.bool in
      let constraints =
        if nested then
          [
            { System.lhs = System.Var "v1"; rhs = "c1" };
            { System.lhs = System.Var "v2"; rhs = "c2" };
            { System.lhs = System.Var "v3"; rhs = "c3" };
            {
              System.lhs =
                System.Concat (Concat (Var "v1", Var "v2"), Var "v3");
              rhs = "c4";
            };
          ]
        else
          [
            { System.lhs = System.Var "v1"; rhs = "c1" };
            { System.lhs = System.Var "v2"; rhs = "c2" };
            { System.lhs = System.Var "v3"; rhs = "c3" };
            { System.lhs = System.Concat (Var "v1", Var "v2"); rhs = "c4" };
            { System.lhs = System.Concat (Var "v2", Var "v3"); rhs = "c5" };
          ]
      in
      return
        (mk_system
           [ ("c1", r1); ("c2", r2); ("c3", r3); ("c4", r4); ("c5", r5) ]
           constraints))
  in
  [
    qtest ~count:25 "chained systems: every disjunct satisfies" sys_gen
      (fun s ->
        match run_solver ~max_solutions:8 s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols -> List.for_all (Validate.satisfying s) sols);
    qtest ~count:25 "chained systems: witnesses check concretely" sys_gen
      (fun s ->
        match run_solver ~max_solutions:4 s with
        | Solver.Unsat _ -> true
        | Solver.Sat sols ->
            List.for_all
              (fun a ->
                match Assignment.witness a with
                | None -> false
                | Some words -> Dprle.Bounded.check s words)
              sols);
  ]

let suite =
  [
    ("ci:unit", ci_tests);
    ("solver:chained-props", chained_props);
    ("report:unit", report_tests);
    ("ci:props", ci_props);
    ("depgraph:unit", depgraph_tests);
    ("solver:unit", solver_tests);
    ("residual:unit", residual_tests);
    ("solver:props", solver_props);
  ]
